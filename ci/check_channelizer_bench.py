#!/usr/bin/env python3
"""CI gate over the channelizer-vs-per-channel bank benches.

Reads one or more arachnet.bench.v1 JSONL sidecars (BENCH_micro_dsp.json,
optionally BENCH_ext_throughput.json) and asserts the polyphase
channelizer's contract:

  1. parity      — BM_BankPacketParity.parity == 1: at 16 channels the two
     bank policies decoded the same packets on the same channels with
     timestamps within one lane sample. A speedup between banks that
     decode different packets is meaningless, so this is checked first.
  2. engagement  — BM_FdmaBankChannelizer/<N>.channelized == 1 for every
     measured N: the requested channelizer actually engaged (a silent
     fallback would compare per-channel against itself).
  3. speed       — from the BM_FdmaBankPerChannel/<N> vs
     BM_FdmaBankChannelizer/<N> real_time pairs:
       * N >= 8  : the channelizer must never be slower, and
       * N == 16 : it must be at least 2x faster.
     (At 4 channels the shared FFT costs about what four mixers do, so no
     speed requirement is placed there.)

When the ext_throughput sidecar is supplied, its fdma.bank.<N>.parity and
fdma.bank.<N>.channelized rows are checked too, and the measured
fdma.bank.<N>.speedup_x values are printed for the record (wall-clock
single-shot numbers; the gate thresholds apply to the min_time-controlled
google-benchmark rows above).

Usage: check_channelizer_bench.py BENCH_micro_dsp.json [BENCH_ext_throughput.json ...]
"""

import json
import sys

COUNTS = [4, 8, 16, 32]


def load(paths):
    metrics = {}
    for path in paths:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec.get("schema") != "arachnet.bench.v1":
                    print(f"unexpected schema in record: {rec}",
                          file=sys.stderr)
                    sys.exit(2)
                if "value" in rec:  # histograms/percentiles carry none
                    metrics[rec["name"]] = rec["value"]
    return metrics


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    metrics = load(sys.argv[1:])

    failed = False

    parity = metrics.get("BM_BankPacketParity.parity")
    if parity != 1:
        print(
            f"::error::bank policies decoded different packet streams "
            f"(parity={parity}, per_channel="
            f"{metrics.get('BM_BankPacketParity.per_channel_packets')}, "
            f"channelizer="
            f"{metrics.get('BM_BankPacketParity.channelizer_packets')})"
        )
        failed = True

    for n in COUNTS:
        pc = metrics.get(f"BM_FdmaBankPerChannel/{n}.real_time")
        cz = metrics.get(f"BM_FdmaBankChannelizer/{n}.real_time")
        engaged = metrics.get(f"BM_FdmaBankChannelizer/{n}.channelized")
        if pc is None or cz is None:
            print(f"::error::missing BM_FdmaBank{{PerChannel,Channelizer}}/"
                  f"{n} rows")
            failed = True
            continue
        if engaged != 1:
            print(f"::error::channelizer did not engage at {n} channels "
                  f"(channelized={engaged})")
            failed = True
            continue
        speedup = pc / cz
        print(f"bank {n:>2} channels: per-channel {pc:.0f}ns, "
              f"channelizer {cz:.0f}ns -> {speedup:.2f}x")
        if n >= 8 and cz > pc:
            print(f"::error::channelizer slower than per-channel at {n} "
                  f"channels ({cz:.0f}ns vs {pc:.0f}ns)")
            failed = True
        if n == 16 and speedup < 2.0:
            print(f"::error::channelizer under 2x at 16 channels "
                  f"({speedup:.2f}x)")
            failed = True

    # Optional ext_throughput rows (present when that sidecar was given).
    for n in COUNTS:
        speedup = metrics.get(f"fdma.bank.{n}.speedup_x")
        if speedup is None:
            continue
        print(f"ext sweep {n:>2} channels: {speedup:.2f}x")
        if metrics.get(f"fdma.bank.{n}.parity") != 1:
            print(f"::error::ext sweep parity broken at {n} channels")
            failed = True
        if metrics.get(f"fdma.bank.{n}.channelized") != 1:
            print(f"::error::ext sweep channelizer did not engage at {n} "
                  f"channels")
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
