#!/usr/bin/env python3
"""CI gate over the steady-state allocation audit sidecar rows.

The hot decode loops promise an allocation-free steady state (DESIGN.md
Sec. 11): after one warm-up pass, re-processing an identical block
schedule must perform zero heap allocations. bench_ext_throughput (the
FdmaRxChain channelizer-bank decode loop) and bench_service_soak (the
ReaderService session loop) each measure that contract with
telemetry::CountingAllocatorGuard and report it as sidecar rows:

  alloc.warmup_count        allocations during the warm-up pass
                            (informational — scratch buffers, packet
                            lists and pools growing to their high-water
                            marks)
  alloc.steady_state_count  allocations during the measured pass —
                            gated == 0 here; any nonzero value means a
                            per-block allocation crept back into a hot
                            path.

Every supplied sidecar must carry an alloc.steady_state_count row; a
missing row fails too (a silently dropped audit would otherwise pass).

Usage: check_alloc_gate.py BENCH_ext_throughput.json [BENCH_service_soak.json ...]
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2

    failed = False
    for path in sys.argv[1:]:
        rows = {}
        bench = path
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec.get("schema") != "arachnet.bench.v1":
                    print(f"unexpected schema in record: {rec}",
                          file=sys.stderr)
                    return 2
                bench = rec.get("bench", bench)
                if rec.get("name", "").startswith("alloc."):
                    rows[rec["name"]] = rec["value"]

        steady = rows.get("alloc.steady_state_count")
        warmup = rows.get("alloc.warmup_count")
        print(f"{bench}: warmup={warmup} steady_state={steady}")
        if steady is None:
            print(f"::error::{bench} sidecar carries no "
                  f"alloc.steady_state_count row — the audit did not run")
            failed = True
        elif steady != 0:
            print(f"::error::{bench} allocated {steady} time(s) in steady "
                  f"state — the per-block decode loop must not touch the "
                  f"heap after warm-up")
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
