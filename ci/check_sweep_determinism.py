#!/usr/bin/env python3
"""CI gate for the sweep engine's determinism contract.

Compares two BENCH_*.json sidecars (arachnet.bench.v1) produced by the
same bench at different --jobs values. Every result record must match
exactly — bit-identical values, same record set — because the sweep
engine derives each trial's RNG stream from its grid cell, never from
scheduling. Records whose name starts with "sweep." are excluded: those
are the engine's own timing/parallelism rows and legitimately differ.

Usage: check_sweep_determinism.py serial/BENCH_x.json parallel/BENCH_x.json
"""

import json
import sys


def load(path):
    records = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("schema") != "arachnet.bench.v1":
                raise ValueError(f"unexpected schema in {path}: {rec}")
            name = rec["name"]
            if name.startswith("sweep."):
                continue  # engine timing rows, not results
            # Compare the full record minus the name key ordering.
            records[(rec.get("kind"), name)] = json.dumps(rec, sort_keys=True)
    return records


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2

    a, b = load(sys.argv[1]), load(sys.argv[2])
    failed = False
    for key in sorted(set(a) | set(b)):
        if key not in a:
            print(f"::error::record {key} only in {sys.argv[2]}")
            failed = True
        elif key not in b:
            print(f"::error::record {key} only in {sys.argv[1]}")
            failed = True
        elif a[key] != b[key]:
            print(
                f"::error::sweep result diverged across --jobs for {key}:\n"
                f"  serial:   {a[key]}\n  parallel: {b[key]}"
            )
            failed = True

    if failed:
        return 1
    print(f"{len(a)} result records bit-identical across --jobs values")
    return 0


if __name__ == "__main__":
    sys.exit(main())
