#!/usr/bin/env python3
"""CI gate over the live-monitor observability contract.

Reads the arachnet.bench.v1 sidecar BENCH_service_soak.json and the
arachnet.monitor.v1 time-series MONITOR_service_soak.jsonl and asserts:

  1. overhead     — soak.monitor.overhead_pct <= 3.0: running the
     HealthMonitor at its deployed 1 s period costs the saturated decode
     path at most 3% throughput (median of paired on/off bursts, so one
     noisy burst on a shared runner cannot fail the gate). Negative
     values (noise floor) pass.
  2. sampling     — soak.monitor.samples >= 1 at period 1 s: the monitor
     actually rode along the paced phase.
  3. attribution  — the per-stage latency rows
     soak.stage.{dispatch_wait,process,emit}_ms.{p50,p99} are present,
     finite, and each stage's p50 <= its p99: the soak reports where
     inside submit -> packet the time went, not just the total.
  4. time-series  — every MONITOR_service_soak.jsonl line parses as JSON
     with schema arachnet.monitor.v1 and carries the wall/steady anchor
     pair and the counters/gauges/histograms sections.

Usage: check_monitor_overhead.py BENCH_service_soak.json \
           MONITOR_service_soak.jsonl
"""

import json
import math
import sys

MAX_OVERHEAD_PCT = 3.0
MONITOR_SCHEMA = "arachnet.monitor.v1"

STAGE_ROWS = [
    "soak.stage.dispatch_wait_ms.p50",
    "soak.stage.dispatch_wait_ms.p99",
    "soak.stage.process_ms.p50",
    "soak.stage.process_ms.p99",
    "soak.stage.emit_ms.p50",
    "soak.stage.emit_ms.p99",
]


def load_bench(path):
    metrics = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("schema") != "arachnet.bench.v1":
                print(f"unexpected schema in record: {rec}", file=sys.stderr)
                sys.exit(2)
            if "value" in rec:
                metrics[rec["name"]] = rec["value"]
    return metrics


def check_monitor_jsonl(path, failures):
    lines = 0
    with open(path) as f:
        for i, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                failures.append(f"time-series: line {i} is not JSON: {e}")
                return 0
            if rec.get("schema") != MONITOR_SCHEMA:
                failures.append(
                    f"time-series: line {i} schema "
                    f"{rec.get('schema')!r} != {MONITOR_SCHEMA!r}")
                return 0
            for key in ("seq", "wall_ns", "steady_ns", "dt_s",
                        "counters", "gauges", "histograms"):
                if key not in rec:
                    failures.append(
                        f"time-series: line {i} missing key {key!r}")
                    return 0
            lines += 1
    if lines == 0:
        failures.append("time-series: MONITOR jsonl has no samples")
    return lines


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    m = load_bench(sys.argv[1])

    failures = []
    required = [
        "soak.monitor.overhead_pct",
        "soak.monitor.off_samples_per_s",
        "soak.monitor.on_samples_per_s",
        "soak.monitor.samples",
        "soak.monitor.period_s",
    ] + STAGE_ROWS
    missing = [name for name in required if name not in m]
    if missing:
        failures.append(f"missing sidecar rows: {', '.join(missing)}")
    else:
        overhead = m["soak.monitor.overhead_pct"]
        if overhead > MAX_OVERHEAD_PCT:
            failures.append(
                f"overhead: monitor-on throughput {overhead:.2f}% below "
                f"monitor-off (budget {MAX_OVERHEAD_PCT}%)")
        if m["soak.monitor.samples"] < 1:
            failures.append("sampling: monitor took no samples in the "
                            "paced phase")
        for stage in ("dispatch_wait", "process", "emit"):
            p50 = m[f"soak.stage.{stage}_ms.p50"]
            p99 = m[f"soak.stage.{stage}_ms.p99"]
            if not (math.isfinite(p50) and math.isfinite(p99)):
                failures.append(f"attribution: {stage} percentiles not "
                                f"finite (p50={p50}, p99={p99})")
            elif p50 > p99:
                failures.append(
                    f"attribution: {stage} p50 {p50:.3f} ms > "
                    f"p99 {p99:.3f} ms")

        samples = check_monitor_jsonl(sys.argv[2], failures)

        print("monitor overhead gate:")
        print(f"  overhead            {overhead:.2f}% "
              f"(off {m['soak.monitor.off_samples_per_s'] / 1e6:.2f} MS/s, "
              f"on {m['soak.monitor.on_samples_per_s'] / 1e6:.2f} MS/s, "
              f"budget {MAX_OVERHEAD_PCT}%)")
        print(f"  paced-phase samples {m['soak.monitor.samples']:.0f} "
              f"at {m['soak.monitor.period_s']:.1f} s period "
              f"({samples} jsonl lines)")
        for stage in ("dispatch_wait", "process", "emit"):
            print(f"  stage {stage:<14}"
                  f"p50 {m[f'soak.stage.{stage}_ms.p50']:.3f} ms, "
                  f"p99 {m[f'soak.stage.{stage}_ms.p99']:.3f} ms")

    if failures:
        for f in failures:
            print(f"::error::monitor overhead gate: {f}")
        return 1
    print("monitor overhead gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
