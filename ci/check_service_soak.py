#!/usr/bin/env python3
"""CI gate over the multi-session reader service soak bench.

Reads the arachnet.bench.v1 JSONL sidecar BENCH_service_soak.json and
asserts the ReaderService scaling contract:

  1. scale       — soak.sessions >= 8: the paced phase actually ran at
     least eight concurrent 500 kS/s sessions (the paper-scale fleet).
  2. liveness    — soak.blocks_processed > 0 and soak.packets > 0: the
     fleet decoded real packet waveforms end to end, not just moved
     buffers around.
  3. pacing      — soak.paced_drop_rate <= 0.05: under real-time pacing
     the service keeps up; drops are an overload mechanism, not the
     steady state. (The separate soak.blocks_dropped total includes the
     saturation phase, which slams the per-session caps by design, so the
     gate uses the paced-phase rate.)
  4. latency     — soak.block_ms.p99 <= 50 ms (and p50 <= p99 as a sanity
     check on the histogram read-out): end-to-end submit->decoded block
     latency stays bounded; 50 ms is 2.5 paced block periods of slack on
     a loaded CI runner.
  5. capacity    — soak.capacity_sessions_per_core >= 1.0: the saturation
     phase sustains at least one equivalent 500 kS/s stream per worker
     (decode is faster than real time per core).
  6. memory      — soak.rss_growth_kib <= 262144: resident set growth
     across the paced soak stays bounded (a leaking session fleet shows
     up here; 256 MiB leaves room for allocator noise and warm pools).

Usage: check_service_soak.py BENCH_service_soak.json
"""

import json
import sys

MIN_SESSIONS = 8
MAX_PACED_DROP_RATE = 0.05
MAX_P99_MS = 50.0
MIN_CAPACITY_PER_CORE = 1.0
MAX_RSS_GROWTH_KIB = 262144


def load(path):
    metrics = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("schema") != "arachnet.bench.v1":
                print(f"unexpected schema in record: {rec}", file=sys.stderr)
                sys.exit(2)
            if "value" in rec:
                metrics[rec["name"]] = rec["value"]
    return metrics


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    m = load(sys.argv[1])

    required = [
        "soak.sessions", "soak.workers", "soak.blocks_processed",
        "soak.packets", "soak.paced_drop_rate", "soak.block_ms.p50",
        "soak.block_ms.p99", "soak.capacity_sessions_per_core",
        "soak.rss_growth_kib",
    ]
    failures = []
    missing = [name for name in required if name not in m]
    if missing:
        failures.append(f"missing sidecar rows: {', '.join(missing)}")
    else:
        if m["soak.sessions"] < MIN_SESSIONS:
            failures.append(
                f"scale: {m['soak.sessions']:.0f} sessions < {MIN_SESSIONS}")
        if m["soak.blocks_processed"] <= 0 or m["soak.packets"] <= 0:
            failures.append(
                "liveness: no blocks processed or no packets decoded "
                f"(blocks={m['soak.blocks_processed']:.0f}, "
                f"packets={m['soak.packets']:.0f})")
        if m["soak.paced_drop_rate"] > MAX_PACED_DROP_RATE:
            failures.append(
                f"pacing: paced drop rate {m['soak.paced_drop_rate']:.4f} "
                f"> {MAX_PACED_DROP_RATE}")
        p50, p99 = m["soak.block_ms.p50"], m["soak.block_ms.p99"]
        if p99 > MAX_P99_MS:
            failures.append(f"latency: p99 {p99:.3f} ms > {MAX_P99_MS} ms")
        if p50 > p99:
            failures.append(f"latency: p50 {p50:.3f} ms > p99 {p99:.3f} ms")
        if m["soak.capacity_sessions_per_core"] < MIN_CAPACITY_PER_CORE:
            failures.append(
                "capacity: "
                f"{m['soak.capacity_sessions_per_core']:.2f} sessions/core "
                f"< {MIN_CAPACITY_PER_CORE}")
        if m["soak.rss_growth_kib"] > MAX_RSS_GROWTH_KIB:
            failures.append(
                f"memory: rss growth {m['soak.rss_growth_kib']:.0f} KiB "
                f"> {MAX_RSS_GROWTH_KIB} KiB")

        print("service soak gate:")
        print(f"  sessions            {m['soak.sessions']:.0f} "
              f"over {m['soak.workers']:.0f} workers")
        print(f"  blocks processed    {m['soak.blocks_processed']:.0f} "
              f"(paced drop rate {m['soak.paced_drop_rate']:.4f})")
        print(f"  packets decoded     {m['soak.packets']:.0f}")
        print(f"  block latency       p50 {p50:.3f} ms, p99 {p99:.3f} ms")
        print(f"  capacity            "
              f"{m['soak.capacity_sessions_per_core']:.2f} sessions/core")
        print(f"  rss growth          {m['soak.rss_growth_kib']:.0f} KiB")

    if failures:
        for f in failures:
            print(f"::error::service soak gate: {f}")
        return 1
    print("service soak gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
