#!/usr/bin/env python3
"""CI gate over the fleet-scale multi-reader engine bench.

Reads the arachnet.bench.v1 JSONL sidecar BENCH_fleet.json and asserts
the fleet engine's scaling and coordination contract:

  1. determinism — fleet.shard_determinism == 1: the slot-mode packet log
     digest is identical at shard widths 1, 2 and 4 (worker scheduling
     never leaks into results). The workflow additionally byte-diffs
     `bench_fleet --replay=K --shards=1` against `--shards=4`.
  2. parity      — fleet.parity == 1: with disjoint coverage the fleet
     log equals the deterministic merge of four single-reader engines.
  3. scaling     — fleet.efficiency_4 >= 0.7: weak-scaling parallel
     efficiency at 4 readers, already normalized by the bench to
     min(4, host cores) so a small runner is held to the same standard
     per core as a wide one (fleet.host_cores reports the divisor's
     input).
  4. coordination liveness — handoffs > 0 and dup_suppressed > 0 in the
     overlap scenario (the primitives actually engaged), and
     conflicts_planner_on == 0 while conflicts_planner_off > 0 (the
     planner is both necessary and sufficient against co-channel
     collisions).
  5. throughput liveness — fleet.r4.packets > 0: the 4-reader waveform
     fleet decoded real uplink packets end to end.

Usage: check_fleet_bench.py BENCH_fleet.json
"""

import json
import sys

MIN_EFFICIENCY_4 = 0.7


def load(path):
    metrics = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("schema") != "arachnet.bench.v1":
                print(f"unexpected schema in record: {rec}", file=sys.stderr)
                sys.exit(2)
            if "value" in rec:
                metrics[rec["name"]] = rec["value"]
    return metrics


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    m = load(sys.argv[1])

    required = [
        "fleet.host_cores", "fleet.shard_determinism", "fleet.parity",
        "fleet.efficiency_4", "fleet.handoffs", "fleet.dup_suppressed",
        "fleet.conflicts_planner_on", "fleet.conflicts_planner_off",
        "fleet.r4.packets", "fleet.r4.tags_per_s", "fleet.epoch_ms_p50",
        "fleet.epoch_ms_p99",
    ]
    failures = []
    missing = [name for name in required if name not in m]
    if missing:
        failures.append(f"missing sidecar rows: {', '.join(missing)}")
    else:
        if m["fleet.shard_determinism"] != 1:
            failures.append("determinism: packet log digest diverged "
                            "across shard widths 1/2/4")
        if m["fleet.parity"] != 1:
            failures.append("parity: fleet log != merged single-reader "
                            "references")
        if m["fleet.efficiency_4"] < MIN_EFFICIENCY_4:
            failures.append(
                f"scaling: efficiency at 4 readers "
                f"{m['fleet.efficiency_4']:.3f} < {MIN_EFFICIENCY_4} "
                f"(host cores {m['fleet.host_cores']:.0f})")
        if m["fleet.handoffs"] <= 0:
            failures.append("coordination: no handoffs in the overlap "
                            "scenario")
        if m["fleet.dup_suppressed"] <= 0:
            failures.append("coordination: no duplicates suppressed in "
                            "the overlap scenario")
        if m["fleet.conflicts_planner_on"] != 0:
            failures.append(
                f"planner: {m['fleet.conflicts_planner_on']:.0f} co-channel "
                "conflicts with the planner enabled")
        if m["fleet.conflicts_planner_off"] <= 0:
            failures.append("planner: planner-off control produced no "
                            "conflicts (the scenario is not exercising "
                            "interference)")
        if m["fleet.r4.packets"] <= 0:
            failures.append("throughput: 4-reader waveform fleet decoded "
                            "no packets")
        p50, p99 = m["fleet.epoch_ms_p50"], m["fleet.epoch_ms_p99"]
        if p50 > p99:
            failures.append(f"latency: p50 {p50:.3f} ms > p99 {p99:.3f} ms")

        print("fleet gate:")
        print(f"  host cores          {m['fleet.host_cores']:.0f}")
        print(f"  shard determinism   "
              f"{'bit-exact' if m['fleet.shard_determinism'] == 1 else 'DIVERGED'}")
        print(f"  single-reader parity "
              f"{'exact' if m['fleet.parity'] == 1 else 'MISMATCH'}")
        print(f"  efficiency @4       {m['fleet.efficiency_4']:.3f}")
        print(f"  waveform throughput {m['fleet.r4.tags_per_s']:.1f} tags/s "
              f"({m['fleet.r4.packets']:.0f} packets)")
        print(f"  epoch latency       p50 {p50:.3f} ms, p99 {p99:.3f} ms")
        print(f"  handoffs            {m['fleet.handoffs']:.0f}")
        print(f"  dup suppressed      {m['fleet.dup_suppressed']:.0f}")
        print(f"  conflicts on/off    {m['fleet.conflicts_planner_on']:.0f} / "
              f"{m['fleet.conflicts_planner_off']:.0f}")

    if failures:
        for f in failures:
            print(f"::error::fleet gate: {f}")
        return 1
    print("fleet gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
