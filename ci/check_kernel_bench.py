#!/usr/bin/env python3
"""CI gate over the BENCH_micro_dsp.json sidecar (arachnet.bench.v1).

Asserts the two kernel-policy invariants the block DSP layer promises:

  1. parity  — BM_PolicyPacketParity.parity == 1: the scalar and block
     policies decoded byte-identical packet sets (same packets, channels
     and timestamps). A speedup between paths that decode different
     packets is meaningless, so this is checked first.
  2. speed   — for each BM_<X>Scalar / BM_<X>Block pair, the block path's
     real_time must not exceed the scalar path's. The block kernels exist
     only to be faster; a regression below scalar fails the build.

Usage: check_kernel_bench.py path/to/BENCH_micro_dsp.json
"""

import json
import sys

PAIRS = [
    ("BM_DdcScalar.real_time", "BM_DdcBlock.real_time"),
    ("BM_FdmaBankScalar.real_time", "BM_FdmaBankBlock.real_time"),
]


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    metrics = {}
    with open(sys.argv[1]) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("schema") != "arachnet.bench.v1":
                print(f"unexpected schema in record: {rec}", file=sys.stderr)
                return 2
            metrics[rec["name"]] = rec["value"]

    parity = metrics.get("BM_PolicyPacketParity.parity")
    if parity != 1:
        print(
            f"::error::kernel policies decoded different packets "
            f"(parity={parity}, scalar="
            f"{metrics.get('BM_PolicyPacketParity.scalar_packets')}, block="
            f"{metrics.get('BM_PolicyPacketParity.block_packets')})"
        )
        return 1

    failed = False
    for scalar, block in PAIRS:
        if scalar not in metrics or block not in metrics:
            print(f"::error::missing metric {scalar} or {block}")
            failed = True
            continue
        s, b = metrics[scalar], metrics[block]
        print(f"{scalar.split('.')[0]} -> {block.split('.')[0]}: {s / b:.2f}x")
        if b > s:
            print(
                f"::error::block path slower than scalar "
                f"({block}={b:.0f}ns vs {scalar}={s:.0f}ns)"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
