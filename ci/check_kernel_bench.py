#!/usr/bin/env python3
"""CI gate over the BENCH_micro_dsp.json sidecar (arachnet.bench.v1).

Asserts the kernel-tier invariants the DSP layer promises:

  1. parity — BM_PolicyPacketParity.parity == 1 and every
     BM_TierPacketParity/<n>.parity == 1: the scalar, block and simd
     policies (and the simd channelizer bank) decoded identical packet
     sets at 4/8/16/32 channels. A speedup between paths that decode
     different packets is meaningless, so this is checked first.
  2. speed — for each BM_<X>Scalar / BM_<X>Block pair, the block path's
     real_time must not exceed the scalar path's; for each
     BM_<X>Block / BM_<X>Simd pair, the simd path must not exceed the
     block path's. The faster tiers exist only to be faster; a
     regression fails the build. The simd comparison is enforced only
     when an ISA-specialized tier dispatched (kernel.isa != generic) —
     the portable fallback promises correctness, not speed.
  3. provenance — the sidecar must carry kernel.policy and kernel.isa
     info rows so the numbers are attributable to the configuration
     that produced them; when kernel.cpu shows avx512f+avx512vl+fma,
     kernel.isa must actually be avx512 (the top tier dispatched, not
     silently degraded). On hardware without AVX-512 this check is
     skipped, not failed.
  4. float32 fold — when a BENCH_ext_throughput.json sidecar is also
     supplied, its fdma.bank.<n>.chzr_f32_* rows gate the float32
     channelizer fast path: packet parity against the float64 fold at
     every width, at least break-even at >= 8 channels, and >= 1.3x at
     16 and 32 channels (the ROADMAP item-3 headroom this tier exists
     to close).

Usage: check_kernel_bench.py BENCH_micro_dsp.json [BENCH_ext_throughput.json ...]
"""

import json
import sys

SCALAR_BLOCK_PAIRS = [
    ("BM_DdcScalar.real_time", "BM_DdcBlock.real_time"),
    ("BM_FdmaBankScalar.real_time", "BM_FdmaBankBlock.real_time"),
]

BLOCK_SIMD_PAIRS = [
    ("BM_DdcBlock.real_time", "BM_DdcSimd.real_time"),
    ("BM_FdmaBankBlock.real_time", "BM_FdmaBankSimd.real_time"),
]

PARITY_ROWS = [
    "BM_PolicyPacketParity.parity",
    "BM_TierPacketParity/4.parity",
    "BM_TierPacketParity/8.parity",
    "BM_TierPacketParity/16.parity",
    "BM_TierPacketParity/32.parity",
]

INFO_ROWS = ["kernel.policy", "kernel.isa"]


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2

    metrics = {}
    for path in sys.argv[1:]:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec.get("schema") != "arachnet.bench.v1":
                    print(f"unexpected schema in record: {rec}",
                          file=sys.stderr)
                    return 2
                if "value" in rec:  # histograms/percentiles carry none
                    metrics[rec["name"]] = rec["value"]

    failed = False

    for row in INFO_ROWS:
        if row not in metrics:
            print(f"::error::sidecar missing {row} info row")
            failed = True
    isa = metrics.get("kernel.isa", "generic")
    cpu = str(metrics.get("kernel.cpu", ""))
    print(
        f"kernel.policy={metrics.get('kernel.policy')} kernel.isa={isa} "
        f"kernel.cpu={cpu}"
    )

    # AVX-512 provenance: on hardware that has the full avx512 feature
    # set the top tier must have dispatched — a silent degrade to avx2
    # would quietly void every simd speed number below. Skip (not fail)
    # when the runner simply lacks AVX-512.
    if {"avx512f", "avx512vl", "fma"} <= set(cpu.split("+")):
        if isa != "avx512":
            print(
                f"::error::CPU supports avx512 ({cpu}) but kernel.isa="
                f"{isa} — the avx512 tier did not dispatch"
            )
            failed = True
    else:
        print(f"notice: CPU lacks AVX-512 ({cpu}) — provenance check skipped")

    for row in PARITY_ROWS:
        parity = metrics.get(row)
        if parity != 1:
            bench = row.rsplit(".", 1)[0]
            counts = {
                k.rsplit(".", 1)[1]: v
                for k, v in metrics.items()
                if k.startswith(bench + ".") and k.endswith("_packets")
            }
            print(
                f"::error::kernel tiers decoded different packets "
                f"({row}={parity}, {counts})"
            )
            failed = True
    if failed:
        return 1

    def check_pairs(pairs, slow_label, fast_label):
        nonlocal failed
        for slow, fast in pairs:
            if slow not in metrics or fast not in metrics:
                print(f"::error::missing metric {slow} or {fast}")
                failed = True
                continue
            s, f = metrics[slow], metrics[fast]
            print(f"{slow.split('.')[0]} -> {fast.split('.')[0]}: {s / f:.2f}x")
            if f > s:
                print(
                    f"::error::{fast_label} path slower than {slow_label} "
                    f"({fast}={f:.0f}ns vs {slow}={s:.0f}ns)"
                )
                failed = True

    check_pairs(SCALAR_BLOCK_PAIRS, "scalar", "block")
    if isa == "generic":
        print("notice: kernel.isa=generic — skipping block->simd speed gate")
    else:
        check_pairs(BLOCK_SIMD_PAIRS, "block", "simd")

    # Float32 channelizer fold (rows come from BENCH_ext_throughput.json
    # when supplied): parity always, break-even from 8 channels, and the
    # 1.3x acceptance floor at the 16/32-channel wideband widths.
    f32_widths = [
        n for n in (4, 8, 16, 32)
        if f"fdma.bank.{n}.chzr_f32_speedup_x" in metrics
    ]
    if not f32_widths:
        print("notice: no chzr_f32 rows supplied — skipping float32 fold "
              "gate")
    for n in f32_widths:
        speedup = metrics[f"fdma.bank.{n}.chzr_f32_speedup_x"]
        parity = metrics.get(f"fdma.bank.{n}.chzr_f32_parity")
        print(f"chzr f32 fold {n:>2} channels: {speedup:.2f}x "
              f"(parity={parity})")
        if parity != 1:
            print(f"::error::float32 fold decoded different packets than "
                  f"float64 at {n} channels (parity={parity})")
            failed = True
        if n >= 8 and speedup < 1.0:
            print(f"::error::float32 fold slower than float64 at {n} "
                  f"channels ({speedup:.2f}x)")
            failed = True
        if n >= 16 and speedup < 1.3:
            print(f"::error::float32 fold under 1.3x at {n} channels "
                  f"({speedup:.2f}x)")
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
