#!/usr/bin/env python3
"""CI gate over the BENCH_micro_dsp.json sidecar (arachnet.bench.v1).

Asserts the kernel-tier invariants the DSP layer promises:

  1. parity — BM_PolicyPacketParity.parity == 1 and every
     BM_TierPacketParity/<n>.parity == 1: the scalar, block and simd
     policies (and the simd channelizer bank) decoded identical packet
     sets at 4/8/16/32 channels. A speedup between paths that decode
     different packets is meaningless, so this is checked first.
  2. speed — for each BM_<X>Scalar / BM_<X>Block pair, the block path's
     real_time must not exceed the scalar path's; for each
     BM_<X>Block / BM_<X>Simd pair, the simd path must not exceed the
     block path's. The faster tiers exist only to be faster; a
     regression fails the build. The simd comparison is enforced only
     when an ISA-specialized tier dispatched (kernel.isa != generic) —
     the portable fallback promises correctness, not speed.
  3. provenance — the sidecar must carry kernel.policy and kernel.isa
     info rows so the numbers are attributable to the configuration
     that produced them.

Usage: check_kernel_bench.py path/to/BENCH_micro_dsp.json
"""

import json
import sys

SCALAR_BLOCK_PAIRS = [
    ("BM_DdcScalar.real_time", "BM_DdcBlock.real_time"),
    ("BM_FdmaBankScalar.real_time", "BM_FdmaBankBlock.real_time"),
]

BLOCK_SIMD_PAIRS = [
    ("BM_DdcBlock.real_time", "BM_DdcSimd.real_time"),
    ("BM_FdmaBankBlock.real_time", "BM_FdmaBankSimd.real_time"),
]

PARITY_ROWS = [
    "BM_PolicyPacketParity.parity",
    "BM_TierPacketParity/4.parity",
    "BM_TierPacketParity/8.parity",
    "BM_TierPacketParity/16.parity",
    "BM_TierPacketParity/32.parity",
]

INFO_ROWS = ["kernel.policy", "kernel.isa"]


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    metrics = {}
    with open(sys.argv[1]) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("schema") != "arachnet.bench.v1":
                print(f"unexpected schema in record: {rec}", file=sys.stderr)
                return 2
            metrics[rec["name"]] = rec["value"]

    failed = False

    for row in INFO_ROWS:
        if row not in metrics:
            print(f"::error::sidecar missing {row} info row")
            failed = True
    isa = metrics.get("kernel.isa", "generic")
    print(
        f"kernel.policy={metrics.get('kernel.policy')} kernel.isa={isa} "
        f"kernel.cpu={metrics.get('kernel.cpu')}"
    )

    for row in PARITY_ROWS:
        parity = metrics.get(row)
        if parity != 1:
            bench = row.rsplit(".", 1)[0]
            counts = {
                k.rsplit(".", 1)[1]: v
                for k, v in metrics.items()
                if k.startswith(bench + ".") and k.endswith("_packets")
            }
            print(
                f"::error::kernel tiers decoded different packets "
                f"({row}={parity}, {counts})"
            )
            failed = True
    if failed:
        return 1

    def check_pairs(pairs, slow_label, fast_label):
        nonlocal failed
        for slow, fast in pairs:
            if slow not in metrics or fast not in metrics:
                print(f"::error::missing metric {slow} or {fast}")
                failed = True
                continue
            s, f = metrics[slow], metrics[fast]
            print(f"{slow.split('.')[0]} -> {fast.split('.')[0]}: {s / f:.2f}x")
            if f > s:
                print(
                    f"::error::{fast_label} path slower than {slow_label} "
                    f"({fast}={f:.0f}ns vs {slow}={s:.0f}ns)"
                )
                failed = True

    check_pairs(SCALAR_BLOCK_PAIRS, "scalar", "block")
    if isa == "generic":
        print("notice: kernel.isa=generic — skipping block->simd speed gate")
    else:
        check_pairs(BLOCK_SIMD_PAIRS, "block", "simd")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
