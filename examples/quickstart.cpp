// Quickstart: the smallest end-to-end ARACHNET exchange.
//
// Builds the reference SUV deployment, synthesizes one uplink packet from
// Tag 8 through the acoustic channel, and decodes it with the reader's
// threaded real-time pipeline — waveform in, sensor reading out, plus the
// telemetry the pipeline collected along the way.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/reader/realtime_reader.hpp"
#include "arachnet/telemetry/telemetry.hpp"

using namespace arachnet;

int main() {
  // 1. The plant: an ONVO-L60-like BiW with 12 tags and one reader.
  const auto car = acoustic::Deployment::onvo_l60();
  const int tid = 8;
  std::printf("deployment: %zu structural nodes, %zu tags\n",
              car.graph().node_count(), car.tags().size());
  const auto link = car.reader_link(tid);
  std::printf("reader -> tag %d: %.1f dB over %.2f m of metal (%.0f us)\n",
              tid, link.loss_db, link.distance_m, link.delay_s * 1e6);

  // 2. The tag's message: TID + a 12-bit sensor reading, CRC-protected.
  const phy::UlPacket packet{.tid = tid, .payload = 0x5A5};
  std::printf("tag sends: tid=%u payload=0x%03X (frame %s)\n", packet.tid,
              packet.payload, packet.serialize().to_string().c_str());

  // 3. The channel: the tag modulates its PZT reflection with FM0 chips;
  //    the reader's RX PZT hears carrier leak + reflection + noise.
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  acoustic::BackscatterSource source;
  source.chips = phy::Fm0Encoder::encode_frame(packet.serialize());
  source.chip_rate = phy::kDefaultUlRawBitRate;
  source.start_s = 0.05;
  source.amplitude = car.backscatter_rx_amplitude(tid);
  source.phase_rad = car.backscatter_phase(tid);
  sim::Rng rng{1};
  const auto waveform = synth.synthesize({source}, 0.35, rng);
  std::printf("channel: %zu samples at 500 kS/s\n", waveform.size());

  // 4. The reader: the threaded real-time pipeline (DAQ thread -> ring
  //    buffer -> DSP worker), instrumented with a metrics registry.
  telemetry::MetricsRegistry metrics;
  reader::RealtimeReader::Params rp;
  rp.metrics = &metrics;
  reader::RealtimeReader rt{rp};
  rt.start();
  constexpr std::size_t kBlock = 12500;  // 25 ms DAQ blocks
  for (std::size_t off = 0; off < waveform.size(); off += kBlock) {
    const std::size_t len = std::min(kBlock, waveform.size() - off);
    rt.submit({waveform.begin() + off, waveform.begin() + off + len});
  }
  rt.stop();

  const auto rxp = rt.poll_packet();
  if (!rxp) {
    std::printf("no packet decoded!\n");
    return 1;
  }
  std::printf("reader decoded: tid=%u payload=0x%03X at t=%.3f s\n",
              rxp->packet.tid, rxp->packet.payload, rxp->time_s);
  std::printf("round trip %s\n",
              rxp->packet == packet ? "MATCHES" : "DOES NOT MATCH");

  // 5. What the pipeline saw: dump the metrics snapshot as JSON lines
  //    (the same format the benches write to BENCH_<name>.json).
  std::printf("\ntelemetry snapshot:\n");
  telemetry::JsonlExporter exporter{"arachnet.metrics.v1", "quickstart"};
  exporter.add_snapshot(metrics.snapshot());
  std::ostringstream lines;
  exporter.write(lines);
  std::printf("%s", lines.str().c_str());
  return rxp->packet == packet ? 0 : 1;
}
