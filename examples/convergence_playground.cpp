// Convergence playground: watch the distributed slot allocation run.
//
// Prints a per-slot occupancy strip for a small network — tags migrate,
// collide, back off, and settle without any central assignment. Then a
// late tag arrives and integrates through the EMPTY flag, and finally a
// RESET restarts the contention.
//
// Usage: example_convergence_playground [seed]
#include <cstdio>
#include <cstdlib>

#include "arachnet/core/slot_network.hpp"

using namespace arachnet;
using core::SlotNetwork;

namespace {

void print_slot(const SlotNetwork::SlotRecord& r) {
  std::printf("slot %4lld | ", static_cast<long long>(r.slot));
  if (r.transmitters.empty()) {
    std::printf("%-12s", ".");
  } else {
    char buf[32] = {0};
    int off = 0;
    for (int tid : r.transmitters) {
      off += std::snprintf(buf + off, sizeof(buf) - off, "%c",
                           'A' + tid - 1);
    }
    std::printf("%-12s", buf);
  }
  if (r.collision_truth) std::printf(" collision");
  if (r.decoded_tid) {
    std::printf(" decoded=%c ack=%d", 'A' + *r.decoded_tid - 1,
                r.beacon.ack ? 1 : 0);
  }
  if (r.beacon.empty) std::printf(" [EMPTY]");
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  SlotNetwork::Params params;
  params.seed = seed;
  // Five tags, utilization 0.875 on an 8-slot hyperperiod (Eq. 1 requires
  // U <= 1); tag E arrives late (charging delay) and must squeeze into the
  // remaining capacity via the EMPTY flag.
  SlotNetwork net{params,
                  {{.tid = 1, .period = 4},
                   {.tid = 2, .period = 4},
                   {.tid = 3, .period = 8},
                   {.tid = 4, .period = 8},
                   {.tid = 5, .period = 8, .activation_slot = 40}}};

  std::printf("tags A(p=4) B(p=4) C(p=8) D(p=8) contend; E(p=8) arrives at "
              "slot 40\n\n");
  for (int s = 0; s < 80; ++s) print_slot(net.step());

  std::printf("\n... running quietly until convergence ...\n");
  const auto more = net.run(2000);
  std::int64_t settled_at = -1;
  for (const auto& r : more) {
    if (net.reader().converged()) {
      settled_at = r.slot;
      break;
    }
  }
  std::printf("schedule %s (slot %lld); tag states:\n",
              net.all_settled_collision_free() ? "collision-free" : "unsettled",
              static_cast<long long>(settled_at));
  for (int tid = 1; tid <= 5; ++tid) {
    const auto& m = net.tag_machine(tid);
    std::printf("  %c: %s offset=%d period=%d\n", 'A' + tid - 1,
                m.state() == core::TagState::kSettle ? "SETTLE " : "MIGRATE",
                m.offset(), m.config().period);
  }

  std::printf("\nbroadcasting RESET; re-measuring convergence...\n");
  const auto reconv = net.measure_convergence(20000);
  if (reconv) {
    std::printf("re-converged after %lld slots\n",
                static_cast<long long>(*reconv));
  } else {
    std::printf("did not reconverge within bound\n");
  }
  return 0;
}
