// Convergence playground: watch the distributed slot allocation run.
//
// Prints a per-slot occupancy strip for a small network — tags migrate,
// collide, back off, and settle without any central assignment. Then a
// late tag arrives and integrates through the EMPTY flag, and finally a
// RESET restarts the contention.
//
// Usage: example_convergence_playground [seed] [--jobs N]
//
// After the single-seed walkthrough, a multi-seed sweep of the same
// network runs on the parallel sweep engine (sim::SweepEngine): --jobs
// picks the parallelism, and the reported quartiles are bit-identical for
// any value of it.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "arachnet/core/slot_network.hpp"
#include "arachnet/sim/sweep.hpp"

using namespace arachnet;
using core::SlotNetwork;

namespace {

void print_slot(const SlotNetwork::SlotRecord& r) {
  std::printf("slot %4lld | ", static_cast<long long>(r.slot));
  if (r.transmitters.empty()) {
    std::printf("%-12s", ".");
  } else {
    char buf[32] = {0};
    int off = 0;
    for (int tid : r.transmitters) {
      off += std::snprintf(buf + off, sizeof(buf) - off, "%c",
                           'A' + tid - 1);
    }
    std::printf("%-12s", buf);
  }
  if (r.collision_truth) std::printf(" collision");
  if (r.decoded_tid) {
    std::printf(" decoded=%c ack=%d", 'A' + *r.decoded_tid - 1,
                r.beacon.ack ? 1 : 0);
  }
  if (r.beacon.empty) std::printf(" [EMPTY]");
  std::printf("\n");
}

}  // namespace

/// Strips `--jobs N` / `--jobs=N` from argv; 0 = hardware concurrency
/// (same convention as the benches' shared helper — the examples tree
/// deliberately has no bench/ include path).
std::size_t parse_jobs(int& argc, char** argv) {
  std::size_t jobs = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[i] + 7, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return jobs;
}

int main(int argc, char** argv) {
  const std::size_t jobs = parse_jobs(argc, argv);
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  SlotNetwork::Params params;
  params.seed = seed;
  // Five tags, utilization 0.875 on an 8-slot hyperperiod (Eq. 1 requires
  // U <= 1); tag E arrives late (charging delay) and must squeeze into the
  // remaining capacity via the EMPTY flag.
  SlotNetwork net{params,
                  {{.tid = 1, .period = 4},
                   {.tid = 2, .period = 4},
                   {.tid = 3, .period = 8},
                   {.tid = 4, .period = 8},
                   {.tid = 5, .period = 8, .activation_slot = 40}}};

  std::printf("tags A(p=4) B(p=4) C(p=8) D(p=8) contend; E(p=8) arrives at "
              "slot 40\n\n");
  for (int s = 0; s < 80; ++s) print_slot(net.step());

  std::printf("\n... running quietly until convergence ...\n");
  const auto more = net.run(2000);
  std::int64_t settled_at = -1;
  for (const auto& r : more) {
    if (net.reader().converged()) {
      settled_at = r.slot;
      break;
    }
  }
  std::printf("schedule %s (slot %lld); tag states:\n",
              net.all_settled_collision_free() ? "collision-free" : "unsettled",
              static_cast<long long>(settled_at));
  for (int tid = 1; tid <= 5; ++tid) {
    const auto& m = net.tag_machine(tid);
    std::printf("  %c: %s offset=%d period=%d\n", 'A' + tid - 1,
                m.state() == core::TagState::kSettle ? "SETTLE " : "MIGRATE",
                m.offset(), m.config().period);
  }

  std::printf("\nbroadcasting RESET; re-measuring convergence...\n");
  const auto reconv = net.measure_convergence(20000);
  if (reconv) {
    std::printf("re-converged after %lld slots\n",
                static_cast<long long>(*reconv));
  } else {
    std::printf("did not reconverge within bound\n");
  }

  // ---- Multi-seed sweep on the parallel engine -----------------------
  // Same five-tag network, 16 seeds derived from the demo seed, first
  // convergence time per seed. The engine guarantees the quartiles below
  // do not depend on --jobs (or on scheduling at all).
  const int sweep_seeds = 16;
  sim::SweepEngine engine{{.jobs = jobs}};
  std::printf("\n=== multi-seed sweep: %d seeds, %zu jobs ===\n", sweep_seeds,
              engine.jobs());
  const auto times = engine.run_grid<double>(
      1, sweep_seeds,
      [&](const sim::TrialSpec& t, sim::Rng&, sim::TrialScratch&) {
        SlotNetwork::Params p;
        p.seed = seed + 1000 * (t.seed + 1);
        SlotNetwork net2{p,
                         {{.tid = 1, .period = 4},
                          {.tid = 2, .period = 4},
                          {.tid = 3, .period = 8},
                          {.tid = 4, .period = 8},
                          {.tid = 5, .period = 8, .activation_slot = 40}}};
        net2.run(3);
        const auto conv = net2.measure_convergence(20000);
        return conv ? static_cast<double>(*conv)
                    : std::numeric_limits<double>::quiet_NaN();
      });
  std::printf("slots to convergence: p25=%.0f median=%.0f p75=%.0f max=%.0f"
              " (censored: %zu)\n",
              sim::reduce_percentile(times, 0.25), sim::reduce_median(times),
              sim::reduce_percentile(times, 0.75), sim::reduce_max(times),
              sim::count_censored(times));
  return 0;
}
