// Strain case study (paper Sec. 6.5) as a complete application: three
// strain-gauge tags on a bending metal sheet report through the full
// waveform path — sensor -> ADC -> UL packet -> FM0 backscatter ->
// acoustic channel -> reader chain -> decoded displacement estimate.
#include <cstdio>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/sensing/strain.hpp"

using namespace arachnet;

namespace {

struct StrainTag {
  int tid;
  sensing::StrainSensorModule module;
  double amplitude;  // backscatter link strength
  double phase;
};

}  // namespace

int main() {
  sim::Rng rng{7};

  // Three gauges at different positions along the sheet (Fig. 17a).
  sensing::StrainSensorModule::Params pa, pb, pc;
  pa.beam.gauge_position_m = 0.04;
  pb.beam.gauge_position_m = 0.08;
  pc.beam.gauge_position_m = 0.12;
  std::vector<StrainTag> tags{
      {1, sensing::StrainSensorModule{pa}, 0.15, 0.4},
      {2, sensing::StrainSensorModule{pb}, 0.10, 1.3},
      {3, sensing::StrainSensorModule{pc}, 0.08, 2.1},
  };

  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  reader::RxChain rx{reader::RxChain::Params{}};
  const sensing::Adc adc;  // for converting received codes back to volts
  rx.process(synth.synthesize({}, 0.05, rng));  // settle the chain

  std::printf("displacement |   received voltages (V)\n");
  std::printf("   (mm)      |   tag A     tag B     tag C\n");
  std::printf("-------------+--------------------------------\n");

  int exchanges = 0, decoded = 0;
  for (int mm = -100; mm <= 100; mm += 25) {
    const double d = mm * 1e-3;
    double volts[3] = {-1, -1, -1};
    // One slot per tag: sample, packetize, backscatter, decode.
    for (std::size_t i = 0; i < tags.size(); ++i) {
      const auto code = tags[i].module.sample(d, rng);
      const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(tags[i].tid),
                              .payload = code};
      acoustic::BackscatterSource src;
      src.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
      src.chip_rate = phy::kDefaultUlRawBitRate;
      src.start_s = 0.02;
      src.amplitude = tags[i].amplitude;
      src.phase_rad = tags[i].phase;
      rx.clear_packets();
      rx.process(synth.synthesize({src}, 0.28, rng));
      ++exchanges;
      for (const auto& p : rx.packets()) {
        if (p.packet.tid == tags[i].tid) {
          volts[i] = adc.to_voltage(p.packet.payload);
          ++decoded;
          break;
        }
      }
    }
    std::printf("   %+5d     |  %7.3f   %7.3f   %7.3f\n", mm, volts[0],
                volts[1], volts[2]);
  }

  std::printf("\n%d/%d sensor packets delivered over the acoustic link\n",
              decoded, exchanges);
  std::printf("voltage rises monotonically with displacement on every tag —\n"
              "the Fig. 17(b) correlation, recovered through the complete\n"
              "backscatter path.\n");
  return decoded == exchanges ? 0 : 1;
}
