// BiW monitoring: the paper's headline scenario end to end.
//
// Twelve battery-free tags on the SUV body-in-white charge from the
// reader's 90 kHz vibrations, activate at different times (4-58 s), join
// the network as late arrivals, and settle into a collision-free schedule
// with mixed reporting periods: battery-pack guards report every 4 slots,
// structural-aging tags every 32. The event-driven co-simulation runs the
// real firmware (interrupt-driven, duty-cycled, cutoff-gated), with the
// slot protocol evaluated at the reader.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/core/protocol.hpp"
#include "arachnet/core/reader_controller.hpp"
#include "arachnet/core/tag_firmware.hpp"
#include "arachnet/sim/event_queue.hpp"

using namespace arachnet;

int main() {
  const auto car = acoustic::Deployment::onvo_l60();
  sim::EventQueue queue;
  sim::Rng rng{2024};

  // Monitoring plan (total utilization must respect Eq. 1: here 0.72):
  // tags over the battery pack (second row) report every 8 slots; cargo
  // and front structural tags every 16-32 slots.
  const std::map<int, int> period_of{{1, 32}, {2, 32}, {3, 32}, {4, 8},
                                     {5, 16}, {6, 8},  {7, 16}, {8, 8},
                                     {9, 32}, {10, 32}, {11, 32}, {12, 32}};

  std::vector<std::unique_ptr<core::TagFirmware>> tags;
  core::ReaderController::Config rc;
  core::ReaderController reader{rc};

  struct SlotState {
    std::vector<int> transmitters;
  } slot;

  for (const auto& site : car.tags()) {
    core::TagFirmware::Params p;
    p.tid = site.tid;
    p.protocol.period = period_of.at(site.tid);
    core::TagFirmware* fw =
        tags.emplace_back(std::make_unique<core::TagFirmware>(
                              &queue, p, 1000 + site.tid))
            .get();
    fw->set_link(car.tag_pzt_peak_voltage(site.tid));
    fw->set_sensor([tid = site.tid] {
      return static_cast<std::uint16_t>(0x100 + tid);
    });
    fw->on_transmit([&slot, tid = site.tid](const phy::UlPacket&, double) {
      slot.transmitters.push_back(tid);
    });
    fw->start();
    reader.register_tag(site.tid, p.protocol.period);
  }

  // Reader loop: one beacon per 1 s slot; reception is abstracted from the
  // transmitter count (single transmitter decodes, overlap = collision).
  phy::DlBeacon beacon{{.ack = false, .empty = true, .reset = false}};
  std::int64_t total_slots = 0, busy = 0, collisions = 0;
  std::map<int, int> delivered;

  std::printf("t(s)  event\n");
  const int kSlots = 900;
  for (int s = 0; s < kSlots; ++s) {
    slot.transmitters.clear();
    for (auto& fw : tags) fw->deliver_beacon(beacon);
    queue.run_until(queue.now() + core::kDefaultSlotSeconds);

    core::SlotObservation obs;
    obs.collision_detected = slot.transmitters.size() >= 2;
    if (slot.transmitters.size() == 1) {
      obs.decoded_tid = slot.transmitters.front();
      ++delivered[*obs.decoded_tid];
    }
    beacon.cmd = reader.close_slot(obs);

    ++total_slots;
    busy += !slot.transmitters.empty();
    collisions += slot.transmitters.size() >= 2;

    if (s < 50 && !slot.transmitters.empty()) {
      std::printf("%4.0f  slot %3d: tags [", queue.now(), s);
      for (std::size_t i = 0; i < slot.transmitters.size(); ++i) {
        std::printf("%s%d", i ? " " : "", slot.transmitters[i]);
      }
      std::printf("]%s\n", slot.transmitters.size() > 1 ? "  COLLISION" : "");
    }
  }

  std::printf("\n--- after %lld slots ---\n",
              static_cast<long long>(total_slots));
  std::printf("%-5s %-8s %-9s %-10s %-9s %-8s\n", "tag",
              "period", "state", "delivered", "beacons", "avg uW");
  for (std::size_t i = 0; i < tags.size(); ++i) {
    auto& fw = *tags[i];
    const int tid = fw.params().tid;
    std::printf("%-5d %-8d %-9s %-10d %-9lld %-8.1f\n", tid,
                fw.params().protocol.period,
                fw.protocol().state() == core::TagState::kSettle ? "SETTLE"
                                                                 : "MIGRATE",
                delivered[tid], static_cast<long long>(fw.beacons_decoded()),
                fw.mcu().meter().average_power() * 1e6);
  }
  std::printf("\nchannel: busy %.1f%%, collisions %.1f%% of slots\n",
              100.0 * busy / total_slots, 100.0 * collisions / total_slots);
  std::printf("windowed non-empty %.3f, collision %.3f (reader view)\n",
              reader.non_empty_ratio(), reader.collision_ratio());

  int settled = 0;
  for (auto& fw : tags) {
    settled += fw->protocol().state() == core::TagState::kSettle;
  }
  std::printf("%d/12 tags settled, collision-free schedule %s\n", settled,
              reader.collision_ratio() == 0.0 ? "steady" : "still converging");
  return 0;
}
