// arachnet_top: live terminal view of a running reader fleet.
//
// Spins up a ReaderService fleet streaming real packet waveforms (the
// soak bench's workload), attaches a telemetry::HealthMonitor to the
// service's registry, and redraws a top(1)-style screen every sampling
// period: per-session block/packet rates, stage-latency attribution
// (dispatch wait / chain process / packet emit p50+p99), queue depths,
// and any raised health.* flags.
//
// Usage: example_arachnet_top [--sessions=4] [--seconds=10]
//                             [--period=0.5] [--stall] [--fleet=N]
//                             [--jsonl=PATH] [--prom=PATH]
//
//   --stall   also opens a session on a deliberately never-started
//             second service, so the stall watchdog visibly raises
//             health.victim.stalled after two periods.
//   --fleet   fleet view instead of the session view: N RealtimeReader
//             instances share one registry under per-instance scopes
//             (r0., r1., ...) and the screen shows one row per reader —
//             block/packet rates and queue depths straight from the
//             scoped metrics.
//   --jsonl   stream every monitor sample to PATH (arachnet.monitor.v1).
//   --prom    dump a Prometheus text exposition of the registry to PATH
//             on exit (scrape-file integration; see README).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/dsp/kernels/cpu_dispatch.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/reader/realtime_reader.hpp"
#include "arachnet/reader/service/reader_service.hpp"
#include "arachnet/reader/service/service_health.hpp"
#include "arachnet/telemetry/telemetry.hpp"

using namespace arachnet;
using reader::service::ReaderService;
using reader::service::SessionConfig;
using reader::service::SessionId;

namespace {

constexpr double kSampleRate = 500000.0;
constexpr std::size_t kBlockSamples = 10000;
constexpr double kBlockPeriodS =
    static_cast<double>(kBlockSamples) / kSampleRate;  // 20 ms

std::vector<double> render_template() {
  sim::Rng rng{21};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  const phy::UlPacket pkt{.tid = 3, .payload = 0x5AA5};
  acoustic::BackscatterSource s;
  s.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
  s.chip_rate = 375.0;
  s.start_s = 0.02;
  s.amplitude = 0.2;
  s.phase_rad = 1.0;
  return synth.synthesize({s}, 0.28, rng);
}

double hist_stat(const telemetry::HistogramDelta* h, bool p99) {
  if (h == nullptr) return 0.0;
  return p99 ? h->interval_p99 : h->interval_p50;
}

double counter_rate(const telemetry::SnapshotDelta& d, const std::string& n) {
  const auto* c = d.counter(n);
  return c != nullptr ? c->rate_per_s : 0.0;
}

/// --fleet=N: one RealtimeReader per reader, all instrumenting the same
/// registry under per-instance scopes. The per-reader rows below read the
/// scoped names back — the display is the consumer the scoping exists for.
int run_fleet_view(std::size_t readers, double seconds, double period_s,
                   const std::string& jsonl_path) {
  telemetry::MetricsRegistry registry;
  std::vector<std::unique_ptr<reader::RealtimeReader>> fleet;
  std::vector<std::string> scopes;
  for (std::size_t i = 0; i < readers; ++i) {
    scopes.push_back("r" + std::to_string(i) + ".");
    reader::RealtimeReader::Params rp;
    rp.metrics = &registry;
    rp.metrics_scope = scopes.back();
    rp.drop_on_full_output = true;  // the display drains lazily
    fleet.push_back(std::make_unique<reader::RealtimeReader>(rp));
    fleet.back()->start();
  }

  telemetry::HealthMonitor::Params mp;
  mp.registry = &registry;
  mp.period_s = period_s;
  mp.source = "arachnet_top_fleet";
  mp.jsonl_path = jsonl_path;
  telemetry::HealthMonitor monitor{mp};
  monitor.start();

  // Paced producers, one per reader, staggered like a line of stations.
  std::atomic<bool> stop_producers{false};
  const auto wave = render_template();
  std::vector<std::thread> producers;
  producers.reserve(readers);
  for (std::size_t i = 0; i < readers; ++i) {
    producers.emplace_back([&, i] {
      std::size_t off = (i * 17) % (wave.size() / kBlockSamples);
      auto next = std::chrono::steady_clock::now();
      while (!stop_producers.load(std::memory_order_relaxed)) {
        next += std::chrono::microseconds(
            static_cast<long>(kBlockPeriodS * 1e6));
        std::this_thread::sleep_until(next);
        const auto* src = wave.data() + off * kBlockSamples;
        fleet[i]->submit({src, src + kBlockSamples});
        off = (off + 1) % (wave.size() / kBlockSamples);
        while (fleet[i]->poll_packet().has_value()) {
        }
      }
    });
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  std::printf("\x1b[2J");
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::duration<double>(period_s));
    const auto latest = monitor.latest();
    if (!latest.has_value()) continue;
    const auto& d = latest->delta;

    std::printf("\x1b[H\x1b[1marachnet_top --fleet\x1b[0m  sample #%llu  "
                "dt %.2fs  %zu readers  kernels %s/%s\x1b[K\n\n",
                static_cast<unsigned long long>(latest->index), latest->dt_s,
                readers, dsp::to_string(dsp::default_kernel_policy()),
                dsp::to_string(dsp::active_simd_isa()));

    std::printf("\x1b[4mreader   blocks/s   packets/s   in-q   out-q   "
                "block p99 ms\x1b[0m\x1b[K\n");
    double total_blocks = 0.0, total_packets = 0.0;
    for (std::size_t i = 0; i < readers; ++i) {
      const auto& sc = scopes[i];
      const double blocks = counter_rate(d, sc + "reader.blocks");
      const double packets = counter_rate(d, sc + "reader.packets_emitted");
      total_blocks += blocks;
      total_packets += packets;
      std::printf("  r%-5zu %9.1f %11.2f %6.0f %7.0f %14.3f\x1b[K\n", i,
                  blocks, packets,
                  registry.gauge(sc + "reader.input_depth").value(),
                  registry.gauge(sc + "reader.output_depth").value(),
                  hist_stat(d.histogram(sc + "reader.block_ms"), true));
    }
    std::printf("  \x1b[1mtotal  %9.1f %11.2f\x1b[0m\x1b[K\n", total_blocks,
                total_packets);

    std::printf("\nhealth:\x1b[K\n");
    if (latest->raised.empty()) {
      std::printf("  \x1b[32mall clear\x1b[0m\x1b[K\n");
    } else {
      for (const auto& flag : latest->raised) {
        std::printf("  \x1b[31m%s\x1b[0m\x1b[K\n", flag.c_str());
      }
    }
    std::printf("\x1b[J");
    std::fflush(stdout);
  }

  stop_producers.store(true);
  for (auto& p : producers) p.join();
  monitor.stop();
  for (auto& r : fleet) r->stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 4;
  std::size_t fleet_readers = 0;
  double seconds = 10.0;
  double period_s = 0.5;
  bool demo_stall = false;
  std::string jsonl_path;
  std::string prom_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sessions=", 0) == 0) {
      sessions = static_cast<std::size_t>(std::stoul(arg.substr(11)));
    } else if (arg.rfind("--fleet=", 0) == 0) {
      fleet_readers = static_cast<std::size_t>(std::stoul(arg.substr(8)));
    } else if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::stod(arg.substr(10));
    } else if (arg.rfind("--period=", 0) == 0) {
      period_s = std::stod(arg.substr(9));
    } else if (arg == "--stall") {
      demo_stall = true;
    } else if (arg.rfind("--jsonl=", 0) == 0) {
      jsonl_path = arg.substr(8);
    } else if (arg.rfind("--prom=", 0) == 0) {
      prom_path = arg.substr(7);
    }
  }

  if (fleet_readers > 0) {
    return run_fleet_view(fleet_readers, seconds, period_s, jsonl_path);
  }

  telemetry::MetricsRegistry registry;
  ReaderService::Params params;
  params.metrics = &registry;
  params.sessions_per_core = 8.0;
  ReaderService svc{params};
  svc.start();

  std::vector<SessionId> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionConfig cfg;
    cfg.priority = 1;
    cfg.ttl_s = 0.25;
    const auto id = svc.open_session(cfg);
    if (!id.has_value()) {
      std::fprintf(stderr, "session %zu rejected at admission\n", i);
      return 1;
    }
    ids.push_back(*id);
  }

  // The monitor samples the same registry the service instruments; its
  // health flags land there too, so the screen and any scrape agree.
  telemetry::HealthMonitor::Params mp;
  mp.registry = &registry;
  mp.period_s = period_s;
  mp.source = "arachnet_top";
  mp.jsonl_path = jsonl_path;
  telemetry::HealthMonitor monitor{mp};
  for (const auto id : ids) {
    reader::service::watch_session(monitor, svc, id);
  }
  reader::service::watch_service(monitor, svc);

  // Optional stall demo: a session on a service whose dispatcher never
  // started accepts submits (up to its in-flight cap) but processes
  // nothing — exactly the signature the stall watchdog looks for.
  ReaderService::Params frozen_params;
  frozen_params.workers = 1;
  ReaderService frozen{frozen_params};
  SessionId victim_id = 0;
  if (demo_stall) {
    const auto vid = frozen.open_session(SessionConfig{});
    victim_id = vid.value_or(0);
    if (vid.has_value()) {
      telemetry::HealthMonitor::ProgressProbe probe;
      probe.name = "victim";
      // Processed-only progress: the frozen dispatcher drops over-cap
      // submits, and those drops must not read as forward progress here.
      probe.progress = [&frozen, id = *vid] {
        const auto st = frozen.session_stats(id);
        return st ? st->blocks_processed : 0;
      };
      probe.demand = [&frozen, id = *vid] {
        const auto st = frozen.session_stats(id);
        return st ? st->blocks_submitted : 0;
      };
      monitor.add_probe(std::move(probe));
    }
  }

  monitor.start();

  // Paced producers, one per session (the soak workload).
  std::atomic<bool> stop_producers{false};
  const auto wave = render_template();
  std::vector<std::thread> producers;
  producers.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    producers.emplace_back([&, i] {
      std::size_t off = (i * 17) % (wave.size() / kBlockSamples);
      auto next = std::chrono::steady_clock::now();
      while (!stop_producers.load(std::memory_order_relaxed)) {
        next += std::chrono::microseconds(
            static_cast<long>(kBlockPeriodS * 1e6));
        std::this_thread::sleep_until(next);
        auto blk = svc.acquire_block(ids[i]);
        const auto* src = wave.data() + off * kBlockSamples;
        blk.assign(src, src + kBlockSamples);
        off = (off + 1) % (wave.size() / kBlockSamples);
        svc.submit(ids[i], std::move(blk));
        while (svc.poll_packet(ids[i]).has_value()) {
        }
      }
    });
  }

  // Render loop: one frame per sampling period.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(seconds);
  std::printf("\x1b[2J");  // clear once; frames repaint from home
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::duration<double>(period_s));
    if (demo_stall && victim_id != 0) {
      // Keep demand (blocks_submitted) advancing every frame so the
      // watchdog reads this as a fed-but-frozen session, not an idle one.
      frozen.submit(victim_id, std::vector<double>(16, 0.0));
    }
    const auto latest = monitor.latest();
    if (!latest.has_value()) continue;
    const auto& d = latest->delta;

    std::printf("\x1b[H\x1b[1marachnet_top\x1b[0m  sample #%llu  dt %.2fs  "
                "period %.2fs  kernels %s/%s\x1b[K\n",
                static_cast<unsigned long long>(latest->index), latest->dt_s,
                monitor.period_s(),
                dsp::to_string(dsp::default_kernel_policy()),
                dsp::to_string(dsp::active_simd_isa()));
    const auto st = svc.stats();
    const auto* blocks = d.counter("service.blocks");
    const auto* pk_em = d.counter("reader.packets_emitted");
    const auto* drops = d.counter("session.blocks_dropped");
    std::printf("fleet: %zu/%zu sessions  queue %zu/%zu  "
                "blocks/s %.1f  packets/s %.1f  drops/s %.1f\x1b[K\n\n",
                st.active_sessions, st.max_sessions, st.dispatch_depth,
                st.dispatch_capacity,
                blocks != nullptr ? blocks->rate_per_s : 0.0,
                pk_em != nullptr ? pk_em->rate_per_s : 0.0,
                drops != nullptr ? drops->rate_per_s : 0.0);

    std::printf("\x1b[4mstage latency (interval)   p50 ms     p99 ms\x1b[0m"
                "\x1b[K\n");
    const struct {
      const char* label;
      const char* hist;
    } stages[] = {
        {"dispatch wait", "service.stage.dispatch_wait_ms"},
        {"chain process", "service.stage.process_ms"},
        {"packet emit", "service.stage.emit_ms"},
        {"end-to-end", "service.block_ms"},
    };
    for (const auto& stg : stages) {
      const auto* h = d.histogram(stg.hist);
      std::printf("  %-22s %8.3f   %8.3f\x1b[K\n", stg.label,
                  hist_stat(h, false), hist_stat(h, true));
    }

    std::printf("\n\x1b[4msession   blocks   packets   dropped   "
                "state\x1b[0m\x1b[K\n");
    for (const auto id : ids) {
      const auto ss = svc.session_stats(id);
      if (!ss.has_value()) continue;
      std::printf("  %-7llu %8llu %9llu %9llu   %s\x1b[K\n",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(ss->blocks_processed),
                  static_cast<unsigned long long>(ss->packets_emitted),
                  static_cast<unsigned long long>(ss->blocks_dropped),
                  ss->closed ? "closed" : "live");
    }

    std::printf("\nhealth:\x1b[K\n");
    if (latest->raised.empty()) {
      std::printf("  \x1b[32mall clear\x1b[0m\x1b[K\n");
    } else {
      for (const auto& flag : latest->raised) {
        std::printf("  \x1b[31m%s\x1b[0m\x1b[K\n", flag.c_str());
      }
    }
    std::printf("\x1b[J");
    std::fflush(stdout);
  }

  stop_producers.store(true);
  for (auto& p : producers) p.join();
  monitor.stop();
  for (const auto id : ids) svc.close_session(id);
  svc.stop();

  if (!prom_path.empty()) {
    std::ofstream prom{prom_path};
    if (prom) {
      telemetry::write_prometheus_text(registry.snapshot(), prom);
      std::printf("prometheus exposition: %s\n", prom_path.c_str());
    } else {
      std::fprintf(stderr, "failed to open %s\n", prom_path.c_str());
    }
  }
  if (!jsonl_path.empty()) {
    std::printf("monitor time-series: %s (%llu samples)\n", jsonl_path.c_str(),
                static_cast<unsigned long long>(monitor.samples_taken()));
  }
  return 0;
}
