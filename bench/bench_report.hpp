#pragma once

// Shared bench reporting. Two halves:
//  - Report: machine-readable sidecar. Every bench creates one and feeds
//    it the numbers it prints; on destruction the report is written as
//    BENCH_<name>.json — JSON lines in the arachnet.bench.v1 schema (see
//    src/arachnet/telemetry/export.hpp), one self-describing record per
//    line. Destination directory is the working directory, overridable
//    with the ARACHNET_BENCH_DIR environment variable.
//  - Terminal helpers shared by the benches (histogram bars, percentile
//    rows) so the printing and the exported numbers come from one place.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "arachnet/dsp/kernels/cpu_dispatch.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/sim/stats.hpp"
#include "arachnet/telemetry/export.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::bench {

class Report {
 public:
  explicit Report(std::string name)
      : name_(std::move(name)),
        exporter_(std::string{telemetry::JsonlExporter::kBenchSchema},
                  name_) {
    // Every sidecar states which kernel tier and ISA produced its numbers
    // so perf rows from different machines/configs stay attributable.
    exporter_.add_info("kernel.policy",
                       dsp::to_string(dsp::default_kernel_policy()));
    exporter_.add_info("kernel.isa", dsp::to_string(dsp::active_simd_isa()));
    exporter_.add_info("kernel.cpu", dsp::cpu_feature_string());
  }

  ~Report() { write(); }

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  const std::string& name() const noexcept { return name_; }

  void metric(std::string_view n, double v, std::string_view unit = "") {
    exporter_.add_metric(n, v, unit);
  }

  void counter(std::string_view n, std::uint64_t v,
               std::string_view unit = "") {
    exporter_.add_counter(n, v, unit);
  }

  void gauge(std::string_view n, double v, std::string_view unit = "") {
    exporter_.add_gauge(n, v, unit);
  }

  void percentiles(std::string_view n, const sim::Percentiles& p,
                   std::initializer_list<double> qs,
                   std::string_view unit = "", double scale = 1.0) {
    std::vector<std::pair<double, double>> points;
    points.reserve(qs.size());
    for (double q : qs) points.emplace_back(q, p.at(q) * scale);
    exporter_.add_percentiles(n, points, unit);
  }

  void histogram(std::string_view n, const sim::Histogram& h,
                 std::string_view unit = "") {
    std::vector<std::uint64_t> counts(h.bins());
    for (std::size_t i = 0; i < h.bins(); ++i) counts[i] = h.bin_count(i);
    const double lo = h.bins() ? h.bin_lo(0) : 0.0;
    const double hi = h.bins() ? h.bin_hi(h.bins() - 1) : 0.0;
    exporter_.add_histogram(n, lo, hi, counts, h.underflow(), h.overflow(),
                            unit);
  }

  /// Dumps every metric of a registry snapshot into the report.
  void snapshot(const telemetry::MetricsSnapshot& s) {
    exporter_.add_snapshot(s);
  }

  /// BENCH_<name>.json in ARACHNET_BENCH_DIR (or the working directory).
  std::string path() const {
    std::string p;
    if (const char* dir = std::getenv("ARACHNET_BENCH_DIR");
        dir != nullptr && dir[0] != '\0') {
      p = dir;
      if (p.back() != '/') p += '/';
    }
    p += "BENCH_" + name_ + ".json";
    return p;
  }

  /// Writes the sidecar (idempotent; also called by the destructor).
  bool write() {
    if (written_) return true;
    written_ = true;
    const std::string p = path();
    if (!exporter_.write_file(p)) {
      std::fprintf(stderr, "bench report: cannot write %s\n", p.c_str());
      return false;
    }
    return true;
  }

 private:
  std::string name_;
  telemetry::JsonlExporter exporter_;
  bool written_ = false;
};

/// Terminal histogram with proportional star bars (shared by the benches;
/// formerly private to bench_ext_throughput).
inline void print_histogram(const sim::Histogram& h, const char* title,
                            const char* unit = "ms") {
  std::printf("%s (n=%zu, underflow=%zu, overflow=%zu)\n", title, h.total(),
              h.underflow(), h.overflow());
  for (std::size_t i = 0; i < h.bins(); ++i) {
    std::printf("  [%5.1f, %5.1f) %s %6zu ", h.bin_lo(i), h.bin_hi(i), unit,
                h.bin_count(i));
    const std::size_t stars =
        h.in_range()
            ? 40 * h.bin_count(i) / std::max<std::size_t>(1, h.in_range())
            : 0;
    for (std::size_t s = 0; s < stars; ++s) std::printf("*");
    std::printf("\n");
  }
}

/// One `name  p50 p90 p99 max` terminal row (the Fig. 14-style layout),
/// values scaled by `scale` (e.g. 1e3 for seconds -> ms).
inline void print_percentile_row(const char* name, const sim::Percentiles& p,
                                 double scale = 1.0) {
  std::printf("%-22s %8.1f %8.1f %8.1f %8.1f\n", name, p.at(0.5) * scale,
              p.at(0.9) * scale, p.at(0.99) * scale, p.at(1.0) * scale);
}

}  // namespace arachnet::bench
