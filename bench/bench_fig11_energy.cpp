// Reproduces Fig. 11: (a) amplified voltage per tag at stage numbers
// 2/4/6/8 (amplification ratios 4x/8x/12x/16x), and (b) charging time
// (0 V -> HTH) as a function of the 16x amplified voltage, with the
// implied net charging power.
#include <cstdio>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/energy/harvester.hpp"

#include "bench_report.hpp"

using namespace arachnet;

int main() {
  arachnet::bench::Report report{"fig11_energy"};
  const auto deployment = acoustic::Deployment::onvo_l60();

  std::printf("=== Fig. 11(a): Amplified Voltage vs Stage Number ===\n\n");
  std::printf("%-5s %10s %10s %10s %10s\n", "Tag", "2 (4x)", "4 (8x)",
              "6 (12x)", "8 (16x)");
  for (const auto& site : deployment.tags()) {
    std::printf("%-5d", site.tid);
    for (int stages : {2, 4, 6, 8}) {
      energy::Harvester::Params hp;
      hp.multiplier.stages = stages;
      energy::Harvester h{hp};
      h.set_pzt_peak_voltage(deployment.tag_pzt_peak_voltage(site.tid));
      std::printf(" %9.2fV", h.amplified_voltage());
    }
    std::printf("\n");
  }
  std::printf("\npaper anchors: Tag 4 = 4.74 V and Tag 11 = 2.70 V at 16x;\n"
              "all 12 tags exceed the 2.3 V activation threshold at 8 stages.\n\n");

  std::printf("=== Fig. 11(b): Charging Time vs 16x Amplified Voltage ===\n\n");
  std::printf("%-5s %12s %14s %18s %14s\n", "Tag", "16x V (V)",
              "charge 0->HTH", "net power (uW)", "resume LTH->HTH");
  double t_min = 1e18, t_max = 0.0;
  for (const auto& site : deployment.tags()) {
    energy::Harvester h{energy::Harvester::Params{}};
    h.set_pzt_peak_voltage(deployment.tag_pzt_peak_voltage(site.tid));
    const double hth = h.cutoff().high_threshold();
    const double lth = h.cutoff().low_threshold();
    const double t_cold = h.charge_time(0.0, hth);
    const double t_resume = h.charge_time(lth, hth);
    t_min = std::min(t_min, t_cold);
    t_max = std::max(t_max, t_cold);
    std::printf("%-5d %12.2f %13.1fs %18.1f %13.1fs\n", site.tid,
                h.amplified_voltage(), t_cold,
                h.net_charging_power(hth) * 1e6, t_resume);
    char name[48];
    std::snprintf(name, sizeof(name), "tag%d.amp16_v", site.tid);
    report.metric(name, h.amplified_voltage(), "V");
    std::snprintf(name, sizeof(name), "tag%d.charge_cold_s", site.tid);
    report.metric(name, t_cold, "s");
    std::snprintf(name, sizeof(name), "tag%d.charge_resume_s", site.tid);
    report.metric(name, t_resume, "s");
    std::snprintf(name, sizeof(name), "tag%d.net_power_uw", site.tid);
    report.metric(name, h.net_charging_power(hth) * 1e6, "uW");
  }
  report.metric("charge_cold_min_s", t_min, "s");
  report.metric("charge_cold_max_s", t_max, "s");
  std::printf("\nrange: %.1f s - %.1f s (paper: 4.5 s - 56.2 s)\n", t_min,
              t_max);
  std::printf("paper: net charging power 587.8 uW (fastest) to 47.1 uW\n"
              "(slowest); thanks to the low-voltage cutoff, tags resume from\n"
              "LTH and re-activate within ~10 s rather than recharging from 0.\n");
  return 0;
}
