// Reproduces Fig. 11: (a) amplified voltage per tag at stage numbers
// 2/4/6/8 (amplification ratios 4x/8x/12x/16x), and (b) charging time
// (0 V -> HTH) as a function of the 16x amplified voltage, with the
// implied net charging power.
//
// Usage: bench_fig11_energy [--jobs N]. The per-tag harvester models are
// independent, so the 12 tags run as one sweep-engine grid; printed
// numbers are bit-identical for any --jobs value.
#include <algorithm>
#include <cstdio>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/sim/sweep.hpp"

#include "bench_report.hpp"
#include "sweep_support.hpp"

using namespace arachnet;

namespace {

/// One tag's worth of Fig. 11 numbers (computed in a sweep trial).
struct TagRow {
  int tid = 0;
  double stage_v[4] = {};  ///< amplified voltage at 2/4/6/8 stages
  double amp16_v = 0.0;
  double t_cold = 0.0;
  double t_resume = 0.0;
  double net_uw = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = arachnet::bench::parse_jobs(argc, argv);
  arachnet::bench::Report report{"fig11_energy"};
  telemetry::MetricsRegistry metrics;
  sim::SweepEngine engine{{.jobs = jobs, .metrics = &metrics}};
  const auto deployment = acoustic::Deployment::onvo_l60();
  const auto& sites = deployment.tags();

  // One trial per tag (the deployment is shared read-only across workers).
  const auto rows = engine.run_grid<TagRow>(
      sites.size(), 1,
      [&](const sim::TrialSpec& t, sim::Rng&, sim::TrialScratch&) {
        const auto& site = sites[t.config];
        TagRow row;
        row.tid = site.tid;
        const double pzt = deployment.tag_pzt_peak_voltage(site.tid);
        int s = 0;
        for (int stages : {2, 4, 6, 8}) {
          energy::Harvester::Params hp;
          hp.multiplier.stages = stages;
          energy::Harvester h{hp};
          h.set_pzt_peak_voltage(pzt);
          row.stage_v[s++] = h.amplified_voltage();
        }
        energy::Harvester h{energy::Harvester::Params{}};
        h.set_pzt_peak_voltage(pzt);
        const double hth = h.cutoff().high_threshold();
        const double lth = h.cutoff().low_threshold();
        row.amp16_v = h.amplified_voltage();
        row.t_cold = h.charge_time(0.0, hth);
        row.t_resume = h.charge_time(lth, hth);
        row.net_uw = h.net_charging_power(hth) * 1e6;
        return row;
      });

  std::printf("=== Fig. 11(a): Amplified Voltage vs Stage Number ===\n\n");
  std::printf("%-5s %10s %10s %10s %10s\n", "Tag", "2 (4x)", "4 (8x)",
              "6 (12x)", "8 (16x)");
  for (const auto& row : rows) {
    std::printf("%-5d", row.tid);
    for (double v : row.stage_v) std::printf(" %9.2fV", v);
    std::printf("\n");
  }
  std::printf("\npaper anchors: Tag 4 = 4.74 V and Tag 11 = 2.70 V at 16x;\n"
              "all 12 tags exceed the 2.3 V activation threshold at 8 stages.\n\n");

  std::printf("=== Fig. 11(b): Charging Time vs 16x Amplified Voltage ===\n\n");
  std::printf("%-5s %12s %14s %18s %14s\n", "Tag", "16x V (V)",
              "charge 0->HTH", "net power (uW)", "resume LTH->HTH");
  double t_min = 1e18, t_max = 0.0;
  for (const auto& row : rows) {
    t_min = std::min(t_min, row.t_cold);
    t_max = std::max(t_max, row.t_cold);
    std::printf("%-5d %12.2f %13.1fs %18.1f %13.1fs\n", row.tid, row.amp16_v,
                row.t_cold, row.net_uw, row.t_resume);
    char name[48];
    std::snprintf(name, sizeof(name), "tag%d.amp16_v", row.tid);
    report.metric(name, row.amp16_v, "V");
    std::snprintf(name, sizeof(name), "tag%d.charge_cold_s", row.tid);
    report.metric(name, row.t_cold, "s");
    std::snprintf(name, sizeof(name), "tag%d.charge_resume_s", row.tid);
    report.metric(name, row.t_resume, "s");
    std::snprintf(name, sizeof(name), "tag%d.net_power_uw", row.tid);
    report.metric(name, row.net_uw, "uW");
  }
  report.metric("charge_cold_min_s", t_min, "s");
  report.metric("charge_cold_max_s", t_max, "s");
  std::printf("\nrange: %.1f s - %.1f s (paper: 4.5 s - 56.2 s)\n", t_min,
              t_max);
  std::printf("paper: net charging power 587.8 uW (fastest) to 47.1 uW\n"
              "(slowest); thanks to the low-voltage cutoff, tags resume from\n"
              "LTH and re-activate within ~10 s rather than recharging from 0.\n");
  arachnet::bench::report_sweep(report, engine);
  report.snapshot(metrics.snapshot());
  return 0;
}
