// Reproduces Fig. 16: long-running slot statistics for pattern c3
// (U = 0.84375) over 10,000 slots — the windowed (32-slot) non-empty
// ratio and collision ratio, their long-run averages, and the c3
// theoretical upper bound.
//
// Usage: bench_fig16_longrun [--ablate]
//   --ablate additionally runs the design-choice ablations from
//   DESIGN.md: beacon-loss timer off, EMPTY gating off, future-collision
//   avoidance off.
#include <cstdio>
#include <cstring>

#include "arachnet/core/experiment_configs.hpp"
#include "arachnet/telemetry/metrics.hpp"

#include "bench_report.hpp"

using namespace arachnet;
using core::SlotNetwork;

namespace {

struct LongRunResult {
  double avg_non_empty = 0.0;
  double avg_collision = 0.0;
  std::int64_t disruptions = 0;  // windows with any collision
};

LongRunResult long_run(SlotNetwork::Params params, double dl_loss,
                       bool print_series) {
  auto specs = core::table3_config("c3").tag_specs();
  for (auto& s : specs) s.dl_loss = dl_loss;
  SlotNetwork net{params, specs};

  // Let the network converge before the measurement window (the paper's
  // trace starts from an operating network).
  net.measure_convergence(40000);

  constexpr std::int64_t kSlots = 10000;
  if (print_series) {
    std::printf("%-8s %12s %12s\n", "slot", "non-empty", "collision");
  }
  double sum_ne = 0.0, sum_col = 0.0;
  std::int64_t windows_disrupted = 0;
  for (std::int64_t s = 0; s < kSlots; ++s) {
    net.step();
    const double ne = net.reader().non_empty_ratio();
    const double col = net.reader().collision_ratio();
    sum_ne += ne;
    sum_col += col;
    if (print_series && s % 400 == 399) {
      std::printf("%-8lld %12.4f %12.4f\n", static_cast<long long>(s + 1), ne,
                  col);
    }
    if (s % 32 == 31 && col > 0.0) ++windows_disrupted;
  }
  return {sum_ne / kSlots, sum_col / kSlots, windows_disrupted};
}

}  // namespace

int main(int argc, char** argv) {
  const bool ablate = argc > 1 && std::strcmp(argv[1], "--ablate") == 0;
  // Beacon loss is the dominant disturbance source in the long run
  // (Sec. 6.4): per-tag, per-slot rate calibrated to the trace.
  constexpr double kDlLoss = 0.0012;

  std::printf("=== Fig. 16: Long-Running Slot Statistics (c3, 10k slots) ===\n");
  std::printf("window = 32 slots; theoretical non-empty upper bound = %.5f\n\n",
              core::table3_config("c3").utilization());

  arachnet::bench::Report report{"fig16_longrun"};
  telemetry::MetricsRegistry registry;
  SlotNetwork::Params params;
  params.seed = 4242;
  params.metrics = &registry;
  const auto base = long_run(params, kDlLoss, /*print_series=*/true);

  std::printf("\naverage non-empty ratio: %.3f (paper: 0.812)\n",
              base.avg_non_empty);
  std::printf("average collision ratio: %.3f (paper: 0.056)\n",
              base.avg_collision);
  std::printf("32-slot windows containing a collision: %lld / 312\n",
              static_cast<long long>(base.disruptions));
  report.metric("avg_non_empty", base.avg_non_empty);
  report.metric("avg_collision", base.avg_collision);
  report.counter("windows_disrupted",
                 static_cast<std::uint64_t>(base.disruptions));
  // Slot-outcome counters accumulated by the instrumented network.
  report.snapshot(registry.snapshot());
  std::printf("\npaper: fluctuations are driven by DL beacon loss, which\n"
              "desynchronizes a tag and triggers a local re-allocation; the\n"
              "protocol restores the settlement each time.\n");

  if (!ablate) return 0;

  std::printf("\n=== Ablations (same workload, 10k slots) ===\n\n");
  std::printf("%-34s %12s %12s\n", "variant", "non-empty", "collision");
  const auto run_variant = [&](const char* name, auto mutate) {
    SlotNetwork::Params p;
    p.seed = 4242;
    mutate(p);
    const auto r = long_run(p, kDlLoss, false);
    std::printf("%-34s %12.3f %12.3f\n", name, r.avg_non_empty,
                r.avg_collision);
  };
  run_variant("full protocol", [](SlotNetwork::Params&) {});
  run_variant("no beacon-loss timer (Sec. 5.4)", [](SlotNetwork::Params& p) {
    p.beacon_loss_migrate = false;
  });
  run_variant("no EMPTY gating (Sec. 5.5)", [](SlotNetwork::Params& p) {
    p.empty_gating = false;
  });
  run_variant("no future-collision avoid (5.6)", [](SlotNetwork::Params& p) {
    p.reader.future_collision_avoidance = false;
  });
  run_variant("weak collision detector (80%)", [](SlotNetwork::Params& p) {
    p.collision_detect_prob = 0.80;
  });
  return 0;
}
