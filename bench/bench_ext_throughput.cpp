// Extension experiments (paper Sec. 6.3 / Sec. 2.2 future work):
//  1. FDMA subcarriers — two tags decoded in the same slot, doubling
//     aggregate throughput.
//  2. 4-PAM higher-order modulation — 2 bits/symbol vs FM0's 0.5
//     bits/chip, with the SNR cost quantified as BER vs noise.
//  3. Ambient-vibration harvesting — charging-time improvement across
//     drive states for the weakest tag.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>
#include <thread>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/energy/ambient.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/pam4.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/pam4_rx.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/sim/stats.hpp"
#include "arachnet/telemetry/counting_alloc.hpp"

#include "bench_report.hpp"

using namespace arachnet;

namespace {

// Runs one FDMA bank over pre-rendered DAQ blocks; returns wall seconds
// and fills `latency_ms` with per-block processing latencies.
double run_bank(reader::FdmaRxChain& bank,
                const std::vector<std::vector<double>>& blocks,
                sim::Histogram* latency_ms) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  for (const auto& block : blocks) {
    const auto b0 = clock::now();
    bank.process(block);
    if (latency_ms) {
      latency_ms->add(
          std::chrono::duration<double, std::milli>(clock::now() - b0)
              .count());
    }
  }
  return std::chrono::duration<double>(clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  // --channels=4,8,16 selects the bank sizes for the channelizer-scaling
  // section below (default 4,8,16,32).
  std::vector<int> channel_counts{4, 8, 16, 32};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--channels=", 0) == 0) {
      channel_counts.clear();
      std::size_t pos = std::string{"--channels="}.size();
      while (pos < arg.size()) {
        const std::size_t comma = arg.find(',', pos);
        const std::size_t end = comma == std::string::npos ? arg.size()
                                                           : comma;
        channel_counts.push_back(std::stoi(arg.substr(pos, end - pos)));
        pos = end + 1;
      }
    }
  }
  arachnet::bench::Report report{"ext_throughput"};
  // ---------------------------------------------------------------- FDMA
  std::printf("=== Extension 1: FDMA Subcarrier Backscatter ===\n\n");
  {
    sim::Rng rng{21};
    acoustic::UplinkWaveformSynth synth{
        acoustic::UplinkWaveformSynth::Params{}};
    reader::FdmaRxChain::Params fp;
    fp.channels = {{3000.0}, {6000.0}};
    reader::FdmaRxChain fdma{fp};
    const int rounds = 20;
    int delivered = 0;
    for (int i = 0; i < rounds; ++i) {
      std::vector<acoustic::BackscatterSource> srcs;
      int k = 0;
      for (double fsc : {3000.0, 6000.0}) {
        const phy::UlPacket pkt{
            .tid = static_cast<std::uint8_t>(k + 1),
            .payload = static_cast<std::uint16_t>(0x300 + i)};
        phy::SubcarrierModulator mod{{375.0, fsc}};
        acoustic::BackscatterSource s;
        s.chips =
            mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
        s.chip_rate = mod.subchip_rate();
        s.start_s = 0.03;
        s.amplitude = k == 0 ? 0.2 : 0.15;
        s.phase_rad = 0.8 + k;
        srcs.push_back(s);
        ++k;
      }
      fdma.clear_packets();
      fdma.process(synth.synthesize(srcs, 0.3, rng));
      for (std::size_t c = 0; c < 2; ++c) {
        for (const auto& p : fdma.packets(c)) {
          if (p.payload == 0x300 + i) ++delivered;
        }
      }
    }
    std::printf("two tags per slot, %d slots: %d/%d packets delivered\n",
                rounds, delivered, 2 * rounds);
    std::printf("aggregate throughput: %.1fx the single-tag TDMA slot\n",
                delivered / static_cast<double>(rounds));
    report.counter("fdma.delivered", static_cast<std::uint64_t>(delivered));
    report.metric("fdma.throughput_x",
                  delivered / static_cast<double>(rounds));
    std::printf("(baseline ARACHNET decodes at most 1 packet per slot)\n\n");
  }

  // ------------------------------------------- FDMA bank parallel scaling
  std::printf("=== Extension 1b: FDMA Bank Parallel Scaling ===\n\n");
  {
    // 8 tags on 8 subcarriers, decoded by the sequential bank (workers=1)
    // and the worker-pool bank (one task per channel per block).
    constexpr int kChannels = 8;
    const auto make_params = [&](std::size_t workers) {
      reader::FdmaRxChain::Params fp;
      fp.ddc.decimation = 8;  // 62.5 kS/s IQ rate fits 8 subcarriers
      fp.workers = workers;
      for (int k = 0; k < kChannels; ++k) {
        fp.channels.push_back({3000.0 + 1500.0 * k});
      }
      return fp;
    };

    // Render ~1.8 s of 500 kS/s DAQ input (6 windows of 0.3 s, all 8 tags
    // replying in every window), split into 25 ms blocks.
    sim::Rng rng{77};
    acoustic::UplinkWaveformSynth synth{
        acoustic::UplinkWaveformSynth::Params{}};
    std::vector<std::vector<double>> blocks;
    std::size_t total_samples = 0;
    for (int round = 0; round < 6; ++round) {
      std::vector<acoustic::BackscatterSource> srcs;
      for (int k = 0; k < kChannels; ++k) {
        const phy::UlPacket pkt{
            .tid = static_cast<std::uint8_t>(k + 1),
            .payload = static_cast<std::uint16_t>(0x800 + 16 * round + k)};
        phy::SubcarrierModulator mod{{375.0, 3000.0 + 1500.0 * k}};
        acoustic::BackscatterSource s;
        s.chips =
            mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
        s.chip_rate = mod.subchip_rate();
        s.start_s = 0.03;
        s.amplitude = 0.12 + 0.01 * (k % 5);
        s.phase_rad = 0.5 + 0.4 * k;
        srcs.push_back(s);
      }
      const auto wave = synth.synthesize(srcs, 0.3, rng);
      constexpr std::size_t kBlock = 12500;  // 25 ms of DAQ
      for (std::size_t off = 0; off < wave.size(); off += kBlock) {
        const std::size_t len = std::min(kBlock, wave.size() - off);
        blocks.emplace_back(wave.begin() + off, wave.begin() + off + len);
        total_samples += len;
      }
    }

    reader::FdmaRxChain seq_bank{make_params(1)};
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    reader::FdmaRxChain par_bank{make_params(0)};  // auto: one per core

    const double seq_s = run_bank(seq_bank, blocks, nullptr);
    sim::Histogram latency{0.0, 50.0, 10};
    const double par_s = run_bank(par_bank, blocks, &latency);

    std::size_t seq_pkts = 0, par_pkts = 0;
    for (int c = 0; c < kChannels; ++c) {
      seq_pkts += seq_bank.packets(static_cast<std::size_t>(c)).size();
      par_pkts += par_bank.packets(static_cast<std::size_t>(c)).size();
    }
    const double rate = 500e3;
    std::printf("%d channels, %.1f s of DAQ input (%zu samples), %zu-core "
                "host\n",
                kChannels, static_cast<double>(total_samples) / rate,
                total_samples, hw);
    std::printf("%-22s %12s %14s %10s\n", "bank", "wall (s)", "samples/s",
                "packets");
    std::printf("%-22s %12.3f %14.0f %10zu\n", "sequential (1 worker)",
                seq_s, total_samples / seq_s, seq_pkts);
    char par_label[32];
    std::snprintf(par_label, sizeof(par_label), "parallel (%zu workers)",
                  par_bank.worker_count());
    std::printf("%-22s %12.3f %14.0f %10zu\n", par_label, par_s,
                total_samples / par_s, par_pkts);
    std::printf("parallel speedup: %.2fx (parity: packets %s)\n\n",
                seq_s / par_s, seq_pkts == par_pkts ? "equal" : "DIFFER");
    report.metric("bank.sequential_s", seq_s, "s");
    report.metric("bank.parallel_s", par_s, "s");
    report.metric("bank.speedup_x", seq_s / par_s);
    report.counter("bank.sequential_packets", seq_pkts);
    report.counter("bank.parallel_packets", par_pkts);
    report.histogram("bank.parallel_block_latency_ms", latency, "ms");

    arachnet::bench::print_histogram(latency, "parallel per-block latency");

    std::printf("\nper-channel decode counters (parallel bank):\n");
    std::printf("%8s %12s %10s %10s %8s\n", "f_sc", "iq samples", "bits",
                "frames", "crc-err");
    char name[48];
    for (const auto& ch : par_bank.all_channel_stats()) {
      std::printf("%7.0f%s %12llu %10llu %10llu %8llu\n",
                  ch.subcarrier_hz, "",
                  static_cast<unsigned long long>(ch.iq_samples),
                  static_cast<unsigned long long>(ch.bits),
                  static_cast<unsigned long long>(ch.frames_ok),
                  static_cast<unsigned long long>(ch.crc_failures));
      std::snprintf(name, sizeof(name), "bank.f%.0f.frames_ok",
                    ch.subcarrier_hz);
      report.counter(name, static_cast<std::uint64_t>(ch.frames_ok));
      std::snprintf(name, sizeof(name), "bank.f%.0f.crc_failures",
                    ch.subcarrier_hz);
      report.counter(name, static_cast<std::uint64_t>(ch.crc_failures));
    }
    std::printf("\n");
  }

  // ------------------------------- FDMA bank policy scaling (channelizer)
  std::printf("=== Extension 1c: FDMA Channelizer Bank Scaling ===\n\n");
  {
    using Bank = reader::FdmaRxChain::BankPolicy;
    using Fold = dsp::PolyphaseChannelizer::Params::Fold;
    std::printf("%9s %17s %19s %9s %7s %12s %12s %9s\n", "channels",
                "per-chan (MS/s)", "channelizer (MS/s)", "speedup", "parity",
                "f64 (MS/s)", "f32 (MS/s)", "f32 gain");
    for (int n : channel_counts) {
      // Uniform grid from 3375 Hz: odd subcarrier harmonics land 750 Hz
      // off-channel, so decode success does not depend on which bank's
      // filter shape swallows a co-channel harmonic.
      std::vector<double> freqs;
      for (int k = 0; k < n; ++k) freqs.push_back(3375.0 + 1500.0 * k);
      sim::Rng rng{101};
      acoustic::UplinkWaveformSynth synth{
          acoustic::UplinkWaveformSynth::Params{}};
      std::vector<acoustic::BackscatterSource> srcs;
      for (int k = 0; k < n; ++k) {
        const phy::UlPacket pkt{
            .tid = static_cast<std::uint8_t>(k + 1),
            .payload = static_cast<std::uint16_t>(0x500 + k)};
        phy::SubcarrierModulator mod{{375.0, freqs[static_cast<std::size_t>(k)]}};
        acoustic::BackscatterSource s;
        s.chips =
            mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
        s.chip_rate = mod.subchip_rate();
        s.start_s = 0.03;
        s.amplitude = 0.18 + 0.01 * (k % 5);
        s.phase_rad = 0.5 + 0.4 * k;
        srcs.push_back(s);
      }
      const auto wave = synth.synthesize(srcs, 0.3, rng);
      const auto make = [&](Bank bank, dsp::KernelPolicy kernels,
                            Fold fold) {
        reader::FdmaRxChain::Params fp;
        // 32 channels top out near 50 kHz and need the 125 kS/s
        // (decimation-4) IQ rate; up to 16 fit the usual 62.5 kS/s bank.
        fp.ddc.decimation = n > 16 ? 4 : 8;
        fp.workers = 1;  // the bank DSP itself, not the thread pool
        fp.kernels = kernels;
        fp.bank = bank;
        fp.chzr_fold = fold;
        for (double hz : freqs) fp.channels.push_back({hz});
        return fp;
      };
      reader::FdmaRxChain pc_bank{
          make(Bank::kPerChannel, dsp::KernelPolicy::kBlock, Fold::kAuto)};
      reader::FdmaRxChain cz_bank{
          make(Bank::kChannelizer, dsp::KernelPolicy::kBlock, Fold::kAuto)};
      // The kSimd channelizer with the fold pinned to float64 vs left on
      // the float32 fast path: same bank structure, the delta is purely
      // the single-precision frontend (gated >= 1.3x at 16/32 channels
      // by ci/check_kernel_bench.py).
      reader::FdmaRxChain f64_bank{make(
          Bank::kChannelizer, dsp::KernelPolicy::kSimd, Fold::kFloat64)};
      reader::FdmaRxChain f32_bank{
          make(Bank::kChannelizer, dsp::KernelPolicy::kSimd, Fold::kAuto)};
      const int reps = n >= 32 ? 1 : 3;
      const std::vector<std::vector<double>> blocks(
          static_cast<std::size_t>(reps), wave);
      const double pc_s = run_bank(pc_bank, blocks, nullptr);
      const double cz_s = run_bank(cz_bank, blocks, nullptr);
      const double f64_s = run_bank(f64_bank, blocks, nullptr);
      const double f32_s = run_bank(f32_bank, blocks, nullptr);
      bool parity = cz_bank.active_bank() == Bank::kChannelizer;
      for (std::size_t c = 0; c < pc_bank.channel_count(); ++c) {
        parity = parity && pc_bank.packets(c) == cz_bank.packets(c);
      }
      // The float32 fold must keep the kSimd packet contract: identical
      // packet sets against the float64 fold on every channel.
      bool f32_parity = f32_bank.active_bank() == Bank::kChannelizer;
      for (std::size_t c = 0; c < f64_bank.channel_count(); ++c) {
        f32_parity = f32_parity && f64_bank.packets(c) == f32_bank.packets(c);
      }
      const double total =
          static_cast<double>(wave.size()) * static_cast<double>(reps);
      std::printf("%9d %17.2f %19.2f %8.2fx %7s %12.2f %12.2f %8.2fx\n", n,
                  total / pc_s / 1e6, total / cz_s / 1e6, pc_s / cz_s,
                  parity && f32_parity ? "ok" : "DIFFER",
                  total / f64_s / 1e6, total / f32_s / 1e6, f64_s / f32_s);
      char name[64];
      std::snprintf(name, sizeof(name),
                    "fdma.bank.%d.per_channel_samples_per_s", n);
      report.metric(name, total / pc_s, "S/s");
      std::snprintf(name, sizeof(name),
                    "fdma.bank.%d.channelizer_samples_per_s", n);
      report.metric(name, total / cz_s, "S/s");
      std::snprintf(name, sizeof(name), "fdma.bank.%d.speedup_x", n);
      report.metric(name, pc_s / cz_s);
      std::snprintf(name, sizeof(name), "fdma.bank.%d.parity", n);
      report.counter(name, parity ? 1u : 0u);
      std::snprintf(name, sizeof(name), "fdma.bank.%d.channelized", n);
      report.counter(name,
                     cz_bank.active_bank() == Bank::kChannelizer ? 1u : 0u);
      std::snprintf(name, sizeof(name),
                    "fdma.bank.%d.chzr_f64_samples_per_s", n);
      report.metric(name, total / f64_s, "S/s");
      std::snprintf(name, sizeof(name),
                    "fdma.bank.%d.chzr_f32_samples_per_s", n);
      report.metric(name, total / f32_s, "S/s");
      std::snprintf(name, sizeof(name), "fdma.bank.%d.chzr_f32_speedup_x",
                    n);
      report.metric(name, f64_s / f32_s);
      std::snprintf(name, sizeof(name), "fdma.bank.%d.chzr_f32_parity", n);
      report.counter(name, f32_parity ? 1u : 0u);
    }
    std::printf("\n");
  }

  // --------------------------------------------- steady-state allocation
  std::printf("=== Extension 1d: Steady-State Allocation Audit ===\n\n");
  {
    // The allocation-free contract on the hot decode loop (DESIGN.md
    // Sec. 11): after one warm-up pass over the capture, re-processing
    // the identical block schedule must not touch the heap at all.
    // Gated == 0 by ci/check_alloc_gate.py.
    reader::FdmaRxChain::Params fp;
    fp.ddc.decimation = 8;
    fp.workers = 1;
    fp.kernels = dsp::KernelPolicy::kSimd;
    fp.bank = reader::FdmaRxChain::BankPolicy::kChannelizer;
    for (int k = 0; k < 4; ++k) fp.channels.push_back({3375.0 + 1500.0 * k});
    reader::FdmaRxChain chain{fp};
    sim::Rng rng{101};
    acoustic::UplinkWaveformSynth synth{
        acoustic::UplinkWaveformSynth::Params{}};
    std::vector<acoustic::BackscatterSource> srcs;
    for (int k = 0; k < 4; ++k) {
      const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                              .payload =
                                  static_cast<std::uint16_t>(0x500 + k)};
      phy::SubcarrierModulator mod{{375.0, 3375.0 + 1500.0 * k}};
      acoustic::BackscatterSource s;
      s.chips =
          mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
      s.chip_rate = mod.subchip_rate();
      s.start_s = 0.03;
      s.amplitude = 0.18 + 0.01 * k;
      s.phase_rad = 0.5 + 0.4 * k;
      srcs.push_back(s);
    }
    const auto wave = synth.synthesize(srcs, 0.3, rng);
    constexpr std::size_t kBlock = 10000;  // 20 ms DAQ blocks
    std::vector<reader::RxPacket> drained;
    const auto pass = [&]() {
      std::size_t packets = 0;
      for (std::size_t off = 0; off < wave.size(); off += kBlock) {
        chain.process(wave.data() + off,
                      std::min(kBlock, wave.size() - off));
        packets += chain.drain_packets(drained);
      }
      return packets;
    };
    telemetry::CountingAllocatorGuard warm_guard;
    const std::size_t warm_packets = pass();
    const std::uint64_t warmup_count = warm_guard.allocations();
    telemetry::CountingAllocatorGuard steady_guard;
    const std::size_t steady_packets = pass();
    const std::uint64_t steady_count = steady_guard.allocations();
    std::printf("4-channel channelizer bank, %zu-sample blocks:\n", kBlock);
    std::printf("  warm-up pass       %6llu allocations (%zu packets)\n",
                static_cast<unsigned long long>(warmup_count),
                warm_packets);
    std::printf("  steady-state pass  %6llu allocations (%zu packets)\n\n",
                static_cast<unsigned long long>(steady_count),
                steady_packets);
    report.counter("alloc.warmup_count", warmup_count);
    report.counter("alloc.steady_state_count", steady_count);
    report.counter("alloc.steady_state_packets",
                   static_cast<std::uint64_t>(steady_packets));
  }

  // ---------------------------------------------------------------- PAM4
  std::printf("=== Extension 2: 4-PAM Higher-Order Modulation ===\n\n");
  {
    const phy::Pam4 pam;
    // Line efficiency.
    phy::BitVector sample;
    for (int i = 0; i < 32; ++i) sample.push_back(i % 3 == 0);
    const double fm0_intervals =
        static_cast<double>(phy::Fm0Encoder::encode(sample).size());
    const double pam_intervals =
        static_cast<double>(pam.encode_frame(sample).size());
    std::printf("32 payload bits: FM0 %.0f line intervals, PAM-4 %.0f "
                "(incl. %d training)\n",
                fm0_intervals, pam_intervals, phy::Pam4::kTrainingSymbols);
    std::printf("net speedup at equal symbol rate: %.2fx\n\n",
                fm0_intervals / pam_intervals);

    // BER vs channel noise for both schemes, same link amplitude.
    std::printf("%-14s %14s %14s %18s\n", "noise sigma", "FM0 pkt loss",
                "PAM-4 BER", "PAM-4 pkt est.");
    for (double sigma : {0.004, 0.008, 0.012, 0.016, 0.024}) {
      sim::Rng rng{31};
      acoustic::UplinkWaveformSynth::Params wp;
      wp.noise_sigma = sigma;
      // FM0 packet loss.
      acoustic::UplinkWaveformSynth synth_fm0{wp};
      reader::RxChain rx{reader::RxChain::Params{}};
      rx.process(synth_fm0.synthesize({}, 0.05, rng));
      int fm0_lost = 0;
      const int fm0_rounds = 25;
      for (int i = 0; i < fm0_rounds; ++i) {
        const phy::UlPacket pkt{.tid = 1,
                                .payload = static_cast<std::uint16_t>(i)};
        acoustic::BackscatterSource s;
        s.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
        s.chip_rate = 375.0;
        s.start_s = 0.02;
        s.amplitude = 0.013;  // tag-11-class link
        s.phase_rad = 1.0;
        rx.clear_packets();
        rx.process(synth_fm0.synthesize({s}, 0.28, rng));
        bool got = false;
        for (const auto& p : rx.packets()) got |= (p.packet == pkt);
        fm0_lost += got ? 0 : 1;
      }
      // PAM-4 bit errors.
      acoustic::UplinkWaveformSynth synth_pam{wp};
      reader::Pam4Receiver::Params rp;
      rp.symbol_rate = 375.0;
      const reader::Pam4Receiver prx{rp};
      int bit_errors = 0, bits_total = 0;
      sim::Rng drng{7};
      for (int i = 0; i < 25; ++i) {
        phy::BitVector data;
        for (int b = 0; b < 64; ++b) data.push_back(drng.bernoulli(0.5));
        acoustic::BackscatterSource s;
        s.levels = pam.encode_frame(data);
        s.chip_rate = 375.0;
        s.start_s = 0.05;
        s.amplitude = 0.013;  // tag-11-class link
        s.phase_rad = 1.0;
        const auto wave = synth_pam.synthesize(
            {s}, 0.05 + s.levels.size() / 375.0 + 0.05, rng);
        const auto decoded = prx.decode(wave, 0.05, data.size());
        bits_total += static_cast<int>(data.size());
        if (!decoded) {
          bit_errors += static_cast<int>(data.size());
          continue;
        }
        for (std::size_t b = 0; b < data.size(); ++b) {
          bit_errors += (*decoded)[b] != data[b];
        }
      }
      const double ber = static_cast<double>(bit_errors) / bits_total;
      std::printf("%-14.3f %11d/%d %14.4f %17.2f%%\n", sigma, fm0_lost,
                  fm0_rounds, ber,
                  100.0 * (1.0 - std::pow(1.0 - ber, 32.0)));
    }
    std::printf("\nnote: the PAM-4 receiver here is measurement-grade (known\n"
                "symbol timing, coherent per-symbol averaging), so its\n"
                "absolute numbers flatter it; the structural cost is the 3x\n"
                "smaller decision distance, visible as nonzero BER while the\n"
                "equally-loud OOK link is still clean. PAM-4 buys ~2x line\n"
                "rate on strong links; weak BiW links keep conservative\n"
                "rates, matching the paper's design choice.\n\n");
  }

  // -------------------------------------------------------------- Ambient
  std::printf("=== Extension 3: Ambient-Vibration Harvesting ===\n\n");
  {
    const energy::AmbientVibrationSource ambient;
    std::printf("%-10s %14s %18s %18s\n", "state", "harvest (uA)",
                "tag-11 charge (s)", "tag-4 charge (s)");
    for (auto state :
         {energy::DriveState::kParked, energy::DriveState::kIdle,
          energy::DriveState::kCity, energy::DriveState::kHighway}) {
      std::printf("%-10s %14.1f", std::string(to_string(state)).c_str(),
                  ambient.current(state) * 1e6);
      for (double vp : {0.303, 0.513}) {  // tag 11, tag 4 links
        energy::Harvester h{energy::Harvester::Params{}};
        h.set_pzt_peak_voltage(vp);
        h.set_ambient_current(ambient.current(state));
        std::printf(" %18.1f", h.charge_time(0.0, 2.306));
      }
      std::printf("\n");
    }
    std::printf("\ndriving vibration (< 0.1 kHz) is out of band for the\n"
                "90 kHz link (paper Sec. 2.2), so it can only help: at\n"
                "highway speeds the weakest tag charges ~1.5x faster, and\n"
                "an already-charged tag stays powered through IDLE with\n"
                "the reader off entirely (15 uA harvest vs 3.8 uA draw).\n");
  }
  return 0;
}
