// Micro-benchmarks for the MAC layer: slot-network simulation rate, tag
// state-machine stepping, reader slot closing, and the vanilla allocator.
#include <benchmark/benchmark.h>

#include "arachnet/core/experiment_configs.hpp"
#include "arachnet/core/reader_controller.hpp"
#include "arachnet/core/slot_network.hpp"
#include "arachnet/core/tag_state_machine.hpp"
#include "arachnet/net/aloha.hpp"
#include "arachnet/net/vanilla.hpp"

using namespace arachnet;

static void BM_SlotNetworkStep(benchmark::State& state) {
  core::SlotNetwork::Params params;
  params.seed = 1;
  core::SlotNetwork net{params, core::table3_config("c3").tag_specs()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.step());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlotNetworkStep);

static void BM_ConvergenceC3(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::SlotNetwork::Params params;
    params.seed = seed++;
    core::SlotNetwork net{params, core::table3_config("c3").tag_specs()};
    benchmark::DoNotOptimize(net.measure_convergence(40000));
  }
}
BENCHMARK(BM_ConvergenceC3);

static void BM_TagStateMachine(benchmark::State& state) {
  core::TagStateMachine::Config cfg;
  cfg.period = 8;
  core::TagStateMachine sm{cfg, 3};
  const phy::DlCommand cmd{.ack = false, .empty = true, .reset = false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sm.on_beacon(cmd));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagStateMachine);

static void BM_ReaderCloseSlot(benchmark::State& state) {
  core::ReaderController reader;
  for (int tid = 1; tid <= 12; ++tid) reader.register_tag(tid, 8);
  int tid = 1;
  for (auto _ : state) {
    core::SlotObservation obs;
    obs.decoded_tid = tid;
    tid = tid % 12 + 1;
    benchmark::DoNotOptimize(reader.close_slot(obs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReaderCloseSlot);

static void BM_VanillaAllocate(benchmark::State& state) {
  std::vector<std::pair<int, int>> tags;
  for (int i = 0; i < 12; ++i) tags.push_back({i, i < 4 ? 8 : 32});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::vanilla_allocate(tags));
  }
}
BENCHMARK(BM_VanillaAllocate);

static void BM_Aloha1000s(benchmark::State& state) {
  std::vector<net::AlohaSimulator::TagSpec> tags;
  for (int i = 1; i <= 12; ++i) tags.push_back({i, 5.0 + i * 4.0});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    net::AlohaSimulator sim{{.seed = seed++}, tags};
    benchmark::DoNotOptimize(sim.run(1000.0));
  }
}
BENCHMARK(BM_Aloha1000s);

#include "bench_gbench_main.hpp"
ARACHNET_GBENCH_MAIN("micro_protocol")
