// Reproduces Fig. 17: the metal strain-measurement case study. Three
// strain-gauge tags (A, B, C) watch a metal sheet whose free end is
// displaced from -10 cm to +10 cm; each tag reports the amplified bridge
// voltage through its 12-bit UL payload, one sample per slot.
#include <cmath>
#include <cstdio>

#include "arachnet/phy/packet.hpp"
#include "arachnet/sensing/strain.hpp"
#include "arachnet/sim/rng.hpp"

#include "bench_report.hpp"

using namespace arachnet;

int main() {
  arachnet::bench::Report report{"fig17_strain"};
  sim::Rng rng{99};

  // Tags A, B, C sit at slightly different positions along the sheet, so
  // their sensitivities differ (as the three curves in Fig. 17b do).
  sensing::StrainSensorModule::Params pa, pb, pc;
  pa.beam.gauge_position_m = 0.04;
  pb.beam.gauge_position_m = 0.08;
  pc.beam.gauge_position_m = 0.12;
  const sensing::StrainSensorModule tag_a{pa}, tag_b{pb}, tag_c{pc};

  std::printf("=== Fig. 17: Metal Strain Measurement Case Study ===\n\n");
  std::printf("%-14s %10s %10s %10s   %8s %8s %8s\n", "displacement",
              "A (V)", "B (V)", "C (V)", "A code", "B code", "C code");
  for (int mm = -100; mm <= 100; mm += 20) {
    const double d = mm * 1e-3;
    const double va = tag_a.analog_voltage(d, rng);
    const double vb = tag_b.analog_voltage(d, rng);
    const double vc = tag_c.analog_voltage(d, rng);
    // Codes as they travel in the UL packet payload.
    const auto ca = tag_a.sample(d, rng);
    const auto cb = tag_b.sample(d, rng);
    const auto cc = tag_c.sample(d, rng);
    std::printf("%+10d mm  %10.3f %10.3f %10.3f   %8u %8u %8u\n", mm, va, vb,
                vc, ca, cb, cc);
  }

  // Linearity check: correlation between displacement and voltage.
  double sum_d = 0.0, sum_v = 0.0, sum_dd = 0.0, sum_vv = 0.0, sum_dv = 0.0;
  int n = 0;
  for (int mm = -100; mm <= 100; mm += 5) {
    const double d = mm * 1e-3;
    const double v = tag_a.analog_voltage(d, rng);
    sum_d += d;
    sum_v += v;
    sum_dd += d * d;
    sum_vv += v * v;
    sum_dv += d * v;
    ++n;
  }
  const double cov = sum_dv / n - (sum_d / n) * (sum_v / n);
  const double var_d = sum_dd / n - (sum_d / n) * (sum_d / n);
  const double var_v = sum_vv / n - (sum_v / n) * (sum_v / n);
  const double corr = cov / std::sqrt(var_d * var_v);
  std::printf("\ndisplacement-voltage correlation (tag A): %.4f\n", corr);
  report.metric("tagA.displacement_voltage_corr", corr);
  report.metric("sample_power_mw",
                sensing::StrainSensorModule::kSamplePowerW * 1e3, "mW");
  std::printf("\npaper: a clear correlation between voltage and displacement\n"
              "confirms the system's potential for structural health\n"
              "monitoring. The ADC+amplifier draw ~%.1f mW, so the tag takes\n"
              "at most one sample per slot (Sec. 6.5).\n",
              sensing::StrainSensorModule::kSamplePowerW * 1e3);
  return 0;
}
