// Micro-benchmarks for the reader's hot DSP path: FFT, Welch PSD, FIR
// filtering, the full DDC, FM0 chip decoding, IQ k-means, and the SPSC
// ring buffer — the blocks that must sustain 500 kS/s in real time.
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "arachnet/dsp/cluster.hpp"
#include "arachnet/dsp/ddc.hpp"
#include "arachnet/dsp/fft.hpp"
#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/psd.hpp"
#include "arachnet/dsp/ring_buffer.hpp"
#include "arachnet/dsp/slicer.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/sim/rng.hpp"

using namespace arachnet;

static void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{1};
  std::vector<dsp::cplx> data(n);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto copy = data;
    dsp::fft(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(4096)->Arg(16384);

static void BM_WelchPsd(benchmark::State& state) {
  sim::Rng rng{2};
  std::vector<double> signal(100000);
  for (auto& s : signal) s = rng.normal();
  dsp::WelchPsd psd{{.segment_size = 4096, .sample_rate_hz = 500e3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(psd.estimate(signal));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(signal.size()));
}
BENCHMARK(BM_WelchPsd);

static void BM_FirFilter(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  dsp::FirFilter<double> lpf{dsp::design_lowpass(5e3, 500e3, taps)};
  sim::Rng rng{3};
  std::vector<double> block(8192);
  for (auto& s : block) s = rng.normal();
  for (auto _ : state) {
    double acc = 0.0;
    for (double s : block) acc += lpf.push(s);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_FirFilter)->Arg(65)->Arg(129)->Arg(257);

static void BM_DdcFullRate(benchmark::State& state) {
  dsp::Ddc ddc{dsp::Ddc::Params{}};
  sim::Rng rng{4};
  std::vector<double> block(16384);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = std::cos(2.0 * 3.14159 * 90e3 * i / 500e3) + rng.normal() * 0.01;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddc.process(block));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_DdcFullRate);

static void BM_RxChainEndToEnd(benchmark::State& state) {
  // Raw-sample throughput of the whole receive chain (must beat 500 kS/s
  // for real-time operation).
  sim::Rng rng{5};
  std::vector<double> block(65536);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = std::cos(2.0 * 3.14159 * 90e3 * i / 500e3) + rng.normal() * 0.004;
  }
  reader::RxChain rx{reader::RxChain::Params{}};
  for (auto _ : state) {
    rx.process(block);
    benchmark::DoNotOptimize(rx.packets());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_RxChainEndToEnd);

static void BM_Fm0Decode(benchmark::State& state) {
  sim::Rng rng{6};
  phy::BitVector data;
  for (int i = 0; i < 512; ++i) data.push_back(rng.bernoulli(0.5));
  const auto chips = phy::Fm0Encoder::encode(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::Fm0Decoder::decode(chips));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Fm0Decode);

static void BM_KMeansIq(benchmark::State& state) {
  sim::Rng rng{7};
  std::vector<std::complex<double>> points;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 500; ++i) {
      points.emplace_back(c * 0.5 + rng.normal() * 0.02,
                          (c % 2) * 0.4 + rng.normal() * 0.02);
    }
  }
  for (auto _ : state) {
    sim::Rng krng{11};
    benchmark::DoNotOptimize(dsp::kmeans(points, 4, krng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(points.size()));
}
BENCHMARK(BM_KMeansIq);

static void BM_CollisionDetector(benchmark::State& state) {
  sim::Rng rng{8};
  std::vector<std::complex<double>> points;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 1000; ++i) {
      points.emplace_back(1.0 + c * 0.3 + rng.normal() * 0.02,
                          rng.normal() * 0.02);
    }
  }
  for (auto _ : state) {
    sim::Rng crng{13};
    benchmark::DoNotOptimize(dsp::detect_collision_iq(points, crng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(points.size()));
}
BENCHMARK(BM_CollisionDetector);

static void BM_RingBufferThroughput(benchmark::State& state) {
  dsp::RingBuffer<int> buf{1024};
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) buf.try_push(i);
    while (buf.try_pop()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_RingBufferThroughput);

static void BM_AdaptiveSlicer(benchmark::State& state) {
  dsp::AdaptiveSlicer slicer;
  sim::Rng rng{9};
  std::vector<double> env(8192);
  for (std::size_t i = 0; i < env.size(); ++i) {
    env[i] = ((i / 80) % 2 ? 0.1 : 0.0) + rng.normal() * 0.001;
  }
  for (auto _ : state) {
    bool acc = false;
    for (double e : env) acc ^= slicer.push(e);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.size()));
}
BENCHMARK(BM_AdaptiveSlicer);

#include "bench_gbench_main.hpp"
ARACHNET_GBENCH_MAIN("micro_dsp")
