// Micro-benchmarks for the reader's hot DSP path: FFT, Welch PSD, FIR
// filtering, the full DDC, FM0 chip decoding, IQ k-means, and the SPSC
// ring buffer — the blocks that must sustain 500 kS/s in real time.
//
// The BM_*Scalar / BM_*Block pairs measure the two kernel policies on the
// same workload; CI compares their real_time from the BENCH_micro_dsp.json
// sidecar and fails if the block path ever regresses below the scalar one.
#include <benchmark/benchmark.h>

#include <cmath>
#include <complex>
#include <map>
#include <span>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/dsp/cluster.hpp"
#include "arachnet/dsp/ddc.hpp"
#include "arachnet/dsp/fft.hpp"
#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/kernels/fft_plan.hpp"
#include "arachnet/dsp/kernels/fir_kernels.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/dsp/kernels/nco.hpp"
#include "arachnet/dsp/psd.hpp"
#include "arachnet/dsp/ring_buffer.hpp"
#include "arachnet/dsp/slicer.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/sim/rng.hpp"

using namespace arachnet;

static void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{1};
  std::vector<dsp::cplx> data(n);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto copy = data;
    dsp::fft(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(4096)->Arg(16384);

static void BM_WelchPsd(benchmark::State& state) {
  sim::Rng rng{2};
  std::vector<double> signal(100000);
  for (auto& s : signal) s = rng.normal();
  dsp::WelchPsd psd{{.segment_size = 4096, .sample_rate_hz = 500e3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(psd.estimate(signal));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(signal.size()));
}
BENCHMARK(BM_WelchPsd);

static void BM_FirFilter(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  dsp::FirFilter<double> lpf{dsp::design_lowpass(5e3, 500e3, taps)};
  sim::Rng rng{3};
  std::vector<double> block(8192);
  for (auto& s : block) s = rng.normal();
  for (auto _ : state) {
    double acc = 0.0;
    for (double s : block) acc += lpf.push(s);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_FirFilter)->Arg(65)->Arg(129)->Arg(257);

static void BM_DdcFullRate(benchmark::State& state) {
  dsp::Ddc ddc{dsp::Ddc::Params{}};
  sim::Rng rng{4};
  std::vector<double> block(16384);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = std::cos(2.0 * 3.14159 * 90e3 * i / 500e3) + rng.normal() * 0.01;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddc.process(block));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_DdcFullRate);

// ----------------------------------------------------- policy pairs

namespace {

void ddc_policy_bench(benchmark::State& state, dsp::KernelPolicy policy) {
  dsp::Ddc::Params p;
  p.kernels = policy;
  dsp::Ddc ddc{p};
  sim::Rng rng{4};
  std::vector<double> block(16384);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = std::cos(2.0 * 3.14159 * 90e3 * i / 500e3) + rng.normal() * 0.01;
  }
  std::vector<std::complex<double>> iq;
  for (auto _ : state) {
    iq.clear();
    ddc.process(std::span<const double>{block}, iq);
    benchmark::DoNotOptimize(iq.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
}

// One 0.3 s four-subcarrier capture (decodes on every channel), reused by
// both FDMA policy benches so they chew identical samples.
const std::vector<double>& fdma_capture() {
  static const std::vector<double> wave = [] {
    acoustic::UplinkWaveformSynth synth{
        acoustic::UplinkWaveformSynth::Params{}};
    sim::Rng rng{101};
    std::vector<acoustic::BackscatterSource> srcs;
    for (int k = 0; k < 4; ++k) {
      const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                              .payload =
                                  static_cast<std::uint16_t>(0x500 + k)};
      phy::SubcarrierModulator mod{{375.0, 3000.0 + 1500.0 * k}};
      acoustic::BackscatterSource s;
      s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
      s.chip_rate = mod.subchip_rate();
      s.start_s = 0.03;
      s.amplitude = 0.12 + 0.01 * k;
      s.phase_rad = 0.5 + 0.4 * k;
      srcs.push_back(s);
    }
    return synth.synthesize(srcs, 0.3, rng);
  }();
  return wave;
}

reader::FdmaRxChain::Params fdma_bench_params(dsp::KernelPolicy policy) {
  reader::FdmaRxChain::Params fp;
  fp.ddc.decimation = 8;
  fp.workers = 1;  // sequential: measure the kernels, not the threading
  fp.kernels = policy;
  // Pinned to the mixer bank: these benches compare the scalar vs block
  // kernels, which only the per-channel path exercises per channel.
  fp.bank = reader::FdmaRxChain::BankPolicy::kPerChannel;
  for (int k = 0; k < 4; ++k) fp.channels.push_back({3000.0 + 1500.0 * k});
  return fp;
}

void fdma_policy_bench(benchmark::State& state, dsp::KernelPolicy policy) {
  const auto& wave = fdma_capture();
  reader::FdmaRxChain bank{fdma_bench_params(policy)};
  std::uint64_t packets = 0;
  for (auto _ : state) {
    bank.process(wave);
    packets += bank.drain_packets().size();
  }
  benchmark::DoNotOptimize(packets);
  state.counters["packets"] = static_cast<double>(packets);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(wave.size()));
}

}  // namespace

static void BM_DdcScalar(benchmark::State& state) {
  ddc_policy_bench(state, dsp::KernelPolicy::kScalar);
}
BENCHMARK(BM_DdcScalar);

static void BM_DdcBlock(benchmark::State& state) {
  ddc_policy_bench(state, dsp::KernelPolicy::kBlock);
}
BENCHMARK(BM_DdcBlock);

static void BM_DdcSimd(benchmark::State& state) {
  ddc_policy_bench(state, dsp::KernelPolicy::kSimd);
}
BENCHMARK(BM_DdcSimd);

// ----------------------------------------------- bank-policy scaling

namespace {

std::vector<double> bank_subcarriers(int n) {
  // Origin 3375 Hz (a legal modulator frequency: 18 chip half-periods)
  // instead of 3000: odd harmonics of a 3000+1500k grid land exactly on
  // higher channels, and at 16+ channels that co-channel interference
  // makes decode success filter-shape-dependent — useless for a parity
  // row. From 3375 the 3rd/7th harmonics fall 750 Hz off-channel, outside
  // both banks' channel filters.
  std::vector<double> freqs;
  for (int k = 0; k < n; ++k) freqs.push_back(3375.0 + 1500.0 * k);
  return freqs;
}

// One 0.3 s capture with a tag on every subcarrier, cached per channel
// count (rendering 32 tags is far more expensive than decoding them).
const std::vector<double>& bank_capture(int n) {
  static std::map<int, std::vector<double>> cache;
  if (const auto it = cache.find(n); it != cache.end()) return it->second;
  acoustic::UplinkWaveformSynth synth{
      acoustic::UplinkWaveformSynth::Params{}};
  sim::Rng rng{101};
  std::vector<acoustic::BackscatterSource> srcs;
  const auto freqs = bank_subcarriers(n);
  for (int k = 0; k < n; ++k) {
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                            .payload =
                                static_cast<std::uint16_t>(0x500 + k)};
    phy::SubcarrierModulator mod{{375.0, freqs[static_cast<std::size_t>(k)]}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    // Stronger than the 4-channel capture above: near the top of the DDC
    // passband (32 channels reach 49.9 kHz) the filter edges shave the
    // weakest links, and a tag that only one bank's filter shape can
    // recover would make the parity row meaningless.
    s.amplitude = 0.18 + 0.01 * (k % 5);
    s.phase_rad = 0.5 + 0.4 * k;
    srcs.push_back(s);
  }
  return cache.emplace(n, synth.synthesize(srcs, 0.3, rng)).first->second;
}

reader::FdmaRxChain::Params bank_policy_params(
    int n, reader::FdmaRxChain::BankPolicy bank) {
  reader::FdmaRxChain::Params fp;
  // The IQ passband must hold the top subcarrier plus sidebands: 32
  // channels top out at 49.5 kHz, needing the 125 kS/s (decimation-4) IQ
  // rate; up to 16 channels fit the usual 62.5 kS/s bank.
  fp.ddc.decimation = n > 16 ? 4 : 8;
  fp.workers = 1;  // sequential: measure the bank DSP, not the threading
  fp.kernels = dsp::KernelPolicy::kBlock;
  fp.bank = bank;
  for (double hz : bank_subcarriers(n)) fp.channels.push_back({hz});
  return fp;
}

void bank_policy_bench(benchmark::State& state,
                       reader::FdmaRxChain::BankPolicy bank) {
  const int n = static_cast<int>(state.range(0));
  const auto& wave = bank_capture(n);
  reader::FdmaRxChain chain{bank_policy_params(n, bank)};
  std::uint64_t packets = 0;
  for (auto _ : state) {
    chain.process(wave);
    packets += chain.drain_packets().size();
  }
  benchmark::DoNotOptimize(packets);
  state.counters["packets"] = static_cast<double>(packets);
  // CI asserts the requested bank actually engaged: a silent fallback
  // would turn the speedup comparison into per-channel vs per-channel.
  state.counters["channelized"] =
      chain.active_bank() == reader::FdmaRxChain::BankPolicy::kChannelizer
          ? 1.0
          : 0.0;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(wave.size()));
}

}  // namespace

static void BM_FdmaBankPerChannel(benchmark::State& state) {
  bank_policy_bench(state, reader::FdmaRxChain::BankPolicy::kPerChannel);
}
BENCHMARK(BM_FdmaBankPerChannel)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

static void BM_FdmaBankChannelizer(benchmark::State& state) {
  bank_policy_bench(state, reader::FdmaRxChain::BankPolicy::kChannelizer);
}
BENCHMARK(BM_FdmaBankChannelizer)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

static void BM_BankPacketParity(benchmark::State& state) {
  // Not a timing bench: records per-channel packet parity between the two
  // bank policies at 16 channels into the sidecar. Payloads, channels and
  // CRC verdicts must match exactly; timestamps within one channelizer
  // lane sample (the banks run different prototype filters).
  const int n = 16;
  const auto& wave = bank_capture(n);
  std::uint64_t pc_packets = 0, chzr_packets = 0;
  bool equal = true;
  {
    reader::FdmaRxChain pc{bank_policy_params(
        n, reader::FdmaRxChain::BankPolicy::kPerChannel)};
    reader::FdmaRxChain chzr{bank_policy_params(
        n, reader::FdmaRxChain::BankPolicy::kChannelizer)};
    pc.process(wave);
    chzr.process(wave);
    const double lane_dt = 8.0 / (500e3 / 8.0);  // one lane sample
    equal = chzr.active_bank() ==
            reader::FdmaRxChain::BankPolicy::kChannelizer;
    for (std::size_t c = 0; c < pc.channel_count(); ++c) {
      const auto& a = pc.packets(c);
      const auto& b = chzr.packets(c);
      pc_packets += a.size();
      chzr_packets += b.size();
      equal = equal && a == b;
    }
    const auto ta = pc.drain_packets();
    const auto tb = chzr.drain_packets();
    for (std::size_t c = 0; equal && c < pc.channel_count(); ++c) {
      std::vector<double> times_a, times_b;
      for (const auto& p : ta) {
        if (p.channel == c) times_a.push_back(p.time_s);
      }
      for (const auto& p : tb) {
        if (p.channel == c) times_b.push_back(p.time_s);
      }
      equal = times_a.size() == times_b.size();
      for (std::size_t i = 0; equal && i < times_a.size(); ++i) {
        equal = std::abs(times_a[i] - times_b[i]) <= lane_dt;
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(equal);
  }
  state.counters["parity"] = equal ? 1.0 : 0.0;
  state.counters["per_channel_packets"] = static_cast<double>(pc_packets);
  state.counters["channelizer_packets"] =
      static_cast<double>(chzr_packets);
}
BENCHMARK(BM_BankPacketParity);

static void BM_FdmaBankScalar(benchmark::State& state) {
  fdma_policy_bench(state, dsp::KernelPolicy::kScalar);
}
BENCHMARK(BM_FdmaBankScalar);

static void BM_FdmaBankBlock(benchmark::State& state) {
  fdma_policy_bench(state, dsp::KernelPolicy::kBlock);
}
BENCHMARK(BM_FdmaBankBlock);

static void BM_FdmaBankSimd(benchmark::State& state) {
  fdma_policy_bench(state, dsp::KernelPolicy::kSimd);
}
BENCHMARK(BM_FdmaBankSimd);

// ------------------------------------------------ three-tier parity

namespace {

// Timestamp tolerance for the kSimd tier: the float32 lane path can move
// a slicer crossing by a sample or two, and the channelizer bank adds up
// to one lane sample of grid skew — two channelizer lane samples bound
// both at every bench channel count.
constexpr double kSimdTimeTol = 256e-6;

// Per-channel packet comparison between two drained captures. Payloads,
// channels and CRC verdicts must match exactly; timestamps bit-exact when
// `time_tol` is 0, else within `time_tol` seconds.
template <typename P>
bool tiers_match(const std::vector<P>& ref, const std::vector<P>& got,
                 std::size_t channels, double time_tol) {
  for (std::size_t c = 0; c < channels; ++c) {
    std::vector<std::size_t> ia, ib;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (ref[i].channel == c) ia.push_back(i);
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].channel == c) ib.push_back(i);
    }
    if (ia.size() != ib.size()) return false;
    for (std::size_t i = 0; i < ia.size(); ++i) {
      const auto& pa = ref[ia[i]];
      const auto& pb = got[ib[i]];
      if (!(pa.packet == pb.packet)) return false;
      if (time_tol == 0.0 ? pa.time_s != pb.time_s
                          : std::abs(pa.time_s - pb.time_s) > time_tol) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

static void BM_TierPacketParity(benchmark::State& state) {
  // Not a timing bench: records packet parity across all three kernel
  // tiers (plus the simd channelizer bank) at the arg's channel count.
  // scalar vs block must be bit-exact, including timestamps; the simd
  // tiers must decode the identical packet set with timestamps inside
  // kSimdTimeTol. CI fails the run if any parity counter is not 1.
  const int n = static_cast<int>(state.range(0));
  const auto& wave = bank_capture(n);
  bool channelized = false;
  const auto run = [&](dsp::KernelPolicy k,
                       reader::FdmaRxChain::BankPolicy bank,
                       bool* engaged = nullptr) {
    auto p = bank_policy_params(n, bank);
    p.kernels = k;
    reader::FdmaRxChain chain{p};
    chain.process(wave);
    if (engaged != nullptr) {
      *engaged = chain.active_bank() ==
                 reader::FdmaRxChain::BankPolicy::kChannelizer;
    }
    return chain.drain_packets();
  };
  using Bank = reader::FdmaRxChain::BankPolicy;
  const auto scalar = run(dsp::KernelPolicy::kScalar, Bank::kPerChannel);
  const auto block = run(dsp::KernelPolicy::kBlock, Bank::kPerChannel);
  const auto simd = run(dsp::KernelPolicy::kSimd, Bank::kPerChannel);
  const auto simd_chzr =
      run(dsp::KernelPolicy::kSimd, Bank::kChannelizer, &channelized);
  const auto channels = static_cast<std::size_t>(n);
  const bool equal = !scalar.empty() && channelized &&
                     tiers_match(scalar, block, channels, 0.0) &&
                     tiers_match(scalar, simd, channels, kSimdTimeTol) &&
                     tiers_match(scalar, simd_chzr, channels, kSimdTimeTol);
  for (auto _ : state) {
    benchmark::DoNotOptimize(equal);
  }
  state.counters["parity"] = equal ? 1.0 : 0.0;
  state.counters["channelized"] = channelized ? 1.0 : 0.0;
  state.counters["scalar_packets"] = static_cast<double>(scalar.size());
  state.counters["block_packets"] = static_cast<double>(block.size());
  state.counters["simd_packets"] = static_cast<double>(simd.size());
  state.counters["simd_channelizer_packets"] =
      static_cast<double>(simd_chzr.size());
}
BENCHMARK(BM_TierPacketParity)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

static void BM_NcoFill(benchmark::State& state) {
  dsp::PhasorNco nco{0.0, 1.131};
  std::vector<std::complex<double>> buf(8192);
  for (auto _ : state) {
    nco.fill(buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_NcoFill);

static void BM_TrigOscillator(benchmark::State& state) {
  // The per-sample cos/sin pair the NCO replaces, on the same workload.
  std::vector<std::complex<double>> buf(8192);
  double phase = 0.0;
  for (auto _ : state) {
    for (auto& v : buf) {
      v = {std::cos(phase), std::sin(phase)};
      phase += 1.131;
      if (phase > 2.0 * 3.14159265358979323846) {
        phase -= 2.0 * 3.14159265358979323846;
      }
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_TrigOscillator);

static void BM_FirBlockFilter(benchmark::State& state) {
  // Folded block kernel on the BM_FirFilter workload (same taps/blocks).
  const auto taps = static_cast<std::size_t>(state.range(0));
  dsp::FirBlockFilter<double> lpf{dsp::design_lowpass(5e3, 500e3, taps)};
  sim::Rng rng{3};
  std::vector<double> block(8192), out(8192);
  for (auto& s : block) s = rng.normal();
  for (auto _ : state) {
    lpf.process(block.data(), out.data(), block.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_FirBlockFilter)->Arg(65)->Arg(129)->Arg(257);

static void BM_FftRealPlan(benchmark::State& state) {
  // Cached-plan real-input transform (the Welch PSD inner loop).
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{1};
  std::vector<double> data(n);
  for (auto& x : data) x = rng.normal();
  const auto plan = dsp::FftPlan::get(n);
  std::vector<std::complex<double>> out;
  for (auto _ : state) {
    plan->forward_real(data.data(), data.size(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftRealPlan)->Arg(1024)->Arg(4096);

static void BM_PolicyPacketParity(benchmark::State& state) {
  // Not a timing bench: records packet-level parity across the three
  // kernel tiers on the BM_FdmaBank* workload, so CI can assert the
  // speedup comparisons are between paths that decode the same packets.
  // scalar vs block must be bit-exact including timestamps; simd must
  // match payload-for-payload with timestamps inside kSimdTimeTol.
  // parity == 1 means all three decode identical packet sets.
  const auto& wave = fdma_capture();
  std::uint64_t scalar_packets = 0, block_packets = 0, simd_packets = 0;
  bool equal = true;
  {
    reader::FdmaRxChain scalar{
        fdma_bench_params(dsp::KernelPolicy::kScalar)};
    reader::FdmaRxChain block{fdma_bench_params(dsp::KernelPolicy::kBlock)};
    reader::FdmaRxChain simd{fdma_bench_params(dsp::KernelPolicy::kSimd)};
    scalar.process(wave);
    block.process(wave);
    simd.process(wave);
    const auto a = scalar.drain_packets();
    const auto b = block.drain_packets();
    const auto c = simd.drain_packets();
    scalar_packets = a.size();
    block_packets = b.size();
    simd_packets = c.size();
    equal = a.size() == b.size();
    for (std::size_t i = 0; equal && i < a.size(); ++i) {
      equal = a[i].packet == b[i].packet && a[i].channel == b[i].channel &&
              a[i].time_s == b[i].time_s;
    }
    equal = equal && tiers_match(a, c, 4, kSimdTimeTol);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(equal);
  }
  state.counters["parity"] = equal ? 1.0 : 0.0;
  state.counters["scalar_packets"] = static_cast<double>(scalar_packets);
  state.counters["block_packets"] = static_cast<double>(block_packets);
  state.counters["simd_packets"] = static_cast<double>(simd_packets);
}
BENCHMARK(BM_PolicyPacketParity);

static void BM_RxChainEndToEnd(benchmark::State& state) {
  // Raw-sample throughput of the whole receive chain (must beat 500 kS/s
  // for real-time operation).
  sim::Rng rng{5};
  std::vector<double> block(65536);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = std::cos(2.0 * 3.14159 * 90e3 * i / 500e3) + rng.normal() * 0.004;
  }
  reader::RxChain rx{reader::RxChain::Params{}};
  for (auto _ : state) {
    rx.process(block);
    benchmark::DoNotOptimize(rx.packets());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_RxChainEndToEnd);

static void BM_Fm0Decode(benchmark::State& state) {
  sim::Rng rng{6};
  phy::BitVector data;
  for (int i = 0; i < 512; ++i) data.push_back(rng.bernoulli(0.5));
  const auto chips = phy::Fm0Encoder::encode(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::Fm0Decoder::decode(chips));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Fm0Decode);

static void BM_KMeansIq(benchmark::State& state) {
  sim::Rng rng{7};
  std::vector<std::complex<double>> points;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 500; ++i) {
      points.emplace_back(c * 0.5 + rng.normal() * 0.02,
                          (c % 2) * 0.4 + rng.normal() * 0.02);
    }
  }
  for (auto _ : state) {
    sim::Rng krng{11};
    benchmark::DoNotOptimize(dsp::kmeans(points, 4, krng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(points.size()));
}
BENCHMARK(BM_KMeansIq);

static void BM_CollisionDetector(benchmark::State& state) {
  sim::Rng rng{8};
  std::vector<std::complex<double>> points;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 1000; ++i) {
      points.emplace_back(1.0 + c * 0.3 + rng.normal() * 0.02,
                          rng.normal() * 0.02);
    }
  }
  for (auto _ : state) {
    sim::Rng crng{13};
    benchmark::DoNotOptimize(dsp::detect_collision_iq(points, crng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(points.size()));
}
BENCHMARK(BM_CollisionDetector);

static void BM_RingBufferThroughput(benchmark::State& state) {
  dsp::RingBuffer<int> buf{1024};
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) buf.try_push(i);
    while (buf.try_pop()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_RingBufferThroughput);

static void BM_AdaptiveSlicer(benchmark::State& state) {
  dsp::AdaptiveSlicer slicer;
  sim::Rng rng{9};
  std::vector<double> env(8192);
  for (std::size_t i = 0; i < env.size(); ++i) {
    env[i] = ((i / 80) % 2 ? 0.1 : 0.0) + rng.normal() * 0.001;
  }
  for (auto _ : state) {
    bool acc = false;
    for (double e : env) acc ^= slicer.push(e);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.size()));
}
BENCHMARK(BM_AdaptiveSlicer);

#include "bench_gbench_main.hpp"
ARACHNET_GBENCH_MAIN("micro_dsp")
