// Reproduces Fig. 14: the ping-pong latency test. Stage 1 is the DL
// beacon transmission; stage 2 runs from DL end to decoded UL packet:
// the tag's polite 20 ms wait, the UL packet on-air time, and the reader
// software's delay (USB block buffering + pipeline processing).
//
// The reader-software delay model mirrors the real system: the DAQ
// streams 500 kS/s samples to the host in fixed blocks, so a packet can
// only be decoded once the block containing its last sample has arrived
// and been processed.
#include <algorithm>
#include <numeric>
#include <cstdio>
#include <vector>

#include "arachnet/core/protocol.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/sim/stats.hpp"

#include "bench_report.hpp"

using namespace arachnet;

int main() {
  arachnet::bench::Report report{"fig14_pingpong"};
  sim::Rng rng{314};
  constexpr int kTrials = 2000;
  constexpr double kSampleRate = 500e3;
  constexpr double kUsbBlockSamples = 49152;  // DAQ streaming block
  constexpr double kBlockPeriod = kUsbBlockSamples / kSampleRate;

  std::vector<double> stage1, stage2, total, software;
  for (int i = 0; i < kTrials; ++i) {
    // Stage 1: DL beacon (PIE duration depends on command bits).
    const phy::DlBeacon beacon{.cmd = {.ack = rng.bernoulli(0.5),
                                       .empty = rng.bernoulli(0.5)}};
    const double dl = phy::dl_beacon_duration(beacon);

    // Stage 2: tag waits 20 ms, backscatters the UL frame (pilot + packet
    // + terminator at 375 bps), then the reader software decodes it.
    const double ul_chips = 2.0 * (phy::kUlPacketBits +
                                   phy::Fm0Encoder::kPilotBits + 1);
    const double ul = ul_chips / phy::kDefaultUlRawBitRate;
    // Last sample lands at a uniformly random phase of the USB block.
    const double block_wait = rng.uniform(0.0, kBlockPeriod);
    const double processing = rng.uniform(2e-3, 8e-3);
    const double sw = block_wait + processing;

    stage1.push_back(dl);
    stage2.push_back(core::kTagReplyDelay + ul + sw);
    software.push_back(sw);
    total.push_back(dl + core::kTagReplyDelay + ul + sw);
  }

  const sim::Percentiles p1{stage1}, p2{stage2}, pt{total}, ps{software};

  std::printf("=== Fig. 14: Ping-Pong Latency ===\n\n");
  std::printf("timeline of one exchange (matches the Fig. 14a waveform):\n");
  std::printf("  [DL beacon %.0f-%.0f ms][wait 20 ms][UL packet %.1f ms]"
              "[software]\n\n",
              p1.at(0.0) * 1e3, p1.at(1.0) * 1e3,
              2.0 * (phy::kUlPacketBits + phy::Fm0Encoder::kPilotBits + 1) /
                  phy::kDefaultUlRawBitRate * 1e3);

  std::printf("%-22s %8s %8s %8s %8s\n", "quantity (ms)", "p50", "p90",
              "p99", "max");
  arachnet::bench::print_percentile_row("stage 1 (DL tx)", p1);
  arachnet::bench::print_percentile_row("stage 2 (DL end->UL)", p2);
  arachnet::bench::print_percentile_row("  of which software", ps);
  arachnet::bench::print_percentile_row("total ping-pong", pt);
  const std::initializer_list<double> qs{0.1, 0.25, 0.5,  0.75,
                                         0.9, 0.95, 0.99, 1.0};
  report.percentiles("stage1_ms", p1, qs, "ms", 1e3);
  report.percentiles("stage2_ms", p2, qs, "ms", 1e3);
  report.percentiles("software_ms", ps, qs, "ms", 1e3);
  report.percentiles("total_ms", pt, qs, "ms", 1e3);

  std::printf("\nCDF of stage 2 delay:\n");
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    std::printf("  P%.0f%% <= %.1f ms\n", q * 100.0, p2.at(q) * 1e3);
  }

  const double ul_ms = 2.0 *
                       (phy::kUlPacketBits + phy::Fm0Encoder::kPilotBits + 1) /
                       phy::kDefaultUlRawBitRate * 1e3;
  std::printf("\npaper: 99%% of stage 2 under 281.9 ms with ~58.9 ms of\n"
              "software delay — under 30%% of the UL packet duration.\n");
  std::printf("here:  99%% of stage 2 = %.1f ms; mean software delay %.1f ms\n"
              "       = %.0f%% of the %.1f ms UL duration.\n",
              p2.at(0.99) * 1e3,
              std::accumulate(software.begin(), software.end(), 0.0) /
                  software.size() * 1e3,
              std::accumulate(software.begin(), software.end(), 0.0) /
                  software.size() * 1e3 / ul_ms * 100.0,
              ul_ms);
  std::printf("\nwith the slot empirically set to 1 s, one full exchange\n"
              "fits comfortably (total p99 = %.1f ms).\n", pt.at(0.99) * 1e3);
  return 0;
}
