// Micro-benchmarks for the telemetry layer itself: the cost of one
// counter add / gauge set / histogram record / trace span / suppressed
// log call, plus the number that gates the whole design — the relative
// overhead of full instrumentation (metrics + tracing) on the FDMA
// per-block hot path. The acceptance target is < 3% enabled and ~0 when
// compiled out with ARACHNET_TELEMETRY_DISABLED.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/telemetry/telemetry.hpp"

#include "bench_gbench_main.hpp"

using namespace arachnet;

static void BM_CounterAdd(benchmark::State& state) {
  telemetry::Counter c;
  for (auto _ : state) {
    c.add();
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

static void BM_GaugeSet(benchmark::State& state) {
  telemetry::Gauge g;
  double v = 0.0;
  for (auto _ : state) {
    g.set(v);
    v += 1.0;
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(g.value());
}
BENCHMARK(BM_GaugeSet);

static void BM_HistogramRecord(benchmark::State& state) {
  telemetry::LatencyHistogram h{0.0, 100.0, 64};
  double v = 0.0;
  for (auto _ : state) {
    h.record(v);
    v += 0.37;
    if (v >= 100.0) v = 0.0;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

static void BM_TraceSpanDisabled(benchmark::State& state) {
  // Recorder not enabled: the span constructor is one relaxed load.
  for (auto _ : state) {
    ARACHNET_TRACE_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

static void BM_TraceSpanEnabled(benchmark::State& state) {
  auto& rec = telemetry::TraceRecorder::instance();
  rec.enable(1 << 12);
  for (auto _ : state) {
    ARACHNET_TRACE_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
  rec.disable();
  rec.clear();
}
BENCHMARK(BM_TraceSpanEnabled);

static void BM_StageLatencyRecord(benchmark::State& state) {
  // What one stage-attribution point costs the hot path: a steady_clock
  // read plus a histogram record (the service pays three per block).
  telemetry::LatencyHistogram h{0.0, 50.0, 250};
  std::uint64_t prev = 0;
  for (auto _ : state) {
    const auto now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    h.record(static_cast<double>(now - prev) * 1e-6);
    prev = now;
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_StageLatencyRecord);

namespace {

/// A registry populated like a busy service fleet: the workload one
/// monitor sample has to snapshot and delta.
void populate_registry(telemetry::MetricsRegistry& reg, int sessions) {
  for (int s = 0; s < sessions; ++s) {
    const std::string p = "session." + std::to_string(s) + ".";
    reg.counter(p + "blocks").add(1000 + s);
    reg.counter(p + "packets").add(100 + s);
    reg.gauge(p + "depth").set(0.5 * s);
    auto& h = reg.histogram(p + "block_ms", 0.0, 50.0, 250);
    for (int i = 0; i < 64; ++i) h.record(0.2 * i);
  }
}

}  // namespace

static void BM_MonitorSample(benchmark::State& state) {
  // One full monitor sampling pass (snapshot + delta/rate math + history
  // ring + watchdogs) over a fleet-sized registry. Amortized over the 1 s
  // period this is the monitor's entire steady-state cost.
  telemetry::MetricsRegistry reg;
  populate_registry(reg, static_cast<int>(state.range(0)));
  telemetry::HealthMonitor::Params p;
  p.registry = &reg;
  p.history = 120;
  telemetry::HealthMonitor mon{p};
  for (int s = 0; s < state.range(0); ++s) {
    // Progress advances every sample so the stall watchdog stays quiet —
    // the bench measures the sampling pass, not flag churn.
    mon.add_probe({.name = "session." + std::to_string(s),
                   .progress = [n = std::uint64_t{0}]() mutable {
                     return ++n;
                   }});
  }
  for (auto _ : state) {
    mon.sample_once();
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(mon.samples_taken());
}
BENCHMARK(BM_MonitorSample)->Arg(8)->Arg(64);

static void BM_SnapshotDelta(benchmark::State& state) {
  // Just the pure delta/rate math between two fleet-sized snapshots.
  telemetry::MetricsRegistry reg;
  populate_registry(reg, 64);
  const auto prev = reg.snapshot();
  for (int s = 0; s < 64; ++s) {
    reg.counter("session." + std::to_string(s) + ".blocks").add(17);
  }
  const auto cur = reg.snapshot();
  for (auto _ : state) {
    auto d = telemetry::compute_snapshot_delta(prev, cur, 1.0);
    benchmark::DoNotOptimize(d.counters.data());
  }
}
BENCHMARK(BM_SnapshotDelta);

static void BM_LogSuppressed(benchmark::State& state) {
  // Runtime level gate rejects the call before any field is formatted.
  telemetry::set_log_level(telemetry::LogLevel::kError);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ARACHNET_LOG_DEBUG("bench", "suppressed", {"i", i});
    ++i;
    benchmark::ClobberMemory();
  }
  telemetry::set_log_level(telemetry::LogLevel::kInfo);
}
BENCHMARK(BM_LogSuppressed);

namespace {

// Seconds to push `blocks` through `bank`, best of one contiguous pass.
double run_bank_s(reader::FdmaRxChain& bank,
                  const std::vector<std::vector<double>>& blocks) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  for (const auto& b : blocks) bank.process(b);
  return std::chrono::duration<double>(clock::now() - t0).count();
}

// Measures the FDMA hot path instrumented vs bare and records the
// relative overhead. Interleaved A/B rounds with min-of-rounds timing so
// host noise cancels instead of landing on one side.
void measure_fdma_overhead(arachnet::bench::Report& report) {
  constexpr int kChannels = 4;
  constexpr int kBlocks = 24;
  constexpr std::size_t kBlockSamples = 12500;  // 25 ms of 500 kS/s DAQ
  constexpr int kRounds = 7;

  sim::Rng rng{99};
  std::vector<std::vector<double>> blocks(kBlocks);
  for (auto& b : blocks) {
    b.resize(kBlockSamples);
    for (auto& x : b) x = 0.02 * rng.normal();
  }

  const auto make_params = [&](telemetry::MetricsRegistry* metrics) {
    reader::FdmaRxChain::Params fp;
    fp.ddc.decimation = 8;
    fp.workers = 1;  // sequential: measure DSP cost, not scheduling
    for (int k = 0; k < kChannels; ++k) {
      fp.channels.push_back({3000.0 + 1500.0 * k});
    }
    fp.metrics = metrics;
    return fp;
  };

  telemetry::MetricsRegistry registry;
  reader::FdmaRxChain bare{make_params(nullptr)};
  reader::FdmaRxChain instrumented{make_params(&registry)};

  // Warm-up both banks (filter state, page faults, frequency scaling).
  run_bank_s(bare, blocks);
  run_bank_s(instrumented, blocks);

  auto& rec = telemetry::TraceRecorder::instance();
  double best_bare = 1e300, best_inst = 1e300;
  for (int r = 0; r < kRounds; ++r) {
    best_bare = std::min(best_bare, run_bank_s(bare, blocks));
    rec.enable(1 << 12);
    best_inst = std::min(best_inst, run_bank_s(instrumented, blocks));
    rec.disable();
  }
  rec.clear();

  const double overhead_pct = 100.0 * (best_inst - best_bare) / best_bare;
  std::printf("\nFDMA hot-path instrumentation overhead:\n");
  std::printf("  bare         %.3f ms/pass\n", best_bare * 1e3);
  std::printf("  instrumented %.3f ms/pass (metrics + tracing enabled)\n",
              best_inst * 1e3);
  std::printf("  overhead     %.2f%% (target < 3%%)\n", overhead_pct);

  report.metric("fdma.bare_ms", best_bare * 1e3, "ms");
  report.metric("fdma.instrumented_ms", best_inst * 1e3, "ms");
  report.metric("fdma.overhead_pct", overhead_pct, "%");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  arachnet::bench::Report report{"micro_telemetry"};
  arachnet::bench::CaptureReporter reporter{report};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  measure_fdma_overhead(report);
  return 0;
}
