#pragma once

// Shared sweep plumbing for the experiment benches: the common `--jobs N`
// flag and the standard per-sweep sidecar rows. Every sweep-shaped bench
// parses the flag first (it is stripped from argv, so positional args like
// the seed count keep working), builds one sim::SweepEngine, and reports
// its timing through report_sweep() so BENCH_<name>.json carries
// machine-readable sweep timings alongside the figure numbers.
//
// Determinism: the engine guarantees bit-identical reduced results for
// --jobs 1 vs --jobs N (asserted by tests/test_sweep.cpp and the CI sweep
// gate), so the flag only changes wall-clock, never output.

#include <cstdlib>
#include <cstring>

#include "arachnet/sim/sweep.hpp"

#include "bench_report.hpp"

namespace arachnet::bench {

/// Strips `--jobs N` / `--jobs=N` from argv (so positional arguments keep
/// their places) and returns the requested job count: 0 when absent
/// (= hardware concurrency, the SweepEngine default).
inline std::size_t parse_jobs(int& argc, char** argv) {
  std::size_t jobs = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[i] + 7, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return jobs;
}

/// Standard sweep sidecar rows (schema arachnet.bench.v1):
///   sweep.jobs, sweep.trials, sweep.wall_ms, sweep.trial_ms_total,
///   sweep.trial_ms_mean, sweep.trial_ms_max
/// The CI determinism gate compares sidecars across --jobs values and
/// ignores the `sweep.` prefix — these rows are timing, not results.
inline void report_sweep(Report& report, const sim::SweepEngine& engine) {
  const auto s = engine.stats();
  report.gauge("sweep.jobs", static_cast<double>(s.jobs));
  report.counter("sweep.trials", s.trials);
  report.metric("sweep.wall_ms", s.wall_ms, "ms");
  report.metric("sweep.trial_ms_total", s.trial_ms_total, "ms");
  report.metric("sweep.trial_ms_mean",
                s.trials ? s.trial_ms_total / static_cast<double>(s.trials)
                         : 0.0,
                "ms");
  report.metric("sweep.trial_ms_max", s.trial_ms_max, "ms");
}

}  // namespace arachnet::bench
