// Reproduces Table 1: illustrative vanilla slot allocation for four tags
// with periods {2, 4, 8, 8} over one 8-slot hyperperiod, plus the paper's
// "Comment": what beacon loss does to the static schedule (Fig. 8 lead-in).
//
// Usage: bench_table1_vanilla [--jobs N]. The four beacon-loss fragility
// simulations are independent and run as one sweep-engine grid.
#include <array>
#include <cstdio>

#include "arachnet/net/vanilla.hpp"
#include "arachnet/sim/sweep.hpp"

#include "bench_report.hpp"
#include "sweep_support.hpp"

int main(int argc, char** argv) {
  using namespace arachnet::net;
  const std::size_t jobs = arachnet::bench::parse_jobs(argc, argv);
  arachnet::bench::Report report{"table1_vanilla"};
  arachnet::telemetry::MetricsRegistry metrics;
  arachnet::sim::SweepEngine engine{{.jobs = jobs, .metrics = &metrics}};

  std::printf("=== Table 1: Illustrative Slot Allocation (vanilla, Sec. 5.2) ===\n\n");

  const std::vector<std::pair<int, int>> tags{{0, 2}, {1, 4}, {2, 8}, {3, 8}};
  const char* names = "ABCD";

  const auto alloc = vanilla_allocate(tags);
  if (!alloc) {
    std::printf("allocation failed (should not happen: U = 1.0)\n");
    return 1;
  }

  std::printf("%-8s", "Tag/Slot");
  for (int s = 0; s < 8; ++s) std::printf("%3d", s);
  std::printf("   Allocation\n");
  for (const auto& a : *alloc) {
    std::printf("t%c      ", names[a.tid]);
    for (int s = 0; s < 8; ++s) {
      std::printf("%3s", (s % a.period == a.offset) ? "T" : "");
    }
    std::printf("   p=%d a=%d\n", a.period, a.offset);
  }

  const auto grid = schedule_grid(*alloc);
  int max_per_slot = 0, used = 0;
  for (const auto& slot : grid) {
    max_per_slot = std::max<int>(max_per_slot, static_cast<int>(slot.size()));
    used += !slot.empty();
  }
  std::printf("\nnon-overlapping: %s; slot utilization: %d/%zu\n",
              max_per_slot <= 1 ? "yes" : "NO", used, grid.size());
  report.gauge("max_tags_per_slot", max_per_slot);
  report.metric("slot_utilization",
                static_cast<double>(used) / static_cast<double>(grid.size()));

  std::printf("\n--- fragility under beacon loss (motivates Sec. 5.3) ---\n");
  std::printf("%-14s %-16s %-16s\n", "beacon loss", "collision ratio",
              "non-empty ratio");
  const std::array<double, 4> losses{0.0, 0.001, 0.01, 0.05};
  struct Fragility {
    double collision_ratio = 0.0;
    double non_empty_ratio = 0.0;
  };
  const auto frag = engine.run_grid<Fragility>(
      losses.size(), 1,
      [&](const arachnet::sim::TrialSpec& t, arachnet::sim::Rng&,
          arachnet::sim::TrialScratch&) {
        VanillaSimulator sim{{.dl_loss = losses[t.config], .seed = 42},
                             *alloc};
        const auto stats = sim.run(50000);
        return Fragility{stats.collision_ratio(),
                         static_cast<double>(stats.non_empty_slots) /
                             static_cast<double>(stats.slots)};
      });
  char name[48];
  for (std::size_t i = 0; i < losses.size(); ++i) {
    std::printf("%-14g %-16.4f %-16.4f\n", losses[i], frag[i].collision_ratio,
                frag[i].non_empty_ratio);
    std::snprintf(name, sizeof(name), "collision_ratio.loss%g", losses[i]);
    report.metric(name, frag[i].collision_ratio);
    std::snprintf(name, sizeof(name), "non_empty_ratio.loss%g", losses[i]);
    report.metric(name, frag[i].non_empty_ratio);
  }
  std::printf("\npaper: a single missed beacon silently shifts a tag's slot\n"
              "(Eq. 3); with no feedback the static schedule cannot recover.\n");
  arachnet::bench::report_sweep(report, engine);
  report.snapshot(metrics.snapshot());
  return 0;
}
