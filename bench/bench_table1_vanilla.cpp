// Reproduces Table 1: illustrative vanilla slot allocation for four tags
// with periods {2, 4, 8, 8} over one 8-slot hyperperiod, plus the paper's
// "Comment": what beacon loss does to the static schedule (Fig. 8 lead-in).
#include <cstdio>

#include "arachnet/net/vanilla.hpp"

#include "bench_report.hpp"

int main() {
  using namespace arachnet::net;
  arachnet::bench::Report report{"table1_vanilla"};

  std::printf("=== Table 1: Illustrative Slot Allocation (vanilla, Sec. 5.2) ===\n\n");

  const std::vector<std::pair<int, int>> tags{{0, 2}, {1, 4}, {2, 8}, {3, 8}};
  const char* names = "ABCD";

  const auto alloc = vanilla_allocate(tags);
  if (!alloc) {
    std::printf("allocation failed (should not happen: U = 1.0)\n");
    return 1;
  }

  std::printf("%-8s", "Tag/Slot");
  for (int s = 0; s < 8; ++s) std::printf("%3d", s);
  std::printf("   Allocation\n");
  for (const auto& a : *alloc) {
    std::printf("t%c      ", names[a.tid]);
    for (int s = 0; s < 8; ++s) {
      std::printf("%3s", (s % a.period == a.offset) ? "T" : "");
    }
    std::printf("   p=%d a=%d\n", a.period, a.offset);
  }

  const auto grid = schedule_grid(*alloc);
  int max_per_slot = 0, used = 0;
  for (const auto& slot : grid) {
    max_per_slot = std::max<int>(max_per_slot, static_cast<int>(slot.size()));
    used += !slot.empty();
  }
  std::printf("\nnon-overlapping: %s; slot utilization: %d/%zu\n",
              max_per_slot <= 1 ? "yes" : "NO", used, grid.size());
  report.gauge("max_tags_per_slot", max_per_slot);
  report.metric("slot_utilization",
                static_cast<double>(used) / static_cast<double>(grid.size()));

  std::printf("\n--- fragility under beacon loss (motivates Sec. 5.3) ---\n");
  std::printf("%-14s %-16s %-16s\n", "beacon loss", "collision ratio",
              "non-empty ratio");
  char name[48];
  for (double loss : {0.0, 0.001, 0.01, 0.05}) {
    VanillaSimulator sim{{.dl_loss = loss, .seed = 42}, *alloc};
    const auto stats = sim.run(50000);
    std::printf("%-14g %-16.4f %-16.4f\n", loss, stats.collision_ratio(),
                static_cast<double>(stats.non_empty_slots) / stats.slots);
    std::snprintf(name, sizeof(name), "collision_ratio.loss%g", loss);
    report.metric(name, stats.collision_ratio());
    std::snprintf(name, sizeof(name), "non_empty_ratio.loss%g", loss);
    report.metric(name, static_cast<double>(stats.non_empty_slots) /
                            static_cast<double>(stats.slots));
  }
  std::printf("\npaper: a single missed beacon silently shifts a tag's slot\n"
              "(Eq. 3); with no feedback the static schedule cannot recover.\n");
  return 0;
}
