#pragma once

// Shared main() for the google-benchmark micro benches: runs the
// registered benchmarks with the usual console output while capturing
// every finished run into a BENCH_<name>.json report (arachnet.bench.v1),
// so the micro benches emit the same machine-readable sidecar as the
// experiment benches. Use via
//   ARACHNET_GBENCH_MAIN("micro_dsp")
// instead of linking benchmark_main.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_report.hpp"

namespace arachnet::bench {

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(Report& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      const std::string base = run.benchmark_name();
      const char* unit = benchmark::GetTimeUnitString(run.time_unit);
      report_.metric(base + ".real_time", run.GetAdjustedRealTime(), unit);
      report_.metric(base + ".cpu_time", run.GetAdjustedCPUTime(), unit);
      if (run.iterations > 0) {
        report_.counter(base + ".iterations",
                        static_cast<std::uint64_t>(run.iterations));
      }
      for (const auto& [name, counter] : run.counters) {
        report_.metric(base + "." + name, counter.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  Report& report_;
};

inline int run_gbench_main(const char* bench_name, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  Report report{bench_name};
  CaptureReporter reporter{report};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace arachnet::bench

#define ARACHNET_GBENCH_MAIN(bench_name_)                    \
  int main(int argc, char** argv) {                          \
    return ::arachnet::bench::run_gbench_main(bench_name_,   \
                                              argc, argv);   \
  }
