// Reproduces Fig. 13: (a) downlink packet loss per 1000 beacons versus
// bit rate for Tags 8, 4 and 11 — showing the surge at 1000/2000 bps
// caused by the 12 kHz VLO timer and the reader's software PIE jitter —
// and (b) the beacon synchronization offset of each tag relative to Tag 6.
#include <cstdio>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/mcu/dl_demodulator.hpp"
#include "arachnet/mcu/envelope_frontend.hpp"
#include "arachnet/reader/dl_tx.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/sim/stats.hpp"

#include "bench_report.hpp"

using namespace arachnet;

int main() {
  arachnet::bench::Report report{"fig13_downlink"};
  const auto deployment = acoustic::Deployment::onvo_l60();
  sim::Rng rng{77};

  // Tag supply voltages at reception: cap sits in the hysteresis band;
  // use a mid-band value per tag (richer links idle slightly higher).
  const auto supply_of = [&](int tid) {
    energy::Harvester h{energy::Harvester::Params{}};
    h.set_pzt_peak_voltage(deployment.tag_pzt_peak_voltage(tid));
    const double voc = h.amplified_voltage();
    // Strong links hold the cap near HTH; weak links hover above LTH.
    return voc > 6.0 ? 2.25 : 2.05;
  };

  std::printf("=== Fig. 13(a): DL Packet Loss per 1000 Beacons ===\n\n");
  std::printf("%-7s %8s %8s %8s\n", "rate", "Tag 8", "Tag 4", "Tag 11");
  const phy::DlBeacon beacon{.cmd = {.ack = true, .empty = false}};
  char name[48];
  for (double rate : {125.0, 250.0, 500.0, 1000.0, 2000.0}) {
    std::printf("%-7.0f", rate);
    for (int tid : {8, 4, 11}) {
      mcu::DlDemodulator::Params p;
      p.chip_rate = rate;
      mcu::DlDemodulator demod{p};
      const double loss = demod.loss_rate(beacon, supply_of(tid), rng, 1000);
      std::printf(" %8.0f", loss * 1000.0);
      std::snprintf(name, sizeof(name), "tag%d.dl_loss_per_1000.r%g", tid,
                    rate);
      report.metric(name, loss * 1000.0);
    }
    std::printf("\n");
  }
  std::printf("\npaper: near-zero loss at <= 500 bps, then a surge at\n"
              "1000/2000 bps caused by hardware limits, not signal quality:\n"
              "the 12 kHz supercap-powered VLO lacks timer precision, and\n"
              "the reader software adds 0.1-0.3 ms offset per PIE symbol.\n"
              "The default DL rate is therefore 250 bps.\n\n");

  // ---- ring-effect ablation: why "FSK in, OOK out" (Sec. 4.1) ----------
  std::printf("=== Ring-effect ablation: FSK-in/OOK-out vs pure OOK ===\n\n");
  std::printf("%-7s %18s %18s\n", "rate", "FSK loss /1000", "OOK loss /1000");
  mcu::VloClock vlo;
  for (double rate : {125.0, 250.0, 500.0, 1000.0}) {
    std::printf("%-7.0f", rate);
    for (auto mode :
         {reader::DlTxMode::kFskInOokOut, reader::DlTxMode::kPureOok}) {
      reader::DlTransmitter::Params tp;
      tp.mode = mode;
      tp.chip_rate = rate;
      reader::DlTransmitter tx{tp};
      mcu::EnvelopeFrontend frontend;
      int lost = 0;
      const int rounds = 400;
      for (int i = 0; i < rounds; ++i) {
        const auto rx = frontend.demodulate(tx.segments(beacon, rng), rate,
                                            2.05, vlo, rng);
        if (!rx || !(*rx == beacon)) ++lost;
      }
      std::printf(" %18.0f", 1000.0 * lost / rounds);
    }
    std::printf("\n");
  }
  std::printf("\nleaving the high-Q structure to ring down (pure OOK)\n"
              "smears the PIE falling edges; driving off-resonance instead\n"
              "(the paper's FSK-in/OOK-out, after EcoCapsule) actively\n"
              "displaces the resonant energy and keeps edges sharp.\n\n");


  // ---- (b) synchronization offset --------------------------------------
  std::printf("=== Fig. 13(b): Beacon Sync Offset vs Tag 6 (ms) ===\n\n");
  // A beacon's perceived arrival = propagation delay + last-edge timing
  // error (VLO measurement of the final symbol) + ISR latency.
  mcu::VloClock clock;
  const double chip = 1.0 / 250.0;
  const auto arrival_jitter = [&](int tid) {
    const auto link = deployment.reader_link(tid);
    sim::RunningStats stats;
    for (int i = 0; i < 400; ++i) {
      // Final-symbol timing: the tag stamps the slot boundary at the last
      // falling edge it measures; clock error stretches that last chip.
      const double measured =
          clock.ticks_to_duration(static_cast<int>(chip * 12e3),
                                  supply_of(tid), rng);
      const double isr = rng.uniform(0.0, 2.0 / 12e3);  // wakeup granularity
      stats.add(link.delay_s + (measured - chip) + isr);
    }
    return stats;
  };

  const auto ref = arrival_jitter(6);
  std::printf("%-5s %12s %12s\n", "Tag", "mean (ms)", "stddev (ms)");
  sim::RunningStats worst;
  for (const auto& site : deployment.tags()) {
    const auto s = arrival_jitter(site.tid);
    const double mean_off = (s.mean() - ref.mean()) * 1e3;
    std::printf("%-5d %+12.3f %12.3f\n", site.tid, mean_off, s.stddev() * 1e3);
    worst.add(std::abs(mean_off) + 3.0 * s.stddev() * 1e3);
  }
  std::printf("\nworst-case offset (|mean| + 3 sigma): %.2f ms\n", worst.max());
  report.metric("sync_offset_worst_ms", worst.max(), "ms");
  std::printf("paper: all tags synchronize within 5.0 ms of Tag 6 — well\n"
              "under the 1 s slot, so slot misalignment is negligible.\n");
  return 0;
}
