// Fleet-scale multi-reader engine bench: decode throughput and scaling
// versus reader count, plus the coordination-correctness gates the CI
// script enforces.
//
// Three parts:
//  1. waveform weak scaling — R in {1, 2, 4} readers, each synthesizing
//     and decoding its own FDMA uplink channels per epoch on the shared
//     worker pool. Per-reader work is constant, so ideal wall time at R
//     readers on C cores is wall(1) * R / min(R, C); the ratio of ideal to
//     measured is fleet.efficiency_4 (gated >= 0.7 by
//     ci/check_fleet_bench.py, normalized to the host's core count).
//  2. slot-mode coordination — a 4-reader overlapping fleet exercising
//     handoffs, duplicate suppression and the co-channel planner. Reports
//     the digest at shard widths 1/2/4 (fleet.shard_determinism), parity
//     against the merge of four single-reader engines (fleet.parity), and
//     the coordination counters with the planner on and off.
//  3. epoch latency — p50/p99 of per-epoch wall time at 4 readers.
//
// Sidecar: BENCH_fleet.json (fleet.* rows), gated by
// ci/check_fleet_bench.py.
//
//   bench_fleet [--epochs=4] [--slot-epochs=24]
//   bench_fleet --replay=16 --shards=4    # print packet log + digest only
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "arachnet/fleet/fleet_engine.hpp"
#include "arachnet/sim/stats.hpp"
#include "arachnet/telemetry/metrics.hpp"

#include "bench_report.hpp"

using namespace arachnet;
using fleet::FleetEngine;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long parse_flag(int argc, char** argv, const char* name, long fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::strtol(argv[i] + len + 1, nullptr, 10);
    }
  }
  return fallback;
}

FleetEngine::Params slot_params(std::size_t shards) {
  FleetEngine::Params p;
  p.mode = FleetEngine::Mode::kSlot;
  p.readers = 4;
  p.shards = shards;
  p.seed = 99;
  p.tags_per_reader = 8;
  p.slots_per_epoch = 64;
  p.neighbor_gain = 0.6;
  p.gain_drift_amplitude = 0.5;
  p.overhear_threshold = 0.85;
  p.handoff_margin = 0.05;
  return p;
}

FleetEngine::Params waveform_params(std::size_t readers) {
  FleetEngine::Params p;
  p.mode = FleetEngine::Mode::kWaveform;
  p.readers = readers;
  p.shards = readers;
  p.seed = 7;
  p.channels_per_reader = 4;
  p.epoch_duration_s = 0.25;
  return p;
}

/// --replay mode: nothing but the deterministic packet log and the digest
/// on stdout, so CI can byte-diff `--shards=1` against `--shards=4`.
int run_replay(long epochs, long shards) {
  auto p = slot_params(static_cast<std::size_t>(std::max(1L, shards)));
  FleetEngine eng{p};
  eng.run_epochs(static_cast<std::size_t>(std::max(1L, epochs)));
  eng.flush();
  for (const auto& pkt : eng.packet_log()) {
    std::printf("%llu %lld %d %u %u %u %d\n",
                static_cast<unsigned long long>(pkt.epoch),
                static_cast<long long>(pkt.slot), pkt.reader, pkt.tag,
                pkt.seq, pkt.channel, pkt.overheard ? 1 : 0);
  }
  std::printf("digest %016llx\n",
              static_cast<unsigned long long>(eng.digest()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const long replay = parse_flag(argc, argv, "--replay", 0);
  const long shards_flag = parse_flag(argc, argv, "--shards", 0);
  if (replay > 0) return run_replay(replay, shards_flag);

  const auto epochs =
      static_cast<std::size_t>(parse_flag(argc, argv, "--epochs", 4));
  const auto slot_epochs =
      static_cast<std::size_t>(parse_flag(argc, argv, "--slot-epochs", 24));
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  bench::Report report{"fleet"};
  report.gauge("fleet.host_cores", static_cast<double>(cores));

  // ---- 1. waveform weak scaling -----------------------------------------
  std::printf("waveform weak scaling (%zu epochs x 0.25 s, 4 ch/reader, "
              "%u cores)\n", epochs, cores);
  std::vector<double> wall_s;
  std::vector<double> epoch_ms_r4;
  for (const std::size_t readers : {1u, 2u, 4u}) {
    FleetEngine eng{waveform_params(readers)};
    const double t0 = now_s();
    eng.run_epochs(epochs);
    const double wall = now_s() - t0;
    eng.flush();
    wall_s.push_back(wall);
    if (readers == 4) epoch_ms_r4 = eng.epoch_wall_ms();
    const auto s = eng.stats();
    const double tags_per_s =
        wall > 0.0 ? static_cast<double>(s.packets) / wall : 0.0;
    std::printf("  R=%zu  packets=%llu  wall=%.3f s  tags/s=%.1f\n", readers,
                static_cast<unsigned long long>(s.packets), wall, tags_per_s);
    const std::string tag = "fleet.r" + std::to_string(readers);
    report.metric(tag + ".wall_s", wall, "s");
    report.metric(tag + ".tags_per_s", tags_per_s, "1/s");
    report.counter(tag + ".packets", s.packets);
  }
  // Weak scaling: ideal wall at R readers = wall(1) * R / min(R, cores).
  const auto efficiency = [&](std::size_t idx, std::size_t readers) {
    const double ideal = wall_s[0] * static_cast<double>(readers) /
                         static_cast<double>(std::min<unsigned>(
                             static_cast<unsigned>(readers), cores));
    return wall_s[idx] > 0.0 ? ideal / wall_s[idx] : 0.0;
  };
  const double eff2 = efficiency(1, 2);
  const double eff4 = efficiency(2, 4);
  std::printf("  parallel efficiency  R=2: %.2f  R=4: %.2f "
              "(normalized to %u cores)\n\n", eff2, eff4, cores);
  report.metric("fleet.efficiency_2", eff2);
  report.metric("fleet.efficiency_4", eff4);

  // ---- 2. slot-mode coordination ----------------------------------------
  std::printf("slot-mode coordination (4 readers, %zu epochs, overlap on)\n",
              slot_epochs);
  std::vector<std::uint64_t> digests;
  FleetEngine::Stats coord{};
  for (const std::size_t shards : {1u, 2u, 4u}) {
    FleetEngine eng{slot_params(shards)};
    eng.run_epochs(slot_epochs);
    eng.flush();
    digests.push_back(eng.digest());
    if (shards == 4) coord = eng.stats();
  }
  const bool shard_det = digests[0] == digests[1] && digests[1] == digests[2];
  std::printf("  digest shards={1,2,4}: %016llx %016llx %016llx  %s\n",
              static_cast<unsigned long long>(digests[0]),
              static_cast<unsigned long long>(digests[1]),
              static_cast<unsigned long long>(digests[2]),
              shard_det ? "BIT-EXACT" : "DIVERGED");
  std::printf("  packets=%llu handoffs=%llu dup_suppressed=%llu "
              "conflicts=%llu tdma_muted=%llu\n",
              static_cast<unsigned long long>(coord.packets),
              static_cast<unsigned long long>(coord.handoffs),
              static_cast<unsigned long long>(coord.dup_suppressed),
              static_cast<unsigned long long>(coord.conflicts),
              static_cast<unsigned long long>(coord.tdma_muted));
  report.gauge("fleet.shard_determinism", shard_det ? 1.0 : 0.0);
  report.counter("fleet.packets", coord.packets);
  report.counter("fleet.handoffs", coord.handoffs);
  report.counter("fleet.dup_suppressed", coord.dup_suppressed);
  report.counter("fleet.conflicts_planner_on", coord.conflicts);

  // Planner off: adjacent readers collide on the shared grid.
  {
    auto p = slot_params(4);
    p.planner_enabled = false;
    FleetEngine eng{p};
    eng.run_epochs(slot_epochs);
    eng.flush();
    std::printf("  planner off: conflicts=%llu (censored co-channel "
                "reports)\n",
                static_cast<unsigned long long>(eng.stats().conflicts));
    report.counter("fleet.conflicts_planner_off", eng.stats().conflicts);
  }

  // Parity: with disjoint coverage the fleet log must equal the merge of
  // four single-reader engines carved from the same global topology.
  bool parity = true;
  {
    auto p = slot_params(4);
    p.neighbor_gain = 0.0;
    FleetEngine whole{p};
    whole.run_epochs(slot_epochs);
    whole.flush();
    std::vector<fleet::FleetPacket> merged;
    for (int r = 0; r < 4; ++r) {
      auto q = p;
      q.readers = 1;
      q.shards = 1;
      q.first_reader_id = r;
      q.total_readers = 4;
      FleetEngine single{q};
      single.run_epochs(slot_epochs);
      single.flush();
      merged.insert(merged.end(), single.packet_log().begin(),
                    single.packet_log().end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const fleet::FleetPacket& x,
                        const fleet::FleetPacket& y) {
                       if (x.epoch != y.epoch) return x.epoch < y.epoch;
                       if (x.reader != y.reader) return x.reader < y.reader;
                       return x.slot < y.slot;
                     });
    parity = !whole.packet_log().empty() && whole.packet_log() == merged;
    std::printf("  single-reader parity: %s (%zu packets)\n\n",
                parity ? "EXACT" : "MISMATCH", whole.packet_log().size());
  }
  report.gauge("fleet.parity", parity ? 1.0 : 0.0);

  // ---- 3. epoch latency ---------------------------------------------------
  if (!epoch_ms_r4.empty()) {
    const sim::Percentiles p{epoch_ms_r4};
    std::printf("epoch wall time @4 readers: p50=%.1f ms  p99=%.1f ms  "
                "max=%.1f ms\n", p.at(0.5), p.at(0.99), p.at(1.0));
    report.metric("fleet.epoch_ms_p50", p.at(0.5), "ms");
    report.metric("fleet.epoch_ms_p99", p.at(0.99), "ms");
    report.metric("fleet.epoch_ms_max", p.at(1.0), "ms");
  }

  report.write();
  std::printf("sidecar: %s\n", report.path().c_str());
  return 0;
}
