// Reproduces Fig. 12: uplink SNR (a) and packet loss (b) versus bit rate
// for Tags 8, 4, and 11, using the full 500 kS/s waveform simulation and
// the reader's real receive chain. SNR is computed exactly as the paper
// does: backscatter-band power over surrounding-band power via Welch PSD.
//
// Usage: bench_fig12_uplink [--full]
//   default: 100 packets per point, loss scaled to /1000
//   --full:  1000 packets per point (the paper's count; slower)
#include <cmath>
#include <cstdio>
#include <cstring>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/dsp/psd.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/sim/rng.hpp"

#include "bench_report.hpp"

using namespace arachnet;

namespace {

struct TagPoint {
  int tid;
  double amplitude;
  double phase;
};

double measure_snr(const TagPoint& tag, double rate, sim::Rng& rng) {
  // Continuous backscatter of random data for PSD estimation.
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  phy::BitVector data;
  for (int i = 0; i < 512; ++i) data.push_back(rng.bernoulli(0.5));
  acoustic::BackscatterSource src;
  src.chips = phy::Fm0Encoder::encode(data);
  src.chip_rate = rate;
  src.start_s = 0.0;
  src.amplitude = tag.amplitude;
  src.phase_rad = tag.phase;
  const double duration =
      std::max(0.5, static_cast<double>(src.chips.size()) / rate);
  const auto wave = synth.synthesize({src}, duration, rng);

  // Long segments so even 93.75 bps sidebands resolve away from the
  // carrier-leak bin (bin width 7.6 Hz).
  dsp::WelchPsd psd{{.segment_size = 65536, .sample_rate_hz = 500e3}};
  const auto spectrum = psd.estimate(wave);
  const double bin = psd.bin_width();
  const auto bin_of = [&](double hz) {
    return static_cast<std::size_t>(hz / bin + 0.5);
  };

  // FM0's spectrum peaks near +/- chip_rate/2 around the carrier and has a
  // null at the carrier itself; integrate the sidebands with a guard band
  // around the leak, and reference against noise beyond the main lobe
  // (the paper's "surrounding frequency power").
  const double guard = std::max(0.25 * rate, 4.0 * bin);
  const double sig_hi = 1.2 * rate;
  double signal = 0.0;
  std::size_t signal_bins = 0;
  for (double side : {-1.0, 1.0}) {
    const auto lo = bin_of(90e3 + side * sig_hi);
    const auto hi = bin_of(90e3 + side * guard);
    for (std::size_t k = std::min(lo, hi); k <= std::max(lo, hi); ++k) {
      signal += spectrum[k];
      ++signal_bins;
    }
  }
  double noise = 0.0;
  std::size_t noise_bins = 0;
  for (double side : {-1.0, 1.0}) {
    const auto lo = bin_of(90e3 + side * (3.0 * rate + 2e3));
    const auto hi = bin_of(90e3 + side * (3.0 * rate + 6e3));
    for (std::size_t k = std::min(lo, hi); k <= std::max(lo, hi); ++k) {
      noise += spectrum[k];
      ++noise_bins;
    }
  }
  const double noise_density = noise / static_cast<double>(noise_bins);
  return 10.0 *
         std::log10(signal / (noise_density * static_cast<double>(signal_bins)));
}

int measure_loss(const TagPoint& tag, double rate, int packets,
                 sim::Rng& rng) {
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  reader::RxChain::Params rp;
  rp.chip_rate = rate;
  reader::RxChain rx{rp};
  // Warm the chain (leak estimate) before counting.
  rx.process(synth.synthesize({}, 0.05, rng));

  int received = 0;
  for (int i = 0; i < packets; ++i) {
    const phy::UlPacket pkt{
        .tid = static_cast<std::uint8_t>(tag.tid & 0xF),
        .payload = static_cast<std::uint16_t>(i & 0xFFF)};
    acoustic::BackscatterSource src;
    src.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
    src.chip_rate = rate;
    src.start_s = 0.01;
    src.amplitude = tag.amplitude;
    src.phase_rad = tag.phase;
    const double duration = 0.02 + 84.0 / rate;
    rx.clear_packets();
    rx.process(synth.synthesize({src}, duration, rng));
    for (const auto& p : rx.packets()) {
      if (p.packet == pkt) {
        ++received;
        break;
      }
    }
    rx.clear_iq_points();
  }
  return packets - received;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const int packets = full ? 1000 : 100;

  const auto deployment = acoustic::Deployment::onvo_l60();
  const TagPoint tags[] = {
      {8, deployment.backscatter_rx_amplitude(8), deployment.backscatter_phase(8)},
      {4, deployment.backscatter_rx_amplitude(4), deployment.backscatter_phase(4)},
      {11, deployment.backscatter_rx_amplitude(11),
       deployment.backscatter_phase(11)},
  };
  const double rates[] = {93.75, 187.5, 375.0, 750.0, 1500.0, 3000.0};

  arachnet::bench::Report report{"fig12_uplink"};
  report.counter("packets_per_point", static_cast<std::uint64_t>(packets));

  std::printf("=== Fig. 12(a): Uplink SNR vs Bit Rate (dB) ===\n\n");
  std::printf("%-9s %8s %8s %8s\n", "rate", "Tag 8", "Tag 4", "Tag 11");
  sim::Rng rng{2025};
  char name[48];
  for (double rate : rates) {
    std::printf("%-9.5g", rate);
    for (const auto& tag : tags) {
      const double snr = measure_snr(tag, rate, rng);
      std::printf(" %8.1f", snr);
      std::snprintf(name, sizeof(name), "tag%d.snr_db.r%g", tag.tid, rate);
      report.metric(name, snr, "dB");
    }
    std::printf("\n");
  }
  std::printf("\npaper anchors: SNR falls ~3 dB per rate doubling; Tag 8\n"
              ">= 11.7 dB at 3000 bps; Tag 11 ~18.1 dB at <= 750 bps.\n\n");

  std::printf("=== Fig. 12(b): Packet Loss per 1000 Sent ===\n");
  std::printf("(%d packets per point%s)\n\n", packets,
              full ? "" : ", scaled to /1000");
  std::printf("%-9s %8s %8s %8s\n", "rate", "Tag 8", "Tag 4", "Tag 11");
  for (double rate : rates) {
    std::printf("%-9.5g", rate);
    for (const auto& tag : tags) {
      const int lost = measure_loss(tag, rate, packets, rng);
      std::printf(" %8.0f", 1000.0 * lost / packets);
      std::snprintf(name, sizeof(name), "tag%d.loss_per_1000.r%g", tag.tid,
                    rate);
      report.metric(name, 1000.0 * lost / packets);
    }
    std::printf("\n");
  }
  std::printf("\npaper: loss grows slightly with bit rate; at the default\n"
              "375 bps all three tags are near-lossless. Tag 11's link only\n"
              "supports rates up to 750 bps (SNR-limited beyond).\n");
  return 0;
}
