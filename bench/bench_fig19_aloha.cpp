// Reproduces Fig. 19 (Appendix B): per-tag transmission and collision
// statistics of a pure-ALOHA baseline under ARACHNET's hardware
// constraints. Each battery-free tag transmits whenever it reaches HTH,
// recharges from LTH (15.2% of the cold-start time, +2% Gaussian noise),
// and collides whenever its 200 ms packet overlaps any other.
#include <cstdio>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/net/aloha.hpp"

#include "bench_report.hpp"

using namespace arachnet;

int main() {
  // Per-tag cold-start charging times from the calibrated deployment.
  const auto deployment = acoustic::Deployment::onvo_l60();
  std::vector<net::AlohaSimulator::TagSpec> tags;
  for (const auto& site : deployment.tags()) {
    energy::Harvester h{energy::Harvester::Params{}};
    h.set_pzt_peak_voltage(deployment.tag_pzt_peak_voltage(site.tid));
    tags.push_back({site.tid, h.charge_time(0.0, h.cutoff().high_threshold())});
  }

  net::AlohaSimulator sim{{.seed = 11}, tags};
  const auto stats = sim.run(10000.0);

  std::printf("=== Fig. 19: ALOHA Baseline, 10,000 s Simulation ===\n\n");
  std::printf("%-5s %12s %12s %12s %12s\n", "Tag", "charge (s)", "total TX",
              "collided", "success");
  for (std::size_t i = 0; i < stats.per_tag.size(); ++i) {
    const auto& t = stats.per_tag[i];
    std::printf("%-5d %12.1f %12lld %12lld %11.1f%%\n", t.tid,
                tags[i].full_charge_s, static_cast<long long>(t.transmissions),
                static_cast<long long>(t.collided),
                100.0 * t.success_rate());
  }
  std::printf("\ntotal transmissions: %lld, collided: %lld\n",
              static_cast<long long>(stats.total_transmissions()),
              static_cast<long long>(stats.total_collided()));
  std::printf("overall collision-free rate: %.1f%% (paper: 34.0%%)\n",
              100.0 * stats.overall_success_rate());
  arachnet::bench::Report report{"fig19_aloha"};
  report.counter("total_transmissions",
                 static_cast<std::uint64_t>(stats.total_transmissions()));
  report.counter("total_collided",
                 static_cast<std::uint64_t>(stats.total_collided()));
  report.metric("overall_success_rate", stats.overall_success_rate());
  std::printf("\npaper: fast-charging tags (Tag 8, 4.5 s) transmit >11,000\n"
              "times yet collide in over 60%% of attempts; slow tags\n"
              "(Tag 11, 56.2 s) transmit rarely and still collide >70%%.\n"
              "ALOHA neither uses the channel well nor shares it fairly —\n"
              "the case for the coordinated slot protocol.\n");
  return 0;
}
