// Reproduces Fig. 19 (Appendix B): per-tag transmission and collision
// statistics of a pure-ALOHA baseline under ARACHNET's hardware
// constraints. Each battery-free tag transmits whenever it reaches HTH,
// recharges from LTH (15.2% of the cold-start time, +2% Gaussian noise),
// and collides whenever its 200 ms packet overlaps any other.
//
// Usage: bench_fig19_aloha [--jobs N]. The per-tag charge-time
// calibration runs as a sweep-engine grid; the ALOHA simulation itself is
// one globally-coupled run (every tag can collide with every other), so
// it executes as a single trial.
#include <cstdio>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/net/aloha.hpp"
#include "arachnet/sim/sweep.hpp"

#include "bench_report.hpp"
#include "sweep_support.hpp"

using namespace arachnet;

int main(int argc, char** argv) {
  const std::size_t jobs = arachnet::bench::parse_jobs(argc, argv);
  telemetry::MetricsRegistry metrics;
  sim::SweepEngine engine{{.jobs = jobs, .metrics = &metrics}};

  // Per-tag cold-start charging times from the calibrated deployment,
  // one sweep trial per tag.
  const auto deployment = acoustic::Deployment::onvo_l60();
  const auto& sites = deployment.tags();
  const auto charge_s = engine.run_grid<double>(
      sites.size(), 1,
      [&](const sim::TrialSpec& t, sim::Rng&, sim::TrialScratch&) {
        energy::Harvester h{energy::Harvester::Params{}};
        h.set_pzt_peak_voltage(
            deployment.tag_pzt_peak_voltage(sites[t.config].tid));
        return h.charge_time(0.0, h.cutoff().high_threshold());
      });
  std::vector<net::AlohaSimulator::TagSpec> tags;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    tags.push_back({sites[i].tid, charge_s[i]});
  }

  // The baseline simulation is a single coupled system — one trial.
  const auto all_stats = engine.run_grid<net::AlohaSimulator::Stats>(
      1, 1, [&](const sim::TrialSpec&, sim::Rng&, sim::TrialScratch&) {
        net::AlohaSimulator sim{{.seed = 11}, tags};
        return sim.run(10000.0);
      });
  const auto& stats = all_stats.front();

  std::printf("=== Fig. 19: ALOHA Baseline, 10,000 s Simulation ===\n\n");
  std::printf("%-5s %12s %12s %12s %12s\n", "Tag", "charge (s)", "total TX",
              "collided", "success");
  for (std::size_t i = 0; i < stats.per_tag.size(); ++i) {
    const auto& t = stats.per_tag[i];
    std::printf("%-5d %12.1f %12lld %12lld %11.1f%%\n", t.tid,
                tags[i].full_charge_s, static_cast<long long>(t.transmissions),
                static_cast<long long>(t.collided),
                100.0 * t.success_rate());
  }
  std::printf("\ntotal transmissions: %lld, collided: %lld\n",
              static_cast<long long>(stats.total_transmissions()),
              static_cast<long long>(stats.total_collided()));
  std::printf("overall collision-free rate: %.1f%% (paper: 34.0%%)\n",
              100.0 * stats.overall_success_rate());
  arachnet::bench::Report report{"fig19_aloha"};
  report.counter("total_transmissions",
                 static_cast<std::uint64_t>(stats.total_transmissions()));
  report.counter("total_collided",
                 static_cast<std::uint64_t>(stats.total_collided()));
  report.metric("overall_success_rate", stats.overall_success_rate());
  std::printf("\npaper: fast-charging tags (Tag 8, 4.5 s) transmit >11,000\n"
              "times yet collide in over 60%% of attempts; slow tags\n"
              "(Tag 11, 56.2 s) transmit rarely and still collide >70%%.\n"
              "ALOHA neither uses the channel well nor shares it fairly —\n"
              "the case for the coordinated slot protocol.\n");
  arachnet::bench::report_sweep(report, engine);
  report.snapshot(metrics.snapshot());
  return 0;
}
