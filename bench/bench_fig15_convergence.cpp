// Reproduces Table 3 and Fig. 15: first convergence time of the
// distributed slot allocation for the nine transmission patterns.
// Convergence = slots until the reader observes 32 consecutive
// collision-free slots after broadcasting RESET.
//
// Usage: bench_fig15_convergence [seeds] [--jobs N]   (default 25 seeds,
// jobs = hardware concurrency). Per-seed trials run on the parallel sweep
// engine; printed numbers are bit-identical for any --jobs value.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "arachnet/core/convergence_sweep.hpp"
#include "arachnet/core/experiment_configs.hpp"
#include "arachnet/sim/sweep.hpp"

#include "bench_report.hpp"
#include "sweep_support.hpp"

using namespace arachnet;
using core::ExperimentConfig;

namespace {

struct Result {
  double p25, median, p75, max;
  int failures;
};

Result measure(sim::SweepEngine& engine, const ExperimentConfig& cfg,
               int seeds) {
  // Defaults match the historical bench: seed = k*7919 + 13, settle 3,
  // censor at 40000 slots.
  const core::ConvergenceSweep sweep{};
  const auto times = core::convergence_times(engine, cfg, sweep, seeds);
  Result r;
  r.failures = static_cast<int>(sim::count_censored(times));
  r.p25 = sim::reduce_percentile(times, 0.25);
  r.median = sim::reduce_median(times);
  r.p75 = sim::reduce_percentile(times, 0.75);
  r.max = sim::reduce_max(times);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = arachnet::bench::parse_jobs(argc, argv);
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 25;
  arachnet::bench::Report report{"fig15_convergence"};
  telemetry::MetricsRegistry metrics;
  sim::SweepEngine engine{{.jobs = jobs, .metrics = &metrics}};
  char name[48];
  const auto report_cfg = [&](const char* cfg_name, const Result& r) {
    std::snprintf(name, sizeof(name), "%s.p25_slots", cfg_name);
    report.metric(name, r.p25, "slots");
    std::snprintf(name, sizeof(name), "%s.median_slots", cfg_name);
    report.metric(name, r.median, "slots");
    std::snprintf(name, sizeof(name), "%s.p75_slots", cfg_name);
    report.metric(name, r.p75, "slots");
    std::snprintf(name, sizeof(name), "%s.max_slots", cfg_name);
    report.metric(name, r.max, "slots");
    std::snprintf(name, sizeof(name), "%s.failures", cfg_name);
    report.counter(name, static_cast<std::uint64_t>(r.failures));
  };

  std::printf("=== Table 3: Tag Transmission Patterns ===\n\n");
  std::printf("%-10s", "TX Period");
  for (const auto& cfg : core::table3_configs()) {
    std::printf("%6s", cfg.name.c_str());
  }
  std::printf("\n");
  const auto per_row = [](const char* label, auto getter) {
    std::printf("%-10s", label);
    for (const auto& cfg : core::table3_configs()) {
      std::printf("%6d", getter(cfg));
    }
    std::printf("\n");
  };
  per_row("4 slots", [](const ExperimentConfig& c) { return c.tags_period_4; });
  per_row("8 slots", [](const ExperimentConfig& c) { return c.tags_period_8; });
  per_row("16 slots",
          [](const ExperimentConfig& c) { return c.tags_period_16; });
  per_row("32 slots",
          [](const ExperimentConfig& c) { return c.tags_period_32; });
  per_row("Tag #", [](const ExperimentConfig& c) { return c.tag_count(); });
  std::printf("%-10s", "Slot Util.");
  for (const auto& cfg : core::table3_configs()) {
    std::printf("%6.3g", cfg.utilization());
  }
  std::printf("\n\n");

  std::printf("=== Fig. 15(a): First Convergence Time, Fixed 12 Tags ===\n");
  std::printf("(%d seeds per configuration; slots)\n\n", seeds);
  std::printf("%-5s %8s %8s %10s %10s %10s %8s\n", "cfg", "U", "tags",
              "p25", "median", "p75", "max");
  for (const char* cfg_name : {"c1", "c2", "c3", "c4", "c5"}) {
    const auto& cfg = core::table3_config(cfg_name);
    const auto r = measure(engine, cfg, seeds);
    std::printf("%-5s %8.4g %8d %10.0f %10.0f %10.0f %8.0f%s\n", cfg_name,
                cfg.utilization(), cfg.tag_count(), r.p25, r.median, r.p75,
                r.max, r.failures ? " (!)" : "");
    report_cfg(cfg_name, r);
  }
  std::printf("\npaper: median rises from 139 (c1, U=0.38) to 1712 (c5,\n"
              "U=1.0) — convergence time grows sharply with utilization.\n\n");

  std::printf("=== Fig. 15(b): First Convergence Time, Fixed U = 0.75 ===\n\n");
  std::printf("%-5s %8s %8s %10s %10s %10s %8s\n", "cfg", "U", "tags",
              "p25", "median", "p75", "max");
  for (const char* cfg_name : {"c2", "c6", "c7", "c8", "c9"}) {
    const auto& cfg = core::table3_config(cfg_name);
    const auto r = measure(engine, cfg, seeds);
    std::printf("%-5s %8.4g %8d %10.0f %10.0f %10.0f %8.0f%s\n", cfg_name,
                cfg.utilization(), cfg.tag_count(), r.p25, r.median, r.p75,
                r.max, r.failures ? " (!)" : "");
    // c2 already reported in the Fig. 15(a) block above.
    if (std::strcmp(cfg_name, "c2") != 0) report_cfg(cfg_name, r);
  }
  std::printf("\npaper: at fixed utilization the spread across period mixes\n"
              "is small — slot utilization, not the period mix, is the\n"
              "predominant factor.\n");
  arachnet::bench::report_sweep(report, engine);
  report.snapshot(metrics.snapshot());
  return 0;
}
