// Appendix C, computed exactly: builds the absorbing Markov chain of the
// distributed slot allocation for small networks, verifies Theorem 4
// (every state reaches the collision-free absorbing class), and compares
// the closed-form expected absorption time against the slot simulator
// under the same idealized assumptions.
#include <cstdio>
#include <vector>

#include "arachnet/core/markov_theory.hpp"
#include "arachnet/core/slot_network.hpp"

#include "bench_report.hpp"

using namespace arachnet::core;

namespace {

double simulate_mean(const std::vector<int>& periods, int runs) {
  double sum = 0.0;
  for (int seed = 1; seed <= runs; ++seed) {
    SlotNetwork::Params sp;
    sp.seed = static_cast<std::uint64_t>(seed) * 131 + 7;
    sp.capture_prob = 0.0;
    sp.collision_detect_prob = 1.0;
    sp.false_collision_prob = 0.0;
    sp.empty_gating = false;
    sp.reader.future_collision_avoidance = false;
    std::vector<SlotNetwork::TagSpec> specs;
    for (std::size_t i = 0; i < periods.size(); ++i) {
      specs.push_back({.tid = static_cast<int>(i) + 1,
                       .period = periods[i],
                       .dl_loss = 0.0,
                       .ul_loss = 0.0});
    }
    SlotNetwork net{sp, specs};
    long slots = 0;
    while (!net.all_settled_collision_free() && slots < 100000) {
      net.step();
      ++slots;
    }
    sum += static_cast<double>(slots);
  }
  return sum / runs;
}

}  // namespace

int main() {
  arachnet::bench::Report report{"appendix_c"};
  char name[64];
  std::printf("=== Appendix C: Convergence, Exactly ===\n\n");
  std::printf("state = (slot phase, per-tag {MIGRATE/SETTLE, offset, NACK "
              "counter}); N = 3\n\n");
  std::printf("%-12s %8s %10s %10s %14s %16s\n", "periods", "states",
              "absorbing", "Thm. 4?", "theory E[T]", "simulated mean");

  const std::vector<std::vector<int>> configs{
      {2, 2}, {2, 4}, {4, 4}, {2, 4, 4}, {4, 4, 4}};
  for (const auto& periods : configs) {
    MarkovAnalysis mk{{periods, 3}};
    char label[32];
    int off = 0;
    for (int p : periods) {
      off += std::snprintf(label + off, sizeof(label) - off, "%d,", p);
    }
    label[off ? off - 1 : 0] = '\0';
    const bool big = mk.state_count() > 4096;
    std::printf("%-12s %8zu %10zu %10s", label, mk.state_count(),
                mk.absorbing_count(),
                mk.is_absorbing_chain() ? "yes" : "NO");
    std::snprintf(name, sizeof(name), "p%s.absorbing_chain", label);
    report.gauge(name, mk.is_absorbing_chain() ? 1.0 : 0.0);
    if (big) {
      // Fundamental-matrix solve is cubic; skip E[T] for the largest case.
      std::printf(" %14s", "(skipped)");
    } else {
      std::printf(" %14.2f", mk.expected_absorption_time());
      std::snprintf(name, sizeof(name), "p%s.theory_et_slots", label);
      report.metric(name, mk.expected_absorption_time(), "slots");
    }
    const double sim_mean = simulate_mean(periods, 800);
    std::printf(" %16.2f\n", sim_mean);
    std::snprintf(name, sizeof(name), "p%s.sim_mean_slots", label);
    report.metric(name, sim_mean, "slots");
  }

  std::printf("\nTheorem 4 verified state-by-state: from EVERY reachable\n"
              "configuration the chain can reach a collision-free absorbing\n"
              "state, so absorption happens with probability 1. The\n"
              "simulator's mean sits one slot above the closed form (its\n"
              "first beacon precedes any feedback), confirming that the\n"
              "implementation realizes the proven chain.\n");
  return 0;
}
