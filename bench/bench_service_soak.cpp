// Multi-session reader service soak: N concurrent 500 kS/s capture
// sessions multiplexed over one shared worker pool (ReaderService).
//
// Two phases:
//  1. paced  — every session streams real-time-paced DAQ blocks (10 000
//     samples every 20 ms) carrying real packet waveforms; reports
//     end-to-end block latency p50/p99 (submit -> decoded), drop rate,
//     decoded packets, and RSS growth across the soak (memory-boundedness).
//  2. saturation — the same fleet is fed as fast as admission allows;
//     aggregate decoded samples/s gives the capacity headroom in
//     equivalent 500 kS/s sessions per core.
//
// Sidecar: BENCH_service_soak.json (soak.* rows), gated in CI by
// ci/check_service_soak.py.
//
//   bench_service_soak [--sessions=8] [--seconds=2.0] [--workers=0]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/reader/service/reader_service.hpp"
#include "arachnet/telemetry/metrics.hpp"

#include "bench_report.hpp"

using namespace arachnet;
using reader::service::ReaderService;
using reader::service::SessionConfig;
using reader::service::SessionId;

namespace {

constexpr double kSampleRate = 500000.0;  // the paper's DAQ rate
constexpr std::size_t kBlockSamples = 10000;
constexpr double kBlockPeriodS =
    static_cast<double>(kBlockSamples) / kSampleRate;  // 20 ms

/// Resident set size in KiB (0 when /proc is unavailable).
std::size_t rss_kib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kib = static_cast<std::size_t>(std::strtoul(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kib;
}

/// One 0.28 s uplink window (140 000 samples) carrying one packet — the
/// template every session streams cyclically.
std::vector<double> render_template() {
  sim::Rng rng{21};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  const phy::UlPacket pkt{.tid = 3, .payload = 0x5AA5};
  acoustic::BackscatterSource s;
  s.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
  s.chip_rate = 375.0;
  s.start_s = 0.02;
  s.amplitude = 0.2;
  s.phase_rad = 1.0;
  return synth.synthesize({s}, 0.28, rng);
}

struct ProducerTotals {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t packets = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 8;
  double seconds = 2.0;
  std::size_t workers = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sessions=", 0) == 0) {
      sessions = static_cast<std::size_t>(std::stoul(arg.substr(11)));
    } else if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::stod(arg.substr(10));
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    }
  }

  telemetry::MetricsRegistry registry;
  ReaderService::Params params;
  params.workers = workers;
  params.metrics = &registry;
  params.dispatch_capacity = 4 * sessions;
  // Budget the fleet so the requested session count is always admitted.
  {
    ReaderService probe{ReaderService::Params{.workers = workers}};
    const double per_core = static_cast<double>(sessions) /
                                static_cast<double>(probe.worker_count()) +
                            1.0;
    params.sessions_per_core = per_core > 4.0 ? per_core : 4.0;
  }
  ReaderService svc{params};
  svc.start();

  const auto wave = render_template();
  const std::size_t blocks_per_session =
      static_cast<std::size_t>(seconds / kBlockPeriodS);

  arachnet::bench::Report report{"service_soak"};
  std::printf("=== Reader service soak: %zu sessions @ %.0f kS/s over %zu "
              "workers ===\n\n",
              sessions, kSampleRate / 1000.0, svc.worker_count());

  // ------------------------------------------------------------ phase 1
  std::vector<SessionId> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionConfig cfg;
    cfg.priority = 1;
    cfg.ttl_s = 0.25;  // stale blocks are worthless a slot later
    cfg.max_blocks_in_flight = 8;
    const auto id = svc.open_session(cfg);
    if (!id.has_value()) {
      std::fprintf(stderr, "session %zu rejected at admission\n", i);
      return 1;
    }
    ids.push_back(*id);
  }

  const std::size_t rss_before = rss_kib();
  std::vector<ProducerTotals> totals(sessions);
  std::vector<std::thread> producers;
  producers.reserve(sessions);
  const auto paced_t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < sessions; ++i) {
    producers.emplace_back([&, i] {
      auto& t = totals[i];
      std::size_t off = (i * 17) % (wave.size() / kBlockSamples);
      auto next = std::chrono::steady_clock::now();
      for (std::size_t b = 0; b < blocks_per_session; ++b) {
        next += std::chrono::microseconds(
            static_cast<long>(kBlockPeriodS * 1e6));
        std::this_thread::sleep_until(next);
        auto blk = svc.acquire_block(ids[i]);
        const auto* src = wave.data() + off * kBlockSamples;
        blk.assign(src, src + kBlockSamples);
        off = (off + 1) % (wave.size() / kBlockSamples);
        ++t.submitted;
        if (svc.submit(ids[i], std::move(blk))) ++t.accepted;
        while (svc.poll_packet(ids[i]).has_value()) ++t.packets;
      }
    });
  }
  for (auto& p : producers) p.join();
  // Let the tail of the pipeline land, then drain the outputs.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (std::size_t i = 0; i < sessions; ++i) {
    while (svc.poll_packet(ids[i]).has_value()) ++totals[i].packets;
  }
  const double paced_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    paced_t0)
          .count();
  const std::size_t rss_after = rss_kib();

  ProducerTotals sum;
  for (const auto& t : totals) {
    sum.submitted += t.submitted;
    sum.accepted += t.accepted;
    sum.packets += t.packets;
  }
  const auto svc_stats = svc.stats();
  const double drop_rate =
      sum.submitted == 0
          ? 0.0
          : static_cast<double>(sum.submitted - sum.accepted) /
                static_cast<double>(sum.submitted);

  // End-to-end block latency from the service's own histogram.
  const auto snap = registry.snapshot();
  double p50 = 0.0;
  double p99 = 0.0;
  for (const auto& h : snap.histograms) {
    if (h.name == "service.block_ms") {
      p50 = h.percentile(0.50);
      p99 = h.percentile(0.99);
    }
  }
  const double rss_growth_kib =
      rss_after >= rss_before
          ? static_cast<double>(rss_after - rss_before)
          : 0.0;

  std::printf("paced phase (%.2f s wall):\n", paced_wall_s);
  std::printf("  blocks submitted   %8llu\n",
              static_cast<unsigned long long>(sum.submitted));
  std::printf("  blocks accepted    %8llu (drop rate %.4f)\n",
              static_cast<unsigned long long>(sum.accepted), drop_rate);
  std::printf("  blocks processed   %8llu\n",
              static_cast<unsigned long long>(svc_stats.blocks_processed));
  std::printf("  packets decoded    %8llu\n",
              static_cast<unsigned long long>(sum.packets));
  std::printf("  block latency      p50 %.3f ms   p99 %.3f ms\n", p50, p99);
  std::printf("  rss growth         %8.0f KiB\n\n", rss_growth_kib);

  report.counter("soak.sessions", sessions);
  report.counter("soak.workers", svc.worker_count());
  report.gauge("soak.sessions_per_core",
               static_cast<double>(sessions) /
                   static_cast<double>(svc.worker_count()));
  report.counter("soak.blocks_submitted", sum.submitted);
  report.counter("soak.blocks_accepted", sum.accepted);
  report.counter("soak.blocks_processed", svc_stats.blocks_processed);
  report.counter("soak.packets", sum.packets);
  report.metric("soak.paced_drop_rate", drop_rate);
  report.metric("soak.block_ms.p50", p50, "ms");
  report.metric("soak.block_ms.p99", p99, "ms");
  report.metric("soak.rss_growth_kib", rss_growth_kib, "KiB");

  // ------------------------------------------------------------ phase 2
  // Saturation: feed the same fleet as fast as the per-session caps
  // admit for ~0.5 s; aggregate decode rate -> capacity in equivalent
  // real-time sessions.
  std::uint64_t samples_before = 0;
  for (const auto id : ids) {
    samples_before += svc.session_stats(id)->samples_processed;
  }
  const auto sat_t0 = std::chrono::steady_clock::now();
  const auto sat_deadline = sat_t0 + std::chrono::milliseconds(500);
  std::size_t off = 0;
  while (std::chrono::steady_clock::now() < sat_deadline) {
    bool any = false;
    for (const auto id : ids) {
      auto blk = svc.acquire_block(id);
      const auto* src = wave.data() + off * kBlockSamples;
      blk.assign(src, src + kBlockSamples);
      if (svc.submit(id, std::move(blk))) any = true;
      svc.poll_packet(id);
    }
    off = (off + 1) % (wave.size() / kBlockSamples);
    if (!any) std::this_thread::yield();  // every cap hit: let the pool run
  }
  // Drain what was accepted before the cutoff.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const double sat_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sat_t0)
          .count();
  std::uint64_t samples_after = 0;
  for (const auto id : ids) {
    samples_after += svc.session_stats(id)->samples_processed;
  }
  const double samples_per_s =
      static_cast<double>(samples_after - samples_before) / sat_wall_s;
  const double capacity_sessions = samples_per_s / kSampleRate;
  const double capacity_per_core =
      capacity_sessions / static_cast<double>(svc.worker_count());

  std::printf("saturation phase (%.2f s wall):\n", sat_wall_s);
  std::printf("  decode throughput  %.2f MS/s aggregate\n",
              samples_per_s / 1e6);
  std::printf("  capacity           %.1f x 500 kS/s sessions "
              "(%.2f sessions/core)\n\n",
              capacity_sessions, capacity_per_core);

  report.metric("soak.samples_per_s", samples_per_s, "S/s");
  report.metric("soak.capacity_sessions", capacity_sessions);
  report.metric("soak.capacity_sessions_per_core", capacity_per_core);

  for (const auto id : ids) svc.close_session(id);
  svc.stop();
  const auto final_stats = svc.stats();
  report.counter("soak.blocks_dropped", final_stats.blocks_dropped);
  report.counter("soak.blocks_expired", final_stats.blocks_expired);

  report.write();
  std::printf("sidecar: %s\n", report.path().c_str());
  return 0;
}
