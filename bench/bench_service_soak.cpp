// Multi-session reader service soak: N concurrent 500 kS/s capture
// sessions multiplexed over one shared worker pool (ReaderService).
//
// Two phases:
//  1. paced  — every session streams real-time-paced DAQ blocks (10 000
//     samples every 20 ms) carrying real packet waveforms; reports
//     end-to-end block latency p50/p99 (submit -> decoded), drop rate,
//     decoded packets, and RSS growth across the soak (memory-boundedness).
//  2. saturation — the same fleet is fed as fast as admission allows;
//     aggregate decoded samples/s gives the capacity headroom in
//     equivalent 500 kS/s sessions per core.
//
// A HealthMonitor rides along the paced phase at the contractual 1 s
// period, streaming MONITOR_service_soak.jsonl next to the bench sidecar,
// and the saturation phase runs interleaved monitor-off/monitor-on rounds
// so soak.monitor.overhead_pct measures what live sampling costs the hot
// path (gated <= 3% by ci/check_monitor_overhead.py).
//
// Sidecar: BENCH_service_soak.json (soak.* rows), gated in CI by
// ci/check_service_soak.py and ci/check_monitor_overhead.py.
//
//   bench_service_soak [--sessions=8] [--seconds=2.0] [--workers=0]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/reader/service/reader_service.hpp"
#include "arachnet/reader/service/service_health.hpp"
#include "arachnet/telemetry/counting_alloc.hpp"
#include "arachnet/telemetry/metrics.hpp"
#include "arachnet/telemetry/monitor.hpp"

#include "bench_report.hpp"

using namespace arachnet;
using reader::service::ReaderService;
using reader::service::SessionConfig;
using reader::service::SessionId;

namespace {

constexpr double kSampleRate = 500000.0;  // the paper's DAQ rate
constexpr std::size_t kBlockSamples = 10000;
constexpr double kBlockPeriodS =
    static_cast<double>(kBlockSamples) / kSampleRate;  // 20 ms

/// Resident set size in KiB (0 when /proc is unavailable).
std::size_t rss_kib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kib = static_cast<std::size_t>(std::strtoul(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kib;
}

/// One 0.28 s uplink window (140 000 samples) carrying one packet — the
/// template every session streams cyclically.
std::vector<double> render_template() {
  sim::Rng rng{21};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  const phy::UlPacket pkt{.tid = 3, .payload = 0x5AA5};
  acoustic::BackscatterSource s;
  s.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
  s.chip_rate = 375.0;
  s.start_s = 0.02;
  s.amplitude = 0.2;
  s.phase_rad = 1.0;
  return synth.synthesize({s}, 0.28, rng);
}

struct ProducerTotals {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t packets = 0;
};

/// MONITOR_service_soak.jsonl next to the bench sidecar (same
/// ARACHNET_BENCH_DIR override as bench_report.hpp).
std::string monitor_jsonl_path() {
  std::string p;
  if (const char* dir = std::getenv("ARACHNET_BENCH_DIR");
      dir != nullptr && dir[0] != '\0') {
    p = dir;
    if (p.back() != '/') p += '/';
  }
  p += "MONITOR_service_soak.jsonl";
  return p;
}

/// p50/p99 of a named registry histogram (zeros when absent/empty).
struct P5099 {
  double p50 = 0.0;
  double p99 = 0.0;
};
P5099 hist_p5099(const telemetry::MetricsSnapshot& snap,
                 std::string_view name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return {h.percentile(0.50), h.percentile(0.99)};
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 8;
  double seconds = 2.0;
  std::size_t workers = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sessions=", 0) == 0) {
      sessions = static_cast<std::size_t>(std::stoul(arg.substr(11)));
    } else if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::stod(arg.substr(10));
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    }
  }

  telemetry::MetricsRegistry registry;
  ReaderService::Params params;
  params.workers = workers;
  params.metrics = &registry;
  params.dispatch_capacity = 4 * sessions;
  // Budget the fleet so the requested session count is always admitted.
  {
    ReaderService probe{ReaderService::Params{.workers = workers}};
    const double per_core = static_cast<double>(sessions) /
                                static_cast<double>(probe.worker_count()) +
                            1.0;
    params.sessions_per_core = per_core > 4.0 ? per_core : 4.0;
  }
  ReaderService svc{params};
  svc.start();

  const auto wave = render_template();
  const std::size_t blocks_per_session =
      static_cast<std::size_t>(seconds / kBlockPeriodS);

  arachnet::bench::Report report{"service_soak"};
  std::printf("=== Reader service soak: %zu sessions @ %.0f kS/s over %zu "
              "workers ===\n\n",
              sessions, kSampleRate / 1000.0, svc.worker_count());

  // ------------------------------------------------------------ phase 1
  std::vector<SessionId> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionConfig cfg;
    cfg.priority = 1;
    cfg.ttl_s = 0.25;  // stale blocks are worthless a slot later
    cfg.max_blocks_in_flight = 8;
    const auto id = svc.open_session(cfg);
    if (!id.has_value()) {
      std::fprintf(stderr, "session %zu rejected at admission\n", i);
      return 1;
    }
    ids.push_back(*id);
  }

  // Live monitor over the paced phase: the contractual 1 s period, JSONL
  // time-series next to the bench sidecar, canonical service watchdogs.
  telemetry::HealthMonitor::Params mon_params;
  mon_params.registry = &registry;
  mon_params.period_s = 1.0;
  mon_params.source = "service_soak";
  mon_params.jsonl_path = monitor_jsonl_path();
  telemetry::HealthMonitor monitor{mon_params};
  reader::service::watch_service(monitor, svc);
  for (const auto id : ids) {
    reader::service::watch_session(monitor, svc, id);
  }
  monitor.start();

  const std::size_t rss_before = rss_kib();
  std::vector<ProducerTotals> totals(sessions);
  std::vector<std::thread> producers;
  producers.reserve(sessions);
  const auto paced_t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < sessions; ++i) {
    producers.emplace_back([&, i] {
      auto& t = totals[i];
      std::size_t off = (i * 17) % (wave.size() / kBlockSamples);
      auto next = std::chrono::steady_clock::now();
      for (std::size_t b = 0; b < blocks_per_session; ++b) {
        next += std::chrono::microseconds(
            static_cast<long>(kBlockPeriodS * 1e6));
        std::this_thread::sleep_until(next);
        auto blk = svc.acquire_block(ids[i]);
        const auto* src = wave.data() + off * kBlockSamples;
        blk.assign(src, src + kBlockSamples);
        off = (off + 1) % (wave.size() / kBlockSamples);
        ++t.submitted;
        if (svc.submit(ids[i], std::move(blk))) ++t.accepted;
        while (svc.poll_packet(ids[i]).has_value()) ++t.packets;
      }
    });
  }
  for (auto& p : producers) p.join();
  // Let the tail of the pipeline land, then drain the outputs.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (std::size_t i = 0; i < sessions; ++i) {
    while (svc.poll_packet(ids[i]).has_value()) ++totals[i].packets;
  }
  const double paced_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    paced_t0)
          .count();
  const std::size_t rss_after = rss_kib();
  monitor.sample_once();  // a final sample so short runs still get >= 1
  monitor.stop();

  ProducerTotals sum;
  for (const auto& t : totals) {
    sum.submitted += t.submitted;
    sum.accepted += t.accepted;
    sum.packets += t.packets;
  }
  const auto svc_stats = svc.stats();
  const double drop_rate =
      sum.submitted == 0
          ? 0.0
          : static_cast<double>(sum.submitted - sum.accepted) /
                static_cast<double>(sum.submitted);

  // End-to-end block latency and its per-stage attribution from the
  // service's own histograms: where inside submit -> packet the time went.
  const auto snap = registry.snapshot();
  const auto block = hist_p5099(snap, "service.block_ms");
  const double p50 = block.p50;
  const double p99 = block.p99;
  const auto st_wait = hist_p5099(snap, "service.stage.dispatch_wait_ms");
  const auto st_proc = hist_p5099(snap, "service.stage.process_ms");
  const auto st_emit = hist_p5099(snap, "service.stage.emit_ms");
  const double rss_growth_kib =
      rss_after >= rss_before
          ? static_cast<double>(rss_after - rss_before)
          : 0.0;

  std::printf("paced phase (%.2f s wall):\n", paced_wall_s);
  std::printf("  blocks submitted   %8llu\n",
              static_cast<unsigned long long>(sum.submitted));
  std::printf("  blocks accepted    %8llu (drop rate %.4f)\n",
              static_cast<unsigned long long>(sum.accepted), drop_rate);
  std::printf("  blocks processed   %8llu\n",
              static_cast<unsigned long long>(svc_stats.blocks_processed));
  std::printf("  packets decoded    %8llu\n",
              static_cast<unsigned long long>(sum.packets));
  std::printf("  block latency      p50 %.3f ms   p99 %.3f ms\n", p50, p99);
  std::printf("    dispatch wait    p50 %.3f ms   p99 %.3f ms\n",
              st_wait.p50, st_wait.p99);
  std::printf("    chain process    p50 %.3f ms   p99 %.3f ms\n",
              st_proc.p50, st_proc.p99);
  std::printf("    packet emit      p50 %.3f ms   p99 %.3f ms\n",
              st_emit.p50, st_emit.p99);
  std::printf("  monitor samples    %8llu (period %.1f s)\n",
              static_cast<unsigned long long>(monitor.samples_taken()),
              monitor.period_s());
  std::printf("  rss growth         %8.0f KiB\n\n", rss_growth_kib);

  report.counter("soak.sessions", sessions);
  report.counter("soak.workers", svc.worker_count());
  report.gauge("soak.sessions_per_core",
               static_cast<double>(sessions) /
                   static_cast<double>(svc.worker_count()));
  report.counter("soak.blocks_submitted", sum.submitted);
  report.counter("soak.blocks_accepted", sum.accepted);
  report.counter("soak.blocks_processed", svc_stats.blocks_processed);
  report.counter("soak.packets", sum.packets);
  report.metric("soak.paced_drop_rate", drop_rate);
  report.metric("soak.block_ms.p50", p50, "ms");
  report.metric("soak.block_ms.p99", p99, "ms");
  report.metric("soak.stage.dispatch_wait_ms.p50", st_wait.p50, "ms");
  report.metric("soak.stage.dispatch_wait_ms.p99", st_wait.p99, "ms");
  report.metric("soak.stage.process_ms.p50", st_proc.p50, "ms");
  report.metric("soak.stage.process_ms.p99", st_proc.p99, "ms");
  report.metric("soak.stage.emit_ms.p50", st_emit.p50, "ms");
  report.metric("soak.stage.emit_ms.p99", st_emit.p99, "ms");
  report.counter("soak.monitor.samples", monitor.samples_taken());
  report.metric("soak.monitor.period_s", monitor.period_s(), "s");
  report.metric("soak.rss_growth_kib", rss_growth_kib, "KiB");

  // ------------------------------------------------------------ phase 2
  // Saturation: feed the same fleet as fast as the per-session caps
  // admit; aggregate decode rate -> capacity in equivalent real-time
  // sessions. Run as interleaved monitor-off / monitor-on rounds (best of
  // each arm, classic A/B against scheduler noise) so the delta is the
  // live-sampling overhead, not drift between two separate runs.
  std::size_t off = 0;
  struct Burst {
    std::uint64_t samples = 0;
    double wall_s = 0.0;
  };
  auto saturate = [&](std::chrono::milliseconds burst) -> Burst {
    std::uint64_t samples_before = 0;
    for (const auto id : ids) {
      samples_before += svc.session_stats(id)->samples_processed;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + burst;
    while (std::chrono::steady_clock::now() < deadline) {
      bool any = false;
      for (const auto id : ids) {
        auto blk = svc.acquire_block(id);
        const auto* src = wave.data() + off * kBlockSamples;
        blk.assign(src, src + kBlockSamples);
        if (svc.submit(id, std::move(blk))) any = true;
        svc.poll_packet(id);
      }
      off = (off + 1) % (wave.size() / kBlockSamples);
      if (!any) std::this_thread::yield();  // every cap hit: let the pool run
    }
    // Drain what was accepted before the cutoff.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::uint64_t samples_after = 0;
    for (const auto id : ids) {
      samples_after += svc.session_stats(id)->samples_processed;
    }
    return {samples_after - samples_before, wall_s};
  };

  // Paired bursts, median-of-ratios. The raw burst rate on a shared host
  // swings ±10% (cgroup quota refill, frequency steps, co-tenants), while
  // the monitor's true per-burst cost is one sampling pass — so the
  // estimator must be robust to a throttle spike landing on one burst.
  // Each pair runs off and on back to back (alternating order so drift
  // cancels), the pair's on/off ratio mostly shares its noise, and the
  // median across pairs discards the pairs a spike split.
  constexpr int kOverheadPairs = 5;
  // Bursts longer than the sampling period, so every on-arm burst pays at
  // least one full sampling pass.
  constexpr auto kBurst = std::chrono::milliseconds(1100);

  // One discarded burst first: the paced phase is mostly idle, so under a
  // cgroup CPU quota the first saturated burst runs on banked quota and
  // measures ~10% fast — the warm-up burns that credit so every measured
  // burst sees the same (throttled) steady state.
  saturate(kBurst);

  auto run_on_arm = [&]() -> Burst {
    // The on-arm runs the monitor exactly as deployed: 1 s period.
    telemetry::HealthMonitor::Params on_params;
    on_params.registry = &registry;
    on_params.period_s = 1.0;
    on_params.source = "service_soak_sat";
    telemetry::HealthMonitor sat_monitor{on_params};
    reader::service::watch_service(sat_monitor, svc);
    for (const auto id : ids) {
      reader::service::watch_session(sat_monitor, svc, id);
    }
    sat_monitor.start();
    const Burst r = saturate(kBurst);
    sat_monitor.stop();
    return r;
  };

  auto rate = [](const Burst& b) {
    return b.wall_s > 0.0 ? static_cast<double>(b.samples) / b.wall_s : 0.0;
  };
  Burst total_off;
  Burst total_on;
  std::vector<double> pair_ratio;  // on-rate / off-rate per pair
  pair_ratio.reserve(kOverheadPairs);
  for (int pair = 0; pair < kOverheadPairs; ++pair) {
    Burst b_off;
    Burst b_on;
    if (pair % 2 == 0) {
      b_off = saturate(kBurst);
      b_on = run_on_arm();
    } else {
      b_on = run_on_arm();
      b_off = saturate(kBurst);
    }
    total_off.samples += b_off.samples;
    total_off.wall_s += b_off.wall_s;
    total_on.samples += b_on.samples;
    total_on.wall_s += b_on.wall_s;
    if (rate(b_off) > 0.0) pair_ratio.push_back(rate(b_on) / rate(b_off));
  }
  std::sort(pair_ratio.begin(), pair_ratio.end());
  const double median_ratio =
      pair_ratio.empty() ? 1.0 : pair_ratio[pair_ratio.size() / 2];

  const double rate_off = rate(total_off);
  const double rate_on = rate(total_on);
  const double samples_per_s = rate_off;
  const double capacity_sessions = samples_per_s / kSampleRate;
  const double capacity_per_core =
      capacity_sessions / static_cast<double>(svc.worker_count());
  const double overhead_pct = (1.0 - median_ratio) * 100.0;

  std::printf("saturation phase (%d x 2 x %lld ms paired bursts):\n",
              kOverheadPairs, static_cast<long long>(kBurst.count()));
  std::printf("  decode throughput  %.2f MS/s aggregate (monitor off)\n",
              rate_off / 1e6);
  std::printf("  with live monitor  %.2f MS/s (overhead %.2f%%)\n",
              rate_on / 1e6, overhead_pct);
  std::printf("  capacity           %.1f x 500 kS/s sessions "
              "(%.2f sessions/core)\n\n",
              capacity_sessions, capacity_per_core);

  report.metric("soak.samples_per_s", samples_per_s, "S/s");
  report.metric("soak.capacity_sessions", capacity_sessions);
  report.metric("soak.capacity_sessions_per_core", capacity_per_core);
  report.metric("soak.monitor.off_samples_per_s", rate_off, "S/s");
  report.metric("soak.monitor.on_samples_per_s", rate_on, "S/s");
  report.metric("soak.monitor.overhead_pct", overhead_pct, "%");

  // ------------------------------------------------------------ phase 3
  // Steady-state allocation audit on the session loop (DESIGN.md Sec.
  // 11): with the monitor off and the fleet quiescent, stream one
  // session's paced schedule twice — the soak above is the warm-up for
  // everything process-wide, so the measured pass must not allocate.
  // Gated == 0 by ci/check_alloc_gate.py.
  {
    const auto id = ids.front();
    const auto stream_once = [&]() {
      std::uint64_t processed = svc.session_stats(id)->blocks_processed;
      std::size_t off_b = 0;
      for (int b = 0; b < 8; ++b) {
        auto blk = svc.acquire_block(id);
        const auto* src = wave.data() + off_b * kBlockSamples;
        blk.assign(src, src + kBlockSamples);
        off_b = (off_b + 1) % (wave.size() / kBlockSamples);
        if (!svc.submit(id, std::move(blk))) continue;
        ++processed;
        // Wait each block out so the dispatch queue stays at the depth
        // the warm-up established (its node free list covers it).
        while (svc.session_stats(id)->blocks_processed < processed) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        while (svc.poll_packet(id).has_value()) {
        }
      }
    };
    telemetry::CountingAllocatorGuard warm_guard;
    stream_once();
    const std::uint64_t warmup_count = warm_guard.allocations();
    telemetry::CountingAllocatorGuard steady_guard;
    stream_once();
    const std::uint64_t steady_count = steady_guard.allocations();
    std::printf("steady-state allocation audit (8 paced blocks/pass):\n");
    std::printf("  warm-up pass       %6llu allocations\n",
                static_cast<unsigned long long>(warmup_count));
    std::printf("  steady-state pass  %6llu allocations\n\n",
                static_cast<unsigned long long>(steady_count));
    report.counter("alloc.warmup_count", warmup_count);
    report.counter("alloc.steady_state_count", steady_count);
  }

  for (const auto id : ids) svc.close_session(id);
  svc.stop();
  const auto final_stats = svc.stats();
  report.counter("soak.blocks_dropped", final_stats.blocks_dropped);
  report.counter("soak.blocks_expired", final_stats.blocks_expired);

  report.write();
  std::printf("sidecar: %s\n", report.path().c_str());
  return 0;
}
