// Ablation studies for the design choices DESIGN.md calls out: the NACK
// threshold N, the capture-effect probability, the collision-detector
// sensitivity, and the protocol refinements — measured on both first
// convergence time (c3 and c5) and long-run efficiency (c3, 6k slots with
// beacon loss).
//
// Usage: bench_ablation_protocol [seeds] [--jobs N]   (default 15 seeds).
// Per-seed convergence trials run on the parallel sweep engine; the
// long-run efficiency probe is one deterministic run and stays serial.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "arachnet/core/convergence_sweep.hpp"
#include "arachnet/core/experiment_configs.hpp"
#include "arachnet/sim/sweep.hpp"

#include "bench_report.hpp"
#include "sweep_support.hpp"

using namespace arachnet;
using core::SlotNetwork;

namespace {

double median_convergence(sim::SweepEngine& engine,
                          const core::ExperimentConfig& cfg,
                          SlotNetwork::Params base, int seeds) {
  core::ConvergenceSweep sweep;
  sweep.base = base;
  sweep.max_slots = 60000;
  sweep.seed_mul = 977;
  sweep.seed_add = 3;
  auto times = core::convergence_times(engine, cfg, sweep, seeds);
  // Historical convention for this bench: censored trials count as the
  // bound itself and the median is the upper middle of the sorted sample.
  for (double& t : times) {
    if (!std::isfinite(t)) t = 60000.0;
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct LongRun {
  double non_empty;
  double collision;
};

LongRun long_run(SlotNetwork::Params base) {
  auto specs = core::table3_config("c3").tag_specs();
  for (auto& s : specs) s.dl_loss = 0.0012;
  base.seed = 808;
  SlotNetwork net{base, specs};
  net.measure_convergence(40000);
  double ne = 0.0, col = 0.0;
  const int slots = 6000;
  for (int i = 0; i < slots; ++i) {
    net.step();
    ne += net.reader().non_empty_ratio();
    col += net.reader().collision_ratio();
  }
  return {ne / slots, col / slots};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = arachnet::bench::parse_jobs(argc, argv);
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 15;
  arachnet::bench::Report report{"ablation_protocol"};
  telemetry::MetricsRegistry metrics;
  sim::SweepEngine engine{{.jobs = jobs, .metrics = &metrics}};
  char name[64];

  std::printf("=== Ablation 1: NACK threshold N (Sec. 5.3; paper uses 3) ===\n\n");
  std::printf("%-4s %18s %18s %12s %12s\n", "N", "conv med (c3)",
              "conv med (c5)", "non-empty", "collision");
  for (int n : {1, 2, 3, 5, 8}) {
    SlotNetwork::Params p;
    p.nack_threshold = n;
    const double c3 =
        median_convergence(engine, core::table3_config("c3"), p, seeds);
    const double c5 =
        median_convergence(engine, core::table3_config("c5"), p, seeds);
    const auto lr = long_run(p);
    std::printf("%-4d %18.0f %18.0f %12.3f %12.3f\n", n, c3, c5, lr.non_empty,
                lr.collision);
    std::snprintf(name, sizeof(name), "nack%d.conv_med_c3_slots", n);
    report.metric(name, c3, "slots");
    std::snprintf(name, sizeof(name), "nack%d.collision", n);
    report.metric(name, lr.collision);
  }
  std::printf("\nsmall N: settled tags give up their slots too eagerly after\n"
              "stray NACKs; large N: colliding pairs take longer to break.\n\n");

  std::printf("=== Ablation 2: capture-effect probability (Sec. 5.3) ===\n\n");
  std::printf("%-9s %18s %12s %12s\n", "capture", "conv med (c3)",
              "non-empty", "collision");
  for (double cap : {0.0, 0.15, 0.3, 0.6, 0.9}) {
    SlotNetwork::Params p;
    p.capture_prob = cap;
    const double c3 =
        median_convergence(engine, core::table3_config("c3"), p, seeds);
    const auto lr = long_run(p);
    std::printf("%-9.2f %18.0f %12.3f %12.3f\n", cap, c3, lr.non_empty,
                lr.collision);
    std::snprintf(name, sizeof(name), "capture%g.conv_med_c3_slots", cap);
    report.metric(name, c3, "slots");
  }
  std::printf("\nthe cluster detector NACKs capture decodes during\n"
              "collisions, so capture strength barely matters — the check\n"
              "that motivates the IQ-cluster design.\n\n");

  std::printf("=== Ablation 3: collision-detector sensitivity ===\n\n");
  std::printf("%-12s %18s %12s %12s\n", "sensitivity", "conv med (c3)",
              "non-empty", "collision");
  for (double det : {0.70, 0.85, 0.95, 0.98, 1.0}) {
    SlotNetwork::Params p;
    p.collision_detect_prob = det;
    const double c3 =
        median_convergence(engine, core::table3_config("c3"), p, seeds);
    const auto lr = long_run(p);
    std::printf("%-12.2f %18.0f %12.3f %12.3f\n", det, c3, lr.non_empty,
                lr.collision);
    std::snprintf(name, sizeof(name), "detect%g.collision", det);
    report.metric(name, lr.collision);
  }
  std::printf("\nmissed collisions get falsely ACKed, settling two tags into\n"
              "the same slot; efficiency degrades steadily below ~95%%.\n\n");

  std::printf("=== Ablation 4: protocol refinements on/off ===\n\n");
  std::printf("%-36s %18s %12s %12s\n", "variant", "conv med (c3)",
              "non-empty", "collision");
  struct Variant {
    const char* name;
    void (*mutate)(SlotNetwork::Params&);
  };
  const Variant variants[] = {
      {"full protocol", [](SlotNetwork::Params&) {}},
      {"no beacon-loss timer (Sec. 5.4)",
       [](SlotNetwork::Params& p) { p.beacon_loss_migrate = false; }},
      {"no EMPTY gating (Sec. 5.5)",
       [](SlotNetwork::Params& p) { p.empty_gating = false; }},
      {"no future-collision avoid (Sec. 5.6)",
       [](SlotNetwork::Params& p) {
         p.reader.future_collision_avoidance = false;
       }},
  };
  int variant_idx = 0;
  for (const auto& v : variants) {
    SlotNetwork::Params p;
    v.mutate(p);
    const double c3 =
        median_convergence(engine, core::table3_config("c3"), p, seeds);
    const auto lr = long_run(p);
    std::printf("%-36s %18.0f %12.3f %12.3f\n", v.name, c3, lr.non_empty,
                lr.collision);
    std::snprintf(name, sizeof(name), "variant%d.conv_med_c3_slots",
                  variant_idx++);
    report.metric(name, c3, "slots");
  }
  std::printf("\nnote: EMPTY gating applies to newly *activated* tags, so a\n"
              "RESET-based measurement shows no difference; its effect is\n"
              "late-arrival integration (see the SlotNetwork late-arrival\n"
              "tests and example_convergence_playground).\n");
  arachnet::bench::report_sweep(report, engine);
  report.snapshot(metrics.snapshot());
  return 0;
}
