// Reproduces Table 2: tag power consumption in RX / TX / IDLE modes
// (model values), then validates them in the event-level firmware
// co-simulation: a tag-8-class link runs the full protocol for several
// minutes and the measured per-mode residency and average power are
// reported against the harvesting budget.
//
// Usage: bench_table2_power [--jobs N]. The co-simulation is one coupled
// event-queue run, so it executes as a single sweep-engine trial (inline
// at --jobs 1); the flag exists for interface uniformity across benches.
#include <cstdio>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/core/tag_firmware.hpp"
#include "arachnet/energy/tag_power.hpp"
#include "arachnet/sim/event_queue.hpp"
#include "arachnet/sim/sweep.hpp"
#include "arachnet/telemetry/metrics.hpp"

#include "bench_report.hpp"
#include "sweep_support.hpp"

using namespace arachnet;

namespace {

/// Everything the co-simulation trial measures, extracted so the firmware
/// and event queue can stay local to the trial.
struct CosimResult {
  bool activated = false;
  double charged_at = 0.0;
  double total_time = 0.0;
  double time_s[3] = {};     ///< RX, TX, IDLE residency
  double energy_mj[3] = {};  ///< RX, TX, IDLE energy
  double avg_power_uw = 0.0;
  long long packets_sent = 0;
  long long beacons_decoded = 0;
  long long brownouts = 0;
};

constexpr energy::TagMode kModes[] = {energy::TagMode::kRx,
                                      energy::TagMode::kTx,
                                      energy::TagMode::kIdle};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = arachnet::bench::parse_jobs(argc, argv);
  arachnet::bench::Report report{"table2_power"};
  telemetry::MetricsRegistry metrics;
  sim::SweepEngine engine{{.jobs = jobs, .metrics = &metrics}};
  std::printf("=== Table 2: Tag Power Consumption in Different Modes ===\n\n");
  const energy::TagPowerModel model;
  std::printf("%-6s %14s %14s %10s %12s\n", "Mode", "MCU I (uA)",
              "Total I (uA)", "V (V)", "Power (uW)");
  char name[48];
  for (auto mode : kModes) {
    std::printf("%-6s %14.1f %14.1f %10.1f %12.1f\n",
                std::string(energy::to_string(mode)).c_str(),
                model.mcu_current_ua(mode), model.total_current_ua(mode),
                model.rail_voltage, model.power_uw(mode));
    std::snprintf(name, sizeof(name), "model.%s.power_uw",
                  std::string(energy::to_string(mode)).c_str());
    report.metric(name, model.power_uw(mode), "uW");
  }
  std::printf("\npaper:  RX 24.8 uW | TX 51.0 uW | IDLE 7.6 uW\n");
  std::printf("interrupt-driven MCU saving vs continuous active (40-50 uA):\n");
  std::printf("  RX %.0f%%, TX %.0f%% (paper: over 80%%)\n\n",
              100.0 * model.mcu_saving_vs_active(energy::TagMode::kRx),
              100.0 * model.mcu_saving_vs_active(energy::TagMode::kTx));

  // ---- Firmware co-simulation validation -----------------------------
  std::printf("--- co-simulation: tag 8 link, 180 slots of ACKed traffic ---\n");
  // Gauges from the co-simulated tag's power meter (bind publishes the
  // already-accumulated totals immediately). Captured by the single trial;
  // no other trial exists, so there is no concurrent access.
  telemetry::MetricsRegistry registry;
  const auto results = engine.run_grid<CosimResult>(
      1, 1, [&](const sim::TrialSpec&, sim::Rng&, sim::TrialScratch&) {
        const auto deployment = acoustic::Deployment::onvo_l60();
        sim::EventQueue queue;
        core::TagFirmware::Params params;
        params.tid = 8;
        params.protocol.period = 4;
        params.protocol.empty_gating = false;
        core::TagFirmware fw{&queue, params, 99};
        fw.set_link(deployment.tag_pzt_peak_voltage(8));
        fw.set_sensor([] { return 0x123; });
        fw.start();

        queue.run_until(10.0);  // charge
        CosimResult r;
        r.activated = fw.activated();
        if (!r.activated) return r;
        r.charged_at = queue.now();
        for (int s = 0; s < 180; ++s) {
          queue.schedule_in(0.01, [&] {
            fw.deliver_beacon(phy::DlBeacon{{.ack = true, .empty = true}});
          });
          queue.run_until(queue.now() + 1.0);
        }

        auto& meter = fw.mcu().mutable_meter();
        meter.bind_metrics(registry, "energy.tag8");
        r.total_time = meter.total_time();
        int m = 0;
        for (auto mode : kModes) {
          r.time_s[m] = meter.time_in(mode);
          r.energy_mj[m] = meter.energy_in(mode) * 1e3;
          ++m;
        }
        r.avg_power_uw = meter.average_power() * 1e6;
        r.packets_sent = static_cast<long long>(fw.packets_sent());
        r.beacons_decoded = static_cast<long long>(fw.beacons_decoded());
        r.brownouts = static_cast<long long>(fw.brownouts());
        return r;
      });
  const CosimResult& r = results.front();
  if (!r.activated) {
    std::printf("tag failed to activate!\n");
    return 1;
  }
  std::printf("activated after %.1f s; ran %.0f s of slots\n", r.charged_at,
              r.total_time);
  std::printf("%-6s %12s %14s\n", "Mode", "time (s)", "energy (mJ)");
  int m = 0;
  for (auto mode : kModes) {
    std::printf("%-6s %12.2f %14.4f\n",
                std::string(energy::to_string(mode)).c_str(), r.time_s[m],
                r.energy_mj[m]);
    std::snprintf(name, sizeof(name), "cosim.%s.time_s",
                  std::string(energy::to_string(mode)).c_str());
    report.metric(name, r.time_s[m], "s");
    std::snprintf(name, sizeof(name), "cosim.%s.energy_mj",
                  std::string(energy::to_string(mode)).c_str());
    report.metric(name, r.energy_mj[m], "mJ");
    ++m;
  }
  std::printf("duty-cycled average power: %.1f uW\n", r.avg_power_uw);
  std::printf("packets sent: %lld, beacons decoded: %lld, brownouts: %lld\n",
              r.packets_sent, r.beacons_decoded, r.brownouts);
  report.metric("cosim.avg_power_uw", r.avg_power_uw, "uW");
  report.counter("packets_sent", static_cast<std::uint64_t>(r.packets_sent));
  report.counter("beacons_decoded",
                 static_cast<std::uint64_t>(r.beacons_decoded));
  report.counter("brownouts", static_cast<std::uint64_t>(r.brownouts));
  report.snapshot(registry.snapshot());
  std::printf("\ncontext: weakest-link net charging power is ~47.1 uW; the\n"
              "duty-cycled average must sit below it for sustained operation\n"
              "(TX alone, 51.0 uW, exceeds it — hence the interrupt-driven\n"
              "design, Sec. 6.2).\n");
  arachnet::bench::report_sweep(report, engine);
  report.snapshot(metrics.snapshot());
  return 0;
}
