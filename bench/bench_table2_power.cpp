// Reproduces Table 2: tag power consumption in RX / TX / IDLE modes
// (model values), then validates them in the event-level firmware
// co-simulation: a tag-8-class link runs the full protocol for several
// minutes and the measured per-mode residency and average power are
// reported against the harvesting budget.
#include <cstdio>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/core/tag_firmware.hpp"
#include "arachnet/energy/tag_power.hpp"
#include "arachnet/sim/event_queue.hpp"
#include "arachnet/telemetry/metrics.hpp"

#include "bench_report.hpp"

using namespace arachnet;

int main() {
  arachnet::bench::Report report{"table2_power"};
  std::printf("=== Table 2: Tag Power Consumption in Different Modes ===\n\n");
  const energy::TagPowerModel model;
  std::printf("%-6s %14s %14s %10s %12s\n", "Mode", "MCU I (uA)",
              "Total I (uA)", "V (V)", "Power (uW)");
  char name[48];
  for (auto mode : {energy::TagMode::kRx, energy::TagMode::kTx,
                    energy::TagMode::kIdle}) {
    std::printf("%-6s %14.1f %14.1f %10.1f %12.1f\n",
                std::string(energy::to_string(mode)).c_str(),
                model.mcu_current_ua(mode), model.total_current_ua(mode),
                model.rail_voltage, model.power_uw(mode));
    std::snprintf(name, sizeof(name), "model.%s.power_uw",
                  std::string(energy::to_string(mode)).c_str());
    report.metric(name, model.power_uw(mode), "uW");
  }
  std::printf("\npaper:  RX 24.8 uW | TX 51.0 uW | IDLE 7.6 uW\n");
  std::printf("interrupt-driven MCU saving vs continuous active (40-50 uA):\n");
  std::printf("  RX %.0f%%, TX %.0f%% (paper: over 80%%)\n\n",
              100.0 * model.mcu_saving_vs_active(energy::TagMode::kRx),
              100.0 * model.mcu_saving_vs_active(energy::TagMode::kTx));

  // ---- Firmware co-simulation validation -----------------------------
  std::printf("--- co-simulation: tag 8 link, 180 slots of ACKed traffic ---\n");
  const auto deployment = acoustic::Deployment::onvo_l60();
  sim::EventQueue queue;
  core::TagFirmware::Params params;
  params.tid = 8;
  params.protocol.period = 4;
  params.protocol.empty_gating = false;
  core::TagFirmware fw{&queue, params, 99};
  fw.set_link(deployment.tag_pzt_peak_voltage(8));
  fw.set_sensor([] { return 0x123; });
  fw.start();

  queue.run_until(10.0);  // charge
  if (!fw.activated()) {
    std::printf("tag failed to activate!\n");
    return 1;
  }
  const double charged_at = queue.now();
  for (int s = 0; s < 180; ++s) {
    queue.schedule_in(0.01, [&] {
      fw.deliver_beacon(phy::DlBeacon{{.ack = true, .empty = true}});
    });
    queue.run_until(queue.now() + 1.0);
  }

  auto& meter = fw.mcu().mutable_meter();
  // Live gauges from the co-simulated tag's power meter (bind publishes
  // the already-accumulated totals immediately).
  telemetry::MetricsRegistry registry;
  meter.bind_metrics(registry, "energy.tag8");
  std::printf("activated after %.1f s; ran %.0f s of slots\n", charged_at,
              meter.total_time());
  std::printf("%-6s %12s %14s\n", "Mode", "time (s)", "energy (mJ)");
  for (auto mode : {energy::TagMode::kRx, energy::TagMode::kTx,
                    energy::TagMode::kIdle}) {
    std::printf("%-6s %12.2f %14.4f\n",
                std::string(energy::to_string(mode)).c_str(),
                meter.time_in(mode), meter.energy_in(mode) * 1e3);
    std::snprintf(name, sizeof(name), "cosim.%s.time_s",
                  std::string(energy::to_string(mode)).c_str());
    report.metric(name, meter.time_in(mode), "s");
    std::snprintf(name, sizeof(name), "cosim.%s.energy_mj",
                  std::string(energy::to_string(mode)).c_str());
    report.metric(name, meter.energy_in(mode) * 1e3, "mJ");
  }
  std::printf("duty-cycled average power: %.1f uW\n",
              meter.average_power() * 1e6);
  std::printf("packets sent: %lld, beacons decoded: %lld, brownouts: %lld\n",
              static_cast<long long>(fw.packets_sent()),
              static_cast<long long>(fw.beacons_decoded()),
              static_cast<long long>(fw.brownouts()));
  report.metric("cosim.avg_power_uw", meter.average_power() * 1e6, "uW");
  report.counter("packets_sent",
                 static_cast<std::uint64_t>(fw.packets_sent()));
  report.counter("beacons_decoded",
                 static_cast<std::uint64_t>(fw.beacons_decoded()));
  report.counter("brownouts", static_cast<std::uint64_t>(fw.brownouts()));
  report.snapshot(registry.snapshot());
  std::printf("\ncontext: weakest-link net charging power is ~47.1 uW; the\n"
              "duty-cycled average must sit below it for sustained operation\n"
              "(TX alone, 51.0 uW, exceeds it — hence the interrupt-driven\n"
              "design, Sec. 6.2).\n");
  return 0;
}
