file(REMOVE_RECURSE
  "CMakeFiles/example_biw_monitoring.dir/biw_monitoring.cpp.o"
  "CMakeFiles/example_biw_monitoring.dir/biw_monitoring.cpp.o.d"
  "example_biw_monitoring"
  "example_biw_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_biw_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
