# Empty compiler generated dependencies file for example_biw_monitoring.
# This may be replaced when dependencies are built.
