file(REMOVE_RECURSE
  "CMakeFiles/example_convergence_playground.dir/convergence_playground.cpp.o"
  "CMakeFiles/example_convergence_playground.dir/convergence_playground.cpp.o.d"
  "example_convergence_playground"
  "example_convergence_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_convergence_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
