# Empty dependencies file for example_convergence_playground.
# This may be replaced when dependencies are built.
