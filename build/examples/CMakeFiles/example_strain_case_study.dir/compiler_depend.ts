# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_strain_case_study.
