# Empty dependencies file for example_strain_case_study.
# This may be replaced when dependencies are built.
