file(REMOVE_RECURSE
  "CMakeFiles/example_strain_case_study.dir/strain_case_study.cpp.o"
  "CMakeFiles/example_strain_case_study.dir/strain_case_study.cpp.o.d"
  "example_strain_case_study"
  "example_strain_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_strain_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
