file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_aloha.dir/bench_fig19_aloha.cpp.o"
  "CMakeFiles/bench_fig19_aloha.dir/bench_fig19_aloha.cpp.o.d"
  "bench_fig19_aloha"
  "bench_fig19_aloha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_aloha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
