# Empty dependencies file for bench_fig19_aloha.
# This may be replaced when dependencies are built.
