# Empty compiler generated dependencies file for bench_appendix_c.
# This may be replaced when dependencies are built.
