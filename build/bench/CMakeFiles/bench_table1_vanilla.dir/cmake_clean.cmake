file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_vanilla.dir/bench_table1_vanilla.cpp.o"
  "CMakeFiles/bench_table1_vanilla.dir/bench_table1_vanilla.cpp.o.d"
  "bench_table1_vanilla"
  "bench_table1_vanilla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_vanilla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
