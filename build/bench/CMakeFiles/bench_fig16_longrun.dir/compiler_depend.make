# Empty compiler generated dependencies file for bench_fig16_longrun.
# This may be replaced when dependencies are built.
