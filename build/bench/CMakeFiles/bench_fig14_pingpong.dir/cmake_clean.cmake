file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_pingpong.dir/bench_fig14_pingpong.cpp.o"
  "CMakeFiles/bench_fig14_pingpong.dir/bench_fig14_pingpong.cpp.o.d"
  "bench_fig14_pingpong"
  "bench_fig14_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
