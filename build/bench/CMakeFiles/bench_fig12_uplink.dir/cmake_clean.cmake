file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_uplink.dir/bench_fig12_uplink.cpp.o"
  "CMakeFiles/bench_fig12_uplink.dir/bench_fig12_uplink.cpp.o.d"
  "bench_fig12_uplink"
  "bench_fig12_uplink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_uplink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
