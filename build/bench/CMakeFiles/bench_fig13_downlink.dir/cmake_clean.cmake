file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_downlink.dir/bench_fig13_downlink.cpp.o"
  "CMakeFiles/bench_fig13_downlink.dir/bench_fig13_downlink.cpp.o.d"
  "bench_fig13_downlink"
  "bench_fig13_downlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_downlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
