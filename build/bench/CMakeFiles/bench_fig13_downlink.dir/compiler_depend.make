# Empty compiler generated dependencies file for bench_fig13_downlink.
# This may be replaced when dependencies are built.
