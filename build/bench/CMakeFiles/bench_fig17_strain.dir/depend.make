# Empty dependencies file for bench_fig17_strain.
# This may be replaced when dependencies are built.
