file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_strain.dir/bench_fig17_strain.cpp.o"
  "CMakeFiles/bench_fig17_strain.dir/bench_fig17_strain.cpp.o.d"
  "bench_fig17_strain"
  "bench_fig17_strain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_strain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
