file(REMOVE_RECURSE
  "libarachnet.a"
)
