
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arachnet/acoustic/biw_graph.cpp" "src/CMakeFiles/arachnet.dir/arachnet/acoustic/biw_graph.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/acoustic/biw_graph.cpp.o.d"
  "/root/repo/src/arachnet/acoustic/deployment.cpp" "src/CMakeFiles/arachnet.dir/arachnet/acoustic/deployment.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/acoustic/deployment.cpp.o.d"
  "/root/repo/src/arachnet/acoustic/link_model.cpp" "src/CMakeFiles/arachnet.dir/arachnet/acoustic/link_model.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/acoustic/link_model.cpp.o.d"
  "/root/repo/src/arachnet/acoustic/waveform_channel.cpp" "src/CMakeFiles/arachnet.dir/arachnet/acoustic/waveform_channel.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/acoustic/waveform_channel.cpp.o.d"
  "/root/repo/src/arachnet/core/experiment_configs.cpp" "src/CMakeFiles/arachnet.dir/arachnet/core/experiment_configs.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/core/experiment_configs.cpp.o.d"
  "/root/repo/src/arachnet/core/markov_theory.cpp" "src/CMakeFiles/arachnet.dir/arachnet/core/markov_theory.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/core/markov_theory.cpp.o.d"
  "/root/repo/src/arachnet/core/protocol.cpp" "src/CMakeFiles/arachnet.dir/arachnet/core/protocol.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/core/protocol.cpp.o.d"
  "/root/repo/src/arachnet/core/reader_controller.cpp" "src/CMakeFiles/arachnet.dir/arachnet/core/reader_controller.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/core/reader_controller.cpp.o.d"
  "/root/repo/src/arachnet/core/slot_network.cpp" "src/CMakeFiles/arachnet.dir/arachnet/core/slot_network.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/core/slot_network.cpp.o.d"
  "/root/repo/src/arachnet/core/tag_firmware.cpp" "src/CMakeFiles/arachnet.dir/arachnet/core/tag_firmware.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/core/tag_firmware.cpp.o.d"
  "/root/repo/src/arachnet/core/tag_state_machine.cpp" "src/CMakeFiles/arachnet.dir/arachnet/core/tag_state_machine.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/core/tag_state_machine.cpp.o.d"
  "/root/repo/src/arachnet/dsp/cluster.cpp" "src/CMakeFiles/arachnet.dir/arachnet/dsp/cluster.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/dsp/cluster.cpp.o.d"
  "/root/repo/src/arachnet/dsp/ddc.cpp" "src/CMakeFiles/arachnet.dir/arachnet/dsp/ddc.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/dsp/ddc.cpp.o.d"
  "/root/repo/src/arachnet/dsp/fft.cpp" "src/CMakeFiles/arachnet.dir/arachnet/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/dsp/fft.cpp.o.d"
  "/root/repo/src/arachnet/dsp/fir.cpp" "src/CMakeFiles/arachnet.dir/arachnet/dsp/fir.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/dsp/fir.cpp.o.d"
  "/root/repo/src/arachnet/dsp/psd.cpp" "src/CMakeFiles/arachnet.dir/arachnet/dsp/psd.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/dsp/psd.cpp.o.d"
  "/root/repo/src/arachnet/dsp/schmitt.cpp" "src/CMakeFiles/arachnet.dir/arachnet/dsp/schmitt.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/dsp/schmitt.cpp.o.d"
  "/root/repo/src/arachnet/dsp/slicer.cpp" "src/CMakeFiles/arachnet.dir/arachnet/dsp/slicer.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/dsp/slicer.cpp.o.d"
  "/root/repo/src/arachnet/energy/ambient.cpp" "src/CMakeFiles/arachnet.dir/arachnet/energy/ambient.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/energy/ambient.cpp.o.d"
  "/root/repo/src/arachnet/energy/cutoff.cpp" "src/CMakeFiles/arachnet.dir/arachnet/energy/cutoff.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/energy/cutoff.cpp.o.d"
  "/root/repo/src/arachnet/energy/diode.cpp" "src/CMakeFiles/arachnet.dir/arachnet/energy/diode.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/energy/diode.cpp.o.d"
  "/root/repo/src/arachnet/energy/harvester.cpp" "src/CMakeFiles/arachnet.dir/arachnet/energy/harvester.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/energy/harvester.cpp.o.d"
  "/root/repo/src/arachnet/energy/multiplier.cpp" "src/CMakeFiles/arachnet.dir/arachnet/energy/multiplier.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/energy/multiplier.cpp.o.d"
  "/root/repo/src/arachnet/energy/supercap.cpp" "src/CMakeFiles/arachnet.dir/arachnet/energy/supercap.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/energy/supercap.cpp.o.d"
  "/root/repo/src/arachnet/energy/tag_power.cpp" "src/CMakeFiles/arachnet.dir/arachnet/energy/tag_power.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/energy/tag_power.cpp.o.d"
  "/root/repo/src/arachnet/mcu/dl_demodulator.cpp" "src/CMakeFiles/arachnet.dir/arachnet/mcu/dl_demodulator.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/mcu/dl_demodulator.cpp.o.d"
  "/root/repo/src/arachnet/mcu/envelope_frontend.cpp" "src/CMakeFiles/arachnet.dir/arachnet/mcu/envelope_frontend.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/mcu/envelope_frontend.cpp.o.d"
  "/root/repo/src/arachnet/mcu/msp430.cpp" "src/CMakeFiles/arachnet.dir/arachnet/mcu/msp430.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/mcu/msp430.cpp.o.d"
  "/root/repo/src/arachnet/mcu/vlo_clock.cpp" "src/CMakeFiles/arachnet.dir/arachnet/mcu/vlo_clock.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/mcu/vlo_clock.cpp.o.d"
  "/root/repo/src/arachnet/net/aloha.cpp" "src/CMakeFiles/arachnet.dir/arachnet/net/aloha.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/net/aloha.cpp.o.d"
  "/root/repo/src/arachnet/net/vanilla.cpp" "src/CMakeFiles/arachnet.dir/arachnet/net/vanilla.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/net/vanilla.cpp.o.d"
  "/root/repo/src/arachnet/phy/bits.cpp" "src/CMakeFiles/arachnet.dir/arachnet/phy/bits.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/phy/bits.cpp.o.d"
  "/root/repo/src/arachnet/phy/crc.cpp" "src/CMakeFiles/arachnet.dir/arachnet/phy/crc.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/phy/crc.cpp.o.d"
  "/root/repo/src/arachnet/phy/fm0.cpp" "src/CMakeFiles/arachnet.dir/arachnet/phy/fm0.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/phy/fm0.cpp.o.d"
  "/root/repo/src/arachnet/phy/framer.cpp" "src/CMakeFiles/arachnet.dir/arachnet/phy/framer.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/phy/framer.cpp.o.d"
  "/root/repo/src/arachnet/phy/packet.cpp" "src/CMakeFiles/arachnet.dir/arachnet/phy/packet.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/phy/packet.cpp.o.d"
  "/root/repo/src/arachnet/phy/pam4.cpp" "src/CMakeFiles/arachnet.dir/arachnet/phy/pam4.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/phy/pam4.cpp.o.d"
  "/root/repo/src/arachnet/phy/pie.cpp" "src/CMakeFiles/arachnet.dir/arachnet/phy/pie.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/phy/pie.cpp.o.d"
  "/root/repo/src/arachnet/phy/subcarrier.cpp" "src/CMakeFiles/arachnet.dir/arachnet/phy/subcarrier.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/phy/subcarrier.cpp.o.d"
  "/root/repo/src/arachnet/pzt/transducer.cpp" "src/CMakeFiles/arachnet.dir/arachnet/pzt/transducer.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/pzt/transducer.cpp.o.d"
  "/root/repo/src/arachnet/reader/dl_tx.cpp" "src/CMakeFiles/arachnet.dir/arachnet/reader/dl_tx.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/reader/dl_tx.cpp.o.d"
  "/root/repo/src/arachnet/reader/fdma_rx.cpp" "src/CMakeFiles/arachnet.dir/arachnet/reader/fdma_rx.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/reader/fdma_rx.cpp.o.d"
  "/root/repo/src/arachnet/reader/fm0_stream_decoder.cpp" "src/CMakeFiles/arachnet.dir/arachnet/reader/fm0_stream_decoder.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/reader/fm0_stream_decoder.cpp.o.d"
  "/root/repo/src/arachnet/reader/pam4_rx.cpp" "src/CMakeFiles/arachnet.dir/arachnet/reader/pam4_rx.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/reader/pam4_rx.cpp.o.d"
  "/root/repo/src/arachnet/reader/realtime_reader.cpp" "src/CMakeFiles/arachnet.dir/arachnet/reader/realtime_reader.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/reader/realtime_reader.cpp.o.d"
  "/root/repo/src/arachnet/reader/rx_chain.cpp" "src/CMakeFiles/arachnet.dir/arachnet/reader/rx_chain.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/reader/rx_chain.cpp.o.d"
  "/root/repo/src/arachnet/sensing/strain.cpp" "src/CMakeFiles/arachnet.dir/arachnet/sensing/strain.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/sensing/strain.cpp.o.d"
  "/root/repo/src/arachnet/sim/event_queue.cpp" "src/CMakeFiles/arachnet.dir/arachnet/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/sim/event_queue.cpp.o.d"
  "/root/repo/src/arachnet/sim/linalg.cpp" "src/CMakeFiles/arachnet.dir/arachnet/sim/linalg.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/sim/linalg.cpp.o.d"
  "/root/repo/src/arachnet/sim/rng.cpp" "src/CMakeFiles/arachnet.dir/arachnet/sim/rng.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/sim/rng.cpp.o.d"
  "/root/repo/src/arachnet/sim/stats.cpp" "src/CMakeFiles/arachnet.dir/arachnet/sim/stats.cpp.o" "gcc" "src/CMakeFiles/arachnet.dir/arachnet/sim/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
