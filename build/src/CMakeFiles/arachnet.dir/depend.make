# Empty dependencies file for arachnet.
# This may be replaced when dependencies are built.
