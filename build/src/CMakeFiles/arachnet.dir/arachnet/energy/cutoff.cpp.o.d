src/CMakeFiles/arachnet.dir/arachnet/energy/cutoff.cpp.o: \
 /root/repo/src/arachnet/energy/cutoff.cpp /usr/include/stdc-predef.h \
 /root/repo/src/arachnet/energy/cutoff.hpp
