#pragma once

namespace arachnet::pzt {

/// Electrical termination state of a backscatter PZT (paper Fig. 2).
enum class PztState {
  kReflective,  ///< short-circuited: incoming vibrations reflect back
  kAbsorptive,  ///< open-circuited: vibrations are absorbed / harvested
};

/// Lumped model of a piezoelectric transducer bonded to the BiW.
///
/// Captures the three behaviours ARACHNET relies on:
///  * resonance — a second-order band-pass response centred on the
///    structure+PZT resonant frequency (90 kHz in the paper);
///  * transduction — incident vibration amplitude to open-circuit voltage
///    (receive) and drive voltage to emitted vibration amplitude (transmit);
///  * switchable reflectivity — distinct reflection coefficients in the
///    short- and open-circuit states, whose difference is the backscatter
///    modulation depth.
class Transducer {
 public:
  struct Params {
    double resonant_hz = 90e3;
    double quality_factor = 18.0;
    /// Receive sensitivity: open-circuit volts per unit incident vibration
    /// amplitude at resonance.
    double rx_sensitivity = 1.0;
    /// Transmit gain: emitted vibration amplitude per drive volt at
    /// resonance.
    double tx_gain = 1.0;
    /// Amplitude reflection coefficients of the two states.
    double reflect_coeff = 0.92;
    double absorb_coeff = 0.35;
  };

  Transducer() = default;
  explicit Transducer(Params p);

  /// Normalized band-pass magnitude response at frequency `hz` (1.0 at
  /// resonance).
  double frequency_response(double hz) const;

  /// -3 dB bandwidth implied by Q.
  double bandwidth_hz() const noexcept;

  /// Open-circuit voltage for an incident vibration of `amplitude` at `hz`.
  double open_circuit_voltage(double amplitude, double hz) const;

  /// Emitted vibration amplitude when driven with `volts` peak at `hz`.
  double emitted_amplitude(double volts, double hz) const;

  /// Amplitude reflection coefficient in the given state.
  double reflection_coefficient(PztState state) const noexcept;

  /// Backscatter modulation depth: |Gamma_reflect - Gamma_absorb|.
  double modulation_depth() const noexcept;

  /// Ring-down time constant of the resonator (tau = Q / (pi f)): how long
  /// the structure keeps vibrating after drive stops — the "ring effect"
  /// the paper's FSK-in/OOK-out scheme mitigates.
  double ring_time_constant() const noexcept;

  void set_state(PztState state) noexcept { state_ = state; }
  PztState state() const noexcept { return state_; }

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
  PztState state_ = PztState::kAbsorptive;
};

}  // namespace arachnet::pzt
