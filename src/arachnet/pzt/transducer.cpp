#include "arachnet/pzt/transducer.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace arachnet::pzt {

Transducer::Transducer(Params p) : params_(p) {
  if (p.resonant_hz <= 0.0 || p.quality_factor <= 0.0) {
    throw std::invalid_argument("Transducer: invalid resonance parameters");
  }
}

double Transducer::frequency_response(double hz) const {
  if (hz <= 0.0) return 0.0;
  // Second-order band-pass magnitude normalized to 1 at resonance:
  // |H| = 1 / sqrt(1 + Q^2 (f/f0 - f0/f)^2).
  const double ratio = hz / params_.resonant_hz;
  const double detune = ratio - 1.0 / ratio;
  const double q = params_.quality_factor;
  return 1.0 / std::sqrt(1.0 + q * q * detune * detune);
}

double Transducer::bandwidth_hz() const noexcept {
  return params_.resonant_hz / params_.quality_factor;
}

double Transducer::open_circuit_voltage(double amplitude, double hz) const {
  return amplitude * params_.rx_sensitivity * frequency_response(hz);
}

double Transducer::emitted_amplitude(double volts, double hz) const {
  return volts * params_.tx_gain * frequency_response(hz);
}

double Transducer::reflection_coefficient(PztState state) const noexcept {
  return state == PztState::kReflective ? params_.reflect_coeff
                                        : params_.absorb_coeff;
}

double Transducer::modulation_depth() const noexcept {
  return std::abs(params_.reflect_coeff - params_.absorb_coeff);
}

double Transducer::ring_time_constant() const noexcept {
  return params_.quality_factor / (std::numbers::pi * params_.resonant_hz);
}

}  // namespace arachnet::pzt
