#include "arachnet/reader/pam4_rx.hpp"

#include <cmath>

namespace arachnet::reader {

std::vector<double> Pam4Receiver::symbol_amplitudes(
    const std::vector<double>& samples, double start_s,
    std::size_t symbols) const {
  dsp::Ddc ddc{params_.ddc};
  const auto iq = ddc.process(samples);
  const double iq_rate = ddc.output_rate_hz();

  // Leak estimate: mean IQ over the quiet interval before the frame
  // (skipping the filter warmup).
  const auto start_idx = static_cast<std::size_t>(start_s * iq_rate);
  std::complex<double> leak{0.0, 0.0};
  std::size_t leak_count = 0;
  for (std::size_t i = std::min<std::size_t>(200, start_idx / 2);
       i < start_idx && i < iq.size(); ++i) {
    leak += iq[i];
    ++leak_count;
  }
  if (leak_count > 0) leak /= static_cast<double>(leak_count);

  // Modulation axis from the pseudo-variance over the frame body.
  const double symbol_len = iq_rate / params_.symbol_rate;
  const auto end_idx = std::min<std::size_t>(
      iq.size(),
      start_idx + static_cast<std::size_t>(symbol_len * symbols) + 1);
  std::complex<double> c2{0.0, 0.0};
  for (std::size_t i = start_idx; i < end_idx; ++i) {
    const auto d = iq[i] - leak;
    c2 += d * d;
  }
  const double angle = 0.5 * std::arg(c2);
  const std::complex<double> axis{std::cos(angle), std::sin(angle)};

  // Per-symbol interior means.
  std::vector<double> amps;
  amps.reserve(symbols);
  for (std::size_t s = 0; s < symbols; ++s) {
    const double lo = start_idx + (s + params_.edge_guard) * symbol_len;
    const double hi = start_idx + (s + 1.0 - params_.edge_guard) * symbol_len;
    double sum = 0.0;
    std::size_t n = 0;
    for (auto i = static_cast<std::size_t>(lo);
         i < static_cast<std::size_t>(hi) && i < iq.size(); ++i) {
      const auto d = iq[i] - leak;
      sum += d.real() * axis.real() + d.imag() * axis.imag();
      ++n;
    }
    amps.push_back(n ? sum / static_cast<double>(n) : 0.0);
  }
  // The projection sign is ambiguous (axis is a line): normalize so the
  // mean is positive, matching ascending level conventions.
  double mean = 0.0;
  for (double a : amps) mean += a;
  if (mean < 0.0) {
    for (auto& a : amps) a = -a;
  }
  return amps;
}

std::optional<phy::BitVector> Pam4Receiver::decode(
    const std::vector<double>& samples, double start_s,
    std::size_t data_bits) const {
  const std::size_t symbols = phy::Pam4::kTrainingSymbols +
                              phy::Pam4::symbol_count_for(data_bits) + 1;
  const auto amps = symbol_amplitudes(samples, start_s, symbols);
  return pam_.decode_frame(amps, data_bits);
}

}  // namespace arachnet::reader
