#pragma once

#include <complex>
#include <optional>
#include <vector>

#include "arachnet/dsp/ddc.hpp"
#include "arachnet/phy/pam4.hpp"

namespace arachnet::reader {

/// Offline measurement-grade receiver for 4-PAM backscatter frames
/// (extension experiment): down-converts a captured waveform, cancels the
/// carrier leak from the pre-frame quiet interval, projects onto the
/// modulation axis, averages the interior of each symbol, and hands the
/// per-symbol amplitudes to the PAM-4 level decoder.
///
/// Symbol timing comes from a start hint (the experiment controls when
/// the tag transmits), as in PHY-characterization measurements.
class Pam4Receiver {
 public:
  struct Params {
    dsp::Ddc::Params ddc{};
    double symbol_rate = 375.0;
    phy::Pam4::Params pam{};
    /// Fraction of each symbol skipped at both edges (ring transitions).
    double edge_guard = 0.2;
  };

  explicit Pam4Receiver(Params params) : params_(params), pam_(params.pam) {}

  /// Decodes one frame from a captured waveform. `start_s` is the time of
  /// the first training symbol; `data_bits` the expected payload size.
  std::optional<phy::BitVector> decode(const std::vector<double>& samples,
                                       double start_s,
                                       std::size_t data_bits) const;

  /// The per-symbol projected amplitudes (for diagnostics / SER sweeps).
  std::vector<double> symbol_amplitudes(const std::vector<double>& samples,
                                        double start_s,
                                        std::size_t symbols) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  phy::Pam4 pam_;
};

}  // namespace arachnet::reader
