#pragma once

#include <functional>

namespace arachnet::reader {

/// Streaming FM0 bit recovery from Schmitt-trigger run lengths.
///
/// FM0 guarantees a transition at every bit boundary, so valid runs last
/// one or two half-bit (chip) periods. The decoder tracks whether it is at
/// a bit boundary or mid-bit ("pending half"). A 2-chip run arriving while
/// mid-bit means the initial phase guess was wrong; re-interpreting it as
/// straddling the boundary (emit the pending 0, keep one half pending)
/// self-corrects the phase within one data-0 bit. Runs that do not
/// quantize to 1 or 2 chips (silence between packets, noise bursts) reset
/// the decoder and notify the framer via `on_desync`.
class Fm0StreamDecoder {
 public:
  struct Params {
    double chip_duration_s = 1.0 / 375.0;
    /// Acceptance window around 1 and 2 chips, as a fraction of the chip.
    double tolerance = 0.35;
  };

  using BitHandler = std::function<void(bool bit)>;
  using DesyncHandler = std::function<void()>;

  Fm0StreamDecoder(Params params, BitHandler on_bit, DesyncHandler on_desync);

  /// Feeds one completed run of `duration_s` seconds. The run's level is
  /// irrelevant: FM0 bit values depend only on transition positions.
  void push_run(double duration_s);

  /// Forces a resynchronization (e.g. between slots).
  void reset();

  const Params& params() const noexcept { return params_; }

 private:
  void desync();

  Params params_;
  BitHandler on_bit_;
  DesyncHandler on_desync_;
  bool pending_half_ = false;
};

}  // namespace arachnet::reader
