#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arachnet/dsp/cluster.hpp"
#include "arachnet/dsp/ddc.hpp"
#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/schmitt.hpp"
#include "arachnet/dsp/slicer.hpp"
#include "arachnet/phy/framer.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/reader/fm0_stream_decoder.hpp"
#include "arachnet/sim/rng.hpp"

namespace arachnet::reader {

/// A decoded uplink packet with its arrival time.
struct RxPacket {
  phy::UlPacket packet;
  double time_s = 0.0;     ///< time of the last sample of the packet
  std::size_t channel = 0; ///< FDMA subcarrier channel (0 for the single-
                           ///< channel chain)
};

/// Converts a per-chip dynamics target (e.g. "98% level acquisition per
/// chip") into the per-sample EMA alpha that achieves it at
/// `samples_per_chip`. Shared by RxChain's resolve_* helpers and the FDMA
/// bank so the two chains cannot drift apart.
double per_sample_alpha(double per_chip, double samples_per_chip);

/// The reader's uplink receive chain — the paper's real-time software path
/// (Sec. 6.1): down conversion -> low-pass filtering and decimation ->
/// envelope extraction with DC (carrier-leak) removal -> Schmitt trigger ->
/// run-length timing -> FM0 bit recovery -> preamble framing -> CRC check.
///
/// Also retains the slot's decimated IQ points so the MAC layer can run the
/// cluster-based capture-effect collision detector.
class RxChain {
 public:
  struct Params {
    dsp::Ddc::Params ddc{};
    double chip_rate = phy::kDefaultUlRawBitRate;
    /// Match the DDC low-pass bandwidth to the chip rate (narrow for slow
    /// links to cut noise, wide for fast links to avoid inter-symbol
    /// interference). Overrides ddc.cutoff_hz with
    /// clamp(3.5 * chip_rate, 1.5 kHz, 12.5 kHz).
    bool auto_bandwidth = true;
    dsp::AdaptiveSlicer::Params slicer{};
    /// Leak-cancellation tracking rate after warmup. Zero (the default)
    /// freezes the leak estimate: within one slot the baseline is static.
    /// Across slots it shifts with the set of absorptive tags parked on
    /// the channel — slotted operation calls resync() at each slot start,
    /// re-estimating the baseline in the tag's 20 ms reply gap.
    double leak_ema_alpha = 0.0;
    /// During the first `leak_warmup_samples` IQ samples the leak EMA uses
    /// `leak_warmup_alpha` so it converges past the filter start-up
    /// transient before weak packets can arrive.
    std::size_t leak_warmup_samples = 300;
    double leak_warmup_alpha = 0.05;
    /// Modulation-axis tracking rate: EMA of the complex pseudo-variance
    /// of (iq - leak); its half-angle is the 1-D axis the tag's OOK lives
    /// on. Projecting onto it keeps modulation depth independent of the
    /// reflection phase (the quadrature-fading problem).
    double axis_ema_alpha = 0.01;
    /// Frequency-offset calibration: when nonzero, a one-shot offset
    /// estimate is applied after this many IQ samples.
    std::size_t freq_cal_samples = 0;
    /// Retain decimated IQ points for the MAC collision detector
    /// (iq_points()/collision_detected()). Slotted operation clears the
    /// buffer every slot, so the growth is bounded; streaming sessions
    /// (RealtimeReader, ReaderService) never call the detector, and for
    /// them an ever-growing point list is both a leak and a steady-state
    /// allocation source — they construct the chain with this off.
    bool retain_iq_points = true;
  };

  explicit RxChain(Params params);

  /// Processes a block of raw DAQ samples; decoded packets are appended to
  /// the internal list (see packets()).
  void process(const double* samples, std::size_t n);

  /// Vector convenience forwarder for the span-style overload above.
  void process(const std::vector<double>& samples) {
    process(samples.data(), samples.size());
  }

  /// All packets decoded so far.
  const std::vector<RxPacket>& packets() const noexcept { return packets_; }

  /// Clears decoded packets (keeps DSP state).
  void clear_packets() { packets_.clear(); }

  /// CRC failures observed by the framer.
  std::size_t crc_failures() const noexcept { return framer_.crc_failures(); }

  /// FM0 bits recovered so far (pre-framing).
  std::uint64_t bits_decoded() const noexcept { return bits_decoded_; }

  /// Decimated IQ points accumulated since the last clear — input to the
  /// IQ-cluster collision detector.
  const std::vector<std::complex<double>>& iq_points() const noexcept {
    return iq_points_;
  }
  void clear_iq_points() { iq_points_.clear(); }

  /// Runs the collision detector over the accumulated IQ points.
  bool collision_detected(sim::Rng& rng) const;

  /// Number of raw samples consumed.
  std::size_t samples_consumed() const noexcept { return sample_count_; }

  /// Re-baselines at a slot boundary: re-runs the leak warmup on the
  /// guaranteed-quiet reply gap (tags wait 20 ms after the beacon), and
  /// clears the modulation-axis estimate and decision state. Filter state
  /// is kept. Call at the start of each uplink slot in slotted operation.
  void resync();

  /// Resets all DSP state (full restart, e.g. on RESET).
  void reset();

  const Params& params() const noexcept { return params_; }

 private:
  void on_iq(std::complex<double> iq);

  Params params_;
  dsp::Ddc ddc_;
  dsp::AdaptiveSlicer slicer_;
  dsp::Debouncer debouncer_;
  double axis_alpha_ = 0.01;
  double leak_alpha_ = 0.0;
  dsp::RunLengthEncoder runs_;
  Fm0StreamDecoder fm0_;
  phy::UlFramer framer_;
  std::vector<RxPacket> packets_;
  std::uint64_t bits_decoded_ = 0;
  std::vector<std::complex<double>> iq_points_;
  std::size_t sample_count_ = 0;
  std::size_t iq_sample_index_ = 0;
  std::complex<double> leak_estimate_{0.0, 0.0};
  std::complex<double> pseudo_variance_{0.0, 0.0};
  std::complex<double> prev_axis_{1.0, 0.0};
  bool leak_primed_ = false;
  double freq_offset_hz_ = 0.0;
  bool freq_calibrated_ = false;
  std::vector<std::complex<double>> cal_buffer_;
  /// Block-policy scratch for the DDC output, reused across process()
  /// calls (no steady-state allocation).
  std::vector<std::complex<double>> iq_buf_;
};

}  // namespace arachnet::reader
