#include "arachnet/reader/fm0_stream_decoder.hpp"

#include <cmath>
#include <utility>

namespace arachnet::reader {

Fm0StreamDecoder::Fm0StreamDecoder(Params params, BitHandler on_bit,
                                   DesyncHandler on_desync)
    : params_(params),
      on_bit_(std::move(on_bit)),
      on_desync_(std::move(on_desync)) {}

void Fm0StreamDecoder::push_run(double duration_s) {
  const double chips = duration_s / params_.chip_duration_s;
  int units = 0;
  if (std::abs(chips - 1.0) <= params_.tolerance) {
    units = 1;
  } else if (std::abs(chips - 2.0) <= 2.0 * params_.tolerance) {
    units = 2;
  } else {
    desync();
    return;
  }

  if (!pending_half_) {
    if (units == 2) {
      if (on_bit_) on_bit_(true);  // full-bit run: FM0 bit 1
    } else {
      pending_half_ = true;  // first half of a 0 bit
    }
  } else {
    if (units == 1) {
      if (on_bit_) on_bit_(false);  // second half arrived: FM0 bit 0
      pending_half_ = false;
    } else {
      // A 2-chip run always spans a whole bit, so it must start at a bit
      // boundary — the pending half was a phase error (e.g. the inter-
      // packet silence swallowed one chip). Discard it and resynchronize:
      // this run is a complete FM0 bit 1.
      if (on_bit_) on_bit_(true);
      pending_half_ = false;
    }
  }
}

void Fm0StreamDecoder::reset() { pending_half_ = false; }

void Fm0StreamDecoder::desync() {
  pending_half_ = false;
  if (on_desync_) on_desync_();
}

}  // namespace arachnet::reader
