#include "arachnet/reader/fdma_rx.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace arachnet::reader {
namespace {

// Per-chip dynamics targets mirror RxChain's resolve_* helpers.
double per_sample(double per_chip, double samples_per_chip) {
  return 1.0 - std::pow(1.0 - per_chip, 1.0 / samples_per_chip);
}

}  // namespace

FdmaRxChain::Channel::Channel(double hz, double iq_rate, double chip_rate,
                              std::vector<double> coeffs,
                              dsp::AdaptiveSlicer::Params sp,
                              std::size_t debounce)
    : subcarrier_hz(hz),
      nco_step(-2.0 * std::numbers::pi * hz / iq_rate),
      lpf(std::move(coeffs)),
      slicer(sp),
      debouncer(debounce) {
  fm0 = std::make_unique<Fm0StreamDecoder>(
      Fm0StreamDecoder::Params{.chip_duration_s = 1.0 / chip_rate,
                               .tolerance = 0.35},
      [this](bool bit) { framer->push(bit); }, [this] { framer->reset(); });
  framer = std::make_unique<phy::UlFramer>(
      [this](const phy::UlPacket& pkt) { packets.push_back(pkt); });
}

FdmaRxChain::FdmaRxChain(Params params)
    : params_(params),
      ddc_([&] {
        dsp::Ddc::Params ddc = params.ddc;
        // The main down-converter must pass the highest subcarrier plus
        // its modulation sidebands.
        double top = 0.0;
        for (const auto& c : params.channels) {
          top = std::max(top, c.subcarrier_hz);
        }
        ddc.cutoff_hz = top + 3.0 * params.chip_rate;
        return ddc;
      }()),
      iq_rate_(ddc_.output_rate_hz()) {
  if (params_.channels.empty()) {
    throw std::invalid_argument("FdmaRxChain: no channels");
  }
  const double samples_per_chip = iq_rate_ / params_.chip_rate;
  axis_alpha_ = per_sample(0.5, samples_per_chip);
  for (std::size_t a = 0; a < params_.channels.size(); ++a) {
    for (std::size_t b = a + 1; b < params_.channels.size(); ++b) {
      if (std::abs(params_.channels[a].subcarrier_hz -
                   params_.channels[b].subcarrier_hz) <
          3.0 * params_.chip_rate) {
        throw std::invalid_argument(
            "FdmaRxChain: subcarriers closer than 3x chip rate");
      }
    }
  }
  dsp::AdaptiveSlicer::Params sp;
  sp.floor = 0.001;
  sp.track_alpha = per_sample(0.98, samples_per_chip);
  sp.leak_alpha = per_sample(0.04, samples_per_chip);
  const auto debounce = static_cast<std::size_t>(
      std::max(1.0, 0.12 * samples_per_chip));
  // Channel low-pass: passes the FM0 main lobe, rejects the neighbour
  // subcarrier one spacing away.
  const auto coeffs =
      dsp::design_lowpass(1.4 * params_.chip_rate, iq_rate_, 127);
  for (const auto& spec : params_.channels) {
    channels_.push_back(std::make_unique<Channel>(
        spec.subcarrier_hz, iq_rate_, params_.chip_rate, coeffs, sp,
        debounce));
  }
}

void FdmaRxChain::on_iq(std::complex<double> iq) {
  ++iq_index_;
  for (auto& ch : channels_) {
    // Shift the channel's subcarrier band to DC. The carrier leak sits at
    // baseband DC, i.e. at -f_sc after the shift — outside the channel
    // low-pass, so no explicit leak cancellation is needed here.
    const std::complex<double> osc{std::cos(ch->nco_phase),
                                   std::sin(ch->nco_phase)};
    ch->nco_phase += ch->nco_step;
    if (ch->nco_phase < -2.0 * std::numbers::pi) {
      ch->nco_phase += 2.0 * std::numbers::pi;
    }
    const auto shifted = ch->lpf.push(iq * osc);

    // Axis projection: the subcarrier fundamental flips polarity with the
    // FM0 chip, so after the shift the chip value lives on a fixed line
    // through the origin in the IQ plane.
    ch->pseudo_variance +=
        axis_alpha_ * (shifted * shifted - ch->pseudo_variance);
    const double angle = 0.5 * std::arg(ch->pseudo_variance);
    std::complex<double> axis{std::cos(angle), std::sin(angle)};
    if (axis.real() * ch->prev_axis.real() +
            axis.imag() * ch->prev_axis.imag() <
        0.0) {
      axis = -axis;
    }
    ch->prev_axis = axis;
    const double envelope =
        shifted.real() * axis.real() + shifted.imag() * axis.imag();

    const bool level = ch->debouncer.push(ch->slicer.push(envelope));
    if (const auto run = ch->runs.push(level)) {
      ch->fm0->push_run(static_cast<double>(run->samples) / iq_rate_);
    }
  }
}

void FdmaRxChain::process(const std::vector<double>& samples) {
  for (double s : samples) {
    if (const auto iq = ddc_.push(s)) on_iq(*iq);
  }
}

const std::vector<phy::UlPacket>& FdmaRxChain::packets(
    std::size_t channel) const {
  return channels_.at(channel)->packets;
}

void FdmaRxChain::clear_packets() {
  for (auto& ch : channels_) ch->packets.clear();
}

}  // namespace arachnet::reader
