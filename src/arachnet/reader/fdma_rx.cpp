#include "arachnet/reader/fdma_rx.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>
#include <thread>

#include "arachnet/telemetry/log.hpp"
#include "arachnet/telemetry/trace.hpp"

namespace arachnet::reader {

FdmaRxChain::Channel::Channel(double hz, double iq_rate, double chip_rate,
                              std::vector<double> coeffs,
                              dsp::AdaptiveSlicer::Params sp,
                              std::size_t debounce,
                              dsp::KernelPolicy kernel_policy)
    : subcarrier_hz(hz),
      kernels(kernel_policy),
      nco_step(-2.0 * std::numbers::pi * hz / iq_rate),
      nco(0.0, nco_step),
      lpf(coeffs),
      blpf(std::move(coeffs)),
      slicer(sp),
      debouncer(debounce),
      framer([this](const phy::UlPacket& pkt) {
        packets.push_back(pkt);
        packet_iq_index.push_back(cursor);
      }),
      fm0(Fm0StreamDecoder::Params{.chip_duration_s = 1.0 / chip_rate,
                                   .tolerance = 0.35},
          [this](bool bit) {
            ++bits;
            framer.push(bit);
          },
          [this] { framer.reset(); }) {}

void FdmaRxChain::Channel::process_block(const std::complex<double>* iq,
                                         std::size_t n, double axis_alpha,
                                         double iq_rate,
                                         std::uint64_t base_index) {
  ARACHNET_TRACE_SPAN("fdma.channel");
  const std::uint64_t prev_bits = bits;
  const std::uint64_t prev_frames = framer.packets();
  const std::uint64_t prev_crc = framer.crc_failures();
  iq_samples += n;
  // Stage 1 (batch): shift this channel's subcarrier band to DC. The
  // carrier leak sits at baseband DC, i.e. at -f_sc after the shift —
  // outside the channel low-pass, so no explicit leak cancellation is
  // needed here.
  mixed.resize(n);
  if (kernels == dsp::KernelPolicy::kBlock) {
    nco.mix(iq, mixed.data(), n);
    // Stage 2 (batch): folded symmetric block low-pass, contiguous.
    blpf.process(mixed.data(), mixed.data(), n);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::complex<double> osc{std::cos(nco_phase),
                                     std::sin(nco_phase)};
      nco_phase += nco_step;
      if (nco_phase < -2.0 * std::numbers::pi) {
        nco_phase += 2.0 * std::numbers::pi;
      }
      mixed[i] = iq[i] * osc;
    }
    // Stage 2 (batch): channel low-pass over the contiguous block.
    lpf.process(mixed.data(), mixed.data(), n);
  }
  // Stage 3: axis projection and the decision chain. The subcarrier
  // fundamental flips polarity with the FM0 chip, so after the shift the
  // chip value lives on a fixed line through the origin in the IQ plane.
  for (std::size_t i = 0; i < n; ++i) {
    cursor = base_index + i;
    const std::complex<double> shifted = mixed[i];
    pseudo_variance += axis_alpha * (shifted * shifted - pseudo_variance);
    const double angle = 0.5 * std::arg(pseudo_variance);
    std::complex<double> axis{std::cos(angle), std::sin(angle)};
    if (axis.real() * prev_axis.real() + axis.imag() * prev_axis.imag() <
        0.0) {
      axis = -axis;
    }
    prev_axis = axis;
    const double envelope =
        shifted.real() * axis.real() + shifted.imag() * axis.imag();

    const bool level = debouncer.push(slicer.push(envelope));
    if (const auto run = runs.push(level)) {
      fm0.push_run(static_cast<double>(run->samples) / iq_rate);
    }
  }
  // Publish counters for cross-thread stats readers (block granularity).
  pub_iq_samples.store(iq_samples, std::memory_order_relaxed);
  pub_bits.store(bits, std::memory_order_relaxed);
  pub_frames.store(framer.packets(), std::memory_order_relaxed);
  pub_crc.store(framer.crc_failures(), std::memory_order_relaxed);
  // Registry counters, as per-block deltas (one pointer test when unbound).
  if (m_iq != nullptr) {
    m_iq->add(n);
    m_bits->add(bits - prev_bits);
    m_frames->add(framer.packets() - prev_frames);
    m_crc->add(framer.crc_failures() - prev_crc);
  }
}

FdmaRxChain::FdmaRxChain(Params params)
    : params_(params),
      ddc_([&] {
        dsp::Ddc::Params ddc = params.ddc;
        // The main down-converter must pass the highest subcarrier plus
        // its modulation sidebands (or the provisioned headroom).
        double top = params.max_subcarrier_hz;
        for (const auto& c : params.channels) {
          top = std::max(top, c.subcarrier_hz);
        }
        ddc.cutoff_hz = top + 3.0 * params.chip_rate;
        // One policy switch for the whole chain: the main DDC and every
        // channel follow Params::kernels.
        ddc.kernels = params.kernels;
        return ddc;
      }()),
      iq_rate_(ddc_.output_rate_hz()) {
  if (params_.channels.empty()) {
    throw std::invalid_argument("FdmaRxChain: no channels");
  }
  const double samples_per_chip = iq_rate_ / params_.chip_rate;
  axis_alpha_ = per_sample_alpha(0.5, samples_per_chip);
  slicer_params_.floor = 0.001;
  slicer_params_.track_alpha = per_sample_alpha(0.98, samples_per_chip);
  slicer_params_.leak_alpha = per_sample_alpha(0.04, samples_per_chip);
  debounce_ =
      static_cast<std::size_t>(std::max(1.0, 0.12 * samples_per_chip));
  // Channel low-pass: passes the FM0 main lobe, rejects the neighbour
  // subcarrier one spacing away. The tap count scales with the IQ rate so
  // the transition width stays ~2.2 chip rates regardless of the DDC
  // decimation (127 taps at the default 31.25 kS/s IQ rate).
  const auto taps = std::clamp<std::size_t>(
      static_cast<std::size_t>(3.3 * iq_rate_ / (2.2 * params_.chip_rate)) |
          1,
      127, 511);
  channel_coeffs_ = dsp::design_lowpass(1.4 * params_.chip_rate, iq_rate_,
                                        taps);

  workers_ = params_.workers;
  if (workers_ == 0) {
    workers_ = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in run(), so the pool only needs
  // workers_ - 1 extra threads.
  pool_ = std::make_unique<dsp::WorkerPool>(workers_ - 1);

  for (const auto& spec : params_.channels) {
    validate_subcarrier(spec.subcarrier_hz);
    channels_.push_back(make_channel(spec.subcarrier_hz));
    bind_channel_metrics(channels_.size() - 1);
  }
  if (params_.metrics != nullptr) {
    pool_->set_dispatch_histogram(
        &params_.metrics->histogram("fdma.dispatch_us", 0.0, 2000.0, 64));
  }
  ARACHNET_LOG_DEBUG("fdma", "chain ready",
                     {"channels", channels_.size()},
                     {"workers", workers_},
                     {"iq_rate_hz", iq_rate_});
}

void FdmaRxChain::bind_channel_metrics(std::size_t index) {
  if (params_.metrics == nullptr) return;
  auto& ch = *channels_[index];
  char name[48];
  const auto bind = [&](const char* suffix) -> telemetry::Counter* {
    std::snprintf(name, sizeof(name), "fdma.ch%zu.%s", index, suffix);
    return &params_.metrics->counter(name);
  };
  ch.m_iq = bind("iq_samples");
  ch.m_bits = bind("bits");
  ch.m_frames = bind("frames");
  ch.m_crc = bind("crc_failures");
}

std::unique_ptr<FdmaRxChain::Channel> FdmaRxChain::make_channel(
    double subcarrier_hz) const {
  return std::make_unique<Channel>(subcarrier_hz, iq_rate_,
                                   params_.chip_rate, channel_coeffs_,
                                   slicer_params_, debounce_,
                                   params_.kernels);
}

void FdmaRxChain::validate_subcarrier(double hz) const {
  if (hz + 3.0 * params_.chip_rate > ddc_.params().cutoff_hz + 1e-9) {
    throw std::invalid_argument(
        "FdmaRxChain: subcarrier outside the provisioned DDC passband");
  }
  for (const auto& ch : channels_) {
    if (std::abs(ch->subcarrier_hz - hz) < 3.0 * params_.chip_rate) {
      throw std::invalid_argument(
          "FdmaRxChain: subcarriers closer than 3x chip rate");
    }
  }
}

void FdmaRxChain::add_channel(ChannelSpec spec) {
  validate_subcarrier(spec.subcarrier_hz);
  channels_.push_back(make_channel(spec.subcarrier_hz));
  params_.channels.push_back(spec);
  bind_channel_metrics(channels_.size() - 1);
  ARACHNET_LOG_INFO("fdma", "channel added",
                    {"subcarrier_hz", spec.subcarrier_hz},
                    {"channels", channels_.size()});
}

void FdmaRxChain::process(const std::vector<double>& samples) {
  ARACHNET_TRACE_SPAN("fdma.process");
  // Reused member scratch: the steady-state hot path allocates nothing.
  iq_buf_.clear();
  ddc_.process(std::span<const double>{samples}, iq_buf_);
  if (iq_buf_.empty()) return;
  pool_->run(channels_.size(), [&](std::size_t c) {
    channels_[c]->process_block(iq_buf_.data(), iq_buf_.size(), axis_alpha_,
                                iq_rate_, iq_index_);
  });
  iq_index_ += iq_buf_.size();
}

const std::vector<phy::UlPacket>& FdmaRxChain::packets(
    std::size_t channel) const {
  return channels_.at(channel)->packets;
}

std::vector<RxPacket> FdmaRxChain::drain_packets() {
  std::vector<RxPacket> merged;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    auto& ch = *channels_[c];
    for (std::size_t i = ch.drained; i < ch.packets.size(); ++i) {
      merged.push_back(RxPacket{
          ch.packets[i],
          static_cast<double>(ch.packet_iq_index[i]) / iq_rate_, c});
    }
    ch.drained = ch.packets.size();
  }
  // Deterministic cross-channel order: completion sample, then channel.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const RxPacket& a, const RxPacket& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     return a.channel < b.channel;
                   });
  return merged;
}

void FdmaRxChain::clear_packets() {
  for (auto& ch : channels_) {
    ch->packets.clear();
    ch->packet_iq_index.clear();
    ch->drained = 0;
  }
}

FdmaRxChain::ChannelStats FdmaRxChain::channel_stats(
    std::size_t channel) const {
  const auto& ch = *channels_.at(channel);
  ChannelStats s;
  s.subcarrier_hz = ch.subcarrier_hz;
  s.iq_samples = ch.pub_iq_samples.load(std::memory_order_relaxed);
  s.bits = ch.pub_bits.load(std::memory_order_relaxed);
  s.frames_ok = ch.pub_frames.load(std::memory_order_relaxed);
  s.crc_failures = ch.pub_crc.load(std::memory_order_relaxed);
  return s;
}

std::vector<FdmaRxChain::ChannelStats> FdmaRxChain::all_channel_stats()
    const {
  std::vector<ChannelStats> all;
  all.reserve(channels_.size());
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    all.push_back(channel_stats(c));
  }
  return all;
}

}  // namespace arachnet::reader
