#include "arachnet/reader/fdma_rx.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>
#include <thread>

#include "arachnet/telemetry/log.hpp"
#include "arachnet/telemetry/trace.hpp"

namespace arachnet::reader {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

FdmaRxChain::Channel::Channel(double hz, double chip_rate,
                              dsp::AdaptiveSlicer::Params sp,
                              std::size_t debounce)
    : subcarrier_hz(hz),
      slicer(sp),
      debouncer(debounce),
      framer([this](const phy::UlPacket& pkt) {
        packets.push_back(pkt);
        packet_iq_index.push_back(cursor);
      }),
      fm0(Fm0StreamDecoder::Params{.chip_duration_s = 1.0 / chip_rate,
                                   .tolerance = 0.35},
          [this](bool bit) {
            ++bits;
            framer.push(bit);
          },
          [this] { framer.reset(); }) {}

FdmaRxChain::Channel::Channel(double hz, double iq_rate, double chip_rate,
                              std::vector<double> coeffs,
                              dsp::AdaptiveSlicer::Params sp,
                              std::size_t debounce,
                              dsp::KernelPolicy kernel_policy)
    : Channel(hz, chip_rate, sp, debounce) {
  kernels = kernel_policy;
  nco_step = -2.0 * std::numbers::pi * hz / iq_rate;
  nco.set(0.0, nco_step);
  nco_s.set(0.0, nco_step);
  lpf.emplace(coeffs);
  slpf.emplace(coeffs);
  blpf.emplace(std::move(coeffs));
}

FdmaRxChain::Channel::Channel(double hz, double chip_rate,
                              dsp::AdaptiveSlicer::Params sp,
                              std::size_t debounce,
                              std::size_t lane_decimation,
                              std::int64_t lane_delay_samples)
    : Channel(hz, chip_rate, sp, debounce) {
  lane_decim = lane_decimation;
  lane_delay = lane_delay_samples;
}

void FdmaRxChain::Channel::decide(std::complex<double> shifted,
                                  double axis_alpha, double rate) {
  // Axis projection and the decision chain. The subcarrier fundamental
  // flips polarity with the FM0 chip, so after the shift the chip value
  // lives on a fixed line through the origin in the IQ plane.
  pseudo_variance += axis_alpha * (shifted * shifted - pseudo_variance);
  const double angle = 0.5 * std::arg(pseudo_variance);
  std::complex<double> axis{std::cos(angle), std::sin(angle)};
  if (axis.real() * prev_axis.real() + axis.imag() * prev_axis.imag() <
      0.0) {
    axis = -axis;
  }
  prev_axis = axis;
  const double envelope =
      shifted.real() * axis.real() + shifted.imag() * axis.imag();

  const bool level = debouncer.push(slicer.push(envelope));
  if (const auto run = runs.push(level)) {
    fm0.push_run(static_cast<double>(run->samples) / rate);
  }
}

void FdmaRxChain::Channel::publish(std::size_t samples,
                                   std::uint64_t prev_bits,
                                   std::uint64_t prev_frames,
                                   std::uint64_t prev_crc) {
  // Publish counters for cross-thread stats readers (block granularity).
  pub_iq_samples.store(iq_samples, std::memory_order_relaxed);
  pub_bits.store(bits, std::memory_order_relaxed);
  pub_frames.store(frames_base + framer.packets(), std::memory_order_relaxed);
  pub_crc.store(crc_base + framer.crc_failures(), std::memory_order_relaxed);
  // Registry counters, as per-block deltas (one pointer test when unbound).
  if (m_iq != nullptr) {
    m_iq->add(samples);
    m_bits->add(bits - prev_bits);
    m_frames->add(framer.packets() - prev_frames);
    m_crc->add(framer.crc_failures() - prev_crc);
  }
}

void FdmaRxChain::Channel::process_block(const std::complex<double>* iq,
                                         std::size_t n, double axis_alpha,
                                         double iq_rate,
                                         std::uint64_t base_index) {
  ARACHNET_TRACE_SPAN("fdma.channel");
  const std::uint64_t prev_bits = bits;
  const std::uint64_t prev_frames = framer.packets();
  const std::uint64_t prev_crc = framer.crc_failures();
  iq_samples += n;
  // Stage 1 (batch): shift this channel's subcarrier band to DC. The
  // carrier leak sits at baseband DC, i.e. at -f_sc after the shift —
  // outside the channel low-pass, so no explicit leak cancellation is
  // needed here.
  if (kernels == dsp::KernelPolicy::kSimd) {
    // float32 lanes through mixer and LPF; the decision chain reads the
    // interleaved buffer widened back to double per sample.
    mixed_f.resize(2 * n);
    nco_s.mix(iq, mixed_f.data(), n);
    slpf->process(mixed_f.data(), mixed_f.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      cursor = base_index + i;
      decide({static_cast<double>(mixed_f[2 * i]),
              static_cast<double>(mixed_f[2 * i + 1])},
             axis_alpha, iq_rate);
    }
    publish(n, prev_bits, prev_frames, prev_crc);
    return;
  }
  mixed.resize(n);
  if (kernels == dsp::KernelPolicy::kBlock) {
    nco.mix(iq, mixed.data(), n);
    // Stage 2 (batch): folded symmetric block low-pass, contiguous.
    blpf->process(mixed.data(), mixed.data(), n);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::complex<double> osc{std::cos(nco_phase),
                                     std::sin(nco_phase)};
      nco_phase += nco_step;
      if (nco_phase < -2.0 * std::numbers::pi) {
        nco_phase += 2.0 * std::numbers::pi;
      }
      mixed[i] = iq[i] * osc;
    }
    // Stage 2 (batch): channel low-pass over the contiguous block.
    lpf->process(mixed.data(), mixed.data(), n);
  }
  // Stage 3: the per-sample decision chain.
  for (std::size_t i = 0; i < n; ++i) {
    cursor = base_index + i;
    decide(mixed[i], axis_alpha, iq_rate);
  }
  publish(n, prev_bits, prev_frames, prev_crc);
}

void FdmaRxChain::Channel::process_lane(const std::complex<double>* lane,
                                        std::size_t n, double axis_alpha,
                                        double lane_rate,
                                        std::uint64_t frame_base) {
  ARACHNET_TRACE_SPAN("fdma.channel");
  const std::uint64_t prev_bits = bits;
  const std::uint64_t prev_frames = framer.packets();
  const std::uint64_t prev_crc = framer.crc_failures();
  iq_samples += n;
  // Stages 1-2 already ran in the shared channelizer; only the decision
  // chain remains, at the lane rate. Frame F's newest full-rate IQ sample
  // is (F+1)*decim - 1; subtracting the prototype's extra group delay
  // dates packets like the per-channel bank (within one lane sample).
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t t =
        (frame_base + i + 1) * static_cast<std::uint64_t>(lane_decim) - 1;
    cursor = t > static_cast<std::uint64_t>(lane_delay)
                 ? t - static_cast<std::uint64_t>(lane_delay)
                 : 0;
    decide(lane[i], axis_alpha, lane_rate);
  }
  publish(n, prev_bits, prev_frames, prev_crc);
}

FdmaRxChain::FdmaRxChain(Params params)
    : params_(params),
      ddc_([&] {
        dsp::Ddc::Params ddc = params.ddc;
        // The main down-converter must pass the highest subcarrier plus
        // its modulation sidebands (or the provisioned headroom).
        double top = params.max_subcarrier_hz;
        for (const auto& c : params.channels) {
          // Non-finite specs must reach validate_subcarrier() for their
          // proper diagnostic, not blow up the filter design here.
          if (std::isfinite(c.subcarrier_hz)) {
            top = std::max(top, c.subcarrier_hz);
          }
        }
        ddc.cutoff_hz = top + 3.0 * params.chip_rate;
        // One policy switch for the whole chain: the main DDC and every
        // channel follow Params::kernels.
        ddc.kernels = params.kernels;
        return ddc;
      }()),
      iq_rate_(ddc_.output_rate_hz()) {
  if (params_.channels.empty()) {
    throw std::invalid_argument("FdmaRxChain: no channels");
  }
  const double samples_per_chip = iq_rate_ / params_.chip_rate;
  axis_alpha_ = per_sample_alpha(0.5, samples_per_chip);
  slicer_params_.floor = 0.001;
  slicer_params_.track_alpha = per_sample_alpha(0.98, samples_per_chip);
  slicer_params_.leak_alpha = per_sample_alpha(0.04, samples_per_chip);
  debounce_ =
      static_cast<std::size_t>(std::max(1.0, 0.12 * samples_per_chip));
  // Channel low-pass: passes the FM0 main lobe, rejects the neighbour
  // subcarrier one spacing away. The tap count scales with the IQ rate so
  // the transition width stays ~2.2 chip rates regardless of the DDC
  // decimation (127 taps at the default 31.25 kS/s IQ rate).
  const auto taps = std::clamp<std::size_t>(
      static_cast<std::size_t>(3.3 * iq_rate_ / (2.2 * params_.chip_rate)) |
          1,
      127, 511);
  channel_coeffs_ = dsp::design_lowpass(1.4 * params_.chip_rate, iq_rate_,
                                        taps);

  workers_ = params_.workers;
  if (workers_ == 0) {
    workers_ = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in run(), so the pool only needs
  // workers_ - 1 extra threads.
  pool_ = std::make_unique<dsp::WorkerPool>(workers_ - 1);

  // Validate the whole initial spec list before building anything (each
  // spec against the ones accepted so far).
  std::vector<double> freqs;
  freqs.reserve(params_.channels.size());
  for (const auto& spec : params_.channels) {
    validate_subcarrier(spec.subcarrier_hz, freqs);
    freqs.push_back(spec.subcarrier_hz);
  }

  if (params_.metrics != nullptr) {
    const auto sn = [&](std::string_view name) {
      return telemetry::scoped_name(params_.metrics_scope, name);
    };
    g_bank_policy_ = &params_.metrics->gauge(sn("fdma.bank_policy"));
    c_chzr_frames_ = &params_.metrics->counter(sn("fdma.chzr.frames"));
    c_chzr_fft_us_ = &params_.metrics->counter(sn("fdma.chzr.fft_us"));
    h_stage_frontend_us_ = &params_.metrics->histogram(
        sn("fdma.stage.frontend_us"), 0.0, 20000.0, 100);
    h_stage_decode_us_ = &params_.metrics->histogram(
        sn("fdma.stage.decode_us"), 0.0, 20000.0, 100);
  }

  const bool channelized =
      params_.bank != BankPolicy::kPerChannel && engage_channelizer(freqs);
  for (double hz : freqs) {
    channels_.push_back(channelized ? make_lane_channel(hz)
                                    : make_channel(hz));
    bind_channel_metrics(channels_.size() - 1);
  }
  if (g_bank_policy_ != nullptr) {
    g_bank_policy_->set(channelized ? 1.0 : 0.0);
  }
  if (params_.metrics != nullptr) {
    pool_->set_dispatch_histogram(&params_.metrics->histogram(
        telemetry::scoped_name(params_.metrics_scope, "fdma.dispatch_us"),
        0.0, 2000.0, 64));
  }
  ARACHNET_LOG_DEBUG("fdma", "chain ready",
                     {"channels", channels_.size()},
                     {"workers", workers_},
                     {"iq_rate_hz", iq_rate_},
                     {"bank", channelized ? "channelizer" : "per_channel"});
}

bool FdmaRxChain::engage_channelizer(const std::vector<double>& freqs) {
  if (params_.bank == BankPolicy::kAuto && freqs.size() < 4) {
    // Below ~4 channels the shared FFT costs about what the mixers do;
    // stay on the reference path (silently — nothing was requested).
    return false;
  }
  const auto plan =
      dsp::PolyphaseChannelizer::plan(iq_rate_, params_.chip_rate, freqs);
  if (!plan.viable) {
    ARACHNET_LOG_INFO("fdma", "channelizer fallback to per-channel",
                      {"reason", plan.reason},
                      {"channels", freqs.size()});
    return false;
  }
  chzr_ = std::make_unique<dsp::PolyphaseChannelizer>(
      dsp::PolyphaseChannelizer::Params{
          .sample_rate_hz = iq_rate_,
          .fft_size = plan.fft_size,
          .decimation = plan.decimation,
          .prototype =
              dsp::design_lowpass(plan.cutoff_hz, iq_rate_, plan.taps),
          .center_hz = freqs,
          .kernels = params_.kernels,
          .fold = params_.chzr_fold});
  grid_origin_hz_ = plan.grid_origin_hz;
  grid_spacing_hz_ = plan.grid_spacing_hz;
  lane_rate_ = chzr_->lane_rate_hz();
  const double lane_spc = lane_rate_ / params_.chip_rate;
  lane_axis_alpha_ = per_sample_alpha(0.5, lane_spc);
  lane_slicer_params_.floor = 0.001;
  lane_slicer_params_.track_alpha = per_sample_alpha(0.98, lane_spc);
  lane_slicer_params_.leak_alpha = per_sample_alpha(0.04, lane_spc);
  lane_debounce_ =
      static_cast<std::size_t>(std::max(1.0, 0.12 * lane_spc));
  // Cursor compensation so lane packets carry per-channel-equivalent
  // timestamps: the channelizer prototype's extra group delay, plus the
  // debouncer-latency difference (each debouncer confirms a transition
  // hold-1 samples late — lane samples are decimation full-rate samples
  // wide). The residual (frame quantisation plus the differing filter
  // transition shapes) stays within one lane sample.
  lane_delay_ =
      static_cast<std::int64_t>((plan.taps - 1) / 2) -
      static_cast<std::int64_t>((channel_coeffs_.size() - 1) / 2) +
      static_cast<std::int64_t>((lane_debounce_ - 1) * plan.decimation) -
      static_cast<std::int64_t>(debounce_ - 1);
  ARACHNET_LOG_DEBUG("fdma", "channelizer engaged",
                     {"fft_size", plan.fft_size},
                     {"decimation", plan.decimation},
                     {"taps", plan.taps},
                     {"lane_rate_hz", lane_rate_});
  return true;
}

void FdmaRxChain::bind_channel_metrics(std::size_t index) {
  if (params_.metrics == nullptr) return;
  auto& ch = *channels_[index];
  char name[48];
  const auto bind = [&](const char* suffix) -> telemetry::Counter* {
    std::snprintf(name, sizeof(name), "fdma.ch%zu.%s", index, suffix);
    return &params_.metrics->counter(
        telemetry::scoped_name(params_.metrics_scope, name));
  };
  ch.m_iq = bind("iq_samples");
  ch.m_bits = bind("bits");
  ch.m_frames = bind("frames");
  ch.m_crc = bind("crc_failures");
}

std::unique_ptr<FdmaRxChain::Channel> FdmaRxChain::make_channel(
    double subcarrier_hz) const {
  return std::make_unique<Channel>(subcarrier_hz, iq_rate_,
                                   params_.chip_rate, channel_coeffs_,
                                   slicer_params_, debounce_,
                                   params_.kernels);
}

std::unique_ptr<FdmaRxChain::Channel> FdmaRxChain::make_lane_channel(
    double subcarrier_hz) const {
  return std::make_unique<Channel>(subcarrier_hz, params_.chip_rate,
                                   lane_slicer_params_, lane_debounce_,
                                   chzr_->decimation(), lane_delay_);
}

std::vector<double> FdmaRxChain::subcarriers() const {
  std::vector<double> freqs;
  freqs.reserve(channels_.size());
  for (const auto& ch : channels_) freqs.push_back(ch->subcarrier_hz);
  return freqs;
}

void FdmaRxChain::validate_subcarrier(
    double hz, const std::vector<double>& existing) const {
  if (!std::isfinite(hz)) {
    throw std::invalid_argument(
        "FdmaRxChain: subcarrier must be finite (got NaN or infinity)");
  }
  if (hz <= 0.0) {
    throw std::invalid_argument(
        "FdmaRxChain: subcarrier must be positive");
  }
  if (hz + 3.0 * params_.chip_rate > ddc_.params().cutoff_hz + 1e-9) {
    throw std::invalid_argument(
        "FdmaRxChain: subcarrier outside the provisioned DDC passband");
  }
  for (double f : existing) {
    if (f == hz) {
      throw std::invalid_argument("FdmaRxChain: duplicate subcarrier");
    }
    if (std::abs(f - hz) < 3.0 * params_.chip_rate) {
      throw std::invalid_argument(
          "FdmaRxChain: subcarriers closer than 3x chip rate");
    }
  }
}

bool FdmaRxChain::on_grid(double hz) const noexcept {
  if (grid_spacing_hz_ <= 0.0) return false;  // single lane: no grid yet
  const double steps = (hz - grid_origin_hz_) / grid_spacing_hz_;
  return std::abs(steps - std::round(steps)) < 1e-6;
}

void FdmaRxChain::fallback_to_per_channel(const char* reason) {
  ARACHNET_LOG_INFO("fdma", "channelizer fallback to per-channel",
                    {"reason", reason},
                    {"channels", channels_.size()});
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    auto& old = *channels_[i];
    auto fresh = make_channel(old.subcarrier_hz);
    // Everything already decoded survives the rebuild; only the in-flight
    // DSP state (slicer levels, partial packet) restarts.
    fresh->packets = std::move(old.packets);
    fresh->packet_iq_index = std::move(old.packet_iq_index);
    fresh->drained = old.drained;
    fresh->cursor = old.cursor;
    fresh->iq_samples = old.iq_samples;
    fresh->bits = old.bits;
    fresh->frames_base = old.frames_base + old.framer.packets();
    fresh->crc_base = old.crc_base + old.framer.crc_failures();
    fresh->pub_iq_samples.store(fresh->iq_samples,
                                std::memory_order_relaxed);
    fresh->pub_bits.store(fresh->bits, std::memory_order_relaxed);
    fresh->pub_frames.store(fresh->frames_base, std::memory_order_relaxed);
    fresh->pub_crc.store(fresh->crc_base, std::memory_order_relaxed);
    channels_[i] = std::move(fresh);
    bind_channel_metrics(i);
  }
  chzr_.reset();
  if (g_bank_policy_ != nullptr) g_bank_policy_->set(0.0);
}

void FdmaRxChain::add_channel(ChannelSpec spec) {
  if (processing_.load(std::memory_order_acquire)) {
    // Documented non-reentrancy, enforced: growing the channel list while
    // the worker fan-out walks it is memory corruption, not a race worth
    // losing silently. Callers (the fleet planner's dynamic channel
    // re-assignment in particular) must serialize against process().
    throw std::logic_error(
        "FdmaRxChain::add_channel: process() is in flight; serialize "
        "channel re-assignment against the processing thread");
  }
  validate_subcarrier(spec.subcarrier_hz, subcarriers());
  if (chzr_ != nullptr) {
    if (on_grid(spec.subcarrier_hz) &&
        chzr_->lane_fits(spec.subcarrier_hz)) {
      chzr_->add_lane(spec.subcarrier_hz);
      channels_.push_back(make_lane_channel(spec.subcarrier_hz));
    } else {
      fallback_to_per_channel("added subcarrier breaks the uniform grid");
      channels_.push_back(make_channel(spec.subcarrier_hz));
    }
  } else {
    channels_.push_back(make_channel(spec.subcarrier_hz));
  }
  params_.channels.push_back(spec);
  bind_channel_metrics(channels_.size() - 1);
  ARACHNET_LOG_INFO("fdma", "channel added",
                    {"subcarrier_hz", spec.subcarrier_hz},
                    {"channels", channels_.size()});
}

namespace {

/// RAII arm/disarm of the process-in-flight flag (exception-safe: a
/// throwing decode must not leave add_channel locked out forever).
struct ProcessingGuard {
  explicit ProcessingGuard(std::atomic<bool>& flag) : flag_(flag) {
    flag_.store(true, std::memory_order_release);
  }
  ~ProcessingGuard() { flag_.store(false, std::memory_order_release); }
  std::atomic<bool>& flag_;
};

}  // namespace

void FdmaRxChain::process(const double* samples, std::size_t n) {
  ARACHNET_TRACE_SPAN("fdma.process");
  ProcessingGuard in_flight{processing_};
  // Stage timing (front-end = DDC + shared channelizer on the caller
  // thread; decode = per-channel fan-out) is metrics-gated so the
  // uninstrumented path pays nothing.
  const bool timed = h_stage_frontend_us_ != nullptr;
  const std::uint64_t t_in = timed ? steady_now_ns() : 0;
  // Reused member scratch: the steady-state hot path allocates nothing.
  iq_buf_.clear();
  ddc_.process(std::span<const double>{samples, n}, iq_buf_);
  if (iq_buf_.empty()) return;
  if (chzr_ != nullptr) {
    const std::uint64_t t0 =
        (c_chzr_fft_us_ != nullptr) ? steady_now_ns() : 0;
    const std::size_t frames =
        chzr_->process(iq_buf_.data(), iq_buf_.size());
    if (c_chzr_fft_us_ != nullptr) {
      c_chzr_fft_us_->add((steady_now_ns() - t0) / 1000);
      c_chzr_frames_->add(frames);
    }
    const std::uint64_t t_front = timed ? steady_now_ns() : 0;
    if (timed) {
      h_stage_frontend_us_->record(static_cast<double>(t_front - t_in) *
                                   1e-3);
    }
    if (frames != 0) {
      const std::uint64_t frame_base = chzr_->frames_produced() - frames;
      pool_->run(channels_.size(), [&](std::size_t c) {
        channels_[c]->process_lane(chzr_->lane(c), frames,
                                   lane_axis_alpha_, lane_rate_,
                                   frame_base);
      });
      if (timed) {
        h_stage_decode_us_->record(
            static_cast<double>(steady_now_ns() - t_front) * 1e-3);
      }
    }
  } else {
    const std::uint64_t t_front = timed ? steady_now_ns() : 0;
    if (timed) {
      h_stage_frontend_us_->record(static_cast<double>(t_front - t_in) *
                                   1e-3);
    }
    pool_->run(channels_.size(), [&](std::size_t c) {
      channels_[c]->process_block(iq_buf_.data(), iq_buf_.size(),
                                  axis_alpha_, iq_rate_, iq_index_);
    });
    if (timed) {
      h_stage_decode_us_->record(
          static_cast<double>(steady_now_ns() - t_front) * 1e-3);
    }
  }
  iq_index_ += iq_buf_.size();
}

const std::vector<phy::UlPacket>& FdmaRxChain::packets(
    std::size_t channel) const {
  return channels_.at(channel)->packets;
}

std::vector<RxPacket> FdmaRxChain::drain_packets() {
  std::vector<RxPacket> merged;
  drain_packets(merged);
  return merged;
}

std::size_t FdmaRxChain::drain_packets(std::vector<RxPacket>& out) {
  out.clear();
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    auto& ch = *channels_[c];
    for (std::size_t i = ch.drained; i < ch.packets.size(); ++i) {
      out.push_back(RxPacket{
          ch.packets[i],
          static_cast<double>(ch.packet_iq_index[i]) / iq_rate_, c});
    }
    // Release drained packets instead of advancing a cursor over an
    // ever-growing list: a long-running reader once accumulated every
    // packet it had ever decoded here. clear() keeps capacity, so the
    // steady state neither grows nor allocates.
    ch.packets.clear();
    ch.packet_iq_index.clear();
    ch.drained = 0;
  }
  // Deterministic cross-channel order: completion sample, then channel.
  // The comparator is a strict total order over this set — within one
  // channel completion times are distinct, so (time_s, channel) never
  // ties — which makes std::sort deterministic here. std::stable_sort
  // would give the identical permutation but allocates its merge buffer
  // on every call, breaking the steady-state allocation contract.
  std::sort(out.begin(), out.end(),
            [](const RxPacket& a, const RxPacket& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.channel < b.channel;
            });
  return out.size();
}

void FdmaRxChain::clear_packets() {
  for (auto& ch : channels_) {
    ch->packets.clear();
    ch->packet_iq_index.clear();
    ch->drained = 0;
  }
}

FdmaRxChain::ChannelStats FdmaRxChain::channel_stats(
    std::size_t channel) const {
  const auto& ch = *channels_.at(channel);
  ChannelStats s;
  s.subcarrier_hz = ch.subcarrier_hz;
  s.iq_samples = ch.pub_iq_samples.load(std::memory_order_relaxed);
  s.bits = ch.pub_bits.load(std::memory_order_relaxed);
  s.frames_ok = ch.pub_frames.load(std::memory_order_relaxed);
  s.crc_failures = ch.pub_crc.load(std::memory_order_relaxed);
  return s;
}

std::vector<FdmaRxChain::ChannelStats> FdmaRxChain::all_channel_stats()
    const {
  std::vector<ChannelStats> all;
  all.reserve(channels_.size());
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    all.push_back(channel_stats(c));
  }
  return all;
}

}  // namespace arachnet::reader
