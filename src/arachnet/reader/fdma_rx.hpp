#pragma once

#include <atomic>
#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "arachnet/dsp/ddc.hpp"
#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/kernels/fir_kernels.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/dsp/kernels/nco.hpp"
#include "arachnet/dsp/pipeline.hpp"
#include "arachnet/dsp/schmitt.hpp"
#include "arachnet/dsp/slicer.hpp"
#include "arachnet/phy/framer.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/reader/fm0_stream_decoder.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::reader {

/// FDMA uplink receiver: a bank of subcarrier channels on top of the main
/// down-converter. Each tag mixes its FM0 chips with a distinct square
/// subcarrier (phy::SubcarrierModulator), placing its energy at
/// carrier +/- f_sc; each channel shifts one such band to DC, low-pass
/// filters it against the neighbours, and runs the usual
/// slicer -> FM0 -> framer chain. Tags on different subcarriers decode
/// simultaneously — the paper's FDMA extension path (Sec. 6.3).
///
/// Threading model: the main DDC runs on the calling thread, then each
/// sample block fans out across a persistent dsp::WorkerPool with one task
/// per channel. Channels are pinned on the heap and never share mutable
/// state, so the parallel bank is bit-identical to the sequential one
/// (`Params::workers = 1`); decoded packets merge deterministically by
/// (completion sample, channel index) via drain_packets().
class FdmaRxChain {
 public:
  struct ChannelSpec {
    double subcarrier_hz = 3000.0;
  };

  /// Per-channel decode counters (monotonic since construction). Safe to
  /// read from any thread; values are published at block granularity.
  struct ChannelStats {
    double subcarrier_hz = 0.0;
    std::uint64_t iq_samples = 0;    ///< baseband samples through the channel
    std::uint64_t bits = 0;          ///< FM0 bits recovered (pre-framing)
    std::uint64_t frames_ok = 0;     ///< CRC-valid packets
    std::uint64_t crc_failures = 0;  ///< framed bodies that failed CRC
  };

  struct Params {
    dsp::Ddc::Params ddc{};   ///< cutoff must cover the highest subcarrier
    double chip_rate = phy::kDefaultUlRawBitRate;
    std::vector<ChannelSpec> channels;
    /// Worker threads for the per-block channel fan-out. 0 = auto (one per
    /// hardware thread); 1 = strictly sequential on the calling thread.
    std::size_t workers = 0;
    /// When nonzero, the main down-converter passband is provisioned for
    /// this subcarrier instead of the highest initial channel, leaving
    /// headroom for add_channel() to place channels above the initial set.
    double max_subcarrier_hz = 0.0;
    /// Optional metrics registry. When set, the chain registers per-channel
    /// decode counters (`fdma.ch<i>.{iq_samples,bits,frames,crc_failures}`)
    /// and a worker-pool dispatch-latency histogram (`fdma.dispatch_us`).
    /// The registry must outlive the chain. nullptr = no instrumentation.
    telemetry::MetricsRegistry* metrics = nullptr;
    /// DSP implementation for the main DDC and the per-channel mixer/LPF.
    /// Decoded packets are identical across policies (see KernelPolicy);
    /// the block path is the production default.
    dsp::KernelPolicy kernels = dsp::default_kernel_policy();
  };

  explicit FdmaRxChain(Params params);

  /// Adds a subcarrier channel at runtime (e.g. when a new tag is
  /// commissioned). Validates spacing against the existing bank and that
  /// the subcarrier fits the provisioned down-converter passband. Existing
  /// channels keep their DSP state: each channel is pinned on the heap, so
  /// growing the bank past the channel list's capacity cannot invalidate
  /// the decoder callbacks (the regression behind this API).
  ///
  /// Not thread-safe: like process(), this mutates the channel list and
  /// must not run concurrently with process(), drain_packets(), packets(),
  /// or the channel_stats() readers. When the chain is owned by a
  /// RealtimeReader (which processes on its worker thread), stop the
  /// reader — or otherwise serialize against its worker — before calling.
  void add_channel(ChannelSpec spec);

  /// Processes raw DAQ samples. Not reentrant: one processing thread at a
  /// time (the worker fan-out happens internally).
  void process(const std::vector<double>& samples);

  /// Packets decoded on channel `i` so far.
  const std::vector<phy::UlPacket>& packets(std::size_t channel) const;

  /// Drains packets decoded since the last drain, merged across channels
  /// in a deterministic order: by the IQ sample at which the packet
  /// completed, then by channel index. Independent of worker scheduling.
  std::vector<RxPacket> drain_packets();

  /// Clears decoded packets on all channels (and the drain cursors).
  void clear_packets();

  /// Thread-safe snapshot of one channel's counters.
  ChannelStats channel_stats(std::size_t channel) const;

  /// Snapshots of all channels, in channel order.
  std::vector<ChannelStats> all_channel_stats() const;

  std::size_t channel_count() const noexcept { return channels_.size(); }

  /// Threads used for the channel fan-out (1 = sequential).
  std::size_t worker_count() const noexcept { return workers_; }

  const Params& params() const noexcept { return params_; }

 private:
  /// One subcarrier's full decode state. Pinned: the fm0/framer callbacks
  /// capture `this`, so the object is heap-allocated and must never be
  /// copied or moved — enforced by deleting both (construction in
  /// make_channel() is the only way to obtain one).
  struct Channel {
    Channel(double hz, double iq_rate, double chip_rate,
            std::vector<double> coeffs, dsp::AdaptiveSlicer::Params sp,
            std::size_t debounce, dsp::KernelPolicy kernels);
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Runs NCO mix -> FIR -> axis projection -> slicer -> FM0 -> framer
    /// over a contiguous IQ block. `base_index` is the absolute IQ index
    /// of `iq[0]` (for packet timestamps and the deterministic merge).
    void process_block(const std::complex<double>* iq, std::size_t n,
                       double axis_alpha, double iq_rate,
                       std::uint64_t base_index);

    double subcarrier_hz;
    dsp::KernelPolicy kernels;
    double nco_phase = 0.0;  ///< scalar-path mixer state
    double nco_step = 0.0;
    dsp::PhasorNco nco;      ///< block-path mixer state
    dsp::FirFilter<std::complex<double>> lpf;        ///< scalar-path LPF
    dsp::FirBlockFilter<std::complex<double>> blpf;  ///< block-path LPF
    std::vector<std::complex<double>> mixed;  ///< per-block scratch
    std::complex<double> pseudo_variance{0.0, 0.0};
    std::complex<double> prev_axis{1.0, 0.0};
    dsp::AdaptiveSlicer slicer;
    dsp::Debouncer debouncer;
    dsp::RunLengthEncoder runs;
    phy::UlFramer framer;
    Fm0StreamDecoder fm0;
    std::vector<phy::UlPacket> packets;
    std::vector<std::uint64_t> packet_iq_index;  ///< parallel to `packets`
    std::size_t drained = 0;          ///< drain_packets() cursor
    std::uint64_t cursor = 0;         ///< absolute IQ index being decoded
    std::uint64_t iq_samples = 0;     ///< working counter (decode thread)
    std::uint64_t bits = 0;           ///< working counter (decode thread)
    // Published at block granularity for cross-thread stats readers.
    std::atomic<std::uint64_t> pub_iq_samples{0};
    std::atomic<std::uint64_t> pub_bits{0};
    std::atomic<std::uint64_t> pub_frames{0};
    std::atomic<std::uint64_t> pub_crc{0};
    // Registry counters (nullable; bound once at channel creation). Each
    // channel is processed by exactly one worker task per block, so the
    // per-block delta adds never contend on the same counter.
    telemetry::Counter* m_iq = nullptr;
    telemetry::Counter* m_bits = nullptr;
    telemetry::Counter* m_frames = nullptr;
    telemetry::Counter* m_crc = nullptr;
  };

  std::unique_ptr<Channel> make_channel(double subcarrier_hz) const;
  void validate_subcarrier(double hz) const;
  void bind_channel_metrics(std::size_t index);

  Params params_;
  dsp::Ddc ddc_;
  double iq_rate_;
  double axis_alpha_;
  std::vector<double> channel_coeffs_;
  dsp::AdaptiveSlicer::Params slicer_params_{};
  std::size_t debounce_ = 1;
  std::size_t workers_ = 1;
  std::unique_ptr<dsp::WorkerPool> pool_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::uint64_t iq_index_ = 0;  ///< absolute IQ samples produced so far
  /// Per-block IQ scratch, reused across process() calls so the steady
  /// state allocates nothing.
  std::vector<std::complex<double>> iq_buf_;
};

}  // namespace arachnet::reader
