#pragma once

#include <atomic>
#include <complex>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arachnet/dsp/ddc.hpp"
#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/kernels/channelizer.hpp"
#include "arachnet/dsp/kernels/fir_kernels.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/dsp/kernels/nco.hpp"
#include "arachnet/dsp/kernels/simd/stages.hpp"
#include "arachnet/dsp/pipeline.hpp"
#include "arachnet/dsp/schmitt.hpp"
#include "arachnet/dsp/slicer.hpp"
#include "arachnet/phy/framer.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/reader/fm0_stream_decoder.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::reader {

/// FDMA uplink receiver: a bank of subcarrier channels on top of the main
/// down-converter. Each tag mixes its FM0 chips with a distinct square
/// subcarrier (phy::SubcarrierModulator), placing its energy at
/// carrier +/- f_sc; each channel shifts one such band to DC, low-pass
/// filters it against the neighbours, and runs the usual
/// slicer -> FM0 -> framer chain. Tags on different subcarriers decode
/// simultaneously — the paper's FDMA extension path (Sec. 6.3).
///
/// Two front-end structures live behind Params::bank (see BankPolicy):
///  - per-channel: C independent NCO-mix + full-rate-FIR stages,
///    O(N * C * taps) per IQ block — the reference path, and the only one
///    that handles arbitrary subcarrier placements;
///  - channelizer: one shared dsp::PolyphaseChannelizer front-end,
///    O(N * taps/C + N * logC) — engaged when the subcarriers sit on a
///    uniform grid, it replaces every channel's mixer+LPF and feeds the
///    same decision back-ends at the decimated lane rate. Decoded packet
///    streams are identical across bank policies (payloads and CRC
///    verdicts exactly; timestamps within one lane sample).
///
/// Threading model: the main DDC (and, in channelizer mode, the shared
/// filterbank) runs on the calling thread, then each sample block fans out
/// across a persistent dsp::WorkerPool with one task per channel. Channels
/// are pinned on the heap and never share mutable state, so the parallel
/// bank is bit-identical to the sequential one (`Params::workers = 1`);
/// decoded packets merge deterministically by (completion sample, channel
/// index) via drain_packets().
class FdmaRxChain {
 public:
  /// Front-end structure for the subcarrier bank.
  enum class BankPolicy {
    kPerChannel,   ///< independent mixer + LPF per channel (reference)
    kChannelizer,  ///< shared polyphase FFT filterbank (uniform grids);
                   ///< falls back to per-channel with a logged reason if
                   ///< the configuration cannot use it
    kAuto,         ///< channelizer when the grid qualifies and the bank
                   ///< has >= 4 channels (below that the shared FFT does
                   ///< not pay for itself), else per-channel
  };

  struct ChannelSpec {
    double subcarrier_hz = 3000.0;
  };

  /// Per-channel decode counters (monotonic since construction). Safe to
  /// read from any thread; values are published at block granularity.
  struct ChannelStats {
    double subcarrier_hz = 0.0;
    /// Baseband samples through the channel's decision chain: full-rate IQ
    /// samples on the per-channel path, decimated lane samples on the
    /// channelizer path.
    std::uint64_t iq_samples = 0;
    std::uint64_t bits = 0;          ///< FM0 bits recovered (pre-framing)
    std::uint64_t frames_ok = 0;     ///< CRC-valid packets
    std::uint64_t crc_failures = 0;  ///< framed bodies that failed CRC
  };

  struct Params {
    dsp::Ddc::Params ddc{};   ///< cutoff must cover the highest subcarrier
    double chip_rate = phy::kDefaultUlRawBitRate;
    std::vector<ChannelSpec> channels;
    /// Worker threads for the per-block channel fan-out. 0 = auto (one per
    /// hardware thread); 1 = strictly sequential on the calling thread.
    std::size_t workers = 0;
    /// When nonzero, the main down-converter passband is provisioned for
    /// this subcarrier instead of the highest initial channel, leaving
    /// headroom for add_channel() to place channels above the initial set.
    double max_subcarrier_hz = 0.0;
    /// Optional metrics registry. When set, the chain registers per-channel
    /// decode counters (`fdma.ch<i>.{iq_samples,bits,frames,crc_failures}`),
    /// a worker-pool dispatch-latency histogram (`fdma.dispatch_us`), the
    /// active-front-end gauge `fdma.bank_policy` (0 = per-channel,
    /// 1 = channelizer), the channelizer counters
    /// `fdma.chzr.{frames,fft_us}`, and per-block stage histograms
    /// `fdma.stage.{frontend_us,decode_us}` (shared front-end vs channel
    /// fan-out). The registry must outlive the chain.
    /// nullptr = no instrumentation.
    telemetry::MetricsRegistry* metrics = nullptr;
    /// Per-instance metric-name prefix (e.g. "r0.") so several banks can
    /// share one registry without their `fdma.*` instruments colliding.
    /// Empty (the default) keeps the historical unscoped names.
    std::string metrics_scope;
    /// DSP implementation for the main DDC and the per-channel mixer/LPF.
    /// Decoded packets are identical across policies (see KernelPolicy);
    /// the block path is the production default. The channelizer front-end
    /// has a single implementation, so under it the two kernel policies
    /// differ only in the main DDC.
    dsp::KernelPolicy kernels = dsp::default_kernel_policy();
    /// Bank front-end selection; resolved once at construction (see
    /// BankPolicy and active_bank()).
    BankPolicy bank = BankPolicy::kAuto;
    /// Channelizer fold precision under kSimd: kAuto rides the float32
    /// fast path; kFloat64 pins the double-precision fold (the speedup
    /// baseline for benches and parity tests). Ignored on the per-channel
    /// front-end and outside kSimd.
    dsp::PolyphaseChannelizer::Params::Fold chzr_fold =
        dsp::PolyphaseChannelizer::Params::Fold::kAuto;
  };

  explicit FdmaRxChain(Params params);

  /// Adds a subcarrier channel at runtime (e.g. when a new tag is
  /// commissioned). Validates spacing against the existing bank and that
  /// the subcarrier fits the provisioned down-converter passband. Existing
  /// channels keep their DSP state: each channel is pinned on the heap, so
  /// growing the bank past the channel list's capacity cannot invalidate
  /// the decoder callbacks (the regression behind this API).
  ///
  /// Channelizer-grid interaction: when the channelizer front-end is
  /// active, a subcarrier on the existing grid (origin + k*spacing, free
  /// FFT bin) becomes a new lane and the channelizer stays engaged; an
  /// off-grid subcarrier triggers a logged fallback that rebuilds the bank
  /// on the per-channel path. The fallback preserves every decoded packet,
  /// drain cursor and counter; only the in-flight DSP state (partially
  /// decoded packet, slicer levels) restarts, so decoding resumes after a
  /// brief re-acquisition.
  ///
  /// Not thread-safe: like process(), this mutates the channel list and
  /// must not run concurrently with process(), drain_packets(), packets(),
  /// or the channel_stats() readers. When the chain is owned by a
  /// RealtimeReader (which processes on its worker thread), stop the
  /// reader — or otherwise serialize against its worker — before calling.
  /// The contract is enforced: add_channel() throws std::logic_error when
  /// a process() call is in flight (the fleet planner re-assigns channels
  /// dynamically, and an unsynchronized call must fail loudly, not corrupt
  /// the channel list mid-fan-out). The check is one relaxed atomic flag,
  /// so it is always on, not just in debug builds.
  void add_channel(ChannelSpec spec);

  /// True while a process() call is in flight (the add_channel guard;
  /// useful for callers that want to poll instead of catching).
  bool processing_now() const noexcept {
    return processing_.load(std::memory_order_relaxed);
  }

  /// Processes raw DAQ samples. Not reentrant: one processing thread at a
  /// time (the worker fan-out happens internally).
  void process(const double* samples, std::size_t n);

  /// Vector convenience forwarder for the span-style overload above.
  void process(const std::vector<double>& samples) {
    process(samples.data(), samples.size());
  }

  /// Packets decoded on channel `i` since the last drain_packets()/
  /// clear_packets() call (draining releases them — an endless cursor
  /// over every packet ever decoded grew without bound in long sessions).
  const std::vector<phy::UlPacket>& packets(std::size_t channel) const;

  /// Drains packets decoded since the last drain, merged across channels
  /// in a deterministic order: by the IQ sample at which the packet
  /// completed, then by channel index. Independent of worker scheduling.
  /// Drained packets are released from the per-channel lists.
  std::vector<RxPacket> drain_packets();

  /// Allocation-free drain: clears `out` and refills it in place, so a
  /// caller reusing one vector across blocks stops allocating once the
  /// vector has grown to the high-water packet count (the steady-state
  /// contract RealtimeReader and ReaderService rely on). Returns the
  /// number of packets drained. Same deterministic order as above.
  std::size_t drain_packets(std::vector<RxPacket>& out);

  /// Clears decoded packets on all channels (and the drain cursors).
  void clear_packets();

  /// Thread-safe snapshot of one channel's counters.
  ChannelStats channel_stats(std::size_t channel) const;

  /// Snapshots of all channels, in channel order.
  std::vector<ChannelStats> all_channel_stats() const;

  std::size_t channel_count() const noexcept { return channels_.size(); }

  /// Threads used for the channel fan-out (1 = sequential).
  std::size_t worker_count() const noexcept { return workers_; }

  /// The front-end actually running right now: kChannelizer while the
  /// shared filterbank is engaged, kPerChannel otherwise (never kAuto).
  BankPolicy active_bank() const noexcept {
    return chzr_ ? BankPolicy::kChannelizer : BankPolicy::kPerChannel;
  }

  const Params& params() const noexcept { return params_; }

 private:
  /// One subcarrier's full decode state. Pinned: the fm0/framer callbacks
  /// capture `this`, so the object is heap-allocated and must never be
  /// copied or moved — enforced by deleting both (construction in
  /// make_channel()/make_lane_channel() is the only way to obtain one).
  ///
  /// Two front-end modes share the decision chain: per-channel mode owns
  /// an NCO + LPF (stages 1-2) and consumes full-rate IQ; lane mode
  /// (lane_decim != 0) consumes one already-filtered decimated lane of the
  /// shared channelizer.
  struct Channel {
    /// Per-channel (mixer) mode.
    Channel(double hz, double iq_rate, double chip_rate,
            std::vector<double> coeffs, dsp::AdaptiveSlicer::Params sp,
            std::size_t debounce, dsp::KernelPolicy kernels);
    /// Channelizer-lane mode: stages 1-2 live in the shared filterbank.
    /// `lane_delay` is the extra group delay (in full-rate IQ samples) of
    /// the channelizer prototype over the per-channel LPF, subtracted from
    /// packet timestamps so both banks date packets alike.
    Channel(double hz, double chip_rate, dsp::AdaptiveSlicer::Params sp,
            std::size_t debounce, std::size_t lane_decimation,
            std::int64_t lane_delay);
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Runs NCO mix -> FIR -> axis projection -> slicer -> FM0 -> framer
    /// over a contiguous IQ block. `base_index` is the absolute IQ index
    /// of `iq[0]` (for packet timestamps and the deterministic merge).
    void process_block(const std::complex<double>* iq, std::size_t n,
                       double axis_alpha, double iq_rate,
                       std::uint64_t base_index);

    /// Lane mode: runs the decision chain over `n` channelizer frames.
    /// `frame_base` is the absolute frame index of `lane[0]`.
    void process_lane(const std::complex<double>* lane, std::size_t n,
                      double axis_alpha, double lane_rate,
                      std::uint64_t frame_base);

    /// Stage 3, shared by both modes: axis projection and the
    /// slicer -> FM0 -> framer decision chain for one baseband sample.
    /// `cursor` must hold the packet-timestamp IQ index before the call.
    void decide(std::complex<double> shifted, double axis_alpha,
                double rate);

    /// Publishes the working counters (cross-thread stats readers) and
    /// adds the per-block deltas to the registry counters.
    void publish(std::size_t samples, std::uint64_t prev_bits,
                 std::uint64_t prev_frames, std::uint64_t prev_crc);

   private:
    Channel(double hz, double chip_rate, dsp::AdaptiveSlicer::Params sp,
            std::size_t debounce);

   public:
    double subcarrier_hz;
    dsp::KernelPolicy kernels = dsp::default_kernel_policy();
    double nco_phase = 0.0;  ///< scalar-path mixer state
    double nco_step = 0.0;
    dsp::PhasorNco nco;      ///< block-path mixer state
    std::optional<dsp::FirFilter<std::complex<double>>> lpf;  ///< scalar LPF
    std::optional<dsp::FirBlockFilter<std::complex<double>>> blpf;
    std::vector<std::complex<double>> mixed;  ///< per-block scratch
    // Simd-path mixer state: float32 lanes end-to-end through the LPF,
    // widened back to double at the decision chain.
    dsp::simd::SimdNco nco_s;
    std::optional<dsp::simd::FirSimdFilter> slpf;
    std::vector<float> mixed_f;  ///< interleaved per-block scratch
    std::size_t lane_decim = 0;  ///< 0 = per-channel mode
    std::int64_t lane_delay = 0;
    std::complex<double> pseudo_variance{0.0, 0.0};
    std::complex<double> prev_axis{1.0, 0.0};
    dsp::AdaptiveSlicer slicer;
    dsp::Debouncer debouncer;
    dsp::RunLengthEncoder runs;
    phy::UlFramer framer;
    Fm0StreamDecoder fm0;
    std::vector<phy::UlPacket> packets;
    std::vector<std::uint64_t> packet_iq_index;  ///< parallel to `packets`
    std::size_t drained = 0;          ///< drain_packets() cursor
    std::uint64_t cursor = 0;         ///< absolute IQ index being decoded
    std::uint64_t iq_samples = 0;     ///< working counter (decode thread)
    std::uint64_t bits = 0;           ///< working counter (decode thread)
    /// Counts carried over a bank rebuild (channelizer fallback): the new
    /// framer restarts from zero, so published frame/CRC totals add these.
    std::uint64_t frames_base = 0;
    std::uint64_t crc_base = 0;
    // Published at block granularity for cross-thread stats readers.
    std::atomic<std::uint64_t> pub_iq_samples{0};
    std::atomic<std::uint64_t> pub_bits{0};
    std::atomic<std::uint64_t> pub_frames{0};
    std::atomic<std::uint64_t> pub_crc{0};
    // Registry counters (nullable; bound once at channel creation). Each
    // channel is processed by exactly one worker task per block, so the
    // per-block delta adds never contend on the same counter.
    telemetry::Counter* m_iq = nullptr;
    telemetry::Counter* m_bits = nullptr;
    telemetry::Counter* m_frames = nullptr;
    telemetry::Counter* m_crc = nullptr;
  };

  std::unique_ptr<Channel> make_channel(double subcarrier_hz) const;
  std::unique_ptr<Channel> make_lane_channel(double subcarrier_hz) const;
  void validate_subcarrier(double hz,
                           const std::vector<double>& existing) const;
  std::vector<double> subcarriers() const;
  void bind_channel_metrics(std::size_t index);
  /// Tries to stand up the channelizer front-end for the initial channel
  /// set; returns false (with a logged reason) when the configuration
  /// cannot use it.
  bool engage_channelizer(const std::vector<double>& freqs);
  /// Rebuilds every channel on the per-channel path, preserving decoded
  /// packets, drain cursors and counters (see add_channel()).
  void fallback_to_per_channel(const char* reason);
  /// True when `hz` extends the engaged channelizer's uniform grid.
  bool on_grid(double hz) const noexcept;

  Params params_;
  dsp::Ddc ddc_;
  double iq_rate_;
  double axis_alpha_;
  std::vector<double> channel_coeffs_;
  dsp::AdaptiveSlicer::Params slicer_params_{};
  std::size_t debounce_ = 1;
  std::size_t workers_ = 1;
  std::unique_ptr<dsp::WorkerPool> pool_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::uint64_t iq_index_ = 0;  ///< absolute IQ samples produced so far
  // Channelizer front-end (null = per-channel path) and the lane-rate
  // decision-chain parameters derived from its decimation.
  std::unique_ptr<dsp::PolyphaseChannelizer> chzr_;
  double lane_rate_ = 0.0;
  double lane_axis_alpha_ = 0.0;
  dsp::AdaptiveSlicer::Params lane_slicer_params_{};
  std::size_t lane_debounce_ = 1;
  std::int64_t lane_delay_ = 0;
  double grid_origin_hz_ = 0.0;
  double grid_spacing_hz_ = 0.0;
  // Registry instruments (nullable; bound once in the constructor).
  telemetry::Gauge* g_bank_policy_ = nullptr;
  telemetry::Counter* c_chzr_frames_ = nullptr;
  telemetry::Counter* c_chzr_fft_us_ = nullptr;
  // Per-block stage split of process(): front-end (main DDC + shared
  // channelizer, caller thread) vs decode (per-channel pool fan-out).
  telemetry::LatencyHistogram* h_stage_frontend_us_ = nullptr;
  telemetry::LatencyHistogram* h_stage_decode_us_ = nullptr;
  /// Per-block IQ scratch, reused across process() calls so the steady
  /// state allocates nothing.
  std::vector<std::complex<double>> iq_buf_;
  /// Set for the duration of process(); add_channel() refuses while it is
  /// up (documented non-reentrancy, now enforced).
  std::atomic<bool> processing_{false};
};

}  // namespace arachnet::reader
