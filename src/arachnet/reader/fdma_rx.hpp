#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "arachnet/dsp/ddc.hpp"
#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/schmitt.hpp"
#include "arachnet/dsp/slicer.hpp"
#include "arachnet/phy/framer.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/reader/fm0_stream_decoder.hpp"

namespace arachnet::reader {

/// FDMA uplink receiver: a bank of subcarrier channels on top of the main
/// down-converter. Each tag mixes its FM0 chips with a distinct square
/// subcarrier (phy::SubcarrierModulator), placing its energy at
/// carrier +/- f_sc; each channel shifts one such band to DC, low-pass
/// filters it against the neighbours, and runs the usual
/// slicer -> FM0 -> framer chain. Tags on different subcarriers decode
/// simultaneously — the paper's FDMA extension path (Sec. 6.3).
class FdmaRxChain {
 public:
  struct ChannelSpec {
    double subcarrier_hz = 3000.0;
  };

  struct Params {
    dsp::Ddc::Params ddc{};   ///< cutoff must cover the highest subcarrier
    double chip_rate = phy::kDefaultUlRawBitRate;
    std::vector<ChannelSpec> channels;
  };

  explicit FdmaRxChain(Params params);

  /// Processes raw DAQ samples.
  void process(const std::vector<double>& samples);

  /// Packets decoded on channel `i` so far.
  const std::vector<phy::UlPacket>& packets(std::size_t channel) const;

  /// Clears decoded packets on all channels.
  void clear_packets();

  std::size_t channel_count() const noexcept { return channels_.size(); }

  const Params& params() const noexcept { return params_; }

 private:
  struct Channel {
    double subcarrier_hz;
    double nco_phase = 0.0;
    double nco_step = 0.0;
    dsp::FirFilter<std::complex<double>> lpf;
    std::complex<double> pseudo_variance{0.0, 0.0};
    std::complex<double> prev_axis{1.0, 0.0};
    dsp::AdaptiveSlicer slicer;
    dsp::Debouncer debouncer;
    dsp::RunLengthEncoder runs;
    std::unique_ptr<Fm0StreamDecoder> fm0;
    std::unique_ptr<phy::UlFramer> framer;
    std::vector<phy::UlPacket> packets;

    Channel(double hz, double iq_rate, double chip_rate,
            std::vector<double> coeffs, dsp::AdaptiveSlicer::Params sp,
            std::size_t debounce);
  };

  void on_iq(std::complex<double> iq);

  Params params_;
  dsp::Ddc ddc_;
  double iq_rate_;
  double axis_alpha_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::size_t iq_index_ = 0;
};

}  // namespace arachnet::reader
