#pragma once

#include <vector>

#include "arachnet/phy/packet.hpp"
#include "arachnet/sim/rng.hpp"

namespace arachnet::reader {

/// Downlink transmission scheme (paper Sec. 4.1).
enum class DlTxMode {
  /// "FSK in, OOK out": PIE-high chips drive the BiW at its resonant
  /// frequency, PIE-low chips at a non-resonant frequency. The structure
  /// keeps being driven, so resonant energy is actively displaced rather
  /// than left to ring down — sharp envelope edges at the tag.
  kFskInOokOut,
  /// Conventional amplitude OOK: low chips simply stop the drive, leaving
  /// the high-Q structure to ring down — smeared falling edges.
  kPureOok,
};

/// One constant-drive segment of a DL broadcast.
struct DlSegment {
  double frequency_hz = 0.0;  ///< 0 = drive off (pure-OOK low)
  double duration_s = 0.0;
};

/// Reader downlink transmitter: expands a beacon into PIE drive segments,
/// including the 0.1-0.3 ms software timing offset each edge picks up from
/// the USB pause/resume mechanism (Sec. 6.3).
class DlTransmitter {
 public:
  struct Params {
    double chip_rate = phy::kDefaultDlRawBitRate;
    double resonant_hz = 90e3;
    double off_resonant_hz = 78e3;
    DlTxMode mode = DlTxMode::kFskInOokOut;
    double edge_jitter_min_s = 0.1e-3;
    double edge_jitter_max_s = 0.3e-3;
  };

  DlTransmitter() : DlTransmitter(Params{}) {}
  explicit DlTransmitter(Params p) : params_(p) {}

  /// PIE segments for one beacon. High chips at the resonant frequency;
  /// low chips at the off-resonant frequency (FSK mode) or silence (OOK
  /// mode). Segment boundaries carry the software edge jitter.
  std::vector<DlSegment> segments(const phy::DlBeacon& beacon,
                                  sim::Rng& rng) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace arachnet::reader
