#include "arachnet/reader/service/reader_service.hpp"

#include <chrono>
#include <cmath>
#include <utility>

#include "arachnet/telemetry/log.hpp"

namespace arachnet::reader::service {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t resolve_workers(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_max_sessions(double per_core, std::size_t workers) {
  const double budget = per_core * static_cast<double>(workers);
  const auto cap = static_cast<std::size_t>(std::llround(budget));
  return cap == 0 ? 1 : cap;
}

}  // namespace

ReaderService::ReaderService(Params params)
    : params_(params),
      workers_(resolve_workers(params.workers)),
      max_sessions_(resolve_max_sessions(params.sessions_per_core, workers_)),
      pool_(std::make_unique<dsp::WorkerPool>(workers_ - 1)),
      queue_(params.dispatch_capacity == 0 ? 4 * workers_
                                           : params.dispatch_capacity) {
  if (auto* m = params_.metrics) {
    const auto n = [&](std::string_view name) {
      return telemetry::scoped_name(params_.metrics_scope, name);
    };
    g_active_ = &m->gauge(n("session.active"));
    g_dispatch_depth_ = &m->gauge(n("service.dispatch_depth"));
    c_admission_rejected_ = &m->counter(n("session.admission_rejected"));
    c_shed_ = &m->counter(n("session.shed"));
    c_slots_reused_ = &m->counter(n("session.slots_reused"));
    c_blocks_ = &m->counter(n("service.blocks"));
    c_blocks_dropped_ = &m->counter(n("session.blocks_dropped"));
    c_blocks_expired_ = &m->counter(n("session.blocks_expired"));
    c_packets_emitted_ = &m->counter(n("reader.packets_emitted"));
    c_packets_dropped_ = &m->counter(n("reader.packets_dropped"));
    h_block_ms_ = &m->histogram(n("service.block_ms"), 0.0, 50.0, 250);
    h_stage_wait_ms_ =
        &m->histogram(n("service.stage.dispatch_wait_ms"), 0.0, 50.0, 250);
    h_stage_process_ms_ =
        &m->histogram(n("service.stage.process_ms"), 0.0, 50.0, 250);
    h_stage_emit_ms_ =
        &m->histogram(n("service.stage.emit_ms"), 0.0, 5.0, 250);
  }
}

ReaderService::~ReaderService() { stop(); }

void ReaderService::start() {
  if (stopped_ || dispatcher_.joinable()) return;
  ARACHNET_LOG_INFO("service", "starting reader service",
                    {"workers", workers_},
                    {"max_sessions", max_sessions_},
                    {"dispatch_capacity", queue_.capacity()});
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void ReaderService::stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.close();  // dispatcher drains the remaining backlog, then exits
  if (dispatcher_.joinable()) dispatcher_.join();
  std::lock_guard lock{sessions_mutex_};
  for (auto& [id, s] : sessions_) {
    if (!s->closed.exchange(true)) --active_;
    s->output->close();
  }
  if (g_active_ != nullptr) g_active_->set(static_cast<double>(active_));
  ARACHNET_LOG_INFO("service", "reader service stopped",
                    {"blocks", blocks_processed_.load()},
                    {"packets", packets_emitted_.load()});
}

std::optional<SessionId> ReaderService::open_session(SessionConfig cfg) {
  std::lock_guard lock{sessions_mutex_};
  if (stopped_) {
    admissions_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (c_admission_rejected_ != nullptr) c_admission_rejected_->add();
    return std::nullopt;
  }
  scavenge_locked();
  if (active_ >= max_sessions_) {
    // Over budget: shed the lowest-priority active session, newest on a
    // tie (established sessions outrank latecomers of equal priority) —
    // but only for a strictly higher-priority newcomer.
    Session* victim = nullptr;
    for (auto& [sid, s] : sessions_) {
      if (s->closed.load(std::memory_order_relaxed)) continue;
      if (victim == nullptr || s->cfg.priority < victim->cfg.priority ||
          (s->cfg.priority == victim->cfg.priority && s->id > victim->id)) {
        victim = s.get();
      }
    }
    if (victim == nullptr || victim->cfg.priority >= cfg.priority) {
      admissions_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (c_admission_rejected_ != nullptr) c_admission_rejected_->add();
      return std::nullopt;
    }
    shed_locked(victim);
  }
  const SessionId id = next_id_++;
  std::unique_ptr<Session> slot;
  if (!free_slots_.empty()) {
    slot = std::move(free_slots_.back());
    free_slots_.pop_back();
    slot->reset(id, std::move(cfg));
    slots_reused_.fetch_add(1, std::memory_order_relaxed);
    if (c_slots_reused_ != nullptr) c_slots_reused_->add();
  } else {
    slot = std::make_unique<Session>(id, std::move(cfg));
  }
  sessions_.emplace(id, std::move(slot));
  ++active_;
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  if (g_active_ != nullptr) g_active_->set(static_cast<double>(active_));
  return id;
}

bool ReaderService::close_session(SessionId id) {
  std::lock_guard lock{sessions_mutex_};
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session* s = it->second.get();
  if (!s->closed.exchange(true)) {
    --active_;
    if (g_active_ != nullptr) g_active_->set(static_cast<double>(active_));
  }
  // Nothing in flight: nobody else will close the output — do it here so
  // blocked consumers wake. Otherwise finish_block() closes on the last
  // landing block (seq_cst on closed/in_flight makes one side see the
  // other; both closing is harmless).
  if (s->in_flight.load() == 0) s->output->close();
  return true;
}

bool ReaderService::submit(SessionId id, Block block) {
  const std::uint64_t now = steady_now_ns();
  {
    std::lock_guard lock{sessions_mutex_};
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    Session* s = it->second.get();
    if (s->closed.load(std::memory_order_relaxed)) return false;
    s->blocks_submitted.fetch_add(1, std::memory_order_relaxed);
    if (s->in_flight.load(std::memory_order_relaxed) >=
        s->cfg.max_blocks_in_flight) {
      count_drop(s, /*expired=*/false);
      s->recycle_block(std::move(block));  // keep the producer's pool warm
      return false;
    }
    s->in_flight.fetch_add(1);
    const std::uint64_t ttl_ns =
        s->cfg.ttl_s <= 0.0
            ? 0
            : static_cast<std::uint64_t>(s->cfg.ttl_s * 1e9);
    std::optional<WorkItem> displaced;
    const auto outcome = queue_.push(WorkItem{s, std::move(block), now},
                                     s->cfg.priority, now, ttl_ns, &displaced);
    switch (outcome) {
      case DispatchQueue<WorkItem>::Push::kAccepted:
        break;
      case DispatchQueue<WorkItem>::Push::kDisplaced:
        // The evicted block's owner is charged the drop. Its Session* is
        // valid: a queued item held an in-flight credit, so the slot
        // cannot have been reaped (reaping needs in_flight == 0 under
        // this same mutex).
        drop_item(*displaced, /*expired=*/false);
        break;
      case DispatchQueue<WorkItem>::Push::kRejected:
      case DispatchQueue<WorkItem>::Push::kClosed:
        s->in_flight.fetch_sub(1);
        count_drop(s, /*expired=*/false);
        return false;
    }
  }
  if (g_dispatch_depth_ != nullptr) {
    g_dispatch_depth_->set(static_cast<double>(queue_.size()));
  }
  return true;
}

std::optional<RxPacket> ReaderService::poll_packet(SessionId id) {
  std::lock_guard lock{sessions_mutex_};
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second->output->try_pop();
}

std::optional<RxPacket> ReaderService::wait_packet(SessionId id) {
  Session* s = nullptr;
  {
    std::lock_guard lock{sessions_mutex_};
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return std::nullopt;
    s = it->second.get();
    // Pin before dropping the map lock: the blocking pop below runs
    // unlocked, and a pinned slot is never reaped/reset underneath us.
    s->pinned.fetch_add(1);
  }
  auto pkt = s->output->pop();
  s->pinned.fetch_sub(1);
  return pkt;
}

ReaderService::Block ReaderService::acquire_block(SessionId id) {
  std::lock_guard lock{sessions_mutex_};
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  return it->second->acquire_block();
}

std::optional<SessionStats> ReaderService::session_stats(SessionId id) const {
  std::lock_guard lock{sessions_mutex_};
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second->snapshot();
}

ReaderService::Stats ReaderService::stats() const {
  Stats st;
  {
    std::lock_guard lock{sessions_mutex_};
    st.active_sessions = active_;
  }
  st.max_sessions = max_sessions_;
  st.workers = workers_;
  st.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  st.admissions_rejected =
      admissions_rejected_.load(std::memory_order_relaxed);
  st.sessions_shed = sessions_shed_.load(std::memory_order_relaxed);
  st.slots_reused = slots_reused_.load(std::memory_order_relaxed);
  st.blocks_processed = blocks_processed_.load(std::memory_order_relaxed);
  st.blocks_dropped = blocks_dropped_.load(std::memory_order_relaxed);
  st.blocks_expired = blocks_expired_.load(std::memory_order_relaxed);
  st.packets_emitted = packets_emitted_.load(std::memory_order_relaxed);
  st.packets_dropped = packets_dropped_.load(std::memory_order_relaxed);
  st.dispatch_depth = queue_.size();
  st.dispatch_capacity = queue_.capacity();
  return st;
}

void ReaderService::dispatch_loop() {
  const std::size_t max_batch = params_.max_batch == 0 ? 1 : params_.max_batch;
  for (;;) {
    batch_.clear();
    expired_.clear();
    // Fresh clock per iteration: when the queue is backlogged pop_batch
    // returns immediately, so TTL expiry is evaluated against "now".
    // (When it blocks on an empty queue, every item it wakes for was
    // pushed after this timestamp and so cannot have expired yet.)
    const std::uint64_t now = steady_now_ns();
    if (!queue_.pop_batch(max_batch, now, &batch_, &expired_)) break;
    for (auto& item : expired_) drop_item(item, /*expired=*/true);
    if (!batch_.empty()) {
      // Group the batch by session, preserving per-session FIFO order.
      // One group = one pool task, so a session's chain is only ever
      // touched by one worker at a time. Linear scan: batches are small
      // (≤ max_batch) and groups fewer still.
      std::size_t ngroups = 0;
      for (auto& item : batch_) {
        Group* g = nullptr;
        for (std::size_t i = 0; i < ngroups; ++i) {
          if (groups_[i].session == item.session) {
            g = &groups_[i];
            break;
          }
        }
        if (g == nullptr) {
          if (ngroups == groups_.size()) groups_.emplace_back();
          g = &groups_[ngroups++];
          g->session = item.session;
          g->items.clear();
        }
        g->items.push_back(std::move(item));
      }
      auto fn = [this](std::size_t i) { process_group(groups_[i]); };
      pool_->run(ngroups, fn);
    }
    if (g_dispatch_depth_ != nullptr) {
      g_dispatch_depth_->set(static_cast<double>(queue_.size()));
    }
  }
}

void ReaderService::process_group(Group& group) {
  Session* s = group.session;
  for (auto& item : group.items) {
    if (s->shed.load(std::memory_order_acquire)) {
      // Admission control force-closed this session after the block was
      // queued: abandon it (counted as dropped), don't burn pool time.
      drop_item(item, /*expired=*/false);
      continue;
    }
    // Stage attribution: dispatch-queue wait (submit -> here), chain
    // decode, packet emit. Three extra clock reads per ~20 ms block —
    // cheap enough to take unconditionally so SessionStats stage sums
    // stay populated even without a registry.
    const std::uint64_t t_pickup = steady_now_ns();
    const std::size_t n = item.block.size();
    s->chain->process(item.block.data(), n);
    const std::uint64_t t_decoded = steady_now_ns();
    s->samples_processed.fetch_add(n, std::memory_order_relaxed);
    // Drain the chain's decode list every block (the RealtimeReader leak
    // discipline): frames_total stays monotonic across the clears.
    const auto& pkts = s->chain->packets();
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
    for (const auto& pkt : pkts) {
      if (s->output->try_push(pkt)) {
        ++emitted;
      } else {
        ++dropped;  // full or closed output: the consumer's loss, counted
      }
    }
    s->frames_total.fetch_add(pkts.size(), std::memory_order_relaxed);
    s->chain->clear_packets();
    s->crc_failures.store(s->chain->crc_failures(),
                          std::memory_order_relaxed);
    if (emitted != 0) {
      s->packets_emitted.fetch_add(emitted, std::memory_order_relaxed);
      packets_emitted_.fetch_add(emitted, std::memory_order_relaxed);
      if (c_packets_emitted_ != nullptr) c_packets_emitted_->add(emitted);
    }
    if (dropped != 0) {
      s->packets_dropped.fetch_add(dropped, std::memory_order_relaxed);
      packets_dropped_.fetch_add(dropped, std::memory_order_relaxed);
      if (c_packets_dropped_ != nullptr) c_packets_dropped_->add(dropped);
    }
    s->blocks_processed.fetch_add(1, std::memory_order_relaxed);
    blocks_processed_.fetch_add(1, std::memory_order_relaxed);
    if (c_blocks_ != nullptr) c_blocks_->add();
    const std::uint64_t t_emitted = steady_now_ns();
    const std::uint64_t wait_ns = t_pickup - item.submit_ns;
    const std::uint64_t process_ns = t_decoded - t_pickup;
    const std::uint64_t emit_ns = t_emitted - t_decoded;
    s->stage_wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
    s->stage_process_ns.fetch_add(process_ns, std::memory_order_relaxed);
    s->stage_emit_ns.fetch_add(emit_ns, std::memory_order_relaxed);
    if (h_block_ms_ != nullptr) {
      h_block_ms_->record(static_cast<double>(t_emitted - item.submit_ns) *
                          1e-6);
    }
    if (h_stage_wait_ms_ != nullptr) {
      h_stage_wait_ms_->record(static_cast<double>(wait_ns) * 1e-6);
    }
    if (h_stage_process_ms_ != nullptr) {
      h_stage_process_ms_->record(static_cast<double>(process_ns) * 1e-6);
    }
    if (h_stage_emit_ms_ != nullptr) {
      h_stage_emit_ms_->record(static_cast<double>(emit_ns) * 1e-6);
    }
    s->recycle_block(std::move(item.block));
    finish_block(s);
  }
}

void ReaderService::count_drop(Session* s, bool expired) {
  s->blocks_dropped.fetch_add(1, std::memory_order_relaxed);
  blocks_dropped_.fetch_add(1, std::memory_order_relaxed);
  if (c_blocks_dropped_ != nullptr) c_blocks_dropped_->add();
  if (expired) {
    s->blocks_expired.fetch_add(1, std::memory_order_relaxed);
    blocks_expired_.fetch_add(1, std::memory_order_relaxed);
    if (c_blocks_expired_ != nullptr) c_blocks_expired_->add();
  }
}

void ReaderService::drop_item(WorkItem& item, bool expired) {
  Session* s = item.session;
  count_drop(s, expired);
  s->recycle_block(std::move(item.block));
  finish_block(s);
}

void ReaderService::finish_block(Session* s) {
  // seq_cst on both atomics (Dekker-style): either this thread sees
  // closed == true and closes the output, or close_session() sees
  // in_flight == 0 and closes it there. Double-close is harmless.
  if (s->in_flight.fetch_sub(1) == 1 && s->closed.load()) {
    s->output->close();
  }
}

void ReaderService::shed_locked(Session* s) {
  s->shed.store(true);
  s->closed.store(true);
  // Close immediately: queued blocks are abandoned at dispatch, so no
  // more packets are coming; the consumer drains what was decoded and
  // gets nullopt.
  s->output->close();
  --active_;
  sessions_shed_.fetch_add(1, std::memory_order_relaxed);
  if (c_shed_ != nullptr) c_shed_->add();
  if (g_active_ != nullptr) g_active_->set(static_cast<double>(active_));
  ARACHNET_LOG_INFO("service", "session shed by admission control",
                    {"session", s->id}, {"priority", s->cfg.priority});
}

void ReaderService::scavenge_locked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session* s = it->second.get();
    const bool reapable = s->closed.load() && s->in_flight.load() == 0 &&
                          s->pinned.load() == 0 && s->output->closed() &&
                          s->output->size() == 0;
    if (reapable) {
      if (free_slots_.size() < max_sessions_) {
        free_slots_.push_back(std::move(it->second));
      }
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace arachnet::reader::service
