#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "arachnet/dsp/ring_buffer.hpp"
#include "arachnet/reader/rx_chain.hpp"

namespace arachnet::reader::service {

/// Stable handle for one capture session. Ids are never recycled (the
/// slot behind an id is — see Session::reset), so a stale id simply
/// stops resolving instead of silently aliasing a newer session.
using SessionId = std::uint64_t;

/// Per-session decode + QoS configuration, fixed at open_session().
struct SessionConfig {
  /// Receive-chain parameters for this session's stream (one single
  /// channel RxChain per session; FDMA-bank tenants run one session per
  /// subcarrier product stream).
  RxChain::Params chain{};
  /// Dispatch priority: larger outranks smaller. Under overload a
  /// higher-priority push displaces the lowest-priority newest queued
  /// block, and a higher-priority open_session() sheds the
  /// lowest-priority active session. Equal priorities never displace
  /// each other (FIFO fairness).
  int priority = 1;
  /// Time-to-live of a submitted block in the dispatch queue; a block
  /// still queued this long after submit() is dropped (counted per
  /// session) instead of decoded late. 0 = blocks never expire.
  double ttl_s = 0.0;
  /// Per-session bound on blocks in flight (queued + being processed).
  /// submit() beyond it drops the block — one overloaded session cannot
  /// monopolize the shared dispatch queue.
  std::size_t max_blocks_in_flight = 8;
  /// Decoded packets buffered for this session's consumer; the service
  /// never blocks the DSP pool on a stalled consumer, so a full output
  /// drops the packet and counts it.
  std::size_t output_capacity = 256;
};

/// Live per-session counters (monotonic since the session opened).
struct SessionStats {
  std::uint64_t blocks_submitted = 0;  ///< accepted by submit()
  std::uint64_t blocks_processed = 0;  ///< fully decoded
  /// Blocks lost before decode: per-session bound exceeded, displaced by
  /// a higher-priority push, TTL-expired, rejected by a full queue, or
  /// abandoned because the session was shed. Includes blocks_expired.
  std::uint64_t blocks_dropped = 0;
  std::uint64_t blocks_expired = 0;  ///< TTL expiries (subset of dropped)
  std::uint64_t samples_processed = 0;
  std::uint64_t packets_emitted = 0;  ///< pushed to the session output
  std::uint64_t packets_dropped = 0;  ///< lost to a full/closed output
  std::uint64_t frames_ok = 0;        ///< CRC-valid packets decoded
  std::uint64_t crc_failures = 0;
  /// Cumulative per-stage time attributed to this session's processed
  /// blocks (submit -> worker pickup / chain decode / packet emit).
  /// stage_wait_ns / blocks_processed = mean dispatch-queue wait.
  std::uint64_t stage_wait_ns = 0;
  std::uint64_t stage_process_ns = 0;
  std::uint64_t stage_emit_ns = 0;
  bool closed = false;  ///< no longer accepts submits (closing or shed)
  bool shed = false;    ///< force-closed by admission control
};

/// One session slot: chain + bounded output + counters + warm scratch.
///
/// Lifecycle: open (ReaderService::open_session) -> streaming ->
/// closed (graceful close_session: queued blocks still decode, output
/// closes once the last in-flight block lands) or shed (admission
/// control: queued blocks drop, output closes immediately) -> drained
/// (consumer fetched the last packet) -> the *slot* is reclaimed for the
/// next open_session under a fresh id.
///
/// Warm reuse: reset() rebuilds identity, chain and counters but keeps
/// the slot's recycled sample-block pool and — when the capacity matches
/// — the output ring. The TrialScratch contract generalized to sessions:
/// only capacity survives an occupant change, contents never do (blocks
/// are cleared on recycle, the ring must be drained before reuse).
///
/// Concurrency: submit-side fields are touched under the service's
/// session mutex; decode-side fields by the one pool worker processing
/// this session's batch; counters are relaxed atomics readable anywhere.
struct Session {
  Session(SessionId id_, SessionConfig cfg_) { reset(id_, cfg_); }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Re-arms the slot for a new occupant. Requires: closed, no blocks in
  /// flight, output drained (the service's reap conditions).
  void reset(SessionId new_id, SessionConfig new_cfg) {
    id = new_id;
    cfg = new_cfg;
    // Service sessions stream: no MAC collision detector, no iq_points()
    // surface. Retention would grow per-session IQ history without bound
    // and allocate in the steady state, so it is forced off here.
    cfg.chain.retain_iq_points = false;
    chain.emplace(cfg.chain);
    if (!output || output->capacity() != cfg.output_capacity) {
      output = std::make_unique<dsp::RingBuffer<RxPacket>>(
          cfg.output_capacity);
    } else {
      output->reopen();
    }
    closed.store(false, std::memory_order_relaxed);
    shed.store(false, std::memory_order_relaxed);
    in_flight.store(0, std::memory_order_relaxed);
    pinned.store(0, std::memory_order_relaxed);
    blocks_submitted.store(0, std::memory_order_relaxed);
    blocks_processed.store(0, std::memory_order_relaxed);
    blocks_dropped.store(0, std::memory_order_relaxed);
    blocks_expired.store(0, std::memory_order_relaxed);
    samples_processed.store(0, std::memory_order_relaxed);
    packets_emitted.store(0, std::memory_order_relaxed);
    packets_dropped.store(0, std::memory_order_relaxed);
    frames_total.store(0, std::memory_order_relaxed);
    crc_failures.store(0, std::memory_order_relaxed);
    stage_wait_ns.store(0, std::memory_order_relaxed);
    stage_process_ns.store(0, std::memory_order_relaxed);
    stage_emit_ns.store(0, std::memory_order_relaxed);
    // block_pool intentionally kept: warm buffers carry to the next
    // occupant (contents are cleared on recycle).
  }

  /// Hands out a recycled sample buffer (empty, capacity warm) or a
  /// fresh one. Producers that round-trip buffers through here submit
  /// with zero steady-state allocation.
  std::vector<double> acquire_block() {
    std::lock_guard lock{pool_mutex};
    if (block_pool.empty()) return {};
    std::vector<double> b = std::move(block_pool.back());
    block_pool.pop_back();
    return b;
  }

  /// Returns a processed/dropped block's buffer to the pool (bounded by
  /// the in-flight cap; excess buffers are simply freed).
  void recycle_block(std::vector<double> block) {
    block.clear();
    std::lock_guard lock{pool_mutex};
    if (block_pool.size() < cfg.max_blocks_in_flight + 2) {
      block_pool.push_back(std::move(block));
    }
  }

  SessionStats snapshot() const {
    SessionStats s;
    s.blocks_submitted = blocks_submitted.load(std::memory_order_relaxed);
    s.blocks_processed = blocks_processed.load(std::memory_order_relaxed);
    s.blocks_dropped = blocks_dropped.load(std::memory_order_relaxed);
    s.blocks_expired = blocks_expired.load(std::memory_order_relaxed);
    s.samples_processed = samples_processed.load(std::memory_order_relaxed);
    s.packets_emitted = packets_emitted.load(std::memory_order_relaxed);
    s.packets_dropped = packets_dropped.load(std::memory_order_relaxed);
    s.frames_ok = frames_total.load(std::memory_order_relaxed);
    s.crc_failures = crc_failures.load(std::memory_order_relaxed);
    s.stage_wait_ns = stage_wait_ns.load(std::memory_order_relaxed);
    s.stage_process_ns = stage_process_ns.load(std::memory_order_relaxed);
    s.stage_emit_ns = stage_emit_ns.load(std::memory_order_relaxed);
    s.closed = closed.load(std::memory_order_relaxed);
    s.shed = shed.load(std::memory_order_relaxed);
    return s;
  }

  SessionId id = 0;
  SessionConfig cfg{};
  /// The decode chain; rebuilt per occupant (optional so reset() can
  /// emplace in place).
  std::optional<RxChain> chain;
  /// Bounded per-session consumer queue; reused across occupants when
  /// the capacity matches.
  std::unique_ptr<dsp::RingBuffer<RxPacket>> output;

  std::atomic<bool> closed{false};
  std::atomic<bool> shed{false};
  /// Blocks accepted but not yet resolved (queued or being processed).
  /// Nonzero implies the dispatch queue or a pool worker may still hold
  /// a pointer to this slot — the reap barrier.
  std::atomic<std::uint32_t> in_flight{0};
  /// Consumers blocked in (or about to enter) a blocking output pop
  /// outside the service's session mutex. A second reap barrier: a
  /// pinned slot is never recycled under a waiting consumer.
  std::atomic<std::uint32_t> pinned{0};

  std::atomic<std::uint64_t> blocks_submitted{0};
  std::atomic<std::uint64_t> blocks_processed{0};
  std::atomic<std::uint64_t> blocks_dropped{0};
  std::atomic<std::uint64_t> blocks_expired{0};
  std::atomic<std::uint64_t> samples_processed{0};
  std::atomic<std::uint64_t> packets_emitted{0};
  std::atomic<std::uint64_t> packets_dropped{0};
  /// Monotonic decoded-frame total across the per-block drains (the
  /// chain's packet list is cleared every block — same leak discipline
  /// as RealtimeReader's single-chain mode).
  std::atomic<std::uint64_t> frames_total{0};
  std::atomic<std::uint64_t> crc_failures{0};
  /// Cumulative stage-latency attribution (see SessionStats); written by
  /// the one pool worker holding this session's batch, read anywhere.
  std::atomic<std::uint64_t> stage_wait_ns{0};
  std::atomic<std::uint64_t> stage_process_ns{0};
  std::atomic<std::uint64_t> stage_emit_ns{0};

  /// Warm sample-buffer pool (acquire_block/recycle_block).
  std::mutex pool_mutex;
  std::vector<std::vector<double>> block_pool;
};

}  // namespace arachnet::reader::service
