#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

namespace arachnet::reader::service {

/// Bounded priority dispatch queue between the service's submit side and
/// the DSP pool — the value-based priority-queue-with-TTL idiom of
/// goby3's acomms dynamic_buffer, adapted to sample blocks:
///
///  - items are *values* (moved in, moved out — no shared ownership with
///    the producer), ordered by (priority descending, arrival ascending),
///    so within one priority the queue is FIFO and a session whose blocks
///    share one priority keeps its sample stream in order;
///  - each item may carry a time-to-live; expiry is evaluated lazily at
///    pop time against the caller's clock, and expired items are handed
///    back separately so the caller can account them as drops instead of
///    processing stale data;
///  - overload never blocks the producer: a push into a full queue either
///    displaces the lowest-priority newest item (when the newcomer
///    strictly outranks it — the displaced value is returned so its
///    owner can be charged the drop) or is rejected outright.
///
/// Thread-safe. pop_batch() blocks until work or closure; everything
/// else is non-blocking. close() makes pushes fail and lets consumers
/// drain what remains (TTL still applies during the drain).
template <typename T>
class DispatchQueue {
 public:
  enum class Push {
    kAccepted,    ///< enqueued; the queue had room
    kDisplaced,   ///< enqueued by evicting the lowest-priority newest
                  ///< item into *displaced
    kRejected,    ///< full of equal-or-higher-priority items
    kClosed,      ///< queue closed; nothing enqueued
  };

  explicit DispatchQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    free_nodes_.reserve(capacity_);
  }

  DispatchQueue(const DispatchQueue&) = delete;
  DispatchQueue& operator=(const DispatchQueue&) = delete;

  /// Enqueues `value` at `priority`. `ttl_ns` of 0 never expires;
  /// otherwise the item expires at `now_ns + ttl_ns`. On kDisplaced the
  /// evicted value is moved into *displaced (which must be non-null when
  /// displacement is possible, i.e. always in practice).
  Push push(T value, int priority, std::uint64_t now_ns,
            std::uint64_t ttl_ns, std::optional<T>* displaced) {
    std::lock_guard lock{mutex_};
    if (closed_) return Push::kClosed;
    Push outcome = Push::kAccepted;
    if (items_.size() >= capacity_) {
      // Victim: lowest priority, newest arrival (the ordering's last
      // element). Evicting the newest keeps the victim session's
      // already-queued FIFO prefix intact.
      auto victim = std::prev(items_.end());
      if (victim->priority >= priority) return Push::kRejected;
      auto node = items_.extract(victim);
      if (displaced != nullptr) displaced->emplace(std::move(node.value().value));
      stash(std::move(node));
      outcome = Push::kDisplaced;
    }
    Item item{priority, next_seq_++, ttl_ns == 0 ? 0 : now_ns + ttl_ns,
              std::move(value)};
    if (free_nodes_.empty()) {
      items_.insert(std::move(item));
    } else {
      // Steady state: recycle an extracted tree node instead of paying a
      // heap allocation per push (the decode loop's zero-allocation
      // contract rides on this).
      auto node = std::move(free_nodes_.back());
      free_nodes_.pop_back();
      node.value() = std::move(item);
      items_.insert(std::move(node));
    }
    ready_.notify_one();
    return outcome;
  }

  /// Pops up to `max` items in (priority desc, arrival asc) order. Items
  /// whose deadline is at or before `now_ns` are moved to *expired
  /// instead of *out (both count toward `max`). Blocks until at least one
  /// item was transferred or the queue is closed and empty; returns false
  /// only in that terminal state.
  bool pop_batch(std::size_t max, std::uint64_t now_ns, std::vector<T>* out,
                 std::vector<T>* expired) {
    std::unique_lock lock{mutex_};
    ready_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;  // closed and drained
    for (std::size_t n = 0; n < max && !items_.empty(); ++n) {
      auto it = items_.begin();
      const bool dead = it->deadline_ns != 0 && it->deadline_ns <= now_ns;
      auto node = items_.extract(it);
      (dead ? expired : out)->push_back(std::move(node.value().value));
      stash(std::move(node));
    }
    return true;
  }

  /// Closes the queue: pushes fail, pop_batch drains then returns false.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock{mutex_};
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Item {
    int priority;
    std::uint64_t seq;
    std::uint64_t deadline_ns;  ///< 0 = never expires
    /// mutable: std::set elements are const, but the value is moved out
    /// via node extraction only, never mutated in place.
    mutable T value;
  };
  /// Urgency order: higher priority first, then FIFO by arrival. seq is
  /// unique, so this is a strict weak order and std::set suffices.
  struct ByUrgency {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq < b.seq;
    }
  };

  using NodeHandle = typename std::set<Item, ByUrgency>::node_type;

  /// Keeps an extracted node for reuse by the next push. Bounded by
  /// capacity_: the pool can never hold more nodes than the queue could,
  /// so a burst's nodes are retained but memory stays bounded.
  void stash(NodeHandle&& node) {
    if (free_nodes_.size() < capacity_) free_nodes_.push_back(std::move(node));
  }

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::set<Item, ByUrgency> items_;
  std::vector<NodeHandle> free_nodes_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace arachnet::reader::service
