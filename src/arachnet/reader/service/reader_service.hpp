#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "arachnet/dsp/pipeline.hpp"
#include "arachnet/reader/service/dispatch_queue.hpp"
#include "arachnet/reader/service/session.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::reader::service {

/// Multi-tenant reader ingest front-end: N concurrent capture sessions
/// (one 500 kS/s DAQ stream each) multiplexed over one shared
/// dsp::WorkerPool.
///
/// Where RealtimeReader owns one stream and one DSP thread, ReaderService
/// owns a *fleet*: each session gets its own RxChain, bounded output
/// queue, and QoS (priority, TTL, in-flight cap), while the heavy DSP
/// shares a single pool sized to the machine. Queue topology:
///
///   producers 1..N --submit()--> [per-session in-flight caps]
///                                           |
///                            DispatchQueue (priority + TTL, bounded)
///                                           |
///                        dispatcher thread: pop_batch, group by session
///                                           |
///                     WorkerPool fan-out (one worker per session group)
///                                           |
///                         per-session bounded output rings (consumers)
///
/// Overload policy is displacement, not back-pressure: submit() never
/// blocks. A full dispatch queue drops the lowest-priority newest block
/// (or the newcomer, if nothing outranks it); stale blocks past their TTL
/// are dropped at dispatch; a stalled consumer costs its own session
/// dropped packets, never pool time.
///
/// Admission control bounds the fleet at `sessions_per_core × workers`
/// active sessions. A session opened beyond the budget either sheds the
/// lowest-priority active session (when the newcomer strictly outranks
/// it) or is rejected. Closed sessions' slots are reused warm (see
/// Session::reset).
///
/// Zero-copy hand-off: sample blocks move (never copy) from submit()
/// through the dispatch queue to the pool worker, which feeds the chain
/// via the raw-pointer process(const double*, size_t) overload; spent
/// buffers recycle into the owning session's block pool.
///
/// Threading: submit()/poll from any threads; open/close/start/stop from
/// one control thread. Internally all session-map and submit-side state
/// is serialized by one mutex; decode runs outside it on pool workers.
class ReaderService {
 public:
  using Block = std::vector<double>;

  struct Params {
    /// Total DSP parallelism (pool threads + the dispatcher itself, which
    /// participates in every fan-out). 0 = hardware concurrency.
    std::size_t workers = 0;
    /// Admission budget: active sessions allowed per worker. The cap is
    /// max(1, round(sessions_per_core × workers)).
    double sessions_per_core = 4.0;
    /// Bounded dispatch-queue capacity (blocks queued for the pool across
    /// all sessions). 0 = 4 × workers.
    std::size_t dispatch_capacity = 0;
    /// Max blocks one dispatcher iteration hands to the pool.
    std::size_t max_batch = 16;
    /// Optional registry (must outlive the service): `session.*` fleet
    /// counters, `service.*` latency/depth instruments.
    telemetry::MetricsRegistry* metrics = nullptr;
    /// Per-instance metric-name prefix (e.g. "svc1.") so several services
    /// can share one registry without their instruments silently summing.
    /// Empty (the default) keeps the historical unscoped names.
    std::string metrics_scope;
  };

  /// Service-wide counters.
  struct Stats {
    std::size_t active_sessions = 0;
    std::size_t max_sessions = 0;       ///< admission cap
    std::size_t workers = 0;            ///< resolved DSP parallelism
    std::uint64_t sessions_opened = 0;
    std::uint64_t admissions_rejected = 0;
    std::uint64_t sessions_shed = 0;
    std::uint64_t slots_reused = 0;     ///< warm Session slot recycles
    std::uint64_t blocks_processed = 0;
    /// All blocks lost service-wide (cap, displacement, rejection, TTL,
    /// shed-abandonment); superset of blocks_expired.
    std::uint64_t blocks_dropped = 0;
    std::uint64_t blocks_expired = 0;   ///< TTL expiries
    std::uint64_t packets_emitted = 0;
    std::uint64_t packets_dropped = 0;
    std::size_t dispatch_depth = 0;     ///< blocks currently queued
    std::size_t dispatch_capacity = 0;
  };

  explicit ReaderService(Params params);
  ~ReaderService();

  ReaderService(const ReaderService&) = delete;
  ReaderService& operator=(const ReaderService&) = delete;

  /// Spawns the dispatcher. No-op while running or after stop().
  void start();

  /// Closes the dispatch queue, drains every queued block through the
  /// pool, joins the dispatcher, then closes every session output so
  /// consumers drain-then-stop. Terminal: the service cannot be
  /// restarted (open a new ReaderService instead).
  void stop();

  /// Admits a new session. Returns its id, or nullopt when the fleet is
  /// at the admission cap and no active session has strictly lower
  /// priority to shed (the rejection is counted). Reuses a reaped slot
  /// warm when one is available.
  std::optional<SessionId> open_session(SessionConfig cfg);

  /// Graceful close: no further submits; already-queued blocks still
  /// decode; the output closes once the last in-flight block lands (so
  /// a consumer blocked in wait_packet() gets every packet, then
  /// nullopt). Returns false for an unknown id.
  bool close_session(SessionId id);

  /// Submits one block of raw DAQ samples for `id`. Never blocks.
  /// Returns false — counting the block dropped where applicable — when
  /// the id is unknown/closed, the session's in-flight cap is hit, the
  /// dispatch queue rejects it, or the service is stopped.
  bool submit(SessionId id, Block block);

  /// Non-blocking fetch of the next decoded packet for `id`.
  std::optional<RxPacket> poll_packet(SessionId id);

  /// Blocking fetch; nullopt once the session is closed and drained (or
  /// the id is unknown).
  std::optional<RxPacket> wait_packet(SessionId id);

  /// A recycled (empty, warm-capacity) sample buffer from the session's
  /// pool, or a fresh one. Pair with submit() for allocation-free
  /// steady-state streaming.
  Block acquire_block(SessionId id);

  /// Per-session counter snapshot; nullopt for an unknown (or already
  /// reaped) id.
  std::optional<SessionStats> session_stats(SessionId id) const;

  Stats stats() const;

  std::size_t worker_count() const noexcept { return workers_; }
  std::size_t max_sessions() const noexcept { return max_sessions_; }

 private:
  struct WorkItem {
    Session* session = nullptr;
    Block block;
    std::uint64_t submit_ns = 0;
  };
  /// One pool task: a session's FIFO run of blocks from the batch (a
  /// session is never decoded by two workers at once).
  struct Group {
    Session* session = nullptr;
    std::vector<WorkItem> items;
  };

  void dispatch_loop();
  void process_group(Group& group);
  /// Bumps per-session + service drop counters (expired implies dropped).
  void count_drop(Session* s, bool expired);
  /// Charges `item`'s session one pre-decode drop and resolves the block
  /// (recycle + in-flight release).
  void drop_item(WorkItem& item, bool expired);
  /// Releases one in-flight credit; closes the output when a closing
  /// session just drained its last block.
  void finish_block(Session* s);
  /// Force-closes an active session for admission control. Caller holds
  /// sessions_mutex_.
  void shed_locked(Session* s);
  /// Moves reapable closed sessions (no in-flight, no pinned consumer,
  /// output drained) from the map to the warm free list. Caller holds
  /// sessions_mutex_.
  void scavenge_locked();

  Params params_;
  std::size_t workers_ = 0;
  std::size_t max_sessions_ = 0;
  std::unique_ptr<dsp::WorkerPool> pool_;
  DispatchQueue<WorkItem> queue_;
  std::thread dispatcher_;
  bool stopped_ = false;  ///< stop() is terminal; control thread only

  mutable std::mutex sessions_mutex_;
  std::unordered_map<SessionId, std::unique_ptr<Session>> sessions_;
  std::vector<std::unique_ptr<Session>> free_slots_;  ///< reaped, warm
  SessionId next_id_ = 1;
  std::size_t active_ = 0;  ///< open (not closed/shed) sessions

  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> admissions_rejected_{0};
  std::atomic<std::uint64_t> sessions_shed_{0};
  std::atomic<std::uint64_t> slots_reused_{0};
  std::atomic<std::uint64_t> blocks_processed_{0};
  std::atomic<std::uint64_t> blocks_dropped_{0};
  std::atomic<std::uint64_t> blocks_expired_{0};
  std::atomic<std::uint64_t> packets_emitted_{0};
  std::atomic<std::uint64_t> packets_dropped_{0};

  // Dispatcher-only batch scratch (capacity reused across iterations).
  std::vector<WorkItem> batch_;
  std::vector<WorkItem> expired_;
  /// Grouping scratch: only the first `n` entries of an iteration are
  /// live; the rest keep their capacity warm.
  std::vector<Group> groups_;

  // Registry instruments (nullable; bound once in the constructor).
  telemetry::Gauge* g_active_ = nullptr;
  telemetry::Gauge* g_dispatch_depth_ = nullptr;
  telemetry::Counter* c_admission_rejected_ = nullptr;
  telemetry::Counter* c_shed_ = nullptr;
  telemetry::Counter* c_slots_reused_ = nullptr;
  telemetry::Counter* c_blocks_ = nullptr;
  telemetry::Counter* c_blocks_dropped_ = nullptr;
  telemetry::Counter* c_blocks_expired_ = nullptr;
  telemetry::Counter* c_packets_emitted_ = nullptr;
  telemetry::Counter* c_packets_dropped_ = nullptr;
  telemetry::LatencyHistogram* h_block_ms_ = nullptr;
  // Per-stage breakdown of service.block_ms: dispatch-queue wait (submit
  // -> worker pickup), chain decode, packet emit. Together with the
  // chain-internal fdma.stage.* instruments this attributes the whole
  // capture -> dispatch -> process -> emit path.
  telemetry::LatencyHistogram* h_stage_wait_ms_ = nullptr;
  telemetry::LatencyHistogram* h_stage_process_ms_ = nullptr;
  telemetry::LatencyHistogram* h_stage_emit_ms_ = nullptr;
};

}  // namespace arachnet::reader::service
