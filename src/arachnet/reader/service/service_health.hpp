#pragma once

#include <string>

#include "arachnet/reader/service/reader_service.hpp"
#include "arachnet/telemetry/monitor.hpp"

namespace arachnet::reader::service {

/// Canonical HealthMonitor wiring for a ReaderService — the glue between
/// the generic watchdog primitives and this service's semantics, so every
/// embedder (arachnet_top, the soak bench, tests) flags the same
/// conditions the same way.
///
/// The service must outlive the monitor (or the probes must be removed
/// first): the probes capture `svc` by reference.

/// Watches one session for stalls: progress = blocks processed + dropped
/// (a drop is a resolution, not a stall), demand = blocks submitted (an
/// idle producer is not a stall), active while the session exists and is
/// not closed. Raises `health.session.<id>.stalled` after
/// `Params::stall_periods` qualifying samples.
inline void watch_session(telemetry::HealthMonitor& monitor,
                          const ReaderService& svc, SessionId id) {
  telemetry::HealthMonitor::ProgressProbe probe;
  probe.name = "session." + std::to_string(id);
  probe.progress = [&svc, id]() -> std::uint64_t {
    const auto st = svc.session_stats(id);
    return st ? st->blocks_processed + st->blocks_dropped : 0;
  };
  probe.demand = [&svc, id]() -> std::uint64_t {
    const auto st = svc.session_stats(id);
    return st ? st->blocks_submitted : 0;
  };
  probe.active = [&svc, id]() -> bool {
    const auto st = svc.session_stats(id);
    return st.has_value() && !st->closed;
  };
  monitor.add_probe(std::move(probe));
}

inline void unwatch_session(telemetry::HealthMonitor& monitor, SessionId id) {
  monitor.remove_probe("session." + std::to_string(id));
}

/// Service-wide watchdogs:
///  - `health.service.dispatch.saturated`: the dispatch queue held >= 90%
///    of capacity for 3 consecutive samples (sustained displacement
///    pressure, not a momentary burst);
///  - `health.service.ttl.storm`: TTL expiries exceeded
///    `max_expiry_rate_per_s` for 2 consecutive samples (blocks are aging
///    out faster than the pool drains them).
inline void watch_service(telemetry::HealthMonitor& monitor,
                          const ReaderService& svc,
                          double max_expiry_rate_per_s = 10.0) {
  telemetry::HealthMonitor::SaturationWatch sat;
  sat.name = "service.dispatch";
  sat.depth_gauge = "service.dispatch_depth";
  sat.capacity = static_cast<double>(svc.stats().dispatch_capacity);
  sat.threshold = 0.9;
  sat.periods = 3;
  monitor.add_saturation_watch(std::move(sat));

  telemetry::HealthMonitor::RateWatch storm;
  storm.name = "service.ttl";
  storm.counter = "session.blocks_expired";
  storm.max_rate_per_s = max_expiry_rate_per_s;
  storm.periods = 2;
  monitor.add_rate_watch(std::move(storm));
}

}  // namespace arachnet::reader::service
