#include "arachnet/reader/realtime_reader.hpp"

#include <chrono>

#include "arachnet/telemetry/log.hpp"
#include "arachnet/telemetry/trace.hpp"

namespace arachnet::reader {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Forwards the reader's registry into the FDMA bank params unless the
/// caller already bound one there. Applied to the params the reader
/// *stores*, so params().fdma->metrics always matches the live bank (a
/// local-copy patch once left the stored pointer null while the bank ran
/// instrumented).
RealtimeReader::Params with_metrics(RealtimeReader::Params params) {
  if (params.fdma && params.fdma->metrics == nullptr) {
    params.fdma->metrics = params.metrics;
  }
  // The bank inherits the reader's scope unless the caller set its own, so
  // a fleet of instrumented readers keeps its fdma.* rows apart too.
  if (params.fdma && params.fdma->metrics_scope.empty()) {
    params.fdma->metrics_scope = params.metrics_scope;
  }
  // Streaming sessions never run the MAC collision detector, and the
  // reader exposes no iq_points() accessor — retaining the decimated IQ
  // history would grow a vector forever (and allocate every block). Off
  // unconditionally for the realtime path.
  params.chain.retain_iq_points = false;
  return params;
}

}  // namespace

RealtimeReader::RealtimeReader(Params params)
    : params_(with_metrics(std::move(params))),
      chain_(params_.chain),
      fdma_(params_.fdma ? std::make_unique<FdmaRxChain>(*params_.fdma)
                         : nullptr),
      input_(params_.input_capacity),
      output_(params_.output_capacity) {
  if (auto* m = params_.metrics) {
    const auto n = [&](std::string_view name) {
      return telemetry::scoped_name(params_.metrics_scope, name);
    };
    h_block_ms_ = &m->histogram(n("reader.block_ms"), 0.0, 50.0, 64);
    g_input_depth_ = &m->gauge(n("reader.input_depth"));
    g_output_depth_ = &m->gauge(n("reader.output_depth"));
    c_packets_emitted_ = &m->counter(n("reader.packets_emitted"));
    c_packets_dropped_ = &m->counter(n("reader.packets_dropped"));
    c_stall_ns_ = &m->counter(n("reader.backpressure_stall_ns"));
    c_blocks_ = &m->counter(n("reader.blocks"));
    h_stage_wait_ms_ =
        &m->histogram(n("reader.stage.queue_wait_ms"), 0.0, 50.0, 64);
    h_stage_process_ms_ =
        &m->histogram(n("reader.stage.process_ms"), 0.0, 50.0, 64);
    h_stage_emit_ms_ = &m->histogram(n("reader.stage.emit_ms"), 0.0, 5.0, 64);
  }
}

RealtimeReader::~RealtimeReader() { stop(); }

void RealtimeReader::start() {
  if (worker_.joinable()) return;  // already running
  // Restart path: after stop() the input is closed (and the worker closed
  // the output on drain). Reopen both so submit()/wait_packet() work
  // again; queued contents — undrained output packets in particular —
  // survive the reopen.
  input_.reopen();
  output_.reopen();
  ARACHNET_LOG_INFO("reader", "starting DSP worker",
                    {"mode", fdma_ ? "fdma" : "single"},
                    {"input_capacity", input_.capacity()},
                    {"output_capacity", output_.capacity()});
  worker_ = std::thread([this] { worker_loop(); });
}

void RealtimeReader::worker_loop() {
  while (auto item = input_.pop()) {
    ARACHNET_TRACE_SPAN("reader.block");
    Block& block = item->block;
    const bool timed = h_block_ms_ != nullptr;
    const std::uint64_t t0 = timed ? steady_now_ns() : 0;
    std::uint64_t t_decoded = 0;
    std::uint64_t out_stall_ns = 0;
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
    if (fdma_) {
      fdma_->process(block.data(), block.size());
      if (timed) t_decoded = steady_now_ns();
      samples_processed_.fetch_add(block.size(), std::memory_order_relaxed);
      fdma_->drain_packets(drained_);
      for (auto& pkt : drained_) {
        if (emit_packet(std::move(pkt), &out_stall_ns)) {
          ++emitted;
        } else {
          ++dropped;
        }
      }
    } else {
      if (resync_requested_.exchange(false)) chain_.resync();
      chain_.process(block.data(), block.size());
      if (timed) t_decoded = steady_now_ns();
      samples_processed_.fetch_add(block.size(), std::memory_order_relaxed);
      // Emit every packet decoded this block, then drain the chain's
      // decode list: a long-running session must not accumulate decoded
      // packets forever (the list once grew without bound, leaking memory
      // block after block). Only successful pushes count as emitted (same
      // accounting as the FDMA branch); chain_frames_total_ keeps the
      // monotonic frame count across the clears.
      const auto& packets = chain_.packets();
      for (const auto& pkt : packets) {
        if (emit_packet(pkt, &out_stall_ns)) {
          ++emitted;
        } else {
          ++dropped;
        }
      }
      chain_frames_total_ += packets.size();
      chain_.clear_packets();
      chain_buffered_.store(chain_.packets().size(),
                            std::memory_order_relaxed);
      chain_bits_.store(chain_.bits_decoded(), std::memory_order_relaxed);
      chain_frames_.store(chain_frames_total_, std::memory_order_relaxed);
      chain_crc_.store(chain_.crc_failures(), std::memory_order_relaxed);
    }
    if (emitted != 0) {
      packets_emitted_.fetch_add(emitted, std::memory_order_relaxed);
    }
    if (dropped != 0) {
      packets_dropped_.fetch_add(dropped, std::memory_order_relaxed);
      if (c_packets_dropped_ != nullptr) c_packets_dropped_->add(dropped);
    }
    if (out_stall_ns != 0) {
      stall_ns_.fetch_add(out_stall_ns, std::memory_order_relaxed);
      if (c_stall_ns_ != nullptr) c_stall_ns_->add(out_stall_ns);
    }
    if (timed) {
      const std::uint64_t t_done = steady_now_ns();
      h_block_ms_->record(static_cast<double>(t_done - t0) * 1e-6);
      h_stage_wait_ms_->record(static_cast<double>(t0 - item->submit_ns) *
                               1e-6);
      h_stage_process_ms_->record(static_cast<double>(t_decoded - t0) * 1e-6);
      h_stage_emit_ms_->record(static_cast<double>(t_done - t_decoded) * 1e-6);
      c_blocks_->add();
      if (emitted != 0) c_packets_emitted_->add(emitted);
      g_input_depth_->set(static_cast<double>(input_.size()));
      g_output_depth_->set(static_cast<double>(output_.size()));
    }
  }
  output_.close();
  ARACHNET_LOG_INFO("reader", "DSP worker drained",
                    {"samples", samples_processed()},
                    {"packets", packets_emitted_.load()});
}

bool RealtimeReader::emit_packet(RxPacket pkt, std::uint64_t* stall_ns) {
  if (params_.drop_on_full_output) return output_.try_push(std::move(pkt));
  return output_.push(std::move(pkt), stall_ns);
}

bool RealtimeReader::submit(Block block) {
  std::uint64_t stall = 0;
  // The submit stamp is taken unconditionally (one clock read per block)
  // so queue-wait attribution works even when the reader is constructed
  // before its registry wiring.
  const bool ok =
      input_.push(InputItem{std::move(block), steady_now_ns()}, &stall);
  if (stall != 0) {
    stall_ns_.fetch_add(stall, std::memory_order_relaxed);
    if (c_stall_ns_ != nullptr) c_stall_ns_->add(stall);
  }
  return ok;
}

std::optional<RxPacket> RealtimeReader::poll_packet() {
  return output_.try_pop();
}

std::optional<RxPacket> RealtimeReader::wait_packet() {
  return output_.pop();
}

void RealtimeReader::stop() {
  input_.close();
  if (worker_.joinable()) worker_.join();
}

RealtimeReader::Stats RealtimeReader::stats() const {
  Stats s;
  s.samples_processed = samples_processed();
  s.packets_emitted = packets_emitted_.load(std::memory_order_relaxed);
  s.packets_dropped = packets_dropped_.load(std::memory_order_relaxed);
  s.chain_buffered_packets = chain_buffered_.load(std::memory_order_relaxed);
  s.input_depth = input_.size();
  s.input_capacity = input_.capacity();
  s.output_depth = output_.size();
  s.backpressure_stall_s =
      static_cast<double>(stall_ns_.load(std::memory_order_relaxed)) * 1e-9;
  if (fdma_) {
    s.channels = fdma_->all_channel_stats();
  } else {
    FdmaRxChain::ChannelStats ch;
    ch.subcarrier_hz = 0.0;  // baseband OOK, no subcarrier
    ch.iq_samples = 0;
    ch.bits = chain_bits_.load(std::memory_order_relaxed);
    ch.frames_ok = chain_frames_.load(std::memory_order_relaxed);
    ch.crc_failures = chain_crc_.load(std::memory_order_relaxed);
    s.channels.push_back(ch);
  }
  return s;
}

}  // namespace arachnet::reader
