#include "arachnet/reader/realtime_reader.hpp"

namespace arachnet::reader {

RealtimeReader::RealtimeReader(Params params)
    : params_(params),
      chain_(params.chain),
      fdma_(params.fdma ? std::make_unique<FdmaRxChain>(*params.fdma)
                        : nullptr),
      input_(params.input_capacity),
      output_(params.output_capacity) {}

RealtimeReader::~RealtimeReader() { stop(); }

void RealtimeReader::start() {
  if (started_) return;
  started_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void RealtimeReader::worker_loop() {
  while (auto block = input_.pop()) {
    if (fdma_) {
      fdma_->process(*block);
      samples_processed_.fetch_add(block->size(), std::memory_order_relaxed);
      for (auto& pkt : fdma_->drain_packets()) {
        output_.push(std::move(pkt));
      }
      continue;
    }
    if (resync_requested_.exchange(false)) chain_.resync();
    chain_.process(*block);
    samples_processed_.fetch_add(block->size(), std::memory_order_relaxed);
    // Emit any packets decoded so far.
    const auto& packets = chain_.packets();
    while (packets_emitted_ < packets.size()) {
      output_.push(packets[packets_emitted_]);
      ++packets_emitted_;
    }
    chain_bits_.store(chain_.bits_decoded(), std::memory_order_relaxed);
    chain_frames_.store(packets.size(), std::memory_order_relaxed);
    chain_crc_.store(chain_.crc_failures(), std::memory_order_relaxed);
  }
  output_.close();
}

bool RealtimeReader::submit(Block block) {
  return input_.push(std::move(block));
}

std::optional<RxPacket> RealtimeReader::poll_packet() {
  return output_.try_pop();
}

std::optional<RxPacket> RealtimeReader::wait_packet() {
  return output_.pop();
}

void RealtimeReader::stop() {
  input_.close();
  if (worker_.joinable()) worker_.join();
}

RealtimeReader::Stats RealtimeReader::stats() const {
  Stats s;
  s.samples_processed = samples_processed();
  s.input_depth = input_.size();
  s.input_capacity = input_.capacity();
  s.output_depth = output_.size();
  if (fdma_) {
    s.channels = fdma_->all_channel_stats();
  } else {
    FdmaRxChain::ChannelStats ch;
    ch.subcarrier_hz = 0.0;  // baseband OOK, no subcarrier
    ch.iq_samples = 0;
    ch.bits = chain_bits_.load(std::memory_order_relaxed);
    ch.frames_ok = chain_frames_.load(std::memory_order_relaxed);
    ch.crc_failures = chain_crc_.load(std::memory_order_relaxed);
    s.channels.push_back(ch);
  }
  return s;
}

}  // namespace arachnet::reader
