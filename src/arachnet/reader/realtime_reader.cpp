#include "arachnet/reader/realtime_reader.hpp"

namespace arachnet::reader {

RealtimeReader::RealtimeReader(Params params)
    : params_(params),
      chain_(params.chain),
      input_(params.input_capacity),
      output_(params.output_capacity) {}

RealtimeReader::~RealtimeReader() { stop(); }

void RealtimeReader::start() {
  if (started_) return;
  started_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void RealtimeReader::worker_loop() {
  while (auto block = input_.pop()) {
    if (resync_requested_.exchange(false)) chain_.resync();
    chain_.process(*block);
    samples_processed_.fetch_add(block->size(), std::memory_order_relaxed);
    // Emit any packets decoded so far.
    const auto& packets = chain_.packets();
    while (packets_emitted_ < packets.size()) {
      output_.push(packets[packets_emitted_]);
      ++packets_emitted_;
    }
  }
  output_.close();
}

bool RealtimeReader::submit(Block block) {
  return input_.push(std::move(block));
}

std::optional<RxPacket> RealtimeReader::poll_packet() {
  return output_.try_pop();
}

std::optional<RxPacket> RealtimeReader::wait_packet() {
  return output_.pop();
}

void RealtimeReader::stop() {
  input_.close();
  if (worker_.joinable()) worker_.join();
}

}  // namespace arachnet::reader
