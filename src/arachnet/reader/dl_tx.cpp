#include "arachnet/reader/dl_tx.hpp"

#include <algorithm>

#include "arachnet/phy/pie.hpp"

namespace arachnet::reader {

std::vector<DlSegment> DlTransmitter::segments(const phy::DlBeacon& beacon,
                                               sim::Rng& rng) const {
  const auto chips = phy::PieEncoder::encode(beacon.serialize());
  const double chip_s = 1.0 / params_.chip_rate;

  // Merge equal-valued chips into runs, then jitter each boundary.
  std::vector<DlSegment> out;
  std::size_t i = 0;
  while (i < chips.size()) {
    std::size_t j = i;
    while (j < chips.size() && chips[j] == chips[i]) ++j;
    DlSegment seg;
    const bool high = chips[i];
    seg.frequency_hz = high ? params_.resonant_hz
                            : (params_.mode == DlTxMode::kFskInOokOut
                                   ? params_.off_resonant_hz
                                   : 0.0);
    seg.duration_s = static_cast<double>(j - i) * chip_s;
    // Each segment boundary is placed by the reader software over USB with
    // a 0.1-0.3 ms offset of random sign; lengthen/shorten this segment and
    // compensate on the next so total time is preserved on average.
    const double jitter = rng.uniform(params_.edge_jitter_min_s,
                                      params_.edge_jitter_max_s) *
                          (rng.bernoulli(0.5) ? 1.0 : -1.0);
    seg.duration_s = std::max(seg.duration_s + jitter, chip_s * 0.25);
    out.push_back(seg);
    i = j;
  }
  return out;
}

}  // namespace arachnet::reader
