#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "arachnet/dsp/ring_buffer.hpp"
#include "arachnet/reader/rx_chain.hpp"

namespace arachnet::reader {

/// Threaded real-time reader front half: the DAQ thread pushes raw sample
/// blocks into a bounded ring buffer (back-pressure throttles a producer
/// that outruns the DSP), a worker thread runs the receive chain, and
/// decoded packets stream out through a second buffer — the architecture
/// the paper describes for its real-time reader software (Sec. 6.1).
class RealtimeReader {
 public:
  using Block = std::vector<double>;

  struct Params {
    RxChain::Params chain{};
    std::size_t input_capacity = 8;    ///< blocks in flight
    std::size_t output_capacity = 256; ///< decoded packets buffered
  };

  explicit RealtimeReader(Params params);
  ~RealtimeReader();

  RealtimeReader(const RealtimeReader&) = delete;
  RealtimeReader& operator=(const RealtimeReader&) = delete;

  /// Starts the DSP worker thread.
  void start();

  /// Submits a block of raw DAQ samples. Blocks while the input queue is
  /// full (back-pressure). Returns false after stop().
  bool submit(Block block);

  /// Non-blocking fetch of the next decoded packet.
  std::optional<RxPacket> poll_packet();

  /// Blocking fetch; nullopt once stopped and drained.
  std::optional<RxPacket> wait_packet();

  /// Closes the input, drains the worker, and joins it.
  void stop();

  /// Raw samples processed so far (worker-side).
  std::uint64_t samples_processed() const noexcept {
    return samples_processed_.load(std::memory_order_relaxed);
  }

  /// Requests a slot-boundary resync (applied by the worker before the
  /// next block).
  void request_resync() { resync_requested_.store(true); }

 private:
  void worker_loop();

  Params params_;
  RxChain chain_;
  dsp::RingBuffer<Block> input_;
  dsp::RingBuffer<RxPacket> output_;
  std::thread worker_;
  std::atomic<std::uint64_t> samples_processed_{0};
  std::atomic<bool> resync_requested_{false};
  std::size_t packets_emitted_ = 0;
  bool started_ = false;
};

}  // namespace arachnet::reader
