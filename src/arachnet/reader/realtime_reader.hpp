#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "arachnet/dsp/ring_buffer.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/rx_chain.hpp"

namespace arachnet::reader {

/// Threaded real-time reader front half: the DAQ thread pushes raw sample
/// blocks into a bounded ring buffer (back-pressure throttles a producer
/// that outruns the DSP), a worker thread runs the receive chain, and
/// decoded packets stream out through a second buffer — the architecture
/// the paper describes for its real-time reader software (Sec. 6.1).
///
/// Two chain modes share the same submit/poll surface:
///  - single-channel (default): the slotted RxChain, packets on channel 0;
///  - FDMA bank (Params::fdma set): the multi-subcarrier FdmaRxChain, whose
///    worker-pool fan-out parallelizes the per-channel DSP inside the
///    reader's DSP thread; packets carry their channel index.
class RealtimeReader {
 public:
  using Block = std::vector<double>;

  struct Params {
    RxChain::Params chain{};
    /// When set, run the FDMA subcarrier bank instead of the single chain.
    std::optional<FdmaRxChain::Params> fdma{};
    std::size_t input_capacity = 8;    ///< blocks in flight
    std::size_t output_capacity = 256; ///< decoded packets buffered
    /// Full-output-queue policy. false (default): block the DSP thread
    /// until the consumer drains (back-pressure, the paper's Sec. 6.1
    /// behaviour). true: drop the packet and count it — the real-time
    /// choice when a stalled consumer must not stall the DSP thread.
    /// Dropped packets are never counted as emitted (stats() and the
    /// `reader.packets_emitted` counter see successful pushes only).
    bool drop_on_full_output = false;
    /// Optional metrics registry (must outlive the reader). Registers the
    /// `reader.*` block-latency histogram, queue-depth gauges, and
    /// packet/stall counters, and is forwarded to the FDMA bank unless the
    /// bank params carry their own registry. nullptr = no instrumentation.
    telemetry::MetricsRegistry* metrics = nullptr;
    /// Per-instance metric-name prefix (e.g. "r0.") so several readers can
    /// share one registry without their `reader.*` counters silently
    /// summing into the same instruments. Empty (the default) keeps the
    /// historical unscoped names. Forwarded to the FDMA bank unless the
    /// bank params carry their own scope.
    std::string metrics_scope;
  };

  /// Live counters: queue depths plus per-channel decode statistics
  /// (one entry per FDMA channel; a single entry in single-channel mode).
  struct Stats {
    std::uint64_t samples_processed = 0;
    std::uint64_t packets_emitted = 0;  ///< successfully pushed to the output
    std::uint64_t packets_dropped = 0;  ///< lost to a full/closed output
    /// Packets still buffered inside the single chain's decode list after
    /// the last block's drain — steady-state 0 (the worker clears the list
    /// every block). Regression guard for the long-run leak where the list
    /// grew without bound; FDMA mode reports 0 (the bank keeps its own
    /// per-channel retention contract, see FdmaRxChain::packets()).
    std::uint64_t chain_buffered_packets = 0;
    std::size_t input_depth = 0;   ///< raw blocks waiting for the DSP
    std::size_t input_capacity = 0;
    std::size_t output_depth = 0;  ///< decoded packets not yet fetched
    /// Total time producers/worker spent blocked on a full queue
    /// (back-pressure): submit() stalls plus output-side stalls.
    double backpressure_stall_s = 0.0;
    std::vector<FdmaRxChain::ChannelStats> channels;
  };

  explicit RealtimeReader(Params params);
  ~RealtimeReader();

  RealtimeReader(const RealtimeReader&) = delete;
  RealtimeReader& operator=(const RealtimeReader&) = delete;

  /// Starts the DSP worker thread. Restartable: calling start() again
  /// after stop() reopens both queues and spawns a fresh worker — chain
  /// DSP state, all counters, any blocks still queued at the close point
  /// (there are none after stop(), which drains) and any undrained output
  /// packets carry over, so a stop()/start() pair is a pause, not a
  /// reset. start() while the worker is already running is a no-op.
  /// start/stop must be called from one control thread.
  void start();

  /// Submits a block of raw DAQ samples. Blocks while the input queue is
  /// full (back-pressure). Returns false while stopped (between stop()
  /// and a restart).
  bool submit(Block block);

  /// Non-blocking fetch of the next decoded packet.
  std::optional<RxPacket> poll_packet();

  /// Blocking fetch; nullopt once stopped and drained.
  std::optional<RxPacket> wait_packet();

  /// Closes the input, drains the worker, and joins it. Blocks already
  /// accepted by submit() are still fully processed and their packets
  /// remain fetchable — shutdown loses nothing before the close point.
  /// The reader may be restarted afterwards with start().
  void stop();

  /// Raw samples processed so far (worker-side).
  std::uint64_t samples_processed() const noexcept {
    return samples_processed_.load(std::memory_order_relaxed);
  }

  /// Thread-safe snapshot of queue depths and per-channel counters.
  Stats stats() const;

  /// Requests a slot-boundary resync (applied by the worker before the
  /// next block; single-channel mode only — the FDMA bank free-runs).
  void request_resync() { resync_requested_.store(true); }

  /// The parameters the reader actually runs with. When a registry was
  /// forwarded into the FDMA bank, the stored `fdma->metrics` reflects
  /// that patch, so introspection agrees with the live bank.
  const Params& params() const noexcept { return params_; }

 private:
  /// One queued capture block plus its submit timestamp, so the worker
  /// can attribute input-queue wait separately from DSP time.
  struct InputItem {
    Block block;
    std::uint64_t submit_ns = 0;
  };

  void worker_loop();
  /// Pushes one decoded packet per Params::drop_on_full_output; returns
  /// whether it was actually enqueued.
  bool emit_packet(RxPacket pkt, std::uint64_t* stall_ns);

  Params params_;
  RxChain chain_;
  std::unique_ptr<FdmaRxChain> fdma_;
  dsp::RingBuffer<InputItem> input_;
  dsp::RingBuffer<RxPacket> output_;
  std::thread worker_;
  /// Worker-thread drain scratch, reused across blocks: once grown to
  /// the high-water packet count, the per-block FDMA drain stops
  /// allocating (part of the steady-state allocation contract).
  std::vector<RxPacket> drained_;
  std::atomic<std::uint64_t> samples_processed_{0};
  std::atomic<bool> resync_requested_{false};
  // Single-channel counters, published by the worker at block granularity.
  std::atomic<std::uint64_t> chain_bits_{0};
  std::atomic<std::uint64_t> chain_frames_{0};
  std::atomic<std::uint64_t> chain_crc_{0};
  /// Packets left in chain_.packets() after a block's drain (the leak
  /// regression observable behind Stats::chain_buffered_packets).
  std::atomic<std::uint64_t> chain_buffered_{0};
  /// Monotonic total of single-chain decoded frames: the worker drains
  /// chain_.packets() after every block (long-running sessions must not
  /// accumulate every decoded packet forever), so the chain's own vector
  /// size no longer doubles as the frame count. Worker-thread only;
  /// published through chain_frames_. Every decoded packet counts here
  /// whether or not its emission later dropped — packets_emitted_ counts
  /// successful pushes only (it once doubled as both, so a packet dropped
  /// on a full output queue was still reported as emitted).
  std::uint64_t chain_frames_total_ = 0;
  /// Packets successfully pushed to the output (cross-thread, stats()).
  std::atomic<std::uint64_t> packets_emitted_{0};
  /// Packets lost to a full (drop_on_full_output) or closed output.
  std::atomic<std::uint64_t> packets_dropped_{0};
  /// Nanoseconds spent blocked on full queues (submit + output side).
  std::atomic<std::uint64_t> stall_ns_{0};
  // Registry instruments (nullable; bound once in the constructor).
  telemetry::LatencyHistogram* h_block_ms_ = nullptr;
  // Per-stage breakdown of the block path: input-queue wait (submit ->
  // worker pop), chain DSP, packet emit. reader.block_ms stays the
  // pop -> done view (process + emit) it has always been.
  telemetry::LatencyHistogram* h_stage_wait_ms_ = nullptr;
  telemetry::LatencyHistogram* h_stage_process_ms_ = nullptr;
  telemetry::LatencyHistogram* h_stage_emit_ms_ = nullptr;
  telemetry::Gauge* g_input_depth_ = nullptr;
  telemetry::Gauge* g_output_depth_ = nullptr;
  telemetry::Counter* c_packets_emitted_ = nullptr;
  telemetry::Counter* c_packets_dropped_ = nullptr;
  telemetry::Counter* c_stall_ns_ = nullptr;
  telemetry::Counter* c_blocks_ = nullptr;
};

}  // namespace arachnet::reader
