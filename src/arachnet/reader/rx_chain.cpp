#include "arachnet/reader/rx_chain.hpp"

#include <algorithm>
#include <cmath>

namespace arachnet::reader {
namespace {

dsp::Ddc::Params resolve_ddc(const RxChain::Params& p) {
  dsp::Ddc::Params ddc = p.ddc;
  if (p.auto_bandwidth) {
    ddc.cutoff_hz = std::clamp(3.5 * p.chip_rate, 1.5e3, 12.5e3);
  }
  return ddc;
}

}  // namespace

double per_sample_alpha(double per_chip, double samples_per_chip) {
  return 1.0 - std::pow(1.0 - per_chip, 1.0 / samples_per_chip);
}

dsp::AdaptiveSlicer::Params resolve_slicer(const RxChain::Params& p) {
  dsp::AdaptiveSlicer::Params slicer = p.slicer;
  if (p.auto_bandwidth) {
    // Baseband noise grows with the square root of the resolved filter
    // bandwidth; keep the squelch floor proportional (reference: 1.5 kHz).
    slicer.floor *= std::sqrt(resolve_ddc(p).cutoff_hz / 1.5e3);
    // The slicer's dynamics must be constant per *chip*, not per sample,
    // or slow links drain the tracked levels over their long plateaus.
    // Targets: ~98% level acquisition and ~4% decay per chip.
    const double iq_rate =
        p.ddc.sample_rate_hz / static_cast<double>(p.ddc.decimation);
    const double samples_per_chip = iq_rate / p.chip_rate;
    slicer.track_alpha = per_sample_alpha(0.98, samples_per_chip);
    slicer.leak_alpha = per_sample_alpha(0.04, samples_per_chip);
  }
  return slicer;
}

std::size_t resolve_debounce(const RxChain::Params& p) {
  const double iq_rate =
      p.ddc.sample_rate_hz / static_cast<double>(p.ddc.decimation);
  const double samples_per_chip = iq_rate / p.chip_rate;
  // Suppress glitches shorter than ~12% of a chip.
  return static_cast<std::size_t>(std::max(1.0, 0.12 * samples_per_chip));
}

double resolve_leak_alpha(const RxChain::Params& p) {
  if (!p.auto_bandwidth) return p.leak_ema_alpha;
  const double iq_rate =
      p.ddc.sample_rate_hz / static_cast<double>(p.ddc.decimation);
  return per_sample_alpha(p.leak_ema_alpha, iq_rate / p.chip_rate);
}

double resolve_axis_alpha(const RxChain::Params& p) {
  if (!p.auto_bandwidth) return p.axis_ema_alpha;
  const double iq_rate =
      p.ddc.sample_rate_hz / static_cast<double>(p.ddc.decimation);
  // ~50% convergence per chip: locks within the pilot at every rate.
  return per_sample_alpha(0.5, iq_rate / p.chip_rate);
}

RxChain::RxChain(Params params)
    : params_(params),
      ddc_(resolve_ddc(params)),
      slicer_(resolve_slicer(params)),
      debouncer_(resolve_debounce(params)),
      axis_alpha_(resolve_axis_alpha(params)),
      leak_alpha_(resolve_leak_alpha(params)),
      fm0_(Fm0StreamDecoder::Params{.chip_duration_s = 1.0 / params.chip_rate,
                                    .tolerance = 0.35},
           /*on_bit=*/
           [this](bool bit) {
             ++bits_decoded_;
             framer_.push(bit);
           },
           /*on_desync=*/[this] { framer_.reset(); }),
      framer_([this](const phy::UlPacket& pkt) {
        packets_.push_back(RxPacket{
            pkt, static_cast<double>(sample_count_) /
                     params_.ddc.sample_rate_hz});
      }) {}

void RxChain::on_iq(std::complex<double> iq) {
  // Optional one-shot frequency-offset calibration (paper lists a
  // "frequency offset calibration" block): estimate from the leak-dominated
  // early samples, then derotate the live stream.
  if (params_.freq_cal_samples > 0 && !freq_calibrated_) {
    cal_buffer_.push_back(iq);
    if (cal_buffer_.size() >= params_.freq_cal_samples) {
      freq_offset_hz_ =
          dsp::estimate_frequency_offset(cal_buffer_, ddc_.output_rate_hz());
      freq_calibrated_ = true;
      cal_buffer_.clear();
      cal_buffer_.shrink_to_fit();
    }
    return;  // calibration samples are not decoded
  }
  if (freq_calibrated_ && freq_offset_hz_ != 0.0) {
    const double phase = -2.0 * 3.14159265358979323846 * freq_offset_hz_ *
                         static_cast<double>(iq_sample_index_) /
                         ddc_.output_rate_hz();
    iq *= std::complex<double>{std::cos(phase), std::sin(phase)};
  }
  ++iq_sample_index_;

  if (params_.retain_iq_points) iq_points_.push_back(iq);

  // Leak cancellation + axis projection. A slow complex EMA converges on
  // the static carrier-leak phasor (plus the mean reflection level). The
  // tag's OOK then lives on a 1-D line in the IQ plane whose direction is
  // half the angle of the complex pseudo-variance E[(iq-m)^2]; projecting
  // the residual onto that axis recovers full modulation depth regardless
  // of the leak/reflection phase relation (no quadrature fading).
  if (!leak_primed_) {
    leak_estimate_ = iq;
    leak_primed_ = true;
  } else {
    const double alpha = iq_sample_index_ < params_.leak_warmup_samples
                             ? params_.leak_warmup_alpha
                             : leak_alpha_;
    leak_estimate_ += alpha * (iq - leak_estimate_);
  }
  const std::complex<double> residual = iq - leak_estimate_;
  // Only modulated samples carry axis information: updating on noise-only
  // samples (low OOK state, inter-packet silence) would let the axis decay
  // and spin between plateaus. Gate on the squelch floor.
  if (std::abs(residual) >= slicer_.params().floor) {
    pseudo_variance_ +=
        axis_alpha_ * (residual * residual - pseudo_variance_);
  }
  const double axis_angle = 0.5 * std::arg(pseudo_variance_);
  std::complex<double> axis{std::cos(axis_angle), std::sin(axis_angle)};
  // The half-angle is only defined modulo pi; keep the axis direction
  // continuous so the envelope polarity cannot flip mid-packet.
  if (axis.real() * prev_axis_.real() + axis.imag() * prev_axis_.imag() <
      0.0) {
    axis = -axis;
  }
  prev_axis_ = axis;
  const double envelope =
      residual.real() * axis.real() + residual.imag() * axis.imag();
  // The filter/leak start-up transient would poison the slicer's primed
  // levels; keep the decision path muted until the warmup completes.
  if (iq_sample_index_ <= params_.leak_warmup_samples) {
    if (iq_sample_index_ == params_.leak_warmup_samples) {
      slicer_.reset();
      debouncer_.reset();
      runs_.reset();
    }
    return;
  }
  const bool level = debouncer_.push(slicer_.push(envelope));
  if (const auto run = runs_.push(level)) {
    const double duration =
        static_cast<double>(run->samples) / ddc_.output_rate_hz();
    fm0_.push_run(duration);
  }
}

void RxChain::process(const double* samples, std::size_t n) {
  if (params_.ddc.kernels == dsp::KernelPolicy::kScalar) {
    for (std::size_t i = 0; i < n; ++i) {
      ++sample_count_;
      if (const auto iq = ddc_.push(samples[i])) on_iq(*iq);
    }
    return;
  }
  // Block path: one pass of the DDC's mix+decimate kernels over the whole
  // block, then the per-IQ decision chain. Packet timestamps must match
  // the scalar path bit-for-bit: in scalar operation an IQ sample emitted
  // at raw sample k sees sample_count_ == k, so reconstruct that count
  // from the decimation phase the DDC had when the block began.
  const std::size_t phase = ddc_.decimation_phase();
  const std::size_t base = sample_count_;
  const std::size_t decim = params_.ddc.decimation;
  iq_buf_.clear();
  const std::size_t got =
      ddc_.process(std::span<const double>{samples, n}, iq_buf_);
  for (std::size_t j = 0; j < got; ++j) {
    sample_count_ = base + (decim - phase) + j * decim;
    on_iq(iq_buf_[j]);
  }
  sample_count_ = base + n;
}

bool RxChain::collision_detected(sim::Rng& rng) const {
  return dsp::detect_collision_iq(iq_points_, rng);
}

void RxChain::resync() {
  slicer_.reset();
  debouncer_.reset();
  runs_.reset();
  fm0_.reset();
  framer_.reset();
  pseudo_variance_ = {0.0, 0.0};
  prev_axis_ = {1.0, 0.0};
  // Restart the leak warmup: the next leak_warmup_samples IQ samples
  // (the quiet reply gap) re-estimate the baseline with the fast alpha
  // while the decision path stays muted.
  iq_sample_index_ = 0;
}

void RxChain::reset() {
  ddc_.reset();
  slicer_.reset();
  debouncer_.reset();
  runs_.reset();
  fm0_.reset();
  framer_.reset();
  iq_points_.clear();
  freq_calibrated_ = false;
  freq_offset_hz_ = 0.0;
  cal_buffer_.clear();
  iq_sample_index_ = 0;
  leak_estimate_ = {0.0, 0.0};
  pseudo_variance_ = {0.0, 0.0};
  prev_axis_ = {1.0, 0.0};
  leak_primed_ = false;
}

}  // namespace arachnet::reader
