#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace arachnet::dsp {

using cplx = std::complex<double>;

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
/// power of two. `inverse` applies the conjugate transform and 1/N scaling.
void fft(std::vector<cplx>& data, bool inverse = false);

/// Forward FFT of a real signal (zero-padded to the next power of two when
/// needed). Returns the full complex spectrum.
std::vector<cplx> fft_real(const std::vector<double>& signal);

/// True if n is a power of two (and nonzero).
bool is_pow2(std::size_t n) noexcept;

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n) noexcept;

}  // namespace arachnet::dsp
