#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "arachnet/sim/rng.hpp"

namespace arachnet::dsp {

/// Result of a k-means run over IQ points.
struct KMeansResult {
  std::vector<std::complex<double>> centroids;
  std::vector<std::size_t> assignment;  ///< per point, centroid index
  double inertia = 0.0;                 ///< sum of squared distances
};

/// Lloyd's k-means over complex (IQ) points with k-means++-style seeding.
/// Deterministic given the rng seed.
KMeansResult kmeans(const std::vector<std::complex<double>>& points,
                    std::size_t k, sim::Rng& rng, std::size_t max_iter = 50);

/// Estimates the number of distinct IQ clusters in a slot's baseband
/// samples — the reader's capture-effect collision detector (Sec. 5.3):
/// one backscattering tag yields 2 clusters (absorb/reflect states around
/// the leak phasor); more than 2 means overlapping transmissions.
///
/// Method: backscatter IQ states are tight blobs (channel-noise sigma)
/// separated by the modulation depth, so a candidate clustering is valid
/// only when every pair of centroids is separated by several times the
/// largest intra-cluster RMS and no cluster is a sliver. The estimate is
/// the largest valid k in 2..k_max, else 1. (An inertia "elbow" cannot be
/// used: k-means keeps reducing the inertia of a single Gaussian blob.)
struct ClusterCountParams {
  std::size_t k_max = 6;
  /// Required ratio of minimum centroid separation to the largest
  /// intra-cluster RMS radius.
  double separation_ratio = 2.5;
  /// Minimum fraction of points per cluster (rejects sliver clusters made
  /// of transition samples).
  double min_cluster_fraction = 0.05;
  /// Fraction of farthest points ignored when computing a cluster's RMS
  /// radius. Ring-limited transitions smear samples between states — with
  /// two overlapping tags they can exceed 10%% of a slot — so the trim
  /// must cover them.
  double trim_fraction = 0.25;
};

std::size_t estimate_cluster_count(
    const std::vector<std::complex<double>>& points, sim::Rng& rng,
    const ClusterCountParams& params = {});

/// Removes inter-state transition samples before clustering: reflection
/// states are quasi-static (successive IQ samples move only by noise)
/// while ring-limited transitions sweep arcs between states. Keeps points
/// whose step to the previous sample is <= `factor` times the median step.
/// Without this, a strong tag's transition arcs inflate cluster radii and
/// mask a weak tag's states.
std::vector<std::complex<double>> filter_transitions(
    const std::vector<std::complex<double>>& points, double factor = 4.0);

/// Convenience: collision when more than two clusters are present among
/// the quasi-static (velocity-gated) samples.
bool detect_collision_iq(const std::vector<std::complex<double>>& points,
                         sim::Rng& rng,
                         const ClusterCountParams& params = {});

}  // namespace arachnet::dsp
