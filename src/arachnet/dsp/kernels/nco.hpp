#pragma once

#include <cmath>
#include <complex>
#include <cstddef>

namespace arachnet::dsp {

/// Numerically controlled oscillator implemented as a phasor recurrence:
/// the oscillator state is a unit complex number rotated by a fixed step
/// each sample, so generating e^{j(phi0 + k*step)} costs one complex
/// multiply instead of a std::cos + std::sin pair. The per-sample rounding
/// error only perturbs the phasor magnitude (the rotation itself is exact
/// to a relative few ulp), so a periodic renormalization every
/// kRenormInterval samples bounds the amplitude drift at ~1e-13 while the
/// phase drift stays below 1e-12 rad over millions of samples — far inside
/// the tolerance of every consumer (the decoders threshold on envelopes
/// hundreds of times larger).
///
/// This is the block-kernel replacement for the per-sample trig in Ddc,
/// derotate, the FDMA channel mixers, and UplinkWaveformSynth.
class PhasorNco {
 public:
  using cplx = std::complex<double>;

  PhasorNco() = default;

  /// Oscillator at phase `phase_rad` advancing `step_rad` per sample
  /// (either sign).
  PhasorNco(double phase_rad, double step_rad) { set(phase_rad, step_rad); }

  /// Re-seeds phase and step (two transcendental pairs, once per block
  /// stream — not per sample).
  void set(double phase_rad, double step_rad) noexcept {
    phasor_ = cplx{std::cos(phase_rad), std::sin(phase_rad)};
    set_step(step_rad);
  }

  /// Changes the per-sample step while keeping the current phase —
  /// mid-stream retunes (e.g. Ddc::set_carrier) stay phase-continuous.
  void set_step(double step_rad) noexcept {
    rot_ = cplx{std::cos(step_rad), std::sin(step_rad)};
  }

  /// Current oscillator value e^{j*phase}.
  cplx phasor() const noexcept { return phasor_; }

  /// Returns the current value and advances one sample.
  cplx next() noexcept {
    const cplx out = phasor_;
    advance();
    return out;
  }

  /// out[i] = in[i] * e^{j*phase_i} — complex mixer (FDMA channel shift,
  /// derotation).
  void mix(const cplx* in, cplx* out, std::size_t n) noexcept {
    const std::size_t m = lane_count(n);
    Lanes ln;
    if (m != 0) seed_lanes(ln);
    for (std::size_t k = 0; k < m; k += 4) {
      for (std::size_t l = 0; l < 4; ++l) {
        const double xr = in[k + l].real(), xi = in[k + l].imag();
        out[k + l] = cplx{xr * ln.pr[l] - xi * ln.pi[l],
                          xr * ln.pi[l] + xi * ln.pr[l]};
      }
      ln.advance();
    }
    double pr = m != 0 ? ln.pr[0] : phasor_.real();
    double pi = m != 0 ? ln.pi[0] : phasor_.imag();
    const double rr = rot_.real(), ri = rot_.imag();
    for (std::size_t i = m; i < n; ++i) {
      const double xr = in[i].real(), xi = in[i].imag();
      out[i] = cplx{xr * pr - xi * pi, xr * pi + xi * pr};
      const double npr = pr * rr - pi * ri;
      pi = pr * ri + pi * rr;
      pr = npr;
    }
    store(pr, pi, n);
  }

  /// out[i] = in[i] * e^{j*phase_i} for a real input stream — the DDC
  /// front-end mixer (use a negative step for a down-mix).
  void mix_real(const double* in, cplx* out, std::size_t n) noexcept {
    const std::size_t m = lane_count(n);
    Lanes ln;
    if (m != 0) seed_lanes(ln);
    for (std::size_t k = 0; k < m; k += 4) {
      for (std::size_t l = 0; l < 4; ++l) {
        const double x = in[k + l];
        out[k + l] = cplx{x * ln.pr[l], x * ln.pi[l]};
      }
      ln.advance();
    }
    double pr = m != 0 ? ln.pr[0] : phasor_.real();
    double pi = m != 0 ? ln.pi[0] : phasor_.imag();
    const double rr = rot_.real(), ri = rot_.imag();
    for (std::size_t i = m; i < n; ++i) {
      const double x = in[i];
      out[i] = cplx{x * pr, x * pi};
      const double npr = pr * rr - pi * ri;
      pi = pr * ri + pi * rr;
      pr = npr;
    }
    store(pr, pi, n);
  }

  /// out[i] = e^{j*phase_i} — a raw oscillator block (waveform synthesis:
  /// cos is the real part, sin the imaginary part).
  void fill(cplx* out, std::size_t n) noexcept {
    const std::size_t m = lane_count(n);
    Lanes ln;
    if (m != 0) seed_lanes(ln);
    for (std::size_t k = 0; k < m; k += 4) {
      for (std::size_t l = 0; l < 4; ++l) {
        out[k + l] = cplx{ln.pr[l], ln.pi[l]};
      }
      ln.advance();
    }
    double pr = m != 0 ? ln.pr[0] : phasor_.real();
    double pi = m != 0 ? ln.pi[0] : phasor_.imag();
    const double rr = rot_.real(), ri = rot_.imag();
    for (std::size_t i = m; i < n; ++i) {
      out[i] = cplx{pr, pi};
      const double npr = pr * rr - pi * ri;
      pi = pr * ri + pi * rr;
      pr = npr;
    }
    store(pr, pi, n);
  }

 private:
  static constexpr std::size_t kRenormInterval = 512;

  /// The phasor recurrence is a serial dependency chain: each rotation
  /// waits on the previous one (~4 multiply-add latencies per sample). The
  /// block loops therefore run four independent chains — lanes at phases
  /// phi, phi+step, phi+2*step, phi+3*step, each advancing by 4*step — so
  /// the rotations of four consecutive samples retire in parallel. Lane
  /// rounding differs from the sequential recurrence only in the last few
  /// ulps (same error model: magnitude drift, bounded by the renorm).
  struct Lanes {
    double pr[4], pi[4];
    double r4r, r4i;  ///< rot^4

    void advance() noexcept {
      for (std::size_t l = 0; l < 4; ++l) {
        const double npr = pr[l] * r4r - pi[l] * r4i;
        pi[l] = pr[l] * r4i + pi[l] * r4r;
        pr[l] = npr;
      }
    }
  };

  /// Samples the laned main loop should handle: a multiple of 4, or zero
  /// for short blocks where seeding four lanes costs more than it saves.
  static std::size_t lane_count(std::size_t n) noexcept {
    return n >= 8 ? n & ~std::size_t{3} : 0;
  }

  void seed_lanes(Lanes& ln) const noexcept {
    const double rr = rot_.real(), ri = rot_.imag();
    ln.pr[0] = phasor_.real();
    ln.pi[0] = phasor_.imag();
    for (std::size_t l = 1; l < 4; ++l) {
      ln.pr[l] = ln.pr[l - 1] * rr - ln.pi[l - 1] * ri;
      ln.pi[l] = ln.pr[l - 1] * ri + ln.pi[l - 1] * rr;
    }
    const double r2r = rr * rr - ri * ri;
    const double r2i = 2.0 * rr * ri;
    ln.r4r = r2r * r2r - r2i * r2i;
    ln.r4i = 2.0 * r2r * r2i;
  }

  void advance() noexcept {
    const double npr = phasor_.real() * rot_.real() -
                       phasor_.imag() * rot_.imag();
    const double npi = phasor_.real() * rot_.imag() +
                       phasor_.imag() * rot_.real();
    phasor_ = cplx{npr, npi};
    if (++since_renorm_ >= kRenormInterval) renorm();
  }

  /// Commits the unrolled-loop state and renormalizes if the interval
  /// elapsed during the block.
  void store(double pr, double pi, std::size_t advanced) noexcept {
    phasor_ = cplx{pr, pi};
    since_renorm_ += advanced;
    if (since_renorm_ >= kRenormInterval) renorm();
  }

  void renorm() noexcept {
    const double mag = std::abs(phasor_);
    if (mag > 0.0) phasor_ /= mag;
    since_renorm_ = 0;
  }

  cplx phasor_{1.0, 0.0};
  cplx rot_{1.0, 0.0};
  std::size_t since_renorm_ = 0;
};

}  // namespace arachnet::dsp
