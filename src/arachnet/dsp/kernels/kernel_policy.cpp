#include "arachnet/dsp/kernels/kernel_policy.hpp"

#include <cstdlib>
#include <cstring>

namespace arachnet::dsp {

namespace {

KernelPolicy resolve_from_env() noexcept {
  const char* env = std::getenv("ARACHNET_KERNEL_POLICY");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return KernelPolicy::kScalar;
  }
  return KernelPolicy::kBlock;
}

}  // namespace

KernelPolicy default_kernel_policy() noexcept {
  static const KernelPolicy policy = resolve_from_env();
  return policy;
}

const char* to_string(KernelPolicy policy) noexcept {
  return policy == KernelPolicy::kScalar ? "scalar" : "block";
}

}  // namespace arachnet::dsp
