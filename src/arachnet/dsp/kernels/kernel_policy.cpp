#include "arachnet/dsp/kernels/kernel_policy.hpp"

#include <cstdlib>

#include "arachnet/telemetry/log.hpp"

namespace arachnet::dsp {

std::optional<KernelPolicy> parse_kernel_policy(
    std::string_view name) noexcept {
  if (name == "scalar") return KernelPolicy::kScalar;
  if (name == "block") return KernelPolicy::kBlock;
  if (name == "simd") return KernelPolicy::kSimd;
  return std::nullopt;
}

KernelPolicy kernel_policy_from_env_value(const char* value) noexcept {
  if (value == nullptr || *value == '\0') return KernelPolicy::kBlock;
  if (const auto parsed = parse_kernel_policy(value)) return *parsed;
  ARACHNET_LOG_WARN("kernels",
                    "unrecognized ARACHNET_KERNEL_POLICY value; falling back",
                    {"value", value}, {"fallback", "block"},
                    {"accepted", "scalar|block|simd"});
  return KernelPolicy::kBlock;
}

KernelPolicy default_kernel_policy() noexcept {
  static const KernelPolicy policy =
      kernel_policy_from_env_value(std::getenv("ARACHNET_KERNEL_POLICY"));
  return policy;
}

const char* to_string(KernelPolicy policy) noexcept {
  switch (policy) {
    case KernelPolicy::kScalar:
      return "scalar";
    case KernelPolicy::kBlock:
      return "block";
    case KernelPolicy::kSimd:
      return "simd";
  }
  return "block";
}

}  // namespace arachnet::dsp
