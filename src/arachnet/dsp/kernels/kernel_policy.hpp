#pragma once

namespace arachnet::dsp {

/// Selects the implementation of the reader's hot DSP loops.
///
/// Every rewired call site (Ddc, derotate, the FDMA channel mixers,
/// UplinkWaveformSynth) keeps its original per-sample scalar code behind
/// this switch, so the block-kernel path is testable against it: decoded
/// packets and recovered bits must be identical between the two policies,
/// and the raw IQ must agree to numeric tolerance (the kernels change
/// transcendental evaluation and summation order, nothing else).
enum class KernelPolicy {
  kScalar,  ///< reference per-sample loops (std::cos/std::sin per sample)
  kBlock,   ///< phasor-recurrence NCOs + folded/contiguous FIR block kernels
};

/// Process-wide default, used by every Params struct that carries a policy.
/// Resolved once from the ARACHNET_KERNEL_POLICY environment variable
/// ("scalar" or "block"); unset or unrecognized values mean kBlock.
KernelPolicy default_kernel_policy() noexcept;

/// "scalar" or "block" (for logs and bench sidecars).
const char* to_string(KernelPolicy policy) noexcept;

}  // namespace arachnet::dsp
