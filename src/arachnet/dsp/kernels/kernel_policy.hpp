#pragma once

#include <optional>
#include <string_view>

namespace arachnet::dsp {

/// Selects the implementation of the reader's hot DSP loops.
///
/// Every rewired call site (Ddc, derotate, the FDMA channel mixers,
/// UplinkWaveformSynth) keeps its original per-sample scalar code behind
/// this switch, so the faster tiers are testable against it. The contract
/// per tier:
///   kBlock — decoded packets and recovered bits identical to kScalar,
///     raw IQ equal to numeric tolerance (the kernels change
///     transcendental evaluation and summation order, nothing else).
///   kSimd — decoded packets, payloads and CRCs identical to kScalar;
///     packet timestamps within a few decimated samples (the float32
///     lane path can move a slicer crossing by ±1 sample, far inside the
///     FM0 run-classification margin). IQ agrees to float32 tolerance.
enum class KernelPolicy {
  kScalar,  ///< reference per-sample loops (std::cos/std::sin per sample)
  kBlock,   ///< phasor-recurrence NCOs + folded/contiguous FIR block kernels
  kSimd,    ///< float32 vector lanes + runtime ISA dispatch (see simd/)
};

/// Process-wide default, used by every Params struct that carries a policy.
/// Resolved once from the ARACHNET_KERNEL_POLICY environment variable
/// ("scalar", "block" or "simd"); unset means kBlock, unrecognized values
/// fall back to kBlock after a one-shot structured WARN naming the value.
KernelPolicy default_kernel_policy() noexcept;

/// Parses a policy name ("scalar"/"block"/"simd"); nullopt if unrecognized.
std::optional<KernelPolicy> parse_kernel_policy(std::string_view name) noexcept;

/// The mapping default_kernel_policy() applies to one env-var value:
/// parse, or WARN (component "kernels", naming the bad value and the
/// fallback) and return kBlock. Exposed so the warning path is testable
/// without re-latching the process-wide default.
KernelPolicy kernel_policy_from_env_value(const char* value) noexcept;

/// "scalar", "block" or "simd" (for logs and bench sidecars).
const char* to_string(KernelPolicy policy) noexcept;

}  // namespace arachnet::dsp
