#include "arachnet/dsp/kernels/cpu_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "arachnet/telemetry/log.hpp"

namespace arachnet::dsp {

namespace {

CpuFeatures probe() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.sse2 = __builtin_cpu_supports("sse2") != 0;
  f.avx = __builtin_cpu_supports("avx") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#elif defined(__aarch64__)
  // AdvSIMD is part of the aarch64 baseline ABI.
  f.neon = true;
#endif
  return f;
}

/// Best tier the hardware (and build configuration) supports.
SimdIsa best_supported(const CpuFeatures& f) noexcept {
#if defined(ARACHNET_DISABLE_SIMD)
  return f.neon ? SimdIsa::kNeon : SimdIsa::kGeneric;
#else
  if (f.avx2 && f.fma) return SimdIsa::kAvx2;
  if (f.neon) return SimdIsa::kNeon;
  return SimdIsa::kGeneric;
#endif
}

/// Clamps a requested tier to hardware support.
SimdIsa clamp(SimdIsa requested, const CpuFeatures& f) noexcept {
  if (requested == SimdIsa::kAvx2 && best_supported(f) != SimdIsa::kAvx2) {
    return f.neon ? SimdIsa::kNeon : SimdIsa::kGeneric;
  }
  if (requested == SimdIsa::kNeon && !f.neon) return SimdIsa::kGeneric;
  if (requested == SimdIsa::kGeneric && f.neon) return SimdIsa::kNeon;
  return requested;
}

SimdIsa resolve() noexcept {
  const CpuFeatures& f = detect_cpu_features();
  const char* env = std::getenv("ARACHNET_SIMD_ISA");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "generic") == 0) return clamp(SimdIsa::kGeneric, f);
    if (std::strcmp(env, "neon") == 0) return clamp(SimdIsa::kNeon, f);
    if (std::strcmp(env, "avx2") == 0) return clamp(SimdIsa::kAvx2, f);
    ARACHNET_LOG_WARN("kernels",
                      "unrecognized ARACHNET_SIMD_ISA value; auto-detecting",
                      {"value", env}, {"accepted", "generic|neon|avx2"});
  }
  return best_supported(f);
}

// kGeneric+1 .. stored as isa+1 so 0 means "not resolved yet".
std::atomic<int> g_active{0};

}  // namespace

const CpuFeatures& detect_cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

SimdIsa active_simd_isa() noexcept {
  int v = g_active.load(std::memory_order_acquire);
  if (v == 0) {
    const SimdIsa isa = resolve();
    v = static_cast<int>(isa) + 1;
    int expected = 0;
    if (!g_active.compare_exchange_strong(expected, v,
                                          std::memory_order_acq_rel)) {
      v = expected;
    }
  }
  return static_cast<SimdIsa>(v - 1);
}

void force_simd_isa(SimdIsa isa) noexcept {
  const SimdIsa clamped = clamp(isa, detect_cpu_features());
  g_active.store(static_cast<int>(clamped) + 1, std::memory_order_release);
}

const char* to_string(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kGeneric:
      return "generic";
    case SimdIsa::kNeon:
      return "neon";
    case SimdIsa::kAvx2:
      return "avx2";
  }
  return "generic";
}

std::string cpu_feature_string() {
  const CpuFeatures& f = detect_cpu_features();
  std::string out;
  const auto add = [&out](bool have, const char* name) {
    if (!have) return;
    if (!out.empty()) out += '+';
    out += name;
  };
  add(f.sse2, "sse2");
  add(f.avx, "avx");
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.avx512f, "avx512f");
  add(f.neon, "neon");
  if (out.empty()) out = "baseline";
  return out;
}

}  // namespace arachnet::dsp
