#include "arachnet/dsp/kernels/cpu_dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "arachnet/telemetry/log.hpp"

namespace arachnet::dsp {

namespace {

CpuFeatures probe() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.sse2 = __builtin_cpu_supports("sse2") != 0;
  f.avx = __builtin_cpu_supports("avx") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
  f.avx512vl = __builtin_cpu_supports("avx512vl") != 0;
#elif defined(__aarch64__)
  // AdvSIMD is part of the aarch64 baseline ABI.
  f.neon = true;
#endif
  return f;
}

/// Best tier the hardware (and build configuration) supports.
SimdIsa best_supported(const CpuFeatures& f) noexcept {
#if defined(ARACHNET_DISABLE_SIMD)
  return f.neon ? SimdIsa::kNeon : SimdIsa::kGeneric;
#else
  if (f.avx512f && f.avx512vl && f.fma) return SimdIsa::kAvx512;
  if (f.avx2 && f.fma) return SimdIsa::kAvx2;
  if (f.neon) return SimdIsa::kNeon;
  return SimdIsa::kGeneric;
#endif
}

/// Clamps a requested tier to hardware support: each x86 tier degrades to
/// the next one down, and the portable tier maps to NEON on aarch64.
SimdIsa clamp(SimdIsa requested, const CpuFeatures& f) noexcept {
  const SimdIsa best = best_supported(f);
  if (requested == SimdIsa::kAvx512 && best != SimdIsa::kAvx512) {
    requested = SimdIsa::kAvx2;
  }
  if (requested == SimdIsa::kAvx2 && best != SimdIsa::kAvx2 &&
      best != SimdIsa::kAvx512) {
    requested = f.neon ? SimdIsa::kNeon : SimdIsa::kGeneric;
  }
  if (requested == SimdIsa::kNeon && !f.neon) return SimdIsa::kGeneric;
  if (requested == SimdIsa::kGeneric && f.neon) return SimdIsa::kNeon;
  return requested;
}

SimdIsa resolve() noexcept {
  return simd_isa_from_env_value(std::getenv("ARACHNET_SIMD_ISA"));
}

// kGeneric+1 .. stored as isa+1 so 0 means "not resolved yet".
std::atomic<int> g_active{0};

}  // namespace

const CpuFeatures& detect_cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

std::optional<SimdIsa> parse_simd_isa(std::string_view name) noexcept {
  if (name == "generic") return SimdIsa::kGeneric;
  if (name == "neon") return SimdIsa::kNeon;
  if (name == "avx2") return SimdIsa::kAvx2;
  if (name == "avx512") return SimdIsa::kAvx512;
  return std::nullopt;
}

SimdIsa simd_isa_from_env_value(const char* value) noexcept {
  const CpuFeatures& f = detect_cpu_features();
  if (value == nullptr || *value == '\0') return best_supported(f);
  if (const auto parsed = parse_simd_isa(value)) return clamp(*parsed, f);
  ARACHNET_LOG_WARN("kernels",
                    "unrecognized ARACHNET_SIMD_ISA value; auto-detecting",
                    {"value", value},
                    {"fallback", to_string(best_supported(f))},
                    {"accepted", "generic|neon|avx2|avx512"});
  return best_supported(f);
}

SimdIsa active_simd_isa() noexcept {
  int v = g_active.load(std::memory_order_acquire);
  if (v == 0) {
    const SimdIsa isa = resolve();
    v = static_cast<int>(isa) + 1;
    int expected = 0;
    if (!g_active.compare_exchange_strong(expected, v,
                                          std::memory_order_acq_rel)) {
      v = expected;
    }
  }
  return static_cast<SimdIsa>(v - 1);
}

void force_simd_isa(SimdIsa isa) noexcept {
  const SimdIsa clamped = clamp(isa, detect_cpu_features());
  g_active.store(static_cast<int>(clamped) + 1, std::memory_order_release);
}

const char* to_string(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kGeneric:
      return "generic";
    case SimdIsa::kNeon:
      return "neon";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
  }
  return "generic";
}

std::string cpu_feature_string() {
  const CpuFeatures& f = detect_cpu_features();
  std::string out;
  const auto add = [&out](bool have, const char* name) {
    if (!have) return;
    if (!out.empty()) out += '+';
    out += name;
  };
  add(f.sse2, "sse2");
  add(f.avx, "avx");
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.avx512f, "avx512f");
  add(f.avx512vl, "avx512vl");
  add(f.neon, "neon");
  if (out.empty()) out = "baseline";
  return out;
}

}  // namespace arachnet::dsp
