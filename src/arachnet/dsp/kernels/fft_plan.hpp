#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

namespace arachnet::dsp {

/// Precomputed radix-2 FFT plan for one transform size: the twiddle
/// factors and the bit-reversal permutation are built once and reused for
/// every transform of that size. The free fft() recomputed both per call
/// (and generated the twiddles by repeated multiplication, which also
/// accumulates rounding error along each butterfly stage); the plan's
/// table twiddles are each a direct cos/sin evaluation, so plans are both
/// faster and slightly more accurate.
///
/// Plans are immutable after construction: forward()/inverse() touch only
/// the caller's buffer, so one plan may be shared across threads (the PSD
/// estimator under the parallel FDMA bank relies on this).
class FftPlan {
 public:
  using cplx = std::complex<double>;

  /// Builds a plan for size `n` (must be a power of two, >= 1).
  explicit FftPlan(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// In-place forward / inverse transform of exactly size() samples.
  /// inverse() applies the conjugate transform and 1/N scaling.
  void forward(cplx* data) const noexcept { transform(data, false); }
  void inverse(cplx* data) const noexcept { transform(data, true); }
  void forward(std::vector<cplx>& data) const;
  void inverse(std::vector<cplx>& data) const;

  /// Single-precision in-place transforms over the same plan (shared
  /// bit-reversal table, float32 twiddles narrowed from the double ones).
  /// The butterfly stages run four lanes per 256-bit vector — double the
  /// throughput of the float64 path — which is what the kSimd channelizer
  /// fast path rides on. Rounding follows float32; callers that need the
  /// double-precision result use forward()/inverse().
  void forward_f(std::complex<float>* data) const noexcept {
    transform_f(data, false);
  }
  void inverse_f(std::complex<float>* data) const noexcept {
    transform_f(data, true);
  }

  /// Full complex spectrum of a real signal: `in[0..n_in)` is zero-padded
  /// to size(). Uses the conjugate-symmetry trick — the signal is packed
  /// into a size()/2 complex buffer, transformed with the half-size plan,
  /// and unpacked — so a real transform costs roughly half a complex one.
  /// `out` is resized to size(); bins above size()/2 are the conjugate
  /// mirror, exactly as the full complex transform of the real input
  /// would produce.
  void forward_real(const double* in, std::size_t n_in,
                    std::vector<cplx>& out) const;

  /// Process-wide plan cache: returns the shared plan for size `n`,
  /// constructing it on first use. Thread-safe.
  static std::shared_ptr<const FftPlan> get(std::size_t n);

 private:
  void transform(cplx* data, bool inverse) const noexcept;
  void transform_f(std::complex<float>* data, bool inverse) const noexcept;

  std::size_t n_;
  std::vector<std::size_t> bitrev_;  ///< permutation table, size n
  std::vector<cplx> twiddle_;        ///< e^{-2*pi*i*k/n}, k < n/2
  /// Float32 twiddles in stage-major contiguous layout: the stage with
  /// `half` butterflies per group starts at float offset 2*(half-1) and
  /// holds its `half` twiddles as interleaved re,im — so the float32
  /// butterfly loop loads four twiddles with one unstrided 256-bit load
  /// instead of gathering them through the stride-indexed double table.
  std::vector<float> stage_tw_f_;
};

}  // namespace arachnet::dsp
