#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arachnet/dsp/kernels/fft_plan.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/dsp/kernels/nco.hpp"

namespace arachnet::dsp {

/// Uniform polyphase filterbank channelizer — the shared front-end that
/// replaces a bank of per-channel NCO-mix + full-rate-FIR stages (the
/// standard SDR/base-station receiver structure).
///
/// One windowed-sinc prototype low-pass of length L is decomposed into C
/// polyphase branches. Every `decimation` (D) input samples the commutator
/// takes the newest L-sample window, folds it through the branches
/// (v[p] = sum_q h[p + qC] * x[t - p - qC], L multiplies total regardless
/// of C), and one size-C inverse FFT turns the branch sums into all C
/// bin outputs at once:
///
///   Y_b[t] = sum_m h[m] * x[t - m] * e^{+j*2*pi*b*m/C}
///
/// i.e. the input filtered by the prototype *heterodyned up to bin b* —
/// which equals the input down-mixed by the bin frequency 2*pi*b/C and
/// low-pass filtered. A lane centered at w_k = 2*pi*f_k/fs rarely sits
/// exactly on a bin; with b_k = round(f_k*C/fs) the residual
/// delta_k = w_k - 2*pi*b_k/C (at most half a bin, pi/C) is absorbed by
/// widening the prototype passband by fs/(2C) Hz, and the final rotation
/// that moves the lane to exact DC collapses — together with the bin
/// shift — into one per-lane phasor e^{-j*w_k*t} evaluated only at frame
/// instants t = (F+1)*D - 1 (one complex multiply per lane per frame):
///
///   lane_k[F] = e^{-j*w_k*t_F} * Y_{b_k}[t_F]
///
/// Cost per input sample: L/D multiplies for the branch sums plus the
/// size-C FFT amortized over D samples — independent of the number of
/// lanes — versus `taps` multiplies *per channel* for the mixer bank.
///
/// The frame grid matches FirBlockDecimator: with `phase()` samples
/// consumed since the last frame, the next frame fires after
/// D - phase() further samples, and history carries across process()
/// calls, so splitting a stream into arbitrary blocks yields the exact
/// same frames.
///
/// Instances are single-threaded (process() on one thread at a time); the
/// FFT plan is shared process-wide and immutable.
class PolyphaseChannelizer {
 public:
  using cplx = std::complex<double>;

  struct Params {
    double sample_rate_hz = 0.0;  ///< input IQ rate fs
    std::size_t fft_size = 0;     ///< C: bins/branches (power of two)
    std::size_t decimation = 0;   ///< D: inputs per output frame, D <= C
    /// Prototype low-pass (odd length, unity DC gain, e.g. from
    /// design_lowpass). Passband must cover the signal bandwidth plus the
    /// worst-case bin residual fs/(2C).
    std::vector<double> prototype;
    /// Per-lane center frequencies in Hz. Each maps to its nearest bin;
    /// bins must be distinct and inside (0, fs/2).
    std::vector<double> center_hz;
    /// Under kSimd the frontend runs the single-precision fast path by
    /// default: the branch fold, the inverse FFT and the residual lane
    /// rotation all run in float32 through the ISA-dispatched vector
    /// kernels (partial sums in float32, accumulator combines in double,
    /// lane phasors reseeded from double masters every 4096 frames — the
    /// SimdNco chunk idiom). Other policies use the portable scalar
    /// float64 fold. Lane outputs agree to float32 tolerance; decoded
    /// packets are bit-identical (see DESIGN.md §7 precision analysis).
    KernelPolicy kernels = default_kernel_policy();
    /// Fold precision under kSimd. kAuto selects the float32 fast path
    /// above; kFloat64 pins the vectorized float64 fold + float64 FFT —
    /// benches use it as the f32-vs-f64 speedup baseline and it remains
    /// the output-precision reference. Ignored outside kSimd.
    enum class Fold { kAuto, kFloat64 };
    Fold fold = Fold::kAuto;
  };

  /// Auto-planner output for a subcarrier bank (see plan()).
  struct Plan {
    bool viable = false;
    std::string reason;  ///< why not viable (empty when viable)
    std::size_t fft_size = 0;
    std::size_t decimation = 0;
    std::size_t taps = 0;
    double cutoff_hz = 0.0;
    /// The arithmetic grid the subcarriers sit on: f = origin + k*spacing.
    /// spacing is 0 for a single subcarrier (no grid to extend).
    double grid_origin_hz = 0.0;
    double grid_spacing_hz = 0.0;
  };

  /// Sizes a channelizer for a set of subcarriers carrying chips at
  /// `chip_rate`: C = next power of two >= fs/chip_rate (bin residual
  /// <= chip_rate/2), D = largest power of two keeping >= 16 lane samples
  /// per chip, prototype length ~3.3*fs/(1.1*chip_rate) (clamped odd to
  /// [255, 1023]) with cutoff 1.4*chip_rate + fs/(2C). Not viable when the
  /// subcarriers are off a uniform grid, collide in a bin, map outside
  /// (0, fs/2), or the IQ rate leaves no room to decimate (D < 2); the
  /// reason string says which.
  static Plan plan(double sample_rate_hz, double chip_rate,
                   const std::vector<double>& subcarriers_hz);

  /// Nearest FFT bin for a center frequency.
  static std::size_t bin_for(double hz, double sample_rate_hz,
                             std::size_t fft_size) noexcept;

  explicit PolyphaseChannelizer(Params params);

  /// Consumes `n` IQ samples, producing one frame of every lane per
  /// `decimation` inputs. Lane buffers are overwritten (not appended) each
  /// call; read them via lane() before the next call. Returns the number
  /// of frames produced.
  std::size_t process(const cplx* in, std::size_t n);

  /// Lane `k`'s output from the last process() call: frames() samples at
  /// sample_rate/decimation, centered at DC.
  const cplx* lane(std::size_t k) const noexcept { return lanes_[k].data(); }

  /// Frames produced by the last process() call.
  std::size_t frames() const noexcept { return last_frames_; }

  /// True when `center_hz` maps to an unused bin inside (0, fs/2) — i.e. a
  /// lane for it could be added without disturbing the existing ones.
  bool lane_fits(double center_hz) const noexcept;

  /// Adds a lane mid-stream, phase-aligned with the running frame clock
  /// (its first output matches what a from-the-start lane would produce,
  /// modulo the prototype history it never saw). Returns the lane index.
  /// Throws if the lane does not fit (see lane_fits()).
  std::size_t add_lane(double center_hz);

  std::size_t lane_count() const noexcept { return lane_nco_.size(); }
  std::size_t fft_size() const noexcept { return params_.fft_size; }
  std::size_t decimation() const noexcept { return params_.decimation; }
  std::size_t taps() const noexcept { return params_.prototype.size(); }
  double lane_rate_hz() const noexcept {
    return params_.sample_rate_hz / static_cast<double>(params_.decimation);
  }
  /// Input samples consumed since the last frame, in [0, decimation).
  std::size_t phase() const noexcept { return phase_; }
  /// Total frames produced since construction (the lane-sample clock).
  std::uint64_t frames_produced() const noexcept { return frames_produced_; }
  /// True when process() runs the float32 fast path (kSimd + Fold::kAuto).
  bool float32_path() const noexcept { return use_f32_; }

 private:
  /// Per-lane float32 residual phasor: `re/im` rotate by `rre/rim` each
  /// frame; `phase` is the double master (phase of the *next* frame),
  /// advanced alongside and used to recompute re/im at reseed points so
  /// float32 drift never spans more than kF32ReseedFrames frames.
  struct LaneF32 {
    double phase = 0.0;
    double step = 0.0;
    float re = 1.0f;
    float im = 0.0f;
    float rre = 1.0f;
    float rim = 0.0f;
  };
  static constexpr std::size_t kF32ReseedFrames = 4096;

  void seed_lane_nco(double center_hz);
  std::size_t process_f32(const cplx* in, std::size_t n);

  Params params_;
  std::shared_ptr<const FftPlan> fft_;
  std::vector<double> scaled_proto_;  ///< prototype * C (absorbs the 1/C
                                      ///< scaling FftPlan::inverse applies)
  std::vector<std::size_t> bins_;     ///< per-lane FFT bin
  std::vector<PhasorNco> lane_nco_;   ///< per-lane e^{-j*w_k*t_F} phasor
  std::vector<std::vector<cplx>> lanes_;
  std::vector<cplx> work_;  ///< history (L-1 samples) + current block
  std::vector<cplx> spec_;  ///< size C: branch sums, FFT'd in place
  // Float32 fast path (engaged when use_f32_): duplicated float32
  // prototype, interleaved float32 window mirror (replaces work_), branch
  // scratch, and the per-lane phasors. lane_nco_ stays seeded in parallel
  // so the two paths share add_lane()/frame-clock semantics.
  bool use_f32_ = false;
  std::vector<float> proto_f_;    ///< scaled_proto_ duplicated elementwise
  std::vector<float> work_f_;     ///< interleaved history + current block
  std::vector<float> spec_f_;     ///< 2*C floats: branch sums, FFT scratch
  std::vector<LaneF32> lane_f32_;
  std::size_t f32_reseed_left_ = kF32ReseedFrames;
  std::size_t phase_ = 0;
  std::size_t last_frames_ = 0;
  std::uint64_t frames_produced_ = 0;
};

}  // namespace arachnet::dsp
