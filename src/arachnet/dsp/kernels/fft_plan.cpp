#include "arachnet/dsp/kernels/fft_plan.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <stdexcept>

#include "arachnet/dsp/kernels/simd/simd_kernels.hpp"
#include "arachnet/dsp/kernels/simd/vec.hpp"

namespace arachnet::dsp {

namespace {

bool pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!pow2(n)) {
    throw std::invalid_argument("FftPlan: size must be a power of two");
  }
  bitrev_.resize(n);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = j;
  }
  twiddle_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n);
    twiddle_[k] = cplx{std::cos(angle), std::sin(angle)};
  }
  if (n >= 2) {
    stage_tw_f_.resize(2 * (n - 1));
    for (std::size_t half = 1; half < n; half <<= 1) {
      const std::size_t stride = n / (2 * half);
      float* st = stage_tw_f_.data() + 2 * (half - 1);
      for (std::size_t k = 0; k < half; ++k) {
        st[2 * k] = static_cast<float>(twiddle_[k * stride].real());
        st[2 * k + 1] = static_cast<float>(twiddle_[k * stride].imag());
      }
    }
  }
}

void FftPlan::transform(cplx* data, bool inverse) const noexcept {
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Stages with half >= 2 run two butterflies per iteration on 256-bit
  // lanes. Each lane performs the exact arithmetic of the scalar
  // butterfly (same multiplies, adds and ordering; the {-1,+1} sign
  // vector turns the subtract into an exact negate-and-add), so the
  // vector path is bit-identical to the scalar recurrence and needs no
  // policy gate — every KernelPolicy shares it.
  constexpr simd::f64x4 kSign = {-1.0, 1.0, -1.0, 1.0};
  constexpr simd::i64x4 kDupRe = {0, 0, 2, 2};
  constexpr simd::i64x4 kDupIm = {1, 1, 3, 3};
  constexpr simd::i64x4 kSwap = {1, 0, 3, 2};
  const double sgn = inverse ? -1.0 : 1.0;
  double* d = reinterpret_cast<double*>(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n / len;
    if (half < 2) {
      for (std::size_t i = 0; i < n; i += len) {
        cplx w = twiddle_[0];
        if (inverse) w = std::conj(w);
        const cplx u = data[i];
        const cplx v = data[i + half] * w;
        data[i] = u + v;
        data[i + half] = u - v;
      }
      continue;
    }
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k + 2 <= half; k += 2) {
        const cplx w0 = twiddle_[k * stride];
        const cplx w1 = twiddle_[(k + 1) * stride];
        const simd::f64x4 w = {w0.real(), sgn * w0.imag(), w1.real(),
                               sgn * w1.imag()};
        const simd::f64x4 x =
            simd::loadu<simd::f64x4>(d + 2 * (i + k + half));
        const simd::f64x4 v = __builtin_shuffle(x, kDupRe) * w +
                              kSign * (__builtin_shuffle(x, kDupIm) *
                                       __builtin_shuffle(w, kSwap));
        const simd::f64x4 u = simd::loadu<simd::f64x4>(d + 2 * (i + k));
        simd::storeu(d + 2 * (i + k), u + v);
        simd::storeu(d + 2 * (i + k + half), u - v);
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] *= scale;
  }
}

void FftPlan::transform_f(std::complex<float>* data,
                          bool inverse) const noexcept {
  // The float32 butterflies live in the ISA-dispatched kernel table so
  // they compile once per tier (AVX2/AVX-512 encodings included); this
  // wrapper supplies the plan's tables.
  simd::kernels().fft_radix2_cf32(
      reinterpret_cast<float*>(data), n_, bitrev_.data(),
      stage_tw_f_.data(), inverse ? -1.0f : 1.0f,
      inverse ? 1.0f / static_cast<float>(n_) : 1.0f);
}

void FftPlan::forward(std::vector<cplx>& data) const {
  if (data.size() != n_) {
    throw std::invalid_argument("FftPlan::forward: size mismatch");
  }
  forward(data.data());
}

void FftPlan::inverse(std::vector<cplx>& data) const {
  if (data.size() != n_) {
    throw std::invalid_argument("FftPlan::inverse: size mismatch");
  }
  inverse(data.data());
}

void FftPlan::forward_real(const double* in, std::size_t n_in,
                           std::vector<cplx>& out) const {
  if (n_in > n_) {
    throw std::invalid_argument("FftPlan::forward_real: input too long");
  }
  out.assign(n_, cplx{0.0, 0.0});
  if (n_ == 1) {
    if (n_in > 0) out[0] = cplx{in[0], 0.0};
    return;
  }
  const std::size_t h = n_ / 2;
  // Pack even samples into the real lane, odd into the imaginary lane.
  std::vector<cplx> z(h, cplx{0.0, 0.0});
  for (std::size_t j = 0; j < h; ++j) {
    const double re = 2 * j < n_in ? in[2 * j] : 0.0;
    const double im = 2 * j + 1 < n_in ? in[2 * j + 1] : 0.0;
    z[j] = cplx{re, im};
  }
  const auto half_plan = get(h);
  half_plan->forward(z.data());
  // Unpack: X[k] = E[k] + e^{-2*pi*i*k/n} * O[k], with E/O recovered from
  // the packed transform via conjugate symmetry.
  out[0] = cplx{z[0].real() + z[0].imag(), 0.0};
  out[h] = cplx{z[0].real() - z[0].imag(), 0.0};
  for (std::size_t k = 1; k < h; ++k) {
    const cplx zk = z[k];
    const cplx zc = std::conj(z[h - k]);
    const cplx even = 0.5 * (zk + zc);
    const cplx odd = cplx{0.0, -0.5} * (zk - zc);
    const cplx xk = even + twiddle_[k] * odd;
    out[k] = xk;
    out[n_ - k] = std::conj(xk);
  }
}

std::shared_ptr<const FftPlan> FftPlan::get(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::shared_ptr<const FftPlan>> cache;
  {
    std::lock_guard lock{mutex};
    if (const auto it = cache.find(n); it != cache.end()) return it->second;
  }
  // Construct outside the lock: plan construction is O(n) and may itself
  // be slow for large sizes; a racing second construction is harmless
  // (the loser's plan is dropped).
  auto plan = std::make_shared<const FftPlan>(n);
  std::lock_guard lock{mutex};
  const auto [it, inserted] = cache.emplace(n, std::move(plan));
  return it->second;
}

}  // namespace arachnet::dsp
