#include "arachnet/dsp/kernels/channelizer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "arachnet/dsp/kernels/simd/simd_kernels.hpp"

namespace arachnet::dsp {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

std::size_t PolyphaseChannelizer::bin_for(double hz, double sample_rate_hz,
                                          std::size_t fft_size) noexcept {
  return static_cast<std::size_t>(std::lround(
      hz * static_cast<double>(fft_size) / sample_rate_hz));
}

PolyphaseChannelizer::Plan PolyphaseChannelizer::plan(
    double sample_rate_hz, double chip_rate,
    const std::vector<double>& subcarriers_hz) {
  Plan p;
  if (subcarriers_hz.empty()) {
    p.reason = "no subcarriers";
    return p;
  }
  std::vector<double> sorted = subcarriers_hz;
  std::sort(sorted.begin(), sorted.end());
  double spacing = 0.0;
  if (sorted.size() >= 2) {
    spacing = sorted[1] - sorted[0];
    for (std::size_t i = 1; i + 1 < sorted.size(); ++i) {
      if (std::abs((sorted[i + 1] - sorted[i]) - spacing) >
          1e-6 * spacing) {
        p.reason = "subcarriers are not on a uniform grid";
        return p;
      }
    }
  }
  // Lane rate: keep >= 16 samples per chip after decimation (the decision
  // chain needs margin over the debouncer and FM0 run quantization), so
  // D = largest power of two with fs/D >= 16*chip_rate — and decimating by
  // less than 2 gains nothing over the mixer bank.
  std::size_t decim = 1;
  while (static_cast<double>(2 * decim) * 16.0 * chip_rate <=
         sample_rate_hz) {
    decim *= 2;
  }
  if (decim < 2) {
    p.reason = "IQ rate below 32 samples per chip leaves no decimation room";
    return p;
  }
  // Bin width <= chip_rate, so the worst-case residual fs/(2C) the
  // prototype passband must absorb stays <= chip_rate/2.
  std::size_t fft_size = 1;
  while (static_cast<double>(fft_size) < sample_rate_hz / chip_rate) {
    fft_size *= 2;
  }
  std::vector<std::size_t> bins;
  for (double hz : sorted) {
    const std::size_t b = bin_for(hz, sample_rate_hz, fft_size);
    if (b < 1 || b >= fft_size / 2) {
      p.reason = "subcarrier maps to the DC or Nyquist bin";
      return p;
    }
    if (std::find(bins.begin(), bins.end(), b) != bins.end()) {
      p.reason = "two subcarriers collide in one FFT bin";
      return p;
    }
    bins.push_back(b);
  }
  // Same transition-width scaling rule as the per-channel LPF, but with
  // roughly half the transition band (the passband is widened by the bin
  // residual, so the stopband edge must stay inside the channel spacing).
  p.taps = std::clamp<std::size_t>(
      static_cast<std::size_t>(3.3 * sample_rate_hz / (1.1 * chip_rate)) | 1,
      255, 1023);
  p.cutoff_hz = 1.4 * chip_rate +
                sample_rate_hz / (2.0 * static_cast<double>(fft_size));
  p.fft_size = fft_size;
  p.decimation = decim;
  p.grid_origin_hz = sorted.front();
  p.grid_spacing_hz = spacing;
  p.viable = true;
  return p;
}

PolyphaseChannelizer::PolyphaseChannelizer(Params params)
    : params_(std::move(params)) {
  if (!is_pow2(params_.fft_size)) {
    throw std::invalid_argument(
        "PolyphaseChannelizer: fft_size must be a power of two");
  }
  if (params_.decimation == 0 || params_.decimation > params_.fft_size) {
    throw std::invalid_argument(
        "PolyphaseChannelizer: decimation must be in [1, fft_size]");
  }
  if (params_.prototype.empty()) {
    throw std::invalid_argument("PolyphaseChannelizer: empty prototype");
  }
  if (params_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument(
        "PolyphaseChannelizer: sample rate must be positive");
  }
  fft_ = FftPlan::get(params_.fft_size);
  // FftPlan::inverse scales by 1/C; fold the compensating C into the
  // prototype so the branch sums need no post-scaling.
  scaled_proto_ = params_.prototype;
  for (double& h : scaled_proto_) {
    h *= static_cast<double>(params_.fft_size);
  }
  work_.assign(scaled_proto_.size() - 1, cplx{});
  spec_.resize(params_.fft_size);
  use_f32_ = params_.kernels == KernelPolicy::kSimd &&
             params_.fold == Params::Fold::kAuto;
  if (use_f32_) {
    proto_f_.resize(2 * scaled_proto_.size());
    for (std::size_t m = 0; m < scaled_proto_.size(); ++m) {
      proto_f_[2 * m] = static_cast<float>(scaled_proto_[m]);
      proto_f_[2 * m + 1] = proto_f_[2 * m];
    }
    work_f_.assign(2 * (scaled_proto_.size() - 1), 0.0f);
    spec_f_.resize(2 * params_.fft_size);
  }
  const std::vector<double> centers = std::move(params_.center_hz);
  params_.center_hz.clear();
  for (double hz : centers) add_lane(hz);
}

bool PolyphaseChannelizer::lane_fits(double center_hz) const noexcept {
  const std::size_t b =
      bin_for(center_hz, params_.sample_rate_hz, params_.fft_size);
  if (b < 1 || b >= params_.fft_size / 2) return false;
  return std::find(bins_.begin(), bins_.end(), b) == bins_.end();
}

void PolyphaseChannelizer::seed_lane_nco(double center_hz) {
  // The lane rotation e^{-j*w*t} is only ever evaluated at frame instants
  // t_F = (F+1)*D - 1, so it reduces to one phasor stepping -w*D per
  // frame. Seed it for the *next* frame this instance will produce —
  // identical to a from-construction seed at -w*(D-1) when no frames have
  // run yet, and phase-aligned for lanes added mid-stream.
  const double w = kTwoPi * center_hz / params_.sample_rate_hz;
  const double d = static_cast<double>(params_.decimation);
  const double t_next =
      (static_cast<double>(frames_produced_) + 1.0) * d - 1.0;
  const double phase0 = -std::fmod(w * t_next, kTwoPi);
  const double step = -std::fmod(w * d, kTwoPi);
  lane_nco_.emplace_back(phase0, step);
  // Float32 twin, seeded from the same double phase (kept in sync even
  // when the float path is inactive so Params carry no mode coupling).
  LaneF32 lf;
  lf.phase = phase0;
  lf.step = step;
  lf.re = static_cast<float>(std::cos(phase0));
  lf.im = static_cast<float>(std::sin(phase0));
  lf.rre = static_cast<float>(std::cos(step));
  lf.rim = static_cast<float>(std::sin(step));
  lane_f32_.push_back(lf);
}

std::size_t PolyphaseChannelizer::add_lane(double center_hz) {
  if (!lane_fits(center_hz)) {
    throw std::invalid_argument(
        "PolyphaseChannelizer: lane bin unusable or already taken");
  }
  bins_.push_back(
      bin_for(center_hz, params_.sample_rate_hz, params_.fft_size));
  seed_lane_nco(center_hz);
  lanes_.emplace_back();
  params_.center_hz.push_back(center_hz);
  return lane_nco_.size() - 1;
}

std::size_t PolyphaseChannelizer::process(const cplx* in, std::size_t n) {
  if (use_f32_) return process_f32(in, n);
  const std::size_t taps = scaled_proto_.size();
  const std::size_t fft_size = params_.fft_size;
  const std::size_t decim = params_.decimation;
  work_.resize(taps - 1 + n);
  std::copy(in, in + n,
            work_.begin() + static_cast<std::ptrdiff_t>(taps - 1));
  const std::size_t count = (phase_ + n) / decim;
  for (auto& lane : lanes_) lane.resize(count);
  const cplx* w = work_.data();
  const double* h = scaled_proto_.data();
  cplx* v = spec_.data();
  std::size_t f = 0;
  // Frame grid: the first frame fires at the input index where decim
  // samples have accumulated since the last frame (FirBlockDecimator's
  // alignment), i.e. the frame's newest sample is work_[taps-1 + i].
  for (std::size_t i = decim - 1 - phase_; i < n; i += decim, ++f) {
    // Oldest-first window of `taps` samples ending at the frame instant:
    // win[taps-1-m] is the sample m steps back.
    const cplx* win = w + i;
    // Branch sums: v[p] = sum_q h[p+qC] * x[t-p-qC]. Every prototype tap
    // is touched exactly once, so this costs L complex-by-real multiplies
    // per frame no matter how large C is.
    if (params_.kernels == KernelPolicy::kSimd) {
      simd::kernels().chzr_fold_f64(win, h, taps, fft_size, v);
    } else {
      for (std::size_t p = 0; p < fft_size; ++p) {
        double re = 0.0, im = 0.0;
        for (std::size_t m = p; m < taps; m += fft_size) {
          const cplx x = win[taps - 1 - m];
          re += h[m] * x.real();
          im += h[m] * x.imag();
        }
        v[p] = cplx{re, im};
      }
    }
    // inverse() gives (1/C) * sum_p v[p] e^{+j*2*pi*p*b/C}; the 1/C is
    // pre-folded into scaled_proto_, leaving Y_b exactly.
    fft_->inverse(v);
    for (std::size_t k = 0; k < lane_nco_.size(); ++k) {
      lanes_[k][f] = v[bins_[k]] * lane_nco_[k].next();
    }
  }
  phase_ = (phase_ + n) % decim;
  std::copy(work_.end() - static_cast<std::ptrdiff_t>(taps - 1),
            work_.end(), work_.begin());
  work_.resize(taps - 1);
  last_frames_ = count;
  frames_produced_ += count;
  return count;
}

std::size_t PolyphaseChannelizer::process_f32(const cplx* in, std::size_t n) {
  const std::size_t taps = scaled_proto_.size();
  const std::size_t fft_size = params_.fft_size;
  const std::size_t decim = params_.decimation;
  // Interleaved float32 mirror of the window: history (taps-1 samples)
  // already sits at the front; narrow the new block in behind it.
  work_f_.resize(2 * (taps - 1 + n));
  float* wf = work_f_.data();
  for (std::size_t i = 0; i < n; ++i) {
    wf[2 * (taps - 1 + i)] = static_cast<float>(in[i].real());
    wf[2 * (taps - 1 + i) + 1] = static_cast<float>(in[i].imag());
  }
  const std::size_t count = (phase_ + n) / decim;
  for (auto& lane : lanes_) lane.resize(count);
  const float* hd = proto_f_.data();
  float* v = spec_f_.data();
  auto* vc = reinterpret_cast<std::complex<float>*>(spec_f_.data());
  const auto& kt = simd::kernels();
  std::size_t f = 0;
  // Same frame grid as the float64 path (identical phase arithmetic), so
  // frame timestamps are bit-identical across fold precisions.
  for (std::size_t i = decim - 1 - phase_; i < n; i += decim, ++f) {
    kt.chzr_fold_cf32(wf + 2 * i, hd, taps, fft_size, v);
    fft_->inverse_f(vc);
    for (std::size_t k = 0; k < lane_f32_.size(); ++k) {
      LaneF32& c = lane_f32_[k];
      const float br = v[2 * bins_[k]];
      const float bi = v[2 * bins_[k] + 1];
      lanes_[k][f] = cplx{static_cast<double>(br * c.re - bi * c.im),
                          static_cast<double>(br * c.im + bi * c.re)};
      const float nre = c.re * c.rre - c.im * c.rim;
      const float nim = c.re * c.rim + c.im * c.rre;
      c.re = nre;
      c.im = nim;
      c.phase += c.step;
    }
    if (--f32_reseed_left_ == 0) {
      // Chunk boundary (SimdNco idiom): fold the accumulated float32
      // phase/magnitude drift back to the double master.
      f32_reseed_left_ = kF32ReseedFrames;
      for (LaneF32& c : lane_f32_) {
        c.phase = std::fmod(c.phase, kTwoPi);
        c.re = static_cast<float>(std::cos(c.phase));
        c.im = static_cast<float>(std::sin(c.phase));
      }
    }
  }
  phase_ = (phase_ + n) % decim;
  std::copy(work_f_.end() - static_cast<std::ptrdiff_t>(2 * (taps - 1)),
            work_f_.end(), work_f_.begin());
  work_f_.resize(2 * (taps - 1));
  last_frames_ = count;
  frames_produced_ += count;
  return count;
}

}  // namespace arachnet::dsp
