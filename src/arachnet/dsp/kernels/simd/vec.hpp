#pragma once

#include <cstddef>
#include <cstring>

namespace arachnet::dsp::simd {

/// Portable GCC/Clang vector-extension lane types. The same source
/// compiles to SSE2 on baseline x86-64, AVX2+FMA when instantiated in a
/// target("avx2,fma") function, and NEON on aarch64 — the compiler picks
/// the widest lowering the active ISA allows (an f32x8 becomes two NEON
/// quadwords; that still keeps 8 independent accumulator lanes).
using f32x4 = float __attribute__((vector_size(16)));
using f32x8 = float __attribute__((vector_size(32)));
using f64x2 = double __attribute__((vector_size(16)));
using f64x4 = double __attribute__((vector_size(32)));

/// Integer mask types for __builtin_shuffle (element size must match the
/// shuffled vector's element size).
using i32x8 = int __attribute__((vector_size(32)));
using i64x4 = long long __attribute__((vector_size(32)));

/// Unaligned load/store. Dereferencing a vector pointer assumes natural
/// alignment, which the interleaved complex buffers don't guarantee;
/// memcpy compiles to the unaligned vector move.
template <class V, class T>
inline V loadu(const T* p) noexcept {
  V v;
  std::memcpy(&v, p, sizeof(V));
  return v;
}

template <class V, class T>
inline void storeu(T* p, V v) noexcept {
  std::memcpy(p, &v, sizeof(V));
}

template <class V>
inline V broadcast8(float x) noexcept {
  return V{x, x, x, x, x, x, x, x};
}

}  // namespace arachnet::dsp::simd
