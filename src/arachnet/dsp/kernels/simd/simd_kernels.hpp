#pragma once

#include <complex>
#include <cstddef>

namespace arachnet::dsp::simd {

/// The ISA-dispatched float32 kernel set behind KernelPolicy::kSimd.
///
/// One table per instruction-set tier; all tiers are compiled into the
/// binary from the same source (simd_kernels_impl.inc) — the portable
/// tier at the build baseline, the AVX2 tier via function target
/// attributes — and kernels() returns the one matching the tier
/// cpu_dispatch resolved at startup. Calling through the table is safe
/// on any CPU: a tier is only selectable when the probe says the ISA
/// exists.
///
/// Data conventions shared by every entry:
///   - complex float32 buffers are interleaved re,im pairs (2*n floats
///     for n complex samples);
///   - phasor lanes are 8 per-lane seeds (lre/lim) plus the 8-step
///     rotator (rre,rim), both derived from double phase by the caller;
///   - FIR coefficients arrive reversed and duplicated ("hd"):
///     hd[2j] == hd[2j+1] == h[taps-1-j], so the complex dot product is
///     a plain elementwise multiply-accumulate over the interleaved
///     window with re in even lanes and im in odd lanes. Lane partials
///     are accumulated in float32 and horizontally summed in double.
struct KernelTable {
  /// "generic", "neon", "avx2" or "avx512" (matches cpu_dispatch).
  const char* isa;

  /// out[k] = in[k] * lane phasor, real input. Lanes advance by
  /// (rre,rim) every 8 samples; the tail (n % 8) uses the current lane
  /// values without advancing. Callers reseed lanes per chunk from
  /// double phase, so in-block float32 drift never accumulates.
  void (*mix_real_cf32)(const double* in, std::size_t n, const float* lre,
                        const float* lim, float rre, float rim, float* out);

  /// Same recurrence over complex<double> input (the FDMA channel mixer).
  void (*mix_cplx_cf32)(const std::complex<double>* in, std::size_t n,
                        const float* lre, const float* lim, float rre,
                        float rim, float* out);

  /// nout complex outputs from a contiguous interleaved window: output i
  /// is the hd-dot over win[2i .. 2i+2*taps).
  void (*fir_block_cf32)(const float* win, const float* hd, std::size_t taps,
                         std::size_t nout, float* out);

  /// Decimating variant writing complex<double>: `count` outputs, the
  /// j-th at window sample offset first + j*decim.
  void (*fir_decim_cf32)(const float* win, const float* hd, std::size_t taps,
                         std::size_t first, std::size_t decim,
                         std::size_t count, std::complex<double>* out);

  /// In-place float32 radix-2 transform over interleaved complex data —
  /// the FFT stage of the kSimd channelizer fast path (FftPlan::
  /// forward_f/inverse_f route here so the butterflies compile per ISA
  /// tier). `bitrev` is the plan's permutation table; `stage_tw` the
  /// stage-contiguous float twiddles (stage with `half` butterflies at
  /// float offset 2*(half-1)); `sgn` is +1 forward / -1 inverse (applied
  /// to twiddle imaginary lanes); `scale` multiplies every output (1/n
  /// for the inverse, 1 otherwise).
  void (*fft_radix2_cf32)(float* d, std::size_t n, const std::size_t* bitrev,
                          const float* stage_tw, float sgn, float scale);

  /// Single-precision polyphase branch fold — the kSimd channelizer fast
  /// path. `win` is the interleaved float32 window (`taps` complex
  /// samples, ascending in time); `hd` is the prototype duplicated
  /// elementwise (hd[2m] == hd[2m+1] == h[m], indexed by tap m directly —
  /// unlike the FIR hd convention the taps are *not* pre-reversed; the
  /// window reversal lives in the kernel's descending reads). Writes
  /// fft_size interleaved complex float32 branch outputs:
  ///   v[p] = sum_q h[p + q*fft_size] * win[taps-1-p-q*fft_size].
  /// Lane partial sums are float32; accumulator pairs combine in double
  /// before narrowing (same discipline as fir_dot_cf32). Precision
  /// analysis (DESIGN.md §7): the fold feeds an FFT whose bins drive lane
  /// decisions at ~20 samples/chip, and float32 fold noise (~1e-6
  /// relative) sits ~50 dB under the decision margin, so packets stay
  /// bit-identical to the float64 fold.
  void (*chzr_fold_cf32)(const float* win, const float* hd, std::size_t taps,
                         std::size_t fft_size, float* v);

  /// Double-precision polyphase branch fold (same recurrence as
  /// chzr_fold_cf32 over complex<double> with the plain prototype).
  /// Retained as the reference/fallback lane: benches pin it via
  /// Channelizer::Params::fold to measure the float32 speedup, and
  /// non-uniform configs that want double IQ keep it.
  void (*chzr_fold_f64)(const std::complex<double>* win, const double* h,
                        std::size_t taps, std::size_t fft_size,
                        std::complex<double>* v);
};

/// The table for the currently active SimdIsa (re-reads the dispatch
/// state, so force_simd_isa() takes effect on the next call).
const KernelTable& kernels() noexcept;

}  // namespace arachnet::dsp::simd
