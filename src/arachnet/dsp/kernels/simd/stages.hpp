#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "arachnet/dsp/kernels/simd/simd_kernels.hpp"

namespace arachnet::dsp::simd {

/// float32 oscillator for the kSimd tier, mirroring PhasorNco's API over
/// interleaved float32 output.
///
/// Precision model: the master phase is kept in double and advanced
/// exactly (one fused multiply + remainder reduction per chunk), and the
/// eight float32 phasor lanes are reseeded from it every kChunk samples.
/// Float32 recurrence error therefore never accumulates past one chunk:
/// 512 lane rotations at ~1e-7 relative rounding bounds in-chunk phase
/// drift near 1e-4 rad, and a 10^8-sample run is as accurate as the
/// first chunk — the long-run renormalization the scalar tiers get from
/// PhasorNco::renorm() falls out of the reseed for free.
class SimdNco {
 public:
  SimdNco() = default;
  SimdNco(double phase_rad, double step_rad) { set(phase_rad, step_rad); }

  void set(double phase_rad, double step_rad) noexcept {
    phase_ = wrap(phase_rad);
    step_ = step_rad;
  }

  /// Changes the per-sample step keeping the current phase (mid-stream
  /// retunes stay phase-continuous, as with PhasorNco::set_step).
  void set_step(double step_rad) noexcept { step_ = step_rad; }

  double phase() const noexcept { return phase_; }
  double step() const noexcept { return step_; }

  /// out[i] = in[i] * e^{j*phase_i}, real input, interleaved float32 out.
  void mix_real(const double* in, float* out, std::size_t n) {
    const KernelTable& k = kernels();
    std::size_t off = 0;
    while (off < n) {
      const std::size_t len = std::min(kChunk, n - off);
      float lre[8];
      float lim[8];
      float rre;
      float rim;
      seed(lre, lim, rre, rim);
      k.mix_real_cf32(in + off, len, lre, lim, rre, rim, out + 2 * off);
      advance(len);
      off += len;
    }
  }

  /// out[i] = in[i] * e^{j*phase_i}, complex<double> input.
  void mix(const std::complex<double>* in, float* out, std::size_t n) {
    const KernelTable& k = kernels();
    std::size_t off = 0;
    while (off < n) {
      const std::size_t len = std::min(kChunk, n - off);
      float lre[8];
      float lim[8];
      float rre;
      float rim;
      seed(lre, lim, rre, rim);
      k.mix_cplx_cf32(in + off, len, lre, lim, rre, rim, out + 2 * off);
      advance(len);
      off += len;
    }
  }

 private:
  /// Lane reseed cadence; 16 transcendentals per chunk is noise at this
  /// length, and 512 8-wide rotations keep float32 drift ~1e-4 rad.
  static constexpr std::size_t kChunk = 4096;

  static double wrap(double p) noexcept {
    return std::remainder(p, 2.0 * std::numbers::pi);
  }

  /// Eight lane phasors at phase + l*step and the 8-step rotator, all
  /// evaluated in double then narrowed.
  void seed(float* lre, float* lim, float& rre, float& rim) const noexcept {
    for (std::size_t l = 0; l < 8; ++l) {
      const double p = phase_ + static_cast<double>(l) * step_;
      lre[l] = static_cast<float>(std::cos(p));
      lim[l] = static_cast<float>(std::sin(p));
    }
    rre = static_cast<float>(std::cos(8.0 * step_));
    rim = static_cast<float>(std::sin(8.0 * step_));
  }

  void advance(std::size_t n) noexcept {
    phase_ = wrap(phase_ + static_cast<double>(n) * step_);
  }

  double phase_ = 0.0;
  double step_ = 0.0;
};

/// Builds the reversed+duplicated float32 coefficient layout the kernel
/// table's FIR entries expect (see simd_kernels.hpp).
inline std::vector<float> duplicate_reversed(
    const std::vector<double>& coeffs) {
  const std::size_t taps = coeffs.size();
  std::vector<float> hd(2 * taps);
  for (std::size_t j = 0; j < taps; ++j) {
    const float c = static_cast<float>(coeffs[taps - 1 - j]);
    hd[2 * j] = c;
    hd[2 * j + 1] = c;
  }
  return hd;
}

/// Streaming float32 block FIR over interleaved complex buffers — the
/// kSimd counterpart of FirBlockFilter<std::complex<double>>, same
/// taps-1 history-carry contract. In-place operation (out == in) is
/// allowed: the input is copied into the work buffer before any output
/// is written.
class FirSimdFilter {
 public:
  explicit FirSimdFilter(const std::vector<double>& coeffs)
      : hd_(duplicate_reversed(coeffs)), taps_(coeffs.size()) {
    if (taps_ == 0) {
      throw std::invalid_argument("FirSimdFilter: empty coefficients");
    }
    work_.assign(2 * (taps_ - 1), 0.0f);
  }

  void process(const float* in, float* out, std::size_t n) {
    work_.resize(2 * (taps_ - 1 + n));
    std::copy(in, in + 2 * n,
              work_.begin() + static_cast<std::ptrdiff_t>(2 * (taps_ - 1)));
    kernels().fir_block_cf32(work_.data(), hd_.data(), taps_, n, out);
    std::copy(work_.end() - static_cast<std::ptrdiff_t>(2 * (taps_ - 1)),
              work_.end(), work_.begin());
    work_.resize(2 * (taps_ - 1));
  }

  void reset() { work_.assign(2 * (taps_ - 1), 0.0f); }

  std::size_t taps() const noexcept { return taps_; }

 private:
  std::vector<float> hd_;
  std::size_t taps_;
  std::vector<float> work_;  ///< interleaved history between calls
};

/// float32 decimating FIR writing complex<double> outputs (the decimated
/// stream feeds double-precision decision chains downstream). Output
/// alignment matches FirBlockDecimator exactly: with phase() samples
/// consumed since the last output, the next fires after
/// decimation - phase() further samples.
class FirSimdDecimator {
 public:
  FirSimdDecimator(const std::vector<double>& coeffs, std::size_t decimation)
      : hd_(duplicate_reversed(coeffs)),
        taps_(coeffs.size()),
        decimation_(decimation) {
    if (taps_ == 0) {
      throw std::invalid_argument("FirSimdDecimator: empty coefficients");
    }
    if (decimation_ == 0) {
      throw std::invalid_argument(
          "FirSimdDecimator: decimation must be >= 1");
    }
    work_.assign(2 * (taps_ - 1), 0.0f);
  }

  /// Consumes n interleaved complex float32 samples, writes the
  /// decimation survivors (caller provides n / decimation + 1 slots).
  /// Returns the number written.
  std::size_t process(const float* in, std::size_t n,
                      std::complex<double>* out) {
    work_.resize(2 * (taps_ - 1 + n));
    std::copy(in, in + 2 * n,
              work_.begin() + static_cast<std::ptrdiff_t>(2 * (taps_ - 1)));
    const std::size_t first = decimation_ - 1 - phase_;
    std::size_t count = 0;
    if (first < n) count = (n - first + decimation_ - 1) / decimation_;
    kernels().fir_decim_cf32(work_.data(), hd_.data(), taps_, first,
                             decimation_, count, out);
    phase_ = (phase_ + n) % decimation_;
    std::copy(work_.end() - static_cast<std::ptrdiff_t>(2 * (taps_ - 1)),
              work_.end(), work_.begin());
    work_.resize(2 * (taps_ - 1));
    return count;
  }

  void reset() {
    work_.assign(2 * (taps_ - 1), 0.0f);
    phase_ = 0;
  }

  std::size_t taps() const noexcept { return taps_; }
  std::size_t decimation() const noexcept { return decimation_; }

  /// Samples consumed since the last emitted output, in [0, decimation).
  std::size_t phase() const noexcept { return phase_; }

 private:
  std::vector<float> hd_;
  std::size_t taps_;
  std::size_t decimation_;
  std::vector<float> work_;  ///< interleaved history between calls
  std::size_t phase_ = 0;
};

}  // namespace arachnet::dsp::simd
