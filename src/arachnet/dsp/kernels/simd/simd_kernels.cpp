#include "arachnet/dsp/kernels/simd/simd_kernels.hpp"

#include <cstring>

#include "arachnet/dsp/kernels/cpu_dispatch.hpp"
#include "arachnet/dsp/kernels/simd/vec.hpp"

namespace arachnet::dsp::simd {
namespace {

// Portable tier: the impl compiled at the build's baseline ISA. On
// x86-64 that is SSE2; on aarch64 the very same vectors lower to NEON.
namespace generic_impl {
#define ARACHNET_SIMD_FN static
#include "arachnet/dsp/kernels/simd/simd_kernels_impl.inc"
#undef ARACHNET_SIMD_FN
constexpr KernelTable kTable{"generic",       &mix_real_cf32,
                             &mix_cplx_cf32,  &fir_block_cf32,
                             &fir_decim_cf32, &fft_radix2_cf32,
                             &chzr_fold_cf32, &chzr_fold_f64};
}  // namespace generic_impl

// AVX2 tier: identical source, instantiated with per-function target
// attributes so the whole binary still runs on baseline hardware — only
// the dispatch decision (cpu_dispatch probe) routes execution here, and
// only when CPUID reports avx2+fma.
#if (defined(__x86_64__) || defined(__i386__)) && !defined(ARACHNET_DISABLE_SIMD)
#define ARACHNET_HAVE_AVX2_TIER 1
namespace avx2_impl {
#define ARACHNET_SIMD_FN static __attribute__((target("avx2,fma")))
#include "arachnet/dsp/kernels/simd/simd_kernels_impl.inc"
#undef ARACHNET_SIMD_FN
constexpr KernelTable kTable{"avx2",          &mix_real_cf32,
                             &mix_cplx_cf32,  &fir_block_cf32,
                             &fir_decim_cf32, &fft_radix2_cf32,
                             &chzr_fold_cf32, &chzr_fold_f64};
}  // namespace avx2_impl

// AVX-512 tier: once more from the same source. The vectors stay 256-bit
// (f32x8/f64x4), but avx512vl lets the compiler emit the EVEX encoding
// over them — 32 architectural vector registers and embedded-broadcast
// forms — without the 512-bit license-frequency penalty of full-width
// zmm loops. Selected only when CPUID reports avx512f+avx512vl+fma.
#define ARACHNET_HAVE_AVX512_TIER 1
namespace avx512_impl {
#define ARACHNET_SIMD_FN \
  static __attribute__((target("avx512f,avx512vl,fma")))
#include "arachnet/dsp/kernels/simd/simd_kernels_impl.inc"
#undef ARACHNET_SIMD_FN
constexpr KernelTable kTable{"avx512",        &mix_real_cf32,
                             &mix_cplx_cf32,  &fir_block_cf32,
                             &fir_decim_cf32, &fft_radix2_cf32,
                             &chzr_fold_cf32, &chzr_fold_f64};
}  // namespace avx512_impl
#endif

}  // namespace

const KernelTable& kernels() noexcept {
  switch (active_simd_isa()) {
    case SimdIsa::kAvx512:
#if defined(ARACHNET_HAVE_AVX512_TIER)
      return avx512_impl::kTable;
#else
      break;
#endif
    case SimdIsa::kAvx2:
#if defined(ARACHNET_HAVE_AVX2_TIER)
      return avx2_impl::kTable;
#else
      break;
#endif
    case SimdIsa::kNeon:
    case SimdIsa::kGeneric:
      break;
  }
  return generic_impl::kTable;
}

}  // namespace arachnet::dsp::simd
