#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace arachnet::dsp {

#if defined(__GNUC__) || defined(__clang__)
#define ARACHNET_RESTRICT __restrict__
#else
#define ARACHNET_RESTRICT
#endif

/// Block FIR kernels for the reader hot path. All kernels take the filter
/// window as a contiguous oldest-first stretch `x[0..taps)` (x[taps-1] is
/// the newest sample), so the compiler sees plain unit-stride loads it can
/// autovectorize — no circular indexing on the hot path.
///
/// The `_symmetric` variants exploit linear phase (h[k] == h[taps-1-k],
/// which holds for every windowed-sinc design in this codebase) by folding
/// the window ends together, halving the multiply count. Folding changes
/// the floating-point summation order, so outputs agree with the plain
/// kernels to rounding tolerance, not bit-exactly — the decoders downstream
/// are insensitive to this by construction (see KernelPolicy).

/// Plain convolution: sum_k h[k] * x[taps-1-k] (newest-to-oldest, the same
/// accumulation order as the scalar FirFilter::value()).
inline double fir_dot(const double* ARACHNET_RESTRICT x,
                      const double* ARACHNET_RESTRICT h,
                      std::size_t taps) noexcept {
  double acc = 0.0;
  for (std::size_t k = 0; k < taps; ++k) acc += h[k] * x[taps - 1 - k];
  return acc;
}

inline std::complex<double> fir_dot(
    const std::complex<double>* ARACHNET_RESTRICT x,
    const double* ARACHNET_RESTRICT h, std::size_t taps) noexcept {
  // Interleaved (re, im) view: std::complex<double> is array-compatible
  // with double[2] by the standard.
  const double* ARACHNET_RESTRICT xs = reinterpret_cast<const double*>(x);
  double re = 0.0, im = 0.0;
  for (std::size_t k = 0; k < taps; ++k) {
    const double c = h[k];
    re += c * xs[2 * (taps - 1 - k)];
    im += c * xs[2 * (taps - 1 - k) + 1];
  }
  return {re, im};
}

/// Folded symmetric convolution: taps/2 multiplies. Requires
/// h[k] == h[taps-1-k] (to rounding). The accumulators are unrolled two
/// ways so consecutive products retire on independent dependency chains —
/// a folded dot is otherwise latency-bound on a single running sum.
inline double fir_dot_symmetric(const double* ARACHNET_RESTRICT x,
                                const double* ARACHNET_RESTRICT h,
                                std::size_t taps) noexcept {
  const std::size_t half = taps / 2;
  double a0 = 0.0, a1 = 0.0;
  std::size_t j = 0;
  for (; j + 2 <= half; j += 2) {
    a0 += h[j] * (x[j] + x[taps - 1 - j]);
    a1 += h[j + 1] * (x[j + 1] + x[taps - 2 - j]);
  }
  if (j < half) a0 += h[j] * (x[j] + x[taps - 1 - j]);
  double acc = a0 + a1;
  if (taps & 1) acc += h[half] * x[half];
  return acc;
}

inline std::complex<double> fir_dot_symmetric(
    const std::complex<double>* ARACHNET_RESTRICT x,
    const double* ARACHNET_RESTRICT h, std::size_t taps) noexcept {
  const double* ARACHNET_RESTRICT xs = reinterpret_cast<const double*>(x);
  const std::size_t half = taps / 2;
  double re0 = 0.0, re1 = 0.0, im0 = 0.0, im1 = 0.0;
  std::size_t j = 0;
  for (; j + 2 <= half; j += 2) {
    const double c0 = h[j];
    const double c1 = h[j + 1];
    re0 += c0 * (xs[2 * j] + xs[2 * (taps - 1 - j)]);
    im0 += c0 * (xs[2 * j + 1] + xs[2 * (taps - 1 - j) + 1]);
    re1 += c1 * (xs[2 * j + 2] + xs[2 * (taps - 2 - j)]);
    im1 += c1 * (xs[2 * j + 3] + xs[2 * (taps - 2 - j) + 1]);
  }
  if (j < half) {
    const double c = h[j];
    re0 += c * (xs[2 * j] + xs[2 * (taps - 1 - j)]);
    im0 += c * (xs[2 * j + 1] + xs[2 * (taps - 1 - j) + 1]);
  }
  double re = re0 + re1, im = im0 + im1;
  if (taps & 1) {
    re += h[half] * xs[2 * half];
    im += h[half] * xs[2 * half + 1];
  }
  return {re, im};
}

/// True when the coefficient set is symmetric to rounding tolerance —
/// windowed-sinc designs are mathematically symmetric but their two halves
/// are computed through different argument reductions, so exact equality
/// cannot be assumed.
inline bool is_symmetric(const std::vector<double>& h) noexcept {
  const std::size_t n = h.size();
  double scale = 0.0;
  for (double c : h) scale = std::max(scale, std::abs(c));
  for (std::size_t k = 0; k < n / 2; ++k) {
    if (std::abs(h[k] - h[n - 1 - k]) > 1e-12 * scale) return false;
  }
  return true;
}

/// Streaming block FIR filter: keeps taps-1 samples of history, copies
/// each input block behind it into one contiguous work buffer, and runs a
/// folded (or plain) contiguous dot per output. In-place operation
/// (out == in) is allowed — the input is consumed into the work buffer
/// before any output is written.
template <typename Sample>
class FirBlockFilter {
 public:
  explicit FirBlockFilter(std::vector<double> coeffs)
      : coeffs_(std::move(coeffs)),
        symmetric_(is_symmetric(coeffs_)),
        work_(coeffs_.empty() ? 0 : coeffs_.size() - 1, Sample{}) {
    if (coeffs_.empty()) {
      throw std::invalid_argument("FirBlockFilter: empty coefficients");
    }
  }

  void process(const Sample* in, Sample* out, std::size_t n) {
    const std::size_t taps = coeffs_.size();
    work_.resize(taps - 1 + n);
    std::copy(in, in + n, work_.begin() + static_cast<std::ptrdiff_t>(taps - 1));
    const Sample* w = work_.data();
    const double* h = coeffs_.data();
    if (symmetric_) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = fir_dot_symmetric(w + i, h, taps);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = fir_dot(w + i, h, taps);
    }
    // The last taps-1 samples become the next block's history.
    std::copy(work_.end() - static_cast<std::ptrdiff_t>(taps - 1), work_.end(),
              work_.begin());
    work_.resize(taps - 1);
  }

  void reset() {
    work_.assign(coeffs_.size() - 1, Sample{});
  }

  std::size_t taps() const noexcept { return coeffs_.size(); }

 private:
  std::vector<double> coeffs_;
  bool symmetric_;
  std::vector<Sample> work_;  ///< history (taps-1) between calls
};

/// Polyphase-style block decimating FIR: consumes a block and computes the
/// filter dot product only at the samples that survive decimation, in one
/// pass over a contiguous work buffer. Replaces the per-sample
/// feed()/value() pair of the scalar Ddc path: the delay line is never
/// written twice per sample, and between output points no work happens at
/// all.
///
/// Output alignment matches the scalar decimator exactly: with `phase()`
/// samples already consumed since the last output, the next output fires
/// once `decimation - phase()` further samples arrive.
template <typename Sample>
class FirBlockDecimator {
 public:
  FirBlockDecimator(std::vector<double> coeffs, std::size_t decimation)
      : coeffs_(std::move(coeffs)),
        decimation_(decimation),
        symmetric_(is_symmetric(coeffs_)),
        work_(coeffs_.empty() ? 0 : coeffs_.size() - 1, Sample{}) {
    if (coeffs_.empty()) {
      throw std::invalid_argument("FirBlockDecimator: empty coefficients");
    }
    if (decimation_ == 0) {
      throw std::invalid_argument("FirBlockDecimator: decimation must be >= 1");
    }
  }

  /// Filters + decimates `n` samples from `in`, writing the surviving
  /// outputs to `out` (caller provides space for at least
  /// n / decimation + 1 samples). Returns the number written.
  std::size_t process(const Sample* in, std::size_t n, Sample* out) {
    const std::size_t taps = coeffs_.size();
    work_.resize(taps - 1 + n);
    std::copy(in, in + n, work_.begin() + static_cast<std::ptrdiff_t>(taps - 1));
    const Sample* w = work_.data();
    const double* h = coeffs_.data();
    std::size_t count = 0;
    // First output position: the input index at which the running sample
    // counter reaches `decimation_`.
    if (symmetric_) {
      for (std::size_t i = decimation_ - 1 - phase_; i < n; i += decimation_) {
        out[count++] = fir_dot_symmetric(w + i, h, taps);
      }
    } else {
      for (std::size_t i = decimation_ - 1 - phase_; i < n; i += decimation_) {
        out[count++] = fir_dot(w + i, h, taps);
      }
    }
    phase_ = (phase_ + n) % decimation_;
    std::copy(work_.end() - static_cast<std::ptrdiff_t>(taps - 1), work_.end(),
              work_.begin());
    work_.resize(taps - 1);
    return count;
  }

  void reset() {
    work_.assign(coeffs_.size() - 1, Sample{});
    phase_ = 0;
  }

  std::size_t taps() const noexcept { return coeffs_.size(); }
  std::size_t decimation() const noexcept { return decimation_; }

  /// Samples consumed since the last emitted output, in [0, decimation).
  std::size_t phase() const noexcept { return phase_; }

 private:
  std::vector<double> coeffs_;
  std::size_t decimation_;
  bool symmetric_;
  std::vector<Sample> work_;  ///< history (taps-1) between calls
  std::size_t phase_ = 0;
};

#undef ARACHNET_RESTRICT

}  // namespace arachnet::dsp
