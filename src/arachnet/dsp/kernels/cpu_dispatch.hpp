#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace arachnet::dsp {

/// What the running CPU can do, probed once per process. On x86-64 this
/// comes from CPUID via __builtin_cpu_supports; on aarch64 the baseline
/// ABI guarantees NEON, so no HWCAP read is needed for the features we
/// dispatch on.
struct CpuFeatures {
  bool sse2 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512vl = false;
  bool neon = false;
};

/// Cached probe result (the probe itself runs once, on first call).
const CpuFeatures& detect_cpu_features() noexcept;

/// The instruction-set tier the kSimd kernel table was resolved to.
///
///   kGeneric — portable GCC vector-extension code compiled for the
///     build's baseline ISA (SSE2 on x86-64). Always available; this is
///     the fallback when the CPU lacks AVX2 or the build was configured
///     with -DARACHNET_DISABLE_SIMD.
///   kNeon — same portable code on aarch64, where the compiler lowers
///     the vector lanes straight to NEON (reported distinctly so bench
///     sidecars attribute numbers to the right silicon).
///   kAvx2 — x86-64 function-multiversioned table built with
///     target("avx2,fma"): 8-wide float32 FMA inner loops.
///   kAvx512 — x86-64 table built with target("avx512f,avx512vl,fma"):
///     same 8-wide float32 lane bodies, recompiled so the compiler can
///     use the EVEX encoding, 32 vector registers and avx512vl 256-bit
///     ops. Requires avx512f+avx512vl+fma at runtime; clamps to kAvx2
///     otherwise.
enum class SimdIsa {
  kGeneric,
  kNeon,
  kAvx2,
  kAvx512,
};

/// The tier the process resolved at first use: the best ISA the CPU
/// supports, unless the ARACHNET_SIMD_ISA environment variable ("generic",
/// "avx2" or "avx512") caps it lower. Requests the CPU cannot honor degrade
/// to the best supported tier rather than fault — kSimd never crashes on a
/// missing ISA.
SimdIsa active_simd_isa() noexcept;

/// Test hook: re-resolve the active tier, clamped to what the CPU
/// actually supports (forcing kAvx512 on a non-AVX-512 machine yields the
/// AVX2 or portable tier). Takes effect for subsequent kernel-table
/// lookups.
void force_simd_isa(SimdIsa isa) noexcept;

/// Parses a tier name ("generic"/"neon"/"avx2"/"avx512"); nullopt if
/// unrecognized.
std::optional<SimdIsa> parse_simd_isa(std::string_view name) noexcept;

/// The mapping active_simd_isa() applies to one ARACHNET_SIMD_ISA value:
/// parse and clamp to hardware, or WARN (component "kernels", naming the
/// bad value, the fallback and the accepted set) and auto-detect. Exposed
/// so the warning path is testable without re-latching the process-wide
/// resolution.
SimdIsa simd_isa_from_env_value(const char* value) noexcept;

/// "generic", "neon", "avx2" or "avx512".
const char* to_string(SimdIsa isa) noexcept;

/// Feature-flag summary for telemetry rows, e.g. "sse2+avx+avx2+fma".
std::string cpu_feature_string();

}  // namespace arachnet::dsp
