#include "arachnet/dsp/fft.hpp"

#include <stdexcept>

#include "arachnet/dsp/kernels/fft_plan.hpp"

namespace arachnet::dsp {

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<cplx>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Plans cache the twiddle factors and bit-reversal table per size; the
  // old implementation rebuilt both on every call.
  const auto plan = FftPlan::get(n);
  if (inverse) {
    plan->inverse(data.data());
  } else {
    plan->forward(data.data());
  }
}

std::vector<cplx> fft_real(const std::vector<double>& signal) {
  const std::size_t n = next_pow2(signal.size());
  std::vector<cplx> out;
  // The real-input path runs a half-size complex transform and unpacks via
  // conjugate symmetry — about half the cost of the full transform the old
  // implementation ran on the zero-imaginary input.
  FftPlan::get(n)->forward_real(signal.data(), signal.size(), out);
  return out;
}

}  // namespace arachnet::dsp
