#include "arachnet/dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace arachnet::dsp {

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<cplx>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const cplx wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      cplx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<cplx> fft_real(const std::vector<double>& signal) {
  std::vector<cplx> data(next_pow2(signal.size()));
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = cplx{signal[i], 0};
  fft(data);
  return data;
}

}  // namespace arachnet::dsp
