#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "arachnet/dsp/ring_buffer.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::dsp {

/// Non-owning type-erased callable reference (function_ref): two words, no
/// allocation, no virtual dispatch — built inline from any callable at a
/// call site. The referent must outlive every invocation; WorkerPool::run
/// guarantees that by construction (see the liveness note there), which is
/// why the per-dispatch std::function copy could be dropped.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f) noexcept  // NOLINT: implicit by design, like function_ref
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

/// Persistent fork/join worker pool for data-parallel stages.
///
/// `run(n, fn)` executes fn(0) .. fn(n-1) across the pool's threads plus
/// the calling thread, returning once all indices completed. Threads are
/// spawned once and parked between calls, so per-block dispatch overhead
/// stays in the microseconds — suitable for the reader's per-sample-block
/// channel fan-out. Indices are claimed from a shared epoch-tagged ticket,
/// so uneven per-index cost self-balances and a worker that oversleeps one
/// dispatch can never claim (or execute) indices of a later one.
///
/// If fn throws, the remaining indices still execute; the first exception
/// is captured and rethrown by run() on the calling thread, leaving the
/// pool reusable.
///
/// `run` is not reentrant and must always be called from one thread at a
/// time (the FDMA bank calls it from its processing thread only).
class WorkerPool {
 public:
  /// `threads` is the number of *extra* worker threads; 0 makes run()
  /// execute inline on the caller.
  explicit WorkerPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard lock{mutex_};
      stop_ = true;
    }
    work_ready_.notify_all();
    for (auto& t : workers_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Non-allocating dispatch: `fn` binds any callable by reference (two
  /// words, no std::function construction per block). Liveness: task_ is
  /// only ever invoked after a successful claim of a current-epoch index,
  /// and a successful claim keeps run() blocked on done_ until that index
  /// is credited — so the caller's callable is alive for every invocation,
  /// including by a worker that overslept earlier dispatches (its stale
  /// claims fail on the epoch tag without touching task_).
  void run(std::size_t n, FunctionRef<void(std::size_t)> fn) {
    if (workers_.empty() || n <= 1 || n > kIndexMask) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::uint64_t epoch;
    {
      std::lock_guard lock{mutex_};
      task_ = fn;
      task_count_ = n;
      done_ = 0;
      epoch = ++epoch_;
      // Plain store: made visible to workers by the release store of the
      // ticket below (their successful acquire claim synchronizes with it).
      if (dispatch_hist_ != nullptr) run_publish_ns_ = steady_now_ns();
      // Published after task_ is in place; a successful claim on this
      // ticket value acquire-synchronizes with this release store.
      ticket_.store(pack(epoch, 0), std::memory_order_release);
    }
    work_ready_.notify_all();
    const std::size_t finished = claim_and_execute(epoch, n);
    std::unique_lock lock{mutex_};
    done_ += finished;
    work_done_.wait(lock, [&] { return done_ >= task_count_; });
    task_ = FunctionRef<void(std::size_t)>{};
    if (error_) {
      auto err = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Optional dispatch-latency instrumentation: each claimed index records
  /// the microseconds between run() publishing the work ticket and the
  /// claim, i.e. wake-up plus queueing delay. Pass nullptr to disable
  /// (the hot path then pays one pointer load per dispatch). Call only
  /// while the pool is idle.
  void set_dispatch_histogram(telemetry::LatencyHistogram* hist) noexcept {
    dispatch_hist_ = hist;
  }

 private:
  static std::uint64_t steady_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  // The ticket packs (epoch, next index) into one atomic word so claiming
  // is epoch-safe: a compare-exchange only succeeds while the ticket still
  // carries the claimer's epoch. Without the tag, a worker preempted
  // between waking for epoch N and its first claim could steal indices of
  // epoch N+1 while executing epoch N's task (the dispatch it overslept
  // having completed meanwhile). The epoch tag is truncated to 32 bits; a
  // stale claim would additionally need the worker to sleep across exactly
  // 2^32 dispatches, which at microseconds each cannot line up in practice.
  static constexpr std::uint64_t kIndexBits = 32;
  static constexpr std::uint64_t kIndexMask = (std::uint64_t{1} << kIndexBits) - 1;

  static constexpr std::uint64_t pack(std::uint64_t epoch, std::uint64_t index) {
    return (epoch << kIndexBits) | index;
  }

  /// Claims and executes indices for `epoch` until the ticket runs out of
  /// indices or moves to a newer epoch. Returns how many were executed.
  std::size_t claim_and_execute(std::uint64_t epoch, std::size_t n) {
    const std::uint64_t tag = pack(epoch, 0) & ~kIndexMask;
    std::size_t finished = 0;
    std::uint64_t cur = ticket_.load(std::memory_order_acquire);
    for (;;) {
      if ((cur & ~kIndexMask) != tag) break;  // superseded by a newer dispatch
      const std::uint64_t index = cur & kIndexMask;
      if (index >= n) break;  // every index of this epoch already claimed
      if (!ticket_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        continue;  // cur reloaded by the failed exchange
      }
      if (auto* hist = dispatch_hist_; hist != nullptr) {
        hist->record(static_cast<double>(steady_now_ns() - run_publish_ns_) *
                     1e-3);
      }
      try {
        task_(static_cast<std::size_t>(index));
      } catch (...) {
        std::lock_guard lock{mutex_};
        if (!error_) error_ = std::current_exception();
      }
      ++finished;
      cur = ticket_.load(std::memory_order_acquire);
    }
    return finished;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock lock{mutex_};
    for (;;) {
      work_ready_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      const std::size_t count = task_count_;
      lock.unlock();
      const std::size_t finished = claim_and_execute(seen, count);
      lock.lock();
      // finished > 0 implies run(seen) is still waiting on done_, so this
      // credit can never leak into a later epoch's completion count.
      done_ += finished;
      if (done_ >= task_count_) work_done_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<std::thread> workers_;
  /// Written under mutex_ in run(); read by claimers only after an acquire
  /// claim of a current-epoch index (see the liveness note on run()).
  FunctionRef<void(std::size_t)> task_;
  std::size_t task_count_ = 0;
  std::size_t done_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;  // first fn exception; guarded by mutex_
  std::atomic<std::uint64_t> ticket_{0};
  telemetry::LatencyHistogram* dispatch_hist_ = nullptr;
  std::uint64_t run_publish_ns_ = 0;  // see run(); published via ticket_
};

/// A two-stage threaded pipeline segment: consumes items of type In from an
/// input ring buffer, transforms them, and pushes items of type Out to an
/// output ring buffer. Stages propagate shutdown: when the input closes and
/// drains, the stage closes its output and exits.
///
/// Compose several of these to mirror the reader's real-time chain, where
/// "each two adjacent blocks share a buffer with a back-pressure mechanism"
/// (paper Sec. 6.1).
template <typename In, typename Out>
class PipelineStage {
 public:
  /// The transform may emit zero, one, or many outputs per input via the
  /// `emit` callback (e.g. a decimator emits rarely; a framer emits per
  /// packet).
  using Transform = std::function<void(In item, const std::function<void(Out)>& emit)>;

  PipelineStage(std::shared_ptr<RingBuffer<In>> input,
                std::shared_ptr<RingBuffer<Out>> output, Transform transform)
      : input_(std::move(input)),
        output_(std::move(output)),
        transform_(std::move(transform)) {}

  /// Starts the worker thread.
  void start() {
    thread_ = std::thread([this] {
      const auto emit = [this](Out out) { output_->push(std::move(out)); };
      while (auto item = input_->pop()) {
        transform_(std::move(*item), emit);
      }
      output_->close();
    });
  }

  /// Joins the worker (input must have been closed).
  void join() {
    if (thread_.joinable()) thread_.join();
  }

  ~PipelineStage() { join(); }

  PipelineStage(const PipelineStage&) = delete;
  PipelineStage& operator=(const PipelineStage&) = delete;

 private:
  std::shared_ptr<RingBuffer<In>> input_;
  std::shared_ptr<RingBuffer<Out>> output_;
  Transform transform_;
  std::thread thread_;
};

}  // namespace arachnet::dsp
