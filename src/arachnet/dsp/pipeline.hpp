#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "arachnet/dsp/ring_buffer.hpp"

namespace arachnet::dsp {

/// Persistent fork/join worker pool for data-parallel stages.
///
/// `run(n, fn)` executes fn(0) .. fn(n-1) across the pool's threads plus
/// the calling thread, returning once all indices completed. Threads are
/// spawned once and parked between calls, so per-block dispatch overhead
/// stays in the microseconds — suitable for the reader's per-sample-block
/// channel fan-out. Indices are claimed from a shared atomic counter, so
/// uneven per-index cost self-balances.
///
/// `run` is not reentrant and must always be called from one thread at a
/// time (the FDMA bank calls it from its processing thread only).
class WorkerPool {
 public:
  /// `threads` is the number of *extra* worker threads; 0 makes run()
  /// execute inline on the caller.
  explicit WorkerPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard lock{mutex_};
      stop_ = true;
    }
    work_ready_.notify_all();
    for (auto& t : workers_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (workers_.empty() || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    {
      std::lock_guard lock{mutex_};
      task_ = &fn;
      task_count_ = n;
      done_ = 0;
      next_.store(0, std::memory_order_relaxed);
      ++epoch_;
    }
    work_ready_.notify_all();
    const std::size_t finished = claim_and_execute(fn, n);
    std::unique_lock lock{mutex_};
    done_ += finished;
    work_done_.wait(lock, [&] { return done_ >= task_count_; });
    task_ = nullptr;
  }

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  std::size_t claim_and_execute(const std::function<void(std::size_t)>& fn,
                                std::size_t n) {
    std::size_t finished = 0;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
      ++finished;
    }
    return finished;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock lock{mutex_};
    for (;;) {
      work_ready_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      const auto* task = task_;
      const std::size_t count = task_count_;
      lock.unlock();
      // task_ may already be null if the epoch completed before this
      // worker woke; next_ >= count then, so nothing is dereferenced.
      std::size_t finished = 0;
      if (task != nullptr) finished = claim_and_execute(*task, count);
      lock.lock();
      done_ += finished;
      if (done_ >= task_count_) work_done_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* task_ = nullptr;  // guarded by mutex_
  std::size_t task_count_ = 0;
  std::size_t done_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::atomic<std::size_t> next_{0};
};

/// A two-stage threaded pipeline segment: consumes items of type In from an
/// input ring buffer, transforms them, and pushes items of type Out to an
/// output ring buffer. Stages propagate shutdown: when the input closes and
/// drains, the stage closes its output and exits.
///
/// Compose several of these to mirror the reader's real-time chain, where
/// "each two adjacent blocks share a buffer with a back-pressure mechanism"
/// (paper Sec. 6.1).
template <typename In, typename Out>
class PipelineStage {
 public:
  /// The transform may emit zero, one, or many outputs per input via the
  /// `emit` callback (e.g. a decimator emits rarely; a framer emits per
  /// packet).
  using Transform = std::function<void(In item, const std::function<void(Out)>& emit)>;

  PipelineStage(std::shared_ptr<RingBuffer<In>> input,
                std::shared_ptr<RingBuffer<Out>> output, Transform transform)
      : input_(std::move(input)),
        output_(std::move(output)),
        transform_(std::move(transform)) {}

  /// Starts the worker thread.
  void start() {
    thread_ = std::thread([this] {
      const auto emit = [this](Out out) { output_->push(std::move(out)); };
      while (auto item = input_->pop()) {
        transform_(std::move(*item), emit);
      }
      output_->close();
    });
  }

  /// Joins the worker (input must have been closed).
  void join() {
    if (thread_.joinable()) thread_.join();
  }

  ~PipelineStage() { join(); }

  PipelineStage(const PipelineStage&) = delete;
  PipelineStage& operator=(const PipelineStage&) = delete;

 private:
  std::shared_ptr<RingBuffer<In>> input_;
  std::shared_ptr<RingBuffer<Out>> output_;
  Transform transform_;
  std::thread thread_;
};

}  // namespace arachnet::dsp
