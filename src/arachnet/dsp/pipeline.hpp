#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "arachnet/dsp/ring_buffer.hpp"

namespace arachnet::dsp {

/// A two-stage threaded pipeline segment: consumes items of type In from an
/// input ring buffer, transforms them, and pushes items of type Out to an
/// output ring buffer. Stages propagate shutdown: when the input closes and
/// drains, the stage closes its output and exits.
///
/// Compose several of these to mirror the reader's real-time chain, where
/// "each two adjacent blocks share a buffer with a back-pressure mechanism"
/// (paper Sec. 6.1).
template <typename In, typename Out>
class PipelineStage {
 public:
  /// The transform may emit zero, one, or many outputs per input via the
  /// `emit` callback (e.g. a decimator emits rarely; a framer emits per
  /// packet).
  using Transform = std::function<void(In item, const std::function<void(Out)>& emit)>;

  PipelineStage(std::shared_ptr<RingBuffer<In>> input,
                std::shared_ptr<RingBuffer<Out>> output, Transform transform)
      : input_(std::move(input)),
        output_(std::move(output)),
        transform_(std::move(transform)) {}

  /// Starts the worker thread.
  void start() {
    thread_ = std::thread([this] {
      const auto emit = [this](Out out) { output_->push(std::move(out)); };
      while (auto item = input_->pop()) {
        transform_(std::move(*item), emit);
      }
      output_->close();
    });
  }

  /// Joins the worker (input must have been closed).
  void join() {
    if (thread_.joinable()) thread_.join();
  }

  ~PipelineStage() { join(); }

  PipelineStage(const PipelineStage&) = delete;
  PipelineStage& operator=(const PipelineStage&) = delete;

 private:
  std::shared_ptr<RingBuffer<In>> input_;
  std::shared_ptr<RingBuffer<Out>> output_;
  Transform transform_;
  std::thread thread_;
};

}  // namespace arachnet::dsp
