#include "arachnet/dsp/schmitt.hpp"

#include <cmath>
#include <stdexcept>

namespace arachnet::dsp {

SchmittTrigger::SchmittTrigger(double low, double high, bool initial)
    : low_(low), high_(high), level_(initial) {
  if (!(high > low)) {
    throw std::invalid_argument("SchmittTrigger: high must exceed low");
  }
}

bool SchmittTrigger::push(double x) noexcept {
  if (!level_ && x >= high_) {
    level_ = true;
  } else if (level_ && x <= low_) {
    level_ = false;
  }
  return level_;
}

AdaptiveSchmitt::AdaptiveSchmitt() : params_(Params{}) {}

bool AdaptiveSchmitt::push(double x) noexcept {
  scale_ += params_.ema_alpha * (std::abs(x) - scale_);
  const double threshold =
      params_.fraction * (scale_ < params_.floor ? params_.floor : scale_);
  if (!level_ && x >= threshold) {
    level_ = true;
  } else if (level_ && x <= -threshold) {
    level_ = false;
  }
  return level_;
}

void AdaptiveSchmitt::reset() noexcept {
  scale_ = 0.0;
  level_ = false;
}

std::optional<RunLengthEncoder::Run> RunLengthEncoder::push(
    bool level) noexcept {
  if (!started_) {
    started_ = true;
    current_ = level;
    count_ = 1;
    return std::nullopt;
  }
  if (level == current_) {
    ++count_;
    return std::nullopt;
  }
  const Run completed{current_, count_};
  current_ = level;
  count_ = 1;
  return completed;
}

void RunLengthEncoder::reset() noexcept {
  started_ = false;
  count_ = 0;
}

}  // namespace arachnet::dsp
