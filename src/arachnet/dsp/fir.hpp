#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace arachnet::dsp {

/// Windowed-sinc low-pass FIR design (Hamming window).
/// `cutoff_hz` is the -6 dB edge; `taps` must be odd for a symmetric,
/// linear-phase filter.
std::vector<double> design_lowpass(double cutoff_hz, double sample_rate_hz,
                                   std::size_t taps);

/// Streaming FIR filter over real or complex samples.
template <typename Sample>
class FirFilter {
 public:
  explicit FirFilter(std::vector<double> coeffs)
      : coeffs_(std::move(coeffs)), history_(coeffs_.size(), Sample{}) {}

  /// Pushes one sample, returns the filtered output.
  Sample push(Sample x) {
    history_[pos_] = x;
    Sample acc{};
    std::size_t idx = pos_;
    for (double c : coeffs_) {
      acc += history_[idx] * c;
      idx = (idx == 0) ? history_.size() - 1 : idx - 1;
    }
    pos_ = (pos_ + 1) % history_.size();
    return acc;
  }

  void reset() {
    std::fill(history_.begin(), history_.end(), Sample{});
    pos_ = 0;
  }

  std::size_t taps() const noexcept { return coeffs_.size(); }
  /// Group delay in samples (symmetric linear-phase filter).
  double group_delay() const noexcept {
    return static_cast<double>(coeffs_.size() - 1) / 2.0;
  }

 private:
  std::vector<double> coeffs_;
  std::vector<Sample> history_;
  std::size_t pos_ = 0;
};

/// One-pole DC blocker: y[n] = x[n] - x[n-1] + r * y[n-1]. Removes the
/// static carrier-leak component from the demodulated envelope while
/// passing the FM0 modulation (which has no DC content by construction).
class DcBlocker {
 public:
  /// `r` close to 1 gives a lower cutoff.
  explicit DcBlocker(double r = 0.999) : r_(r) {}

  double push(double x) noexcept {
    const double y = x - prev_x_ + r_ * prev_y_;
    prev_x_ = x;
    prev_y_ = y;
    return y;
  }

  void reset() noexcept { prev_x_ = prev_y_ = 0.0; }

 private:
  double r_;
  double prev_x_ = 0.0;
  double prev_y_ = 0.0;
};

}  // namespace arachnet::dsp
