#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace arachnet::dsp {

/// Windowed-sinc low-pass FIR design (Hamming window).
/// `cutoff_hz` is the -6 dB edge; `taps` must be odd for a symmetric,
/// linear-phase filter.
std::vector<double> design_lowpass(double cutoff_hz, double sample_rate_hz,
                                   std::size_t taps);

/// Streaming FIR filter over real or complex samples.
///
/// The history is kept in a doubled buffer (each sample written twice, one
/// filter-length apart) so the dot product always runs over a contiguous
/// stretch of memory — no per-tap index wrap on the hot path. Accumulation
/// order matches the naive newest-to-oldest formulation, so outputs are
/// bit-identical to the textbook circular implementation.
template <typename Sample>
class FirFilter {
 public:
  explicit FirFilter(std::vector<double> coeffs)
      : coeffs_(std::move(coeffs)), history_(2 * coeffs_.size(), Sample{}) {}

  /// Advances the delay line without computing an output. Decimators use
  /// this for samples whose filtered value would be discarded.
  void feed(Sample x) noexcept {
    history_[pos_] = x;
    history_[pos_ + coeffs_.size()] = x;
    pos_ = (pos_ + 1 == coeffs_.size()) ? 0 : pos_ + 1;
  }

  /// Pushes one sample, returns the filtered output.
  Sample push(Sample x) noexcept {
    feed(x);
    return value();
  }

  /// Filtered output for the current delay-line contents (the sample last
  /// fed and its predecessors).
  Sample value() const noexcept {
    // After feed(), the newest sample sits at pos_-1, i.e. at
    // pos_ - 1 + taps in the doubled half; walking backwards from there is
    // contiguous for all taps.
    const Sample* newest = history_.data() + pos_ + coeffs_.size() - 1;
    Sample acc{};
    for (std::size_t k = 0; k < coeffs_.size(); ++k) {
      acc += newest[-static_cast<std::ptrdiff_t>(k)] * coeffs_[k];
    }
    return acc;
  }

  /// Filters `n` samples from `in` into `out` (in-place allowed).
  void process(const Sample* in, Sample* out, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = push(in[i]);
  }

  void reset() {
    std::fill(history_.begin(), history_.end(), Sample{});
    pos_ = 0;
  }

  std::size_t taps() const noexcept { return coeffs_.size(); }
  /// Group delay in samples (symmetric linear-phase filter).
  double group_delay() const noexcept {
    return static_cast<double>(coeffs_.size() - 1) / 2.0;
  }

 private:
  std::vector<double> coeffs_;
  std::vector<Sample> history_;  ///< doubled: size == 2 * taps
  std::size_t pos_ = 0;          ///< next write slot in [0, taps)
};

/// One-pole DC blocker: y[n] = x[n] - x[n-1] + r * y[n-1]. Removes the
/// static carrier-leak component from the demodulated envelope while
/// passing the FM0 modulation (which has no DC content by construction).
class DcBlocker {
 public:
  /// `r` close to 1 gives a lower cutoff.
  explicit DcBlocker(double r = 0.999) : r_(r) {}

  double push(double x) noexcept {
    const double y = x - prev_x_ + r_ * prev_y_;
    prev_x_ = x;
    prev_y_ = y;
    return y;
  }

  void reset() noexcept { prev_x_ = prev_y_ = 0.0; }

 private:
  double r_;
  double prev_x_ = 0.0;
  double prev_y_ = 0.0;
};

}  // namespace arachnet::dsp
