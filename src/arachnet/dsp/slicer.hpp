#pragma once

#include <cstddef>

namespace arachnet::dsp {

/// Decision-directed two-level slicer for OOK envelopes.
///
/// Tracks the high and low signal levels directly (whichever the sample is
/// closer to, with fast capture for samples outside the current band) and
/// slices at their midpoint with hysteresis proportional to the level
/// separation. Unlike AC-coupling + fixed-threshold slicing this has no
/// settling transient at packet start and no droop on long runs, so it
/// works unchanged from 93.75 to 3000 chips/s.
///
/// A squelch keeps the output frozen while the level separation is below
/// `floor` (channel noise between packets), and both levels leak slowly
/// toward the input so a strong packet's levels do not mask a following
/// weak one.
class AdaptiveSlicer {
 public:
  struct Params {
    double track_alpha = 0.05;  ///< in-band level tracking rate
    double capture_alpha = 0.5; ///< out-of-band fast capture rate
    double leak_alpha = 0.002;  ///< always-on decay toward the input
    double hysteresis = 0.25;   ///< band half-width as fraction of separation
    double floor = 0.002;       ///< minimum separation for slicing (squelch)
  };

  AdaptiveSlicer();  // default params
  explicit AdaptiveSlicer(Params params) : params_(params) {}

  /// Feeds one envelope sample; returns the sliced level.
  bool push(double x) noexcept;

  bool level() const noexcept { return level_; }
  double high() const noexcept { return hi_; }
  double low() const noexcept { return lo_; }
  double separation() const noexcept { return hi_ - lo_; }
  bool squelched() const noexcept { return separation() < params_.floor; }

  void reset() noexcept;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  double hi_ = 0.0;
  double lo_ = 0.0;
  bool primed_ = false;
  bool level_ = false;
};

/// Debouncer: a level transition is accepted only after `hold` consecutive
/// samples of the new level. Suppresses noise glitches shorter than a
/// fraction of a chip; both edges shift by the same `hold` samples, so run
/// durations are preserved.
class Debouncer {
 public:
  explicit Debouncer(std::size_t hold = 1);

  /// Feeds one raw level; returns the debounced level.
  bool push(bool level) noexcept;

  bool level() const noexcept { return stable_; }
  void reset() noexcept;

 private:
  std::size_t hold_;
  bool stable_ = false;
  bool candidate_ = false;
  std::size_t count_ = 0;
  bool primed_ = false;
};

}  // namespace arachnet::dsp
