#pragma once

#include <cstddef>
#include <optional>

namespace arachnet::dsp {

/// Schmitt trigger with fixed hysteresis thresholds: output goes high when
/// the input crosses `high`, low when it crosses `low`. The gap rejects
/// noise chatter around a single threshold.
class SchmittTrigger {
 public:
  SchmittTrigger(double low, double high, bool initial = false);

  /// Feeds one sample; returns the binary output level.
  bool push(double x) noexcept;

  bool level() const noexcept { return level_; }
  void reset(bool level = false) noexcept { level_ = level; }

 private:
  double low_;
  double high_;
  bool level_;
};

/// Schmitt trigger whose thresholds adapt to the signal scale: tracks an
/// exponential moving average of |x| and places the thresholds at
/// +/- `fraction` of it around zero. Suited to the DC-blocked envelope
/// where modulation depth varies tag by tag.
class AdaptiveSchmitt {
 public:
  struct Params {
    double fraction = 0.5;    ///< threshold as a fraction of mean |x|
    double ema_alpha = 0.01;  ///< scale-tracking rate
    /// Squelch: minimum scale. Keeps the trigger quiet on channel noise
    /// between packets; set several times the baseband noise RMS.
    double floor = 0.004;
  };

  AdaptiveSchmitt();  // default params
  explicit AdaptiveSchmitt(Params params) : params_(params) {}

  bool push(double x) noexcept;

  bool level() const noexcept { return level_; }
  double scale() const noexcept { return scale_; }
  void reset() noexcept;

 private:
  Params params_;
  double scale_ = 0.0;
  bool level_ = false;
};

/// Converts a binary level stream into run lengths: emits the duration (in
/// samples) of each completed constant-level segment.
class RunLengthEncoder {
 public:
  struct Run {
    bool level;
    std::size_t samples;
  };

  /// Feeds one level; returns the completed run when the level changed.
  std::optional<Run> push(bool level) noexcept;

  /// Duration of the currently open run.
  std::size_t open_run() const noexcept { return count_; }

  void reset() noexcept;

 private:
  bool started_ = false;
  bool current_ = false;
  std::size_t count_ = 0;
};

}  // namespace arachnet::dsp
