#include "arachnet/dsp/ddc.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace arachnet::dsp {

namespace {

std::vector<double> ddc_coeffs(const Ddc::Params& p) {
  return design_lowpass(p.cutoff_hz, p.sample_rate_hz, p.taps);
}

}  // namespace

Ddc::Ddc(Params params)
    : params_(params),
      lpf_(ddc_coeffs(params)),
      decimator_(ddc_coeffs(params),
                 params.decimation == 0 ? 1 : params.decimation),
      decimator_s_(ddc_coeffs(params),
                   params.decimation == 0 ? 1 : params.decimation) {
  if (params_.decimation == 0) {
    throw std::invalid_argument("Ddc: decimation must be >= 1");
  }
  set_carrier(params_.carrier_hz);
}

void Ddc::set_carrier(double hz) noexcept {
  params_.carrier_hz = hz;
  phase_step_ = 2.0 * std::numbers::pi * hz / params_.sample_rate_hz;
  // The scalar path mixes by conj(e^{j*phase}) with phase advancing
  // +phase_step_; the block and simd NCOs hold e^{-j*phase} directly, so
  // their step is the negation. All keep their phase across a retune.
  nco_.set_step(-phase_step_);
  nco_s_.set_step(-phase_step_);
}

std::optional<std::complex<double>> Ddc::push(double sample) {
  if (params_.kernels == KernelPolicy::kBlock) {
    // One-sample block through the kernel machinery, so push() and
    // process() share decimator/NCO state under either policy.
    mixed_.resize(1);
    nco_.mix_real(&sample, mixed_.data(), 1);
    std::complex<double> out;
    if (decimator_.process(mixed_.data(), 1, &out) != 0) return out;
    return std::nullopt;
  }
  if (params_.kernels == KernelPolicy::kSimd) {
    mixed_f_.resize(2);
    nco_s_.mix_real(&sample, mixed_f_.data(), 1);
    std::complex<double> out;
    if (decimator_s_.process(mixed_f_.data(), 1, &out) != 0) return out;
    return std::nullopt;
  }
  // Mix with e^{-j w t}: shifts the 90 kHz band to DC.
  const std::complex<double> mixed{sample * std::cos(phase_),
                                   -sample * std::sin(phase_)};
  phase_ += phase_step_;
  // Wrap symmetrically: a negative carrier (or a retune below DC) walks
  // the phase downward, and one-sided wrapping would let it grow without
  // bound, bleeding precision out of the cos/sin arguments.
  if (phase_ > 2.0 * std::numbers::pi) phase_ -= 2.0 * std::numbers::pi;
  if (phase_ < -2.0 * std::numbers::pi) phase_ += 2.0 * std::numbers::pi;
  // Only the decimation points need the filter's dot product; in between,
  // just advance the delay line (a factor-`decimation` saving on the
  // dominant cost of the front end).
  lpf_.feed(mixed);
  if (++decim_count_ >= params_.decimation) {
    decim_count_ = 0;
    return lpf_.value();
  }
  return std::nullopt;
}

std::size_t Ddc::process(std::span<const double> in,
                         std::vector<std::complex<double>>& out) {
  if (params_.kernels == KernelPolicy::kBlock) {
    const std::size_t n = in.size();
    if (n == 0) return 0;
    mixed_.resize(n);
    nco_.mix_real(in.data(), mixed_.data(), n);
    const std::size_t base = out.size();
    out.resize(base + n / params_.decimation + 1);
    const std::size_t got =
        decimator_.process(mixed_.data(), n, out.data() + base);
    out.resize(base + got);
    return got;
  }
  if (params_.kernels == KernelPolicy::kSimd) {
    const std::size_t n = in.size();
    if (n == 0) return 0;
    mixed_f_.resize(2 * n);
    nco_s_.mix_real(in.data(), mixed_f_.data(), n);
    const std::size_t base = out.size();
    out.resize(base + n / params_.decimation + 1);
    const std::size_t got =
        decimator_s_.process(mixed_f_.data(), n, out.data() + base);
    out.resize(base + got);
    return got;
  }
  std::size_t got = 0;
  for (double s : in) {
    if (const auto iq = push(s)) {
      out.push_back(*iq);
      ++got;
    }
  }
  return got;
}

std::vector<std::complex<double>> Ddc::process(
    const std::vector<double>& block) {
  std::vector<std::complex<double>> out;
  out.reserve(block.size() / params_.decimation + 1);
  process(std::span<const double>{block}, out);
  return out;
}

void Ddc::reset() {
  lpf_.reset();
  phase_ = 0.0;
  decim_count_ = 0;
  nco_.set(0.0, -phase_step_);
  decimator_.reset();
  mixed_.clear();
  nco_s_.set(0.0, -phase_step_);
  decimator_s_.reset();
  mixed_f_.clear();
}

double estimate_frequency_offset(const std::vector<std::complex<double>>& iq,
                                 double iq_rate_hz) {
  if (iq.size() < 2) return 0.0;
  // Mean of the one-lag phase increments, weighted by magnitude product —
  // robust to the modulation because the leak dominates.
  std::complex<double> acc{0.0, 0.0};
  for (std::size_t i = 1; i < iq.size(); ++i) {
    acc += iq[i] * std::conj(iq[i - 1]);
  }
  const double dphi = std::arg(acc);
  return dphi * iq_rate_hz / (2.0 * std::numbers::pi);
}

std::vector<std::complex<double>> derotate(
    const std::vector<std::complex<double>>& iq, double iq_rate_hz,
    double offset_hz, KernelPolicy policy) {
  std::vector<std::complex<double>> out(iq.size());
  const double step = -2.0 * std::numbers::pi * offset_hz / iq_rate_hz;
  if (policy == KernelPolicy::kBlock) {
    PhasorNco nco{0.0, step};
    nco.mix(iq.data(), out.data(), iq.size());
    return out;
  }
  if (policy == KernelPolicy::kSimd) {
    simd::SimdNco nco{0.0, step};
    std::vector<float> scratch(2 * iq.size());
    nco.mix(iq.data(), scratch.data(), iq.size());
    for (std::size_t i = 0; i < iq.size(); ++i) {
      out[i] = {static_cast<double>(scratch[2 * i]),
                static_cast<double>(scratch[2 * i + 1])};
    }
    return out;
  }
  double phase = 0.0;
  for (std::size_t i = 0; i < iq.size(); ++i) {
    out[i] = iq[i] * std::complex<double>{std::cos(phase), std::sin(phase)};
    phase += step;
    if (phase > 2.0 * std::numbers::pi) phase -= 2.0 * std::numbers::pi;
    if (phase < -2.0 * std::numbers::pi) phase += 2.0 * std::numbers::pi;
  }
  return out;
}

}  // namespace arachnet::dsp
