#include "arachnet/dsp/ddc.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace arachnet::dsp {

Ddc::Ddc(Params params)
    : params_(params),
      lpf_(design_lowpass(params.cutoff_hz, params.sample_rate_hz,
                          params.taps)) {
  if (params_.decimation == 0) {
    throw std::invalid_argument("Ddc: decimation must be >= 1");
  }
  set_carrier(params_.carrier_hz);
}

void Ddc::set_carrier(double hz) noexcept {
  params_.carrier_hz = hz;
  phase_step_ = 2.0 * std::numbers::pi * hz / params_.sample_rate_hz;
}

std::optional<std::complex<double>> Ddc::push(double sample) {
  // Mix with e^{-j w t}: shifts the 90 kHz band to DC.
  const std::complex<double> mixed{sample * std::cos(phase_),
                                   -sample * std::sin(phase_)};
  phase_ += phase_step_;
  if (phase_ > 2.0 * std::numbers::pi) phase_ -= 2.0 * std::numbers::pi;
  // Only the decimation points need the filter's dot product; in between,
  // just advance the delay line (a factor-`decimation` saving on the
  // dominant cost of the front end).
  lpf_.feed(mixed);
  if (++decim_count_ >= params_.decimation) {
    decim_count_ = 0;
    return lpf_.value();
  }
  return std::nullopt;
}

std::vector<std::complex<double>> Ddc::process(
    const std::vector<double>& block) {
  std::vector<std::complex<double>> out;
  out.reserve(block.size() / params_.decimation + 1);
  for (double s : block) {
    if (const auto iq = push(s)) out.push_back(*iq);
  }
  return out;
}

void Ddc::reset() {
  lpf_.reset();
  phase_ = 0.0;
  decim_count_ = 0;
}

double estimate_frequency_offset(const std::vector<std::complex<double>>& iq,
                                 double iq_rate_hz) {
  if (iq.size() < 2) return 0.0;
  // Mean of the one-lag phase increments, weighted by magnitude product —
  // robust to the modulation because the leak dominates.
  std::complex<double> acc{0.0, 0.0};
  for (std::size_t i = 1; i < iq.size(); ++i) {
    acc += iq[i] * std::conj(iq[i - 1]);
  }
  const double dphi = std::arg(acc);
  return dphi * iq_rate_hz / (2.0 * std::numbers::pi);
}

std::vector<std::complex<double>> derotate(
    const std::vector<std::complex<double>>& iq, double iq_rate_hz,
    double offset_hz) {
  std::vector<std::complex<double>> out(iq.size());
  const double step = -2.0 * std::numbers::pi * offset_hz / iq_rate_hz;
  double phase = 0.0;
  for (std::size_t i = 0; i < iq.size(); ++i) {
    out[i] = iq[i] * std::complex<double>{std::cos(phase), std::sin(phase)};
    phase += step;
    if (phase > 2.0 * std::numbers::pi) phase -= 2.0 * std::numbers::pi;
    if (phase < -2.0 * std::numbers::pi) phase += 2.0 * std::numbers::pi;
  }
  return out;
}

}  // namespace arachnet::dsp
