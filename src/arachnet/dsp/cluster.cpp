#include "arachnet/dsp/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace arachnet::dsp {
namespace {

double dist2(std::complex<double> a, std::complex<double> b) noexcept {
  return std::norm(a - b);
}

}  // namespace

KMeansResult kmeans(const std::vector<std::complex<double>>& points,
                    std::size_t k, sim::Rng& rng, std::size_t max_iter) {
  if (k == 0 || points.empty()) {
    throw std::invalid_argument("kmeans: need k >= 1 and non-empty points");
  }
  k = std::min(k, points.size());

  // k-means++ seeding: first centroid uniform, then proportional to the
  // squared distance to the nearest chosen centroid.
  std::vector<std::complex<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.uniform_int(points.size())]);
  std::vector<double> d2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centroids) best = std::min(best, dist2(points[i], c));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(centroids.front());
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t pick = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      r -= d2[i];
      if (r <= 0.0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(points[pick]);
  }

  KMeansResult result;
  result.assignment.assign(points.size(), 0);
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    bool changed = false;
    // Assign.
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d = dist2(points[i], centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Update.
    std::vector<std::complex<double>> sums(centroids.size(), {0.0, 0.0});
    std::vector<std::size_t> counts(centroids.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[result.assignment[i]] += points[i];
      ++counts[result.assignment[i]];
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] > 0) {
        centroids[c] = sums[c] / static_cast<double>(counts[c]);
      }
    }
    if (!changed && iter > 0) break;
  }

  result.centroids = centroids;
  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += dist2(points[i], centroids[result.assignment[i]]);
  }
  return result;
}

namespace {

/// Trimmed RMS radius of each cluster; returns the largest.
double max_cluster_rms(const std::vector<std::complex<double>>& points,
                       const KMeansResult& result, double trim_fraction) {
  const std::size_t k = result.centroids.size();
  double worst = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> d2;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (result.assignment[i] == c) {
        d2.push_back(dist2(points[i], result.centroids[c]));
      }
    }
    if (d2.empty()) continue;
    std::sort(d2.begin(), d2.end());
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(d2.size()) * (1.0 - trim_fraction)));
    double sum = 0.0;
    for (std::size_t i = 0; i < keep; ++i) sum += d2[i];
    worst = std::max(worst, std::sqrt(sum / static_cast<double>(keep)));
  }
  return worst;
}

}  // namespace

std::size_t estimate_cluster_count(
    const std::vector<std::complex<double>>& points, sim::Rng& rng,
    const ClusterCountParams& params) {
  if (points.empty()) return 0;
  if (points.size() < 8) return 1;

  for (std::size_t k = params.k_max; k >= 2; --k) {
    const auto result = kmeans(points, k, rng);
    if (result.centroids.size() < k) continue;

    // Population check: every cluster must hold a real share of points.
    std::vector<std::size_t> counts(k, 0);
    for (auto a : result.assignment) ++counts[a];
    const auto min_count = static_cast<std::size_t>(
        params.min_cluster_fraction * static_cast<double>(points.size()));
    bool populated = true;
    for (auto c : counts) {
      if (c < std::max<std::size_t>(3, min_count)) {
        populated = false;
        break;
      }
    }
    if (!populated) continue;

    // Separation check: blobs must be far apart relative to their size.
    double min_sep = std::numeric_limits<double>::max();
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        min_sep = std::min(min_sep, std::sqrt(dist2(result.centroids[a],
                                                    result.centroids[b])));
      }
    }
    const double rms = max_cluster_rms(points, result, params.trim_fraction);
    if (rms <= 0.0) return k;  // degenerate: identical points per cluster
    if (min_sep >= params.separation_ratio * rms) return k;
  }
  return 1;
}

std::vector<std::complex<double>> filter_transitions(
    const std::vector<std::complex<double>>& points, double factor) {
  if (points.size() < 3) return points;
  std::vector<double> steps(points.size() - 1);
  for (std::size_t i = 1; i < points.size(); ++i) {
    steps[i - 1] = std::abs(points[i] - points[i - 1]);
  }
  std::vector<double> sorted = steps;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double limit = factor * (median > 0.0 ? median : 1e-12);
  std::vector<std::complex<double>> kept;
  kept.reserve(points.size());
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (steps[i - 1] <= limit) kept.push_back(points[i]);
  }
  return kept.empty() ? points : kept;
}

bool detect_collision_iq(const std::vector<std::complex<double>>& points,
                         sim::Rng& rng, const ClusterCountParams& params) {
  return estimate_cluster_count(filter_transitions(points), rng, params) > 2;
}

}  // namespace arachnet::dsp
