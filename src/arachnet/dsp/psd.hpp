#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "arachnet/dsp/kernels/fft_plan.hpp"

namespace arachnet::dsp {

/// Welch power-spectral-density estimate of a real signal.
///
/// Hann-windowed segments with 50% overlap, periodogram-averaged. Used by
/// the reader to compute backscatter SNR exactly the way the paper does
/// (Sec. 6.3: "dividing the backscattering frequency power by the
/// surrounding frequency power via PSD").
class WelchPsd {
 public:
  struct Params {
    std::size_t segment_size = 4096;  ///< must be a power of two
    double sample_rate_hz = 500e3;
  };

  explicit WelchPsd(Params params);

  /// PSD estimate; bin i covers frequency i * bin_width().
  std::vector<double> estimate(const std::vector<double>& signal) const;

  double bin_width() const noexcept;
  std::size_t bins() const noexcept;  ///< one-sided bin count

  /// Frequency of a bin centre.
  double bin_frequency(std::size_t bin) const noexcept;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  std::shared_ptr<const FftPlan> plan_;  ///< cached per segment size
  std::vector<double> window_;           ///< Hann window, built once
  double window_power_ = 0.0;
};

/// Backscatter SNR metric from a PSD: total power in
/// [centre - signal_bw/2, centre + signal_bw/2] over the mean power density
/// of the surrounding band of width `noise_bw` (signal band excluded),
/// scaled to the same bandwidth. Returns the ratio in dB.
double band_snr_db(const std::vector<double>& psd, double bin_width,
                   double centre_hz, double signal_bw_hz, double noise_bw_hz);

}  // namespace arachnet::dsp
