#include "arachnet/dsp/fir.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace arachnet::dsp {

std::vector<double> design_lowpass(double cutoff_hz, double sample_rate_hz,
                                   std::size_t taps) {
  if (taps % 2 == 0 || taps < 3) {
    throw std::invalid_argument("design_lowpass: taps must be odd and >= 3");
  }
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0) {
    throw std::invalid_argument("design_lowpass: cutoff out of range");
  }
  const double fc = cutoff_hz / sample_rate_hz;  // normalized
  const auto mid = static_cast<std::ptrdiff_t>(taps / 2);
  std::vector<double> h(taps);
  double sum = 0.0;
  for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(taps); ++n) {
    const auto k = static_cast<double>(n - mid);
    const double sinc =
        (n == mid) ? 2.0 * fc
                   : std::sin(2.0 * std::numbers::pi * fc * k) /
                         (std::numbers::pi * k);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * n /
                               static_cast<double>(taps - 1));
    h[static_cast<std::size_t>(n)] = sinc * hamming;
    sum += h[static_cast<std::size_t>(n)];
  }
  // Normalize to unity DC gain.
  for (auto& c : h) c /= sum;
  return h;
}

}  // namespace arachnet::dsp
