#include "arachnet/dsp/psd.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "arachnet/dsp/fft.hpp"

namespace arachnet::dsp {

WelchPsd::WelchPsd(Params params) : params_(params) {
  if (!is_pow2(params_.segment_size)) {
    throw std::invalid_argument("WelchPsd: segment size must be a power of 2");
  }
  if (params_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("WelchPsd: invalid sample rate");
  }
  // Plan and window are per-size constants: build them once here instead
  // of per estimate() call.
  plan_ = FftPlan::get(params_.segment_size);
  const std::size_t seg = params_.segment_size;
  window_.resize(seg);
  window_power_ = 0.0;
  for (std::size_t i = 0; i < seg; ++i) {
    window_[i] = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * i /
                                       static_cast<double>(seg - 1)));
    window_power_ += window_[i] * window_[i];
  }
}

double WelchPsd::bin_width() const noexcept {
  return params_.sample_rate_hz / static_cast<double>(params_.segment_size);
}

std::size_t WelchPsd::bins() const noexcept {
  return params_.segment_size / 2 + 1;
}

double WelchPsd::bin_frequency(std::size_t bin) const noexcept {
  return bin_width() * static_cast<double>(bin);
}

std::vector<double> WelchPsd::estimate(
    const std::vector<double>& signal) const {
  const std::size_t seg = params_.segment_size;
  if (signal.size() < seg) {
    throw std::invalid_argument("WelchPsd: signal shorter than one segment");
  }
  // Local scratch keeps estimate() const and thread-safe; the plan and
  // window are shared immutable state.
  std::vector<double> psd(bins(), 0.0);
  std::size_t segments = 0;
  std::vector<double> windowed(seg);
  std::vector<cplx> buf;
  for (std::size_t start = 0; start + seg <= signal.size(); start += seg / 2) {
    for (std::size_t i = 0; i < seg; ++i) {
      windowed[i] = signal[start + i] * window_[i];
    }
    // Real-input transform: half the cost of the complex FFT the old
    // implementation ran on the zero-imaginary buffer.
    plan_->forward_real(windowed.data(), seg, buf);
    for (std::size_t k = 0; k < bins(); ++k) {
      const double mag2 = std::norm(buf[k]);
      // One-sided density: double the interior bins.
      const double scale = (k == 0 || k == bins() - 1) ? 1.0 : 2.0;
      psd[k] += scale * mag2 / (window_power_ * params_.sample_rate_hz);
    }
    ++segments;
  }
  for (auto& v : psd) v /= static_cast<double>(segments);
  return psd;
}

double band_snr_db(const std::vector<double>& psd, double bin_width,
                   double centre_hz, double signal_bw_hz,
                   double noise_bw_hz) {
  if (psd.empty() || bin_width <= 0.0) {
    throw std::invalid_argument("band_snr_db: empty PSD");
  }
  const auto clamp_bin = [&](double hz) {
    const auto bin = static_cast<std::ptrdiff_t>(std::llround(hz / bin_width));
    return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
        bin, 0, static_cast<std::ptrdiff_t>(psd.size()) - 1));
  };
  const std::size_t sig_lo = clamp_bin(centre_hz - signal_bw_hz / 2.0);
  const std::size_t sig_hi = clamp_bin(centre_hz + signal_bw_hz / 2.0);
  const std::size_t noise_lo = clamp_bin(centre_hz - noise_bw_hz / 2.0);
  const std::size_t noise_hi = clamp_bin(centre_hz + noise_bw_hz / 2.0);

  double signal_power = 0.0;
  for (std::size_t k = sig_lo; k <= sig_hi; ++k) signal_power += psd[k];

  double noise_density = 0.0;
  std::size_t noise_bins = 0;
  for (std::size_t k = noise_lo; k <= noise_hi; ++k) {
    if (k >= sig_lo && k <= sig_hi) continue;
    noise_density += psd[k];
    ++noise_bins;
  }
  if (noise_bins == 0 || noise_density <= 0.0) return 0.0;
  noise_density /= static_cast<double>(noise_bins);
  // Noise power scaled to the signal bandwidth.
  const double noise_power =
      noise_density * static_cast<double>(sig_hi - sig_lo + 1);
  return 10.0 * std::log10(signal_power / noise_power);
}

}  // namespace arachnet::dsp
