#include "arachnet/dsp/slicer.hpp"

namespace arachnet::dsp {

AdaptiveSlicer::AdaptiveSlicer() : params_(Params{}) {}

bool AdaptiveSlicer::push(double x) noexcept {
  if (!primed_) {
    hi_ = lo_ = x;
    primed_ = true;
    return level_;
  }

  // Fast capture outside the band, gated tracking inside.
  if (x > hi_) {
    hi_ += params_.capture_alpha * (x - hi_);
  } else if (x < lo_) {
    lo_ += params_.capture_alpha * (x - lo_);
  } else {
    const double mid = 0.5 * (hi_ + lo_);
    if (x >= mid) {
      hi_ += params_.track_alpha * (x - hi_);
    } else {
      lo_ += params_.track_alpha * (x - lo_);
    }
  }
  // Slow leak so stale levels from a strong burst decay during silence.
  hi_ += params_.leak_alpha * (x - hi_);
  lo_ += params_.leak_alpha * (x - lo_);
  if (lo_ > hi_) lo_ = hi_;

  const double separation = hi_ - lo_;
  if (separation < params_.floor) return level_;  // squelched: hold

  const double mid = 0.5 * (hi_ + lo_);
  const double band = params_.hysteresis * separation;
  if (!level_ && x >= mid + band) {
    level_ = true;
  } else if (level_ && x <= mid - band) {
    level_ = false;
  }
  return level_;
}

void AdaptiveSlicer::reset() noexcept {
  hi_ = lo_ = 0.0;
  primed_ = false;
  level_ = false;
}

Debouncer::Debouncer(std::size_t hold) : hold_(hold == 0 ? 1 : hold) {}

bool Debouncer::push(bool level) noexcept {
  if (!primed_) {
    primed_ = true;
    stable_ = candidate_ = level;
    count_ = hold_;
    return stable_;
  }
  if (level == stable_) {
    candidate_ = stable_;
    count_ = 0;
    return stable_;
  }
  if (level == candidate_) {
    if (++count_ >= hold_) {
      stable_ = candidate_;
      count_ = 0;
    }
  } else {
    candidate_ = level;
    count_ = 1;
    if (count_ >= hold_) {
      stable_ = candidate_;
      count_ = 0;
    }
  }
  return stable_;
}

void Debouncer::reset() noexcept {
  primed_ = false;
  stable_ = candidate_ = false;
  count_ = 0;
}

}  // namespace arachnet::dsp
