#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <vector>

#include "arachnet/dsp/fir.hpp"

namespace arachnet::dsp {

/// Digital down-converter: mixes the real 500 kS/s DAQ stream with a
/// numerically controlled oscillator at the carrier frequency, low-pass
/// filters the product, and decimates. Output is complex baseband IQ at
/// sample_rate / decimation.
///
/// This is the first block of the paper's reader software chain
/// ("down conversion, ... filtering, decimation", Sec. 6.1).
class Ddc {
 public:
  struct Params {
    double sample_rate_hz = 500e3;
    double carrier_hz = 90e3;
    std::size_t decimation = 16;   ///< output rate 31.25 kS/s by default
    double cutoff_hz = 6e3;        ///< anti-alias + modulation bandwidth
    std::size_t taps = 129;
  };

  explicit Ddc(Params params);

  /// Processes a block of real samples; returns the decimated IQ samples
  /// produced (0 or more per call).
  std::vector<std::complex<double>> process(const std::vector<double>& block);

  /// Pushes a single sample; yields an IQ sample every `decimation` inputs.
  std::optional<std::complex<double>> push(double sample);

  double output_rate_hz() const noexcept {
    return params_.sample_rate_hz / static_cast<double>(params_.decimation);
  }

  /// Adjusts the NCO (e.g. after frequency-offset calibration).
  void set_carrier(double hz) noexcept;

  void reset();

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  FirFilter<std::complex<double>> lpf_;
  double phase_ = 0.0;
  double phase_step_ = 0.0;
  std::size_t decim_count_ = 0;
};

/// Estimates a small carrier-frequency offset from decimated IQ: the slope
/// of the unwrapped phase of the (DC-dominated) leak component. Returns Hz.
double estimate_frequency_offset(const std::vector<std::complex<double>>& iq,
                                 double iq_rate_hz);

/// Derotates IQ by `-offset_hz` (frequency-offset calibration block).
std::vector<std::complex<double>> derotate(
    const std::vector<std::complex<double>>& iq, double iq_rate_hz,
    double offset_hz);

}  // namespace arachnet::dsp
