#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/kernels/fir_kernels.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/dsp/kernels/nco.hpp"
#include "arachnet/dsp/kernels/simd/stages.hpp"

namespace arachnet::dsp {

/// Digital down-converter: mixes the real 500 kS/s DAQ stream with a
/// numerically controlled oscillator at the carrier frequency, low-pass
/// filters the product, and decimates. Output is complex baseband IQ at
/// sample_rate / decimation.
///
/// This is the first block of the paper's reader software chain
/// ("down conversion, ... filtering, decimation", Sec. 6.1).
///
/// Three implementations live behind Params::kernels (see KernelPolicy):
/// the scalar reference path (per-sample cos/sin mixer + streaming FIR),
/// the block-kernel path (phasor-recurrence NCO + one-pass polyphase
/// decimator) which produces the same IQ to rounding tolerance at a
/// fraction of the cost, and the simd path (float32 vector lanes with
/// runtime ISA dispatch, double accumulation at the decimation points)
/// which matches to float32 tolerance. The decimation grid is identical
/// across all policies.
class Ddc {
 public:
  struct Params {
    double sample_rate_hz = 500e3;
    double carrier_hz = 90e3;
    std::size_t decimation = 16;   ///< output rate 31.25 kS/s by default
    double cutoff_hz = 6e3;        ///< anti-alias + modulation bandwidth
    std::size_t taps = 129;
    KernelPolicy kernels = default_kernel_policy();
  };

  explicit Ddc(Params params);

  /// Processes a block of real samples; returns the decimated IQ samples
  /// produced (0 or more per call). Allocating wrapper around the span
  /// overload.
  std::vector<std::complex<double>> process(const std::vector<double>& block);

  /// Span-in, caller-owned-out overload for allocation-free steady state:
  /// appends the produced IQ samples to `out` (which the caller clears and
  /// reuses across blocks) and returns how many were appended.
  std::size_t process(std::span<const double> in,
                      std::vector<std::complex<double>>& out);

  /// Pushes a single sample; yields an IQ sample every `decimation` inputs.
  /// Always runs the scalar path — single-sample streaming has no block to
  /// batch — but shares decimator state with process(), so the two can be
  /// mixed freely.
  std::optional<std::complex<double>> push(double sample);

  double output_rate_hz() const noexcept {
    return params_.sample_rate_hz / static_cast<double>(params_.decimation);
  }

  /// Adjusts the NCO (e.g. after frequency-offset calibration). Phase is
  /// continuous across the change.
  void set_carrier(double hz) noexcept;

  /// Raw samples consumed since the last decimated output, in
  /// [0, decimation) — lets block consumers map each produced IQ sample
  /// back to the exact raw-sample index that emitted it.
  std::size_t decimation_phase() const noexcept {
    switch (params_.kernels) {
      case KernelPolicy::kBlock:
        return decimator_.phase();
      case KernelPolicy::kSimd:
        return decimator_s_.phase();
      case KernelPolicy::kScalar:
        break;
    }
    return decim_count_;
  }

  void reset();

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  FirFilter<std::complex<double>> lpf_;    ///< scalar-path filter state
  double phase_ = 0.0;
  double phase_step_ = 0.0;
  std::size_t decim_count_ = 0;
  // Block-kernel path: NCO phasor + polyphase decimator + mix scratch.
  PhasorNco nco_;
  FirBlockDecimator<std::complex<double>> decimator_;
  std::vector<std::complex<double>> mixed_;
  // Simd path: float32 lanes, interleaved mix scratch, double outputs.
  simd::SimdNco nco_s_;
  simd::FirSimdDecimator decimator_s_;
  std::vector<float> mixed_f_;
};

/// Estimates a small carrier-frequency offset from decimated IQ: the slope
/// of the unwrapped phase of the (DC-dominated) leak component. Returns Hz.
double estimate_frequency_offset(const std::vector<std::complex<double>>& iq,
                                 double iq_rate_hz);

/// Derotates IQ by `-offset_hz` (frequency-offset calibration block).
std::vector<std::complex<double>> derotate(
    const std::vector<std::complex<double>>& iq, double iq_rate_hz,
    double offset_hz, KernelPolicy policy = default_kernel_policy());

}  // namespace arachnet::dsp
