#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

namespace arachnet::dsp {

/// Bounded single-producer/single-consumer queue with back-pressure.
///
/// The paper's reader software connects adjacent processing blocks with
/// "a buffer with a back-pressure mechanism to manage data flow"
/// (Sec. 6.1); this is that buffer. `push` blocks while the queue is full
/// (back-pressure on the producer); `pop` blocks while it is empty.
/// `close()` wakes everyone and makes further pushes fail and pops drain
/// then return nullopt — the shutdown path.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocking push; returns false if the buffer was closed.
  bool push(T value) {
    std::unique_lock lock{mutex_};
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock{mutex_};
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(queue_.front());
    queue_.erase(queue_.begin());
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard lock{mutex_};
      if (queue_.empty()) return std::nullopt;
      value = std::move(queue_.front());
      queue_.erase(queue_.begin());
    }
    not_full_.notify_one();
    return value;
  }

  /// Closes the buffer: producers fail fast, consumers drain then stop.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock{mutex_};
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock{mutex_};
    return queue_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> queue_;
  bool closed_ = false;
};

}  // namespace arachnet::dsp
