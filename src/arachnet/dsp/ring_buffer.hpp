#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace arachnet::dsp {

/// Bounded producer/consumer queue with back-pressure.
///
/// The paper's reader software connects adjacent processing blocks with
/// "a buffer with a back-pressure mechanism to manage data flow"
/// (Sec. 6.1); this is that buffer. `push` blocks while the queue is full
/// (back-pressure on the producer); `pop` blocks while it is empty.
/// `close()` wakes everyone and makes further pushes fail and pops drain
/// then return nullopt — the shutdown path.
///
/// Storage is an index-based circular array whose capacity is fixed at
/// construction: push and pop are O(1), with no element shifting on the
/// real-time hot path (the previous vector-backed version erased from the
/// front, O(n) per pop).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  /// Blocking push; returns false if the buffer was closed.
  bool push(T value) { return push(std::move(value), nullptr); }

  /// Blocking push that accumulates back-pressure stall time: when the
  /// queue is full, the nanoseconds spent waiting for space are added to
  /// `*stall_ns` (untouched on the fast path, so the clock is only read
  /// when the producer actually blocks). Returns false if closed.
  bool push(T value, std::uint64_t* stall_ns) {
    std::unique_lock lock{mutex_};
    if (count_ >= slots_.size() && !closed_) {
      if (stall_ns != nullptr) {
        const auto t0 = std::chrono::steady_clock::now();
        not_full_.wait(lock,
                       [&] { return count_ < slots_.size() || closed_; });
        *stall_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      } else {
        not_full_.wait(lock,
                       [&] { return count_ < slots_.size() || closed_; });
      }
    }
    if (closed_) return false;
    enqueue(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock{mutex_};
      if (closed_ || count_ >= slots_.size()) return false;
      enqueue(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
    if (count_ == 0) return std::nullopt;  // closed and drained
    std::optional<T> value = dequeue();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard lock{mutex_};
      if (count_ == 0) return std::nullopt;
      value = dequeue();
    }
    not_full_.notify_one();
    return value;
  }

  /// Closes the buffer: producers fail fast, consumers drain then stop.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Reopens a closed buffer so a stopped pipeline can be restarted:
  /// pushes succeed again, pops block on empty again. Queued items
  /// survive — reopening never discards data already accepted. No-op on
  /// an open buffer. The caller must serialize reopen() against the
  /// producers/consumers of the previous run (RealtimeReader::start()
  /// reopens only after stop() joined the worker).
  void reopen() {
    std::lock_guard lock{mutex_};
    closed_ = false;
  }

  bool closed() const {
    std::lock_guard lock{mutex_};
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock{mutex_};
    return count_;
  }

  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  void enqueue(T value) {
    std::size_t tail = head_ + count_;
    if (tail >= slots_.size()) tail -= slots_.size();
    slots_[tail].emplace(std::move(value));
    ++count_;
  }

  T dequeue() {
    T value = std::move(*slots_[head_]);
    slots_[head_].reset();  // release the payload eagerly
    head_ = (head_ + 1 == slots_.size()) ? 0 : head_ + 1;
    --count_;
    return value;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<std::optional<T>> slots_;  ///< circular; capacity == size()
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace arachnet::dsp
