#include "arachnet/core/tag_state_machine.hpp"

namespace arachnet::core {

TagStateMachine::TagStateMachine(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  require_permissible(config_.period);
  pick_new_offset();
}

void TagStateMachine::pick_new_offset() {
  offset_ = static_cast<int>(rng_.uniform_int(
      static_cast<std::uint64_t>(config_.period)));
}

void TagStateMachine::reset() {
  reset_protocol();
  fresh_ = true;
}

void TagStateMachine::reset_protocol() {
  state_ = TagState::kMigrate;
  slot_index_ = -1;
  nack_count_ = 0;
  transmitted_last_ = false;
  fresh_ = false;
  pick_new_offset();
}

bool TagStateMachine::on_beacon(const phy::DlCommand& cmd) {
  if (cmd.reset) {
    reset_protocol();
    // The RESET beacon still opens a slot; fall through to the transmit
    // decision with the fresh state.
  } else if (transmitted_last_) {
    // Feedback applies only to tags that transmitted in the closed slot
    // (Sec. 5.3: others disregard ACK/NACK).
    if (cmd.ack) {
      state_ = TagState::kSettle;
      nack_count_ = 0;
      fresh_ = false;
    } else {
      if (state_ == TagState::kMigrate) {
        pick_new_offset();
      } else if (++nack_count_ >= config_.nack_threshold) {
        state_ = TagState::kMigrate;
        nack_count_ = 0;
        pick_new_offset();
      }
    }
  }

  // The beacon opens the next slot: advance the local index (Sec. 5.2).
  ++slot_index_;

  bool transmit =
      (slot_index_ % config_.period) == offset_;
  // Sec. 5.5: a tag that has never settled may only use slots the reader
  // predicts empty. When its slot turns out occupied it re-picks an offset
  // right away — waiting would deadlock, since without transmitting it can
  // never receive the NACK that normally drives migration.
  if (transmit && fresh_ && config_.empty_gating && !cmd.empty) {
    transmit = false;
    pick_new_offset();
  }
  transmitted_last_ = transmit;
  return transmit;
}

void TagStateMachine::on_beacon_loss() {
  // The slot boundary was never observed: s_i is not incremented, which is
  // exactly the desynchronization of Sec. 5.4. The refined protocol reacts
  // by re-entering MIGRATE with a fresh offset before a collision happens.
  transmitted_last_ = false;
  if (config_.beacon_loss_migrate) {
    state_ = TagState::kMigrate;
    nack_count_ = 0;
    pick_new_offset();
  }
}

}  // namespace arachnet::core
