#include "arachnet/core/protocol.hpp"

namespace arachnet::core {

double slot_utilization(const std::vector<int>& periods) {
  double u = 0.0;
  for (int p : periods) {
    require_permissible(p);
    u += 1.0 / static_cast<double>(p);
  }
  return u;
}

}  // namespace arachnet::core
