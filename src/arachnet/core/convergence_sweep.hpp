#pragma once

#include <cstdint>
#include <vector>

#include "arachnet/core/experiment_configs.hpp"
#include "arachnet/core/slot_network.hpp"
#include "arachnet/sim/sweep.hpp"

namespace arachnet::core {

/// One multi-seed first-convergence measurement, shared by the
/// convergence-shaped benches (`bench_fig15_convergence`,
/// `bench_ablation_protocol`) and the sweep engine conversion — it used to
/// be copy-pasted between them with drifting seed formulas. Seeds are
/// derived as `base.seed = k * seed_mul + seed_add` for k = 1..seeds, so
/// existing bench output stays byte-identical.
struct ConvergenceSweep {
  SlotNetwork::Params base{};
  std::int64_t settle_slots = 3;   ///< slots before RESET (beacon pipeline)
  std::int64_t max_slots = 40000;  ///< censoring bound
  std::uint64_t seed_mul = 7919;
  std::uint64_t seed_add = 13;
};

/// Runs one first-convergence trial: settle, RESET, count slots to a full
/// convergence window. nullopt when censored at `max_slots`.
std::optional<std::int64_t> convergence_trial(const ExperimentConfig& cfg,
                                              const SlotNetwork::Params& p,
                                              std::int64_t settle_slots,
                                              std::int64_t max_slots);

/// `seeds` first-convergence trials of `cfg` on the engine. Returns
/// slots-to-convergence per seed, in seed order, with censored trials as
/// NaN (see sim::count_censored / the NaN-skipping reducers). Results are
/// bit-identical across `jobs` settings: every trial's outcome is a pure
/// function of its derived seed.
std::vector<double> convergence_times(sim::SweepEngine& engine,
                                      const ExperimentConfig& cfg,
                                      const ConvergenceSweep& sweep,
                                      int seeds);

}  // namespace arachnet::core
