#include "arachnet/core/convergence_sweep.hpp"

#include <cmath>
#include <limits>

namespace arachnet::core {

std::optional<std::int64_t> convergence_trial(const ExperimentConfig& cfg,
                                              const SlotNetwork::Params& p,
                                              std::int64_t settle_slots,
                                              std::int64_t max_slots) {
  SlotNetwork net{p, cfg.tag_specs()};
  net.run(settle_slots);
  return net.measure_convergence(max_slots);
}

std::vector<double> convergence_times(sim::SweepEngine& engine,
                                      const ExperimentConfig& cfg,
                                      const ConvergenceSweep& sweep,
                                      int seeds) {
  return engine.run_grid<double>(
      1, static_cast<std::size_t>(seeds),
      [&](const sim::TrialSpec& t, sim::Rng&, sim::TrialScratch&) {
        SlotNetwork::Params p = sweep.base;
        p.seed = (static_cast<std::uint64_t>(t.seed) + 1) * sweep.seed_mul +
                 sweep.seed_add;
        const auto conv =
            convergence_trial(cfg, p, sweep.settle_slots, sweep.max_slots);
        return conv ? static_cast<double>(*conv)
                    : std::numeric_limits<double>::quiet_NaN();
      });
}

}  // namespace arachnet::core
