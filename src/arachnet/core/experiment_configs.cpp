#include "arachnet/core/experiment_configs.hpp"

#include <stdexcept>

namespace arachnet::core {

std::vector<SlotNetwork::TagSpec> ExperimentConfig::tag_specs() const {
  std::vector<SlotNetwork::TagSpec> specs;
  int tid = 1;
  const auto add = [&](int count, int period) {
    for (int i = 0; i < count; ++i) {
      SlotNetwork::TagSpec spec;
      spec.tid = tid++;
      spec.period = period;
      specs.push_back(spec);
    }
  };
  add(tags_period_4, 4);
  add(tags_period_8, 8);
  add(tags_period_16, 16);
  add(tags_period_32, 32);
  return specs;
}

const std::vector<ExperimentConfig>& table3_configs() {
  static const std::vector<ExperimentConfig> configs{
      //        name  p4 p8 p16 p32
      {"c1", 0, 0, 0, 12},   // U = 0.375
      {"c2", 0, 0, 12, 0},   // U = 0.75
      {"c3", 1, 2, 2, 7},    // U = 0.84375 (Fig. 16 upper bound)
      {"c4", 0, 6, 0, 6},    // U = 0.9375
      {"c5", 1, 3, 4, 4},    // U = 1.0
      {"c6", 0, 1, 10, 0},   // U = 0.75, 11 tags
      {"c7", 1, 1, 4, 4},    // U = 0.75, 10 tags
      {"c8", 1, 1, 6, 0},    // U = 0.75, 8 tags
      {"c9", 2, 0, 4, 0},    // U = 0.75, 6 tags
  };
  return configs;
}

const ExperimentConfig& table3_config(const std::string& name) {
  for (const auto& cfg : table3_configs()) {
    if (cfg.name == name) return cfg;
  }
  throw std::out_of_range("unknown Table-3 config: " + name);
}

}  // namespace arachnet::core
