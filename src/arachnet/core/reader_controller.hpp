#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "arachnet/core/protocol.hpp"
#include "arachnet/phy/packet.hpp"

namespace arachnet::core {

/// What the reader observed during one uplink slot.
struct SlotObservation {
  /// TID of a successfully decoded packet, if any (capture effect may
  /// yield one even during collisions).
  std::optional<int> decoded_tid;
  /// IQ-cluster collision detector verdict for the slot (Sec. 5.3).
  bool collision_detected = false;
};

/// Reader-side MAC logic (Sec. 5.3-5.6): slot bookkeeping, ACK/NACK
/// decisions, the EMPTY-flag predictor of Eq. 4, future-collision
/// avoidance for late-arriving tags, and convergence / utilization
/// statistics.
///
/// The reader knows every deployed tag's transmission period (Sec. 5.5:
/// "All tags periods are known to the reader").
class ReaderController {
 public:
  struct Config {
    bool future_collision_avoidance = true;
    int nack_threshold = kDefaultNackThreshold;
    int convergence_window = kConvergenceWindow;
    int stats_window = 32;  ///< window for non-empty / collision ratios
  };

  ReaderController();  // default config
  explicit ReaderController(Config config);

  /// Declares a deployed tag and its period.
  void register_tag(int tid, int period);

  /// Withdraws a tag (fleet handoff / departure): its belief entry and
  /// pending victim NACKs are forgotten so future-collision avoidance no
  /// longer plans around it. Unknown tids are a no-op.
  void unregister_tag(int tid);

  /// Closes slot `slot_index` with what was received and returns the
  /// beacon command to broadcast for the next slot.
  phy::DlCommand close_slot(const SlotObservation& obs);

  /// Commands a protocol reset: the next beacon carries RESET and all
  /// reader-side state restarts (used at the start of each convergence
  /// measurement).
  void request_reset();

  /// Current slot index (number of slots closed since start/reset).
  std::int64_t slot_index() const noexcept { return slot_; }

  /// True once `convergence_window` consecutive collision-free slots have
  /// been observed since the last reset.
  bool converged() const noexcept {
    return clean_streak_ >= config_.convergence_window;
  }

  /// Slots from reset until convergence (valid once converged()).
  std::int64_t convergence_slots() const noexcept { return converged_at_; }

  /// Windowed statistics (Sec. 6.4 Fig. 16).
  double non_empty_ratio() const;
  double collision_ratio() const;

  /// Cumulative statistics since reset.
  std::int64_t slots_with_packet() const noexcept { return total_non_empty_; }
  std::int64_t slots_with_collision() const noexcept { return total_collisions_; }

  const Config& config() const noexcept { return config_; }

 private:
  struct TagInfo {
    int period = 0;
    std::optional<int> settled_offset;  ///< offset the reader believes settled
    int force_nacks = 0;  ///< pending forced NACKs (Sec. 5.6 victim logic)
    std::int64_t last_seen_slot = -1;   ///< last clean decode at that offset
  };

  /// A settled belief is trusted only while the owner keeps showing up;
  /// a tag silent for this many of its periods is treated as migrated and
  /// its entry expires.
  static constexpr int kBeliefExpiryPeriods = 2;

  bool belief_live(const TagInfo& info) const;

  bool predict_empty_next_slot() const;
  void update_future_collision_avoidance(int tid, std::int64_t slot);
  bool offset_conflicts(int period_a, int offset_a, int period_b,
                        int offset_b) const;
  std::vector<int> viable_offsets(int tid) const;

  Config config_;
  std::map<int, TagInfo> tags_;
  std::int64_t slot_ = 0;
  bool send_reset_ = false;

  // Reception history: for Eq. 4 we must answer "did tag i's packet
  // arrive in slot s - p_i?" for p up to the largest period. Stores the
  // decoded TID per slot (-1 = none).
  std::deque<int> received_history_;  // front = oldest
  std::size_t history_capacity_ = 64;

  // Statistics.
  std::deque<bool> window_non_empty_;
  std::deque<bool> window_collision_;
  std::int64_t total_non_empty_ = 0;
  std::int64_t total_collisions_ = 0;
  std::int64_t clean_streak_ = 0;
  std::int64_t converged_at_ = -1;
};

}  // namespace arachnet::core
