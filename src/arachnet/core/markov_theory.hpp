#pragma once

#include <cstdint>
#include <vector>

namespace arachnet::core {

/// Exact Appendix-C analysis for small networks: constructs the absorbing
/// Markov chain of the distributed slot allocation (state = global slot
/// phase + each tag's {MIGRATE/SETTLE, offset, NACK counter}), verifies
/// absorption, and computes expected slots-to-absorption in closed form
/// via the fundamental matrix.
///
/// Modelling assumptions mirror Appendix C: no beacon loss, no capture,
/// perfect collision detection, no EMPTY gating — the idealized chain
/// whose absorption the paper proves. State spaces grow as
/// (2 * p * N)^tags * hyperperiod, so this is for 2-4 small-period tags;
/// the simulator covers the rest.
class MarkovAnalysis {
 public:
  struct Config {
    std::vector<int> periods;  ///< power-of-two period per tag
    int nack_threshold = 3;    ///< N
  };

  explicit MarkovAnalysis(Config config);

  /// Total number of states (phase x per-tag product).
  std::size_t state_count() const noexcept { return state_count_; }

  /// Number of absorbing states (all settled, pairwise conflict-free, with
  /// zeroed counters).
  std::size_t absorbing_count() const;

  /// True when every state can reach an absorbing state (the chain is
  /// absorbing — Lemma 3 / Theorem 4).
  bool is_absorbing_chain() const;

  /// Expected slots to absorption starting from the uniform distribution
  /// over phase-0 all-MIGRATE states (a fresh contention start).
  double expected_absorption_time() const;

  /// Expected slots to absorption from one specific transient start
  /// (index into the internal state enumeration).
  double expected_absorption_from(std::size_t state) const;

  /// Decoded view of a state for tests/diagnostics.
  struct TagView {
    bool settled;
    int offset;
    int counter;
  };
  struct StateView {
    int phase;
    std::vector<TagView> tags;
  };
  StateView decode(std::size_t state) const;
  bool is_absorbing(std::size_t state) const;

  const Config& config() const noexcept { return config_; }

 private:
  struct Transition {
    std::size_t to;
    double probability;
  };

  std::size_t encode(const StateView& view) const;
  std::vector<Transition> transitions_from(std::size_t state) const;
  void ensure_solved() const;

  Config config_;
  int hyperperiod_ = 1;
  std::size_t per_tag_states_ = 0;
  std::size_t state_count_ = 0;

  // Lazily computed expected absorption times for all transient states.
  mutable std::vector<double> absorption_time_;
  mutable std::vector<std::size_t> transient_index_;  // state -> row or npos
  mutable bool solved_ = false;
};

}  // namespace arachnet::core
