#pragma once

#include <string>
#include <vector>

#include "arachnet/core/slot_network.hpp"

namespace arachnet::core {

/// One of the paper's Table-3 transmission patterns.
struct ExperimentConfig {
  std::string name;        ///< "c1" .. "c9"
  int tags_period_4 = 0;   ///< tag counts per permissible period
  int tags_period_8 = 0;
  int tags_period_16 = 0;
  int tags_period_32 = 0;

  int tag_count() const noexcept {
    return tags_period_4 + tags_period_8 + tags_period_16 + tags_period_32;
  }
  double utilization() const noexcept {
    return tags_period_4 / 4.0 + tags_period_8 / 8.0 + tags_period_16 / 16.0 +
           tags_period_32 / 32.0;
  }

  /// Expands into tag specs with TIDs 1..N, shortest periods first.
  std::vector<SlotNetwork::TagSpec> tag_specs() const;
};

/// The nine patterns of Table 3. The per-period counts are reconstructed
/// from the printed tag totals and slot utilizations (uniquely determined;
/// the OCR of the paper dropped one entry). c1-c5 fix 12 tags and sweep
/// utilization 0.375 -> 1.0; c2, c6-c9 fix utilization 0.75 and sweep the
/// period mix.
const std::vector<ExperimentConfig>& table3_configs();

/// Lookup by name ("c1".."c9"); throws on unknown name.
const ExperimentConfig& table3_config(const std::string& name);

}  // namespace arachnet::core
