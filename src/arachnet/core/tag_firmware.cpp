#include "arachnet/core/tag_firmware.hpp"

#include <utility>

namespace arachnet::core {

TagFirmware::TagFirmware(sim::EventQueue* queue, Params params,
                         std::uint64_t seed)
    : queue_(queue),
      params_(params),
      rng_(seed),
      harvester_(params.harvester),
      mcu_(queue, params.mcu, sim::Rng{seed ^ 0x9e3779b97f4a7c15ULL}),
      dl_demod_(params.dl),
      protocol_(params.protocol, seed ^ 0xdeadbeefULL) {}

void TagFirmware::set_link(double pzt_peak_voltage) {
  harvester_.set_pzt_peak_voltage(pzt_peak_voltage);
}

double TagFirmware::mcu_load_amps() {
  if (!mcu_.powered()) return 0.0;
  const auto& power = mcu_.meter().model();
  return power.total_current_ua(mcu_.mode()) * 1e-6;
}

void TagFirmware::start() {
  queue_->schedule_in(params_.energy_step_s, [this] { energy_tick(); });
}

void TagFirmware::energy_tick() {
  harvester_.set_mcu_load(mcu_load_amps());
  harvester_.step(params_.energy_step_s);
  mcu_.set_supply(harvester_.cap_voltage());

  const bool powered = harvester_.mcu_powered();
  if (powered && !was_powered_) {
    // Activation (or re-activation after a brownout): the protocol state
    // machine restarts as a newly arriving tag (Sec. 5.5).
    mcu_.power_up();
    protocol_.reset();
    arm_beacon_timeout();
  } else if (!powered && was_powered_) {
    ++brownouts_;
    mcu_.power_down();
    transmitting_ = false;
    queue_->cancel(beacon_timeout_);
  }
  was_powered_ = powered;

  queue_->schedule_in(params_.energy_step_s, [this] { energy_tick(); });
}

void TagFirmware::arm_beacon_timeout() {
  queue_->cancel(beacon_timeout_);
  beacon_timeout_ =
      mcu_.schedule_timeout(params_.beacon_timeout_s, [this] {
        on_beacon_timeout();
      });
}

void TagFirmware::on_beacon_timeout() {
  if (!mcu_.powered()) return;
  protocol_.on_beacon_loss();
  arm_beacon_timeout();
}

void TagFirmware::deliver_beacon(const phy::DlBeacon& beacon) {
  if (!mcu_.powered() || transmitting_) return;

  // Every DL bit edge wakes the CPU: the whole beacon is RX time.
  const double rx_duration = dl_demod_.beacon_duration(beacon);
  mcu_.set_mode(energy::TagMode::kRx);
  queue_->schedule_in(rx_duration, [this, beacon] {
    if (!mcu_.powered()) return;
    mcu_.set_mode(energy::TagMode::kIdle);

    const auto decoded =
        dl_demod_.demodulate(beacon, harvester_.cap_voltage(), rng_);
    if (!decoded || !(*decoded == beacon)) {
      ++beacons_lost_;
      // A lost beacon is handled by the timeout, not here: the firmware
      // simply never sees it.
      return;
    }
    ++beacons_decoded_;
    arm_beacon_timeout();

    const bool transmit = protocol_.on_beacon(decoded->cmd);
    if (transmit) {
      // Politely wait 20 ms after the beacon before replying (Fig. 14).
      queue_->schedule_in(kTagReplyDelay, [this] { begin_transmission(); });
    }
  });
}

void TagFirmware::begin_transmission() {
  if (!mcu_.powered()) return;
  transmitting_ = true;
  mcu_.set_mode(energy::TagMode::kTx);

  phy::UlPacket pkt;
  pkt.tid = static_cast<std::uint8_t>(params_.tid & 0x0F);
  pkt.payload = sensor_ ? (sensor_() & 0x0FFF) : 0;
  const double duration = phy::ul_packet_duration(params_.ul_chip_rate);
  ++packets_sent_;
  if (transmit_) transmit_(pkt, duration);

  queue_->schedule_in(duration, [this] { end_transmission(); });
}

void TagFirmware::end_transmission() {
  transmitting_ = false;
  if (!mcu_.powered()) return;
  mcu_.set_mode(energy::TagMode::kIdle);
}

}  // namespace arachnet::core
