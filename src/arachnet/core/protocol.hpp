#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace arachnet::core {

/// Default MAC timing: the paper sets the slot duration empirically to 1 s
/// (Sec. 6.4) and the consecutive-NACK threshold N to 3 (Sec. 5.3).
inline constexpr double kDefaultSlotSeconds = 1.0;
inline constexpr int kDefaultNackThreshold = 3;

/// The reader declares convergence after this many consecutive
/// collision-free slots (Sec. 6.4, "first convergence time").
inline constexpr int kConvergenceWindow = 32;

/// Tag waits this long after a beacon before backscattering its packet
/// (visible in the Fig. 14 waveform).
inline constexpr double kTagReplyDelay = 20e-3;

/// True if `p` is a permissible transmission period (a power of two,
/// Sec. 5.2: P = {2^k}).
constexpr bool is_permissible_period(int p) noexcept {
  return p > 0 && (p & (p - 1)) == 0;
}

/// Slot utilization of a set of tag periods (Eq. 1): U = sum 1/p_i.
double slot_utilization(const std::vector<int>& periods);

/// Validates a period or throws.
inline void require_permissible(int period) {
  if (!is_permissible_period(period)) {
    throw std::invalid_argument("period must be a power of two");
  }
}

}  // namespace arachnet::core
