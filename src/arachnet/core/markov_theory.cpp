#include "arachnet/core/markov_theory.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "arachnet/core/protocol.hpp"
#include "arachnet/sim/linalg.hpp"

namespace arachnet::core {

MarkovAnalysis::MarkovAnalysis(Config config) : config_(config) {
  if (config_.periods.empty() || config_.periods.size() > 4) {
    throw std::invalid_argument("MarkovAnalysis: 1-4 tags supported");
  }
  if (config_.nack_threshold < 1) {
    throw std::invalid_argument("MarkovAnalysis: N must be >= 1");
  }
  state_count_ = 1;
  for (int p : config_.periods) {
    require_permissible(p);
    hyperperiod_ = std::max(hyperperiod_, p);
    // Canonical per-tag states: MIGRATE x offset, SETTLE x offset x counter.
    const std::size_t per_tag =
        static_cast<std::size_t>(p) * (1 + config_.nack_threshold);
    state_count_ *= per_tag;
  }
  state_count_ *= static_cast<std::size_t>(hyperperiod_);
  if (state_count_ > 200000) {
    throw std::invalid_argument("MarkovAnalysis: state space too large");
  }
}

MarkovAnalysis::StateView MarkovAnalysis::decode(std::size_t state) const {
  StateView view;
  view.phase = static_cast<int>(state % static_cast<std::size_t>(hyperperiod_));
  state /= static_cast<std::size_t>(hyperperiod_);
  for (int p : config_.periods) {
    const std::size_t per_tag =
        static_cast<std::size_t>(p) * (1 + config_.nack_threshold);
    const std::size_t code = state % per_tag;
    state /= per_tag;
    TagView tag;
    if (code < static_cast<std::size_t>(p)) {
      tag.settled = false;
      tag.offset = static_cast<int>(code);
      tag.counter = 0;
    } else {
      const std::size_t s = code - static_cast<std::size_t>(p);
      tag.settled = true;
      tag.offset = static_cast<int>(s / config_.nack_threshold);
      tag.counter = static_cast<int>(s % config_.nack_threshold);
    }
    view.tags.push_back(tag);
  }
  return view;
}

std::size_t MarkovAnalysis::encode(const StateView& view) const {
  std::size_t state = 0;
  std::size_t radix = 1;
  std::size_t acc = 0;
  for (std::size_t i = 0; i < config_.periods.size(); ++i) {
    const int p = config_.periods[i];
    const std::size_t per_tag =
        static_cast<std::size_t>(p) * (1 + config_.nack_threshold);
    const auto& tag = view.tags[i];
    std::size_t code;
    if (!tag.settled) {
      code = static_cast<std::size_t>(tag.offset);
    } else {
      code = static_cast<std::size_t>(p) +
             static_cast<std::size_t>(tag.offset) * config_.nack_threshold +
             static_cast<std::size_t>(tag.counter);
    }
    acc += code * radix;
    radix *= per_tag;
  }
  state = static_cast<std::size_t>(view.phase) +
          static_cast<std::size_t>(hyperperiod_) * acc;
  (void)radix;
  return state;
}

bool MarkovAnalysis::is_absorbing(std::size_t state) const {
  const auto view = decode(state);
  for (const auto& tag : view.tags) {
    if (!tag.settled || tag.counter != 0) return false;
  }
  for (std::size_t a = 0; a < view.tags.size(); ++a) {
    for (std::size_t b = a + 1; b < view.tags.size(); ++b) {
      const int m = std::min(config_.periods[a], config_.periods[b]);
      if ((view.tags[a].offset % m) == (view.tags[b].offset % m)) return false;
    }
  }
  return true;
}

std::size_t MarkovAnalysis::absorbing_count() const {
  std::size_t count = 0;
  for (std::size_t s = 0; s < state_count_; ++s) {
    if (is_absorbing(s)) ++count;
  }
  return count;
}

std::vector<MarkovAnalysis::Transition> MarkovAnalysis::transitions_from(
    std::size_t state) const {
  const auto view = decode(state);
  const int next_phase = (view.phase + 1) % hyperperiod_;

  // Who transmits in this slot?
  std::vector<std::size_t> transmitters;
  for (std::size_t i = 0; i < view.tags.size(); ++i) {
    if (view.phase % config_.periods[i] == view.tags[i].offset) {
      transmitters.push_back(i);
    }
  }

  StateView base = view;
  base.phase = next_phase;

  if (transmitters.size() <= 1) {
    if (transmitters.size() == 1) {
      auto& tag = base.tags[transmitters.front()];
      tag.settled = true;  // ACK: migrate settles, settled resets counter
      tag.counter = 0;
    }
    return {{encode(base), 1.0}};
  }

  // Collision: every transmitter gets a NACK. Tags that end up re-picking
  // offsets do so uniformly and independently -> enumerate the product.
  std::vector<std::size_t> repickers;
  for (std::size_t i : transmitters) {
    auto& tag = base.tags[i];
    if (!tag.settled) {
      repickers.push_back(i);
    } else if (tag.counter + 1 >= config_.nack_threshold) {
      tag.settled = false;
      tag.counter = 0;
      repickers.push_back(i);
    } else {
      ++tag.counter;
    }
  }

  std::vector<Transition> out;
  std::vector<int> choice(repickers.size(), 0);
  double probability = 1.0;
  for (std::size_t i : repickers) {
    probability /= static_cast<double>(config_.periods[i]);
  }
  for (;;) {
    StateView next = base;
    for (std::size_t k = 0; k < repickers.size(); ++k) {
      next.tags[repickers[k]].offset = choice[k];
    }
    out.push_back({encode(next), probability});
    // Advance the mixed-radix counter over offset choices.
    std::size_t k = 0;
    for (; k < repickers.size(); ++k) {
      if (++choice[k] < config_.periods[repickers[k]]) break;
      choice[k] = 0;
    }
    if (k == repickers.size()) break;
    if (repickers.empty()) break;
  }
  if (repickers.empty()) out = {{encode(base), 1.0}};
  return out;
}

bool MarkovAnalysis::is_absorbing_chain() const {
  // Reverse BFS from the absorbing class: every state must be marked.
  std::vector<std::vector<std::size_t>> reverse(state_count_);
  std::deque<std::size_t> frontier;
  std::vector<char> reaches(state_count_, 0);
  for (std::size_t s = 0; s < state_count_; ++s) {
    if (is_absorbing(s)) {
      reaches[s] = 1;
      frontier.push_back(s);
      continue;
    }
    for (const auto& t : transitions_from(s)) {
      reverse[t.to].push_back(s);
    }
  }
  while (!frontier.empty()) {
    const auto s = frontier.front();
    frontier.pop_front();
    for (auto prev : reverse[s]) {
      if (!reaches[prev]) {
        reaches[prev] = 1;
        frontier.push_back(prev);
      }
    }
  }
  return std::all_of(reaches.begin(), reaches.end(),
                     [](char c) { return c != 0; });
}

void MarkovAnalysis::ensure_solved() const {
  if (solved_) return;
  constexpr auto npos = static_cast<std::size_t>(-1);
  transient_index_.assign(state_count_, npos);
  std::vector<std::size_t> transient;
  for (std::size_t s = 0; s < state_count_; ++s) {
    if (!is_absorbing(s)) {
      transient_index_[s] = transient.size();
      transient.push_back(s);
    }
  }
  const std::size_t n = transient.size();
  // (I - Q) t = 1  with Q the transient-to-transient transition block.
  sim::Matrix a{n, n};
  std::vector<double> rhs(n, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    a.at(r, r) = 1.0;
    for (const auto& t : transitions_from(transient[r])) {
      if (transient_index_[t.to] != npos) {
        a.at(r, transient_index_[t.to]) -= t.probability;
      }
    }
  }
  const auto t = sim::solve(std::move(a), std::move(rhs));
  absorption_time_.assign(state_count_, 0.0);
  for (std::size_t r = 0; r < n; ++r) absorption_time_[transient[r]] = t[r];
  solved_ = true;
}

double MarkovAnalysis::expected_absorption_from(std::size_t state) const {
  ensure_solved();
  return absorption_time_.at(state);
}

double MarkovAnalysis::expected_absorption_time() const {
  ensure_solved();
  // Uniform over phase-0 states with every tag in MIGRATE (fresh start).
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t s = 0; s < state_count_; ++s) {
    const auto view = decode(s);
    if (view.phase != 0) continue;
    bool all_migrate = true;
    for (const auto& tag : view.tags) all_migrate &= !tag.settled;
    if (!all_migrate) continue;
    sum += absorption_time_[s];
    ++count;
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace arachnet::core
