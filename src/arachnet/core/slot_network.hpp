#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arachnet/core/reader_controller.hpp"
#include "arachnet/core/tag_state_machine.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::core {

/// Slot-granular co-simulation of one reader and many tags running the
/// distributed slot-allocation protocol. PHY behaviour is abstracted into
/// per-tag loss probabilities and reader-side detector characteristics,
/// all of which are calibrated from the waveform-level experiments.
class SlotNetwork {
 public:
  struct TagSpec {
    int tid = 0;
    int period = 4;
    /// Probability a beacon broadcast is not decoded by this tag.
    double dl_loss = 0.001;
    /// Probability a clean (single-transmitter) UL packet fails decoding.
    double ul_loss = 0.002;
    /// Slot at which the tag becomes active (late arrival / charging
    /// delay, Sec. 5.5). 0 = active from the start.
    std::int64_t activation_slot = 0;
  };

  struct Params {
    ReaderController::Config reader{};
    int nack_threshold = kDefaultNackThreshold;
    bool beacon_loss_migrate = true;  ///< Sec. 5.4 refinement toggle
    bool empty_gating = true;         ///< Sec. 5.5 refinement toggle
    /// Probability the capture effect lets the reader decode one packet
    /// during a collision.
    double capture_prob = 0.3;
    /// Sensitivity of the IQ-cluster collision detector.
    double collision_detect_prob = 0.98;
    /// False-positive rate of the detector on clean slots.
    double false_collision_prob = 0.001;
    std::uint64_t seed = 1;
    /// Optional metrics registry (must outlive the network). Registers
    /// slot-outcome counters (`slot.{empty,success,collision,lost}`) and
    /// the `slot.convergence_slots` histogram. nullptr = no
    /// instrumentation.
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  /// What happened in one simulated slot.
  struct SlotRecord {
    std::int64_t slot = 0;
    std::vector<int> transmitters;
    std::optional<int> decoded_tid;
    bool collision_truth = false;     ///< >= 2 transmitters
    bool collision_detected = false;  ///< reader's verdict
    phy::DlCommand beacon;            ///< beacon opening the NEXT slot
  };

  SlotNetwork(Params params, std::vector<TagSpec> tags);

  /// Admits a tag mid-run (fleet handoff arrival / late deployment). The
  /// tag registers with the reader immediately and activates at
  /// max(spec.activation_slot, current slot). Duplicate tids throw.
  void add_tag(const TagSpec& spec);

  /// Withdraws a tag mid-run (fleet handoff departure / battery death):
  /// removed from the air interface and unregistered from the reader so
  /// its slot can be reclaimed. Returns false for an unknown tid.
  bool remove_tag(int tid);

  /// Whether `tid` is currently deployed in this network.
  bool has_tag(int tid) const noexcept;

  std::size_t tag_count() const noexcept { return tags_.size(); }

  /// Simulates one slot.
  SlotRecord step();

  /// Runs `n` slots; returns the records.
  std::vector<SlotRecord> run(std::int64_t n);

  /// Broadcasts RESET and runs until the reader sees a full convergence
  /// window. Returns slots-to-convergence, or nullopt after `max_slots`.
  std::optional<std::int64_t> measure_convergence(std::int64_t max_slots);

  ReaderController& reader() noexcept { return reader_; }
  const TagStateMachine& tag_machine(int tid) const;

  /// Ground-truth check: all active tags settled and mutually
  /// collision-free (the absorbing state of Appendix C).
  bool all_settled_collision_free() const;

  std::int64_t slots_elapsed() const noexcept { return slot_; }

 private:
  struct TagRuntime {
    TagSpec spec;
    TagStateMachine machine;
    bool active = false;
  };

  Params params_;
  sim::Rng rng_;
  ReaderController reader_;
  std::vector<TagRuntime> tags_;
  phy::DlCommand current_beacon_;
  std::int64_t slot_ = 0;
  // Registry instruments (nullable; bound once in the constructor).
  telemetry::Counter* c_empty_ = nullptr;
  telemetry::Counter* c_success_ = nullptr;
  telemetry::Counter* c_collision_ = nullptr;
  telemetry::Counter* c_lost_ = nullptr;
  telemetry::LatencyHistogram* h_convergence_ = nullptr;
};

}  // namespace arachnet::core
