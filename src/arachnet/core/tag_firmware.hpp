#pragma once

#include <functional>
#include <optional>

#include "arachnet/core/protocol.hpp"
#include "arachnet/core/tag_state_machine.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/mcu/dl_demodulator.hpp"
#include "arachnet/mcu/msp430.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/sim/event_queue.hpp"

namespace arachnet::core {

/// A complete battery-free tag in the event-driven co-simulation: the
/// harvesting chain charges the supercap from the acoustic link, the
/// cutoff gates the MCU rail, and the interrupt-driven firmware runs the
/// network state machine, waking only for DL bits (RX), UL chips (TX), or
/// the beacon-loss timeout — reproducing the duty-cycled power profile of
/// Table 2.
class TagFirmware {
 public:
  struct Params {
    int tid = 1;
    TagStateMachine::Config protocol{};
    double ul_chip_rate = phy::kDefaultUlRawBitRate;
    mcu::DlDemodulator::Params dl{};
    energy::Harvester::Params harvester{};
    mcu::Msp430::Params mcu{};
    /// Harvester integration step.
    double energy_step_s = 10e-3;
    /// Beacon-loss timeout: expected slot period plus margin.
    double beacon_timeout_s = 1.5 * kDefaultSlotSeconds;
  };

  /// Sensor callback supplying the 12-bit payload for a transmission.
  using SensorFn = std::function<std::uint16_t()>;
  /// Callback when the tag backscatters a packet (start time, packet).
  using TransmitFn = std::function<void(const phy::UlPacket&, double duration)>;

  TagFirmware(sim::EventQueue* queue, Params params, std::uint64_t seed);

  /// Sets the PZT open-circuit voltage from the deployment link budget.
  void set_link(double pzt_peak_voltage);

  /// Installs the sensing and transmit hooks.
  void on_transmit(TransmitFn fn) { transmit_ = std::move(fn); }
  void set_sensor(SensorFn fn) { sensor_ = std::move(fn); }

  /// Starts the energy loop (charging from t = now).
  void start();

  /// Delivers a reader beacon broadcast. The firmware spends the beacon's
  /// on-air time in RX mode (every DL bit wakes the CPU), then runs the
  /// network operation. Does nothing while the MCU rail is down.
  void deliver_beacon(const phy::DlBeacon& beacon);

  bool activated() const noexcept { return harvester_.mcu_powered(); }
  double cap_voltage() const noexcept { return harvester_.cap_voltage(); }
  const TagStateMachine& protocol() const noexcept { return protocol_; }
  mcu::Msp430& mcu() noexcept { return mcu_; }
  const energy::Harvester& harvester() const noexcept { return harvester_; }

  /// Count of beacons decoded / lost and packets sent (diagnostics).
  std::int64_t beacons_decoded() const noexcept { return beacons_decoded_; }
  std::int64_t beacons_lost() const noexcept { return beacons_lost_; }
  std::int64_t packets_sent() const noexcept { return packets_sent_; }
  std::int64_t brownouts() const noexcept { return brownouts_; }

  const Params& params() const noexcept { return params_; }

 private:
  void energy_tick();
  void arm_beacon_timeout();
  void on_beacon_timeout();
  void begin_transmission();
  void end_transmission();
  double mcu_load_amps();

  sim::EventQueue* queue_;
  Params params_;
  sim::Rng rng_;
  energy::Harvester harvester_;
  mcu::Msp430 mcu_;
  mcu::DlDemodulator dl_demod_;
  TagStateMachine protocol_;
  TransmitFn transmit_;
  SensorFn sensor_;
  sim::EventId beacon_timeout_{};
  bool transmitting_ = false;
  bool was_powered_ = false;
  std::int64_t beacons_decoded_ = 0;
  std::int64_t beacons_lost_ = 0;
  std::int64_t packets_sent_ = 0;
  std::int64_t brownouts_ = 0;
};

}  // namespace arachnet::core
