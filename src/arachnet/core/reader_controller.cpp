#include "arachnet/core/reader_controller.hpp"

#include <algorithm>
#include <limits>

namespace arachnet::core {

ReaderController::ReaderController() : ReaderController(Config{}) {}

ReaderController::ReaderController(Config config) : config_(config) {}

void ReaderController::register_tag(int tid, int period) {
  require_permissible(period);
  tags_[tid] = TagInfo{period, std::nullopt, 0};
  history_capacity_ = std::max<std::size_t>(
      history_capacity_, 2 * static_cast<std::size_t>(period));
}

void ReaderController::unregister_tag(int tid) { tags_.erase(tid); }

bool ReaderController::offset_conflicts(int period_a, int offset_a,
                                        int period_b, int offset_b) const {
  // Periods are powers of two, so residue classes nest: two schedules
  // collide iff their offsets agree modulo the smaller period.
  const int m = std::min(period_a, period_b);
  return (offset_a % m) == (offset_b % m);
}

bool ReaderController::belief_live(const TagInfo& info) const {
  if (!info.settled_offset) return false;
  return slot_ - info.last_seen_slot <=
         static_cast<std::int64_t>(kBeliefExpiryPeriods) * info.period;
}

std::vector<int> ReaderController::viable_offsets(int tid) const {
  const auto it = tags_.find(tid);
  if (it == tags_.end()) return {};
  const int period = it->second.period;
  std::vector<int> viable;
  for (int b = 0; b < period; ++b) {
    bool ok = true;
    for (const auto& [other_tid, info] : tags_) {
      if (other_tid == tid || !belief_live(info)) continue;
      if (offset_conflicts(period, b, info.period, *info.settled_offset)) {
        ok = false;
        break;
      }
    }
    if (ok) viable.push_back(b);
  }
  return viable;
}

void ReaderController::update_future_collision_avoidance(int tid,
                                                         std::int64_t slot) {
  auto& info = tags_.at(tid);
  const int candidate =
      static_cast<int>(slot % static_cast<std::int64_t>(info.period));
  const auto viable = viable_offsets(tid);
  if (!viable.empty()) return;  // the tag can still find a free offset

  // Sec. 5.6: no viable option for the new tag. Pick the offset whose
  // conflicting settled tags are fewest (the "less crowded" choice) and
  // force those partially settled tags to migrate with successive NACKs.
  int best_offset = candidate;
  std::size_t best_conflicts = std::numeric_limits<std::size_t>::max();
  std::vector<int> best_victims;
  for (int b = 0; b < info.period; ++b) {
    std::vector<int> victims;
    for (const auto& [other_tid, other] : tags_) {
      if (other_tid == tid || !belief_live(other)) continue;
      if (offset_conflicts(info.period, b, other.period,
                           *other.settled_offset)) {
        victims.push_back(other_tid);
      }
    }
    if (victims.size() < best_conflicts) {
      best_conflicts = victims.size();
      best_offset = b;
      best_victims = victims;
    }
  }
  (void)best_offset;
  for (int victim : best_victims) {
    auto& v = tags_.at(victim);
    v.force_nacks = config_.nack_threshold;
  }
}

phy::DlCommand ReaderController::close_slot(const SlotObservation& obs) {
  const bool collision = obs.collision_detected;
  const bool decoded = obs.decoded_tid.has_value();

  // ---- Feedback decision -------------------------------------------
  bool ack = decoded && !collision;
  if (ack) {
    const int tid = *obs.decoded_tid;
    const auto it = tags_.find(tid);
    if (it != tags_.end()) {
      auto& info = it->second;
      const int candidate =
          static_cast<int>(slot_ % static_cast<std::int64_t>(info.period));
      if (info.force_nacks > 0) {
        // Sec. 5.6: forced migration of a victim tag.
        ack = false;
        if (--info.force_nacks == 0) info.settled_offset.reset();
      } else if (info.settled_offset && *info.settled_offset == candidate) {
        // Steady settled transmission.
        info.last_seen_slot = slot_;
      } else {
        // New or migrated tag: only admit it to a viable offset.
        bool viable = true;
        for (const auto& [other_tid, other] : tags_) {
          if (other_tid == tid || !belief_live(other)) continue;
          if (offset_conflicts(info.period, candidate, other.period,
                               *other.settled_offset)) {
            viable = false;
            break;
          }
        }
        if (viable) {
          info.settled_offset = candidate;
          info.last_seen_slot = slot_;
        } else if (config_.future_collision_avoidance) {
          ack = false;
          // Victim eviction (Sec. 5.6) targets the late-arrival case: a
          // stable schedule with no room. During initial contention the
          // allocation map is churning anyway, and evicting settled tags
          // would only prolong convergence — so only act on a quiet
          // channel.
          if (clean_streak_ >= config_.convergence_window / 4) {
            update_future_collision_avoidance(tid, slot_);
          }
        } else {
          // Without the refinement the reader trusts the capture-effect
          // decode and acks anyway (the future collision will occur).
          info.settled_offset = candidate;
        }
      }
    }
  }

  // ---- History and statistics ----------------------------------------
  received_history_.push_back(decoded ? *obs.decoded_tid : -1);
  while (received_history_.size() > history_capacity_) {
    received_history_.pop_front();
  }
  const bool non_empty = decoded || collision;
  window_non_empty_.push_back(non_empty);
  window_collision_.push_back(collision);
  while (window_non_empty_.size() >
         static_cast<std::size_t>(config_.stats_window)) {
    window_non_empty_.pop_front();
    window_collision_.pop_front();
  }
  total_non_empty_ += non_empty ? 1 : 0;
  total_collisions_ += collision ? 1 : 0;
  clean_streak_ = collision ? 0 : clean_streak_ + 1;
  if (converged_at_ < 0 && clean_streak_ >= config_.convergence_window) {
    converged_at_ = slot_ + 1;
  }

  ++slot_;

  // ---- Next beacon ---------------------------------------------------
  phy::DlCommand cmd;
  if (send_reset_) {
    send_reset_ = false;
    cmd.reset = true;
    cmd.ack = false;
    cmd.empty = true;  // the schedule is empty after a reset
    // Clear reader state.
    for (auto& [tid, info] : tags_) {
      info.settled_offset.reset();
      info.force_nacks = 0;
      info.last_seen_slot = -1;
    }
    received_history_.clear();
    window_non_empty_.clear();
    window_collision_.clear();
    total_non_empty_ = 0;
    total_collisions_ = 0;
    clean_streak_ = 0;
    converged_at_ = -1;
    slot_ = 0;
    return cmd;
  }
  cmd.ack = ack;
  cmd.empty = predict_empty_next_slot();
  return cmd;
}

bool ReaderController::predict_empty_next_slot() const {
  // Eq. 4: EMPTY = prod_i 1(no packet received in slot (s+1) - p_i),
  // where s+1 is the slot the beacon opens (slot_ after the increment).
  // The probe is per tag: tag i recurs at s+1 exactly when TAG i's packet
  // arrived at (s+1) - p_i. Probing for "any" packet would mark nearly
  // every slot occupied on a busy channel and starve late arrivals.
  const std::int64_t next = slot_;
  for (const auto& [tid, info] : tags_) {
    const std::int64_t probe = next - info.period;
    if (probe < 0) continue;  // before history: nothing received
    // received_history_ back() corresponds to slot (slot_ - 1).
    const std::int64_t oldest =
        slot_ - static_cast<std::int64_t>(received_history_.size());
    if (probe < oldest) continue;  // aged out: assume free
    const auto idx = static_cast<std::size_t>(probe - oldest);
    if (received_history_[idx] == tid) return false;
  }
  return true;
}

void ReaderController::request_reset() { send_reset_ = true; }

double ReaderController::non_empty_ratio() const {
  if (window_non_empty_.empty()) return 0.0;
  const auto count = std::count(window_non_empty_.begin(),
                                window_non_empty_.end(), true);
  return static_cast<double>(count) / window_non_empty_.size();
}

double ReaderController::collision_ratio() const {
  if (window_collision_.empty()) return 0.0;
  const auto count =
      std::count(window_collision_.begin(), window_collision_.end(), true);
  return static_cast<double>(count) / window_collision_.size();
}

}  // namespace arachnet::core
