#pragma once

#include <cstdint>

#include "arachnet/core/protocol.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/sim/rng.hpp"

namespace arachnet::core {

/// Primary protocol state of a tag (paper Fig. 7).
enum class TagState {
  kMigrate,  ///< hunting for a collision-free slot offset
  kSettle,   ///< found one; transmitting steadily
};

/// The tag-side distributed slot-allocation state machine (Sec. 5.3, with
/// the Sec. 5.4 beacon-loss refinement and the Sec. 5.5 EMPTY gating for
/// newly arriving tags; transition rules follow Appendix C.1).
///
/// Inputs are protocol events: a decoded beacon (which both closes the
/// previous slot and opens the next) or a locally detected beacon loss.
/// The output of on_beacon() is the transmit decision for the slot that
/// just began.
class TagStateMachine {
 public:
  struct Config {
    int period = 4;                          ///< p_i, a power of two
    int nack_threshold = kDefaultNackThreshold;  ///< N
    /// Sec. 5.4 refinement: a missed beacon sends the tag to MIGRATE
    /// immediately instead of waiting for NACKs.
    bool beacon_loss_migrate = true;
    /// Sec. 5.5 refinement: a tag that has never settled transmits only in
    /// slots the reader marks EMPTY.
    bool empty_gating = true;
  };

  TagStateMachine(Config config, std::uint64_t seed);

  /// Processes a decoded beacon. The beacon's feedback flags apply to the
  /// tag only if it transmitted in the slot the beacon closes. Returns
  /// true if the tag must transmit in the slot now beginning.
  bool on_beacon(const phy::DlCommand& cmd);

  /// Local timer expired without a beacon: the slot index is NOT
  /// incremented (the tag never saw the boundary); with the refinement
  /// enabled the tag re-enters MIGRATE with a fresh offset.
  void on_beacon_loss();

  /// Power-on / activation: full reset, and the tag counts as "newly
  /// arriving" for the Sec. 5.5 EMPTY gating until its first ACK.
  void reset();

  /// Protocol reset via the RESET command: clears slot/offset/state but
  /// does NOT make the tag "newly arriving" — a reset restarts contention
  /// for every tag at once, which is not the late-arrival situation the
  /// EMPTY refinement addresses.
  void reset_protocol();

  TagState state() const noexcept { return state_; }
  int offset() const noexcept { return offset_; }
  int slot_index() const noexcept { return slot_index_; }
  int nack_count() const noexcept { return nack_count_; }
  bool transmitted_last_slot() const noexcept { return transmitted_last_; }
  /// True until the tag receives its first ACK after (re)activation —
  /// the population the EMPTY flag applies to.
  bool fresh() const noexcept { return fresh_; }

  const Config& config() const noexcept { return config_; }

 private:
  void pick_new_offset();

  Config config_;
  sim::Rng rng_;
  TagState state_ = TagState::kMigrate;
  int offset_ = 0;
  int slot_index_ = -1;  // first beacon brings it to 0
  int nack_count_ = 0;
  bool transmitted_last_ = false;
  bool fresh_ = true;
};

}  // namespace arachnet::core
