#include "arachnet/core/slot_network.hpp"

#include <stdexcept>

#include "arachnet/telemetry/log.hpp"

namespace arachnet::core {

SlotNetwork::SlotNetwork(Params params, std::vector<TagSpec> tags)
    : params_(params), rng_(params.seed), reader_(params.reader) {
  tags_.reserve(tags.size());
  for (const auto& spec : tags) {
    TagStateMachine::Config cfg;
    cfg.period = spec.period;
    cfg.nack_threshold = params_.nack_threshold;
    cfg.beacon_loss_migrate = params_.beacon_loss_migrate;
    cfg.empty_gating = params_.empty_gating;
    tags_.push_back(TagRuntime{spec, TagStateMachine{cfg, rng_.next_u64()},
                               spec.activation_slot <= 0});
    reader_.register_tag(spec.tid, spec.period);
  }
  // The very first beacon: nothing to acknowledge, schedule empty.
  current_beacon_ = phy::DlCommand{.ack = false, .empty = true, .reset = false};
  if (auto* m = params_.metrics) {
    c_empty_ = &m->counter("slot.empty");
    c_success_ = &m->counter("slot.success");
    c_collision_ = &m->counter("slot.collision");
    c_lost_ = &m->counter("slot.lost");
    h_convergence_ = &m->histogram("slot.convergence_slots", 0.0, 1024.0, 64);
  }
}

void SlotNetwork::add_tag(const TagSpec& spec) {
  if (has_tag(spec.tid)) {
    throw std::invalid_argument("SlotNetwork::add_tag: duplicate tid");
  }
  TagStateMachine::Config cfg;
  cfg.period = spec.period;
  cfg.nack_threshold = params_.nack_threshold;
  cfg.beacon_loss_migrate = params_.beacon_loss_migrate;
  cfg.empty_gating = params_.empty_gating;
  TagSpec adjusted = spec;
  if (adjusted.activation_slot < slot_) adjusted.activation_slot = slot_;
  tags_.push_back(TagRuntime{adjusted,
                             TagStateMachine{cfg, rng_.next_u64()},
                             adjusted.activation_slot <= slot_});
  reader_.register_tag(adjusted.tid, adjusted.period);
}

bool SlotNetwork::remove_tag(int tid) {
  for (auto it = tags_.begin(); it != tags_.end(); ++it) {
    if (it->spec.tid == tid) {
      tags_.erase(it);
      reader_.unregister_tag(tid);
      return true;
    }
  }
  return false;
}

bool SlotNetwork::has_tag(int tid) const noexcept {
  for (const auto& t : tags_) {
    if (t.spec.tid == tid) return true;
  }
  return false;
}

const TagStateMachine& SlotNetwork::tag_machine(int tid) const {
  for (const auto& t : tags_) {
    if (t.spec.tid == tid) return t.machine;
  }
  throw std::out_of_range("SlotNetwork::tag_machine: unknown tid");
}

SlotNetwork::SlotRecord SlotNetwork::step() {
  SlotRecord record;
  record.slot = slot_;

  // Activate late arrivals at their slot.
  for (auto& tag : tags_) {
    if (!tag.active && slot_ >= tag.spec.activation_slot) {
      tag.active = true;
      tag.machine.reset();
    }
  }

  // Beacon broadcast: each active tag independently decodes or misses it.
  for (auto& tag : tags_) {
    if (!tag.active) continue;
    if (rng_.bernoulli(tag.spec.dl_loss)) {
      // Missed beacon: local timer fires, no transmission this slot.
      tag.machine.on_beacon_loss();
      continue;
    }
    if (tag.machine.on_beacon(current_beacon_)) {
      record.transmitters.push_back(tag.spec.tid);
    }
  }

  record.collision_truth = record.transmitters.size() >= 2;

  // Reception.
  if (record.transmitters.size() == 1) {
    const int tid = record.transmitters.front();
    double ul_loss = 0.0;
    for (const auto& t : tags_) {
      if (t.spec.tid == tid) ul_loss = t.spec.ul_loss;
    }
    if (!rng_.bernoulli(ul_loss)) record.decoded_tid = tid;
    record.collision_detected = rng_.bernoulli(params_.false_collision_prob);
  } else if (record.collision_truth) {
    if (rng_.bernoulli(params_.capture_prob)) {
      const auto pick = rng_.uniform_int(record.transmitters.size());
      record.decoded_tid = record.transmitters[pick];
    }
    record.collision_detected = rng_.bernoulli(params_.collision_detect_prob);
  }

  if (c_empty_ != nullptr) {
    if (record.transmitters.empty()) {
      c_empty_->add();
    } else if (record.collision_truth) {
      c_collision_->add();
    } else if (record.decoded_tid) {
      c_success_->add();
    } else {
      c_lost_->add();  // single transmitter, UL decode failed
    }
  }

  SlotObservation obs;
  obs.decoded_tid = record.decoded_tid;
  obs.collision_detected = record.collision_detected;
  record.beacon = reader_.close_slot(obs);
  current_beacon_ = record.beacon;
  ++slot_;
  return record;
}

std::vector<SlotNetwork::SlotRecord> SlotNetwork::run(std::int64_t n) {
  std::vector<SlotRecord> records;
  records.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) records.push_back(step());
  return records;
}

std::optional<std::int64_t> SlotNetwork::measure_convergence(
    std::int64_t max_slots) {
  reader_.request_reset();
  step();  // slot carrying the RESET beacon out
  for (std::int64_t i = 0; i < max_slots; ++i) {
    step();
    if (reader_.converged()) {
      const std::int64_t rounds = reader_.convergence_slots();
      if (h_convergence_ != nullptr) {
        h_convergence_->record(static_cast<double>(rounds));
      }
      ARACHNET_LOG_DEBUG("slot", "network converged",
                         {"slots", rounds}, {"tags", tags_.size()});
      return rounds;
    }
  }
  ARACHNET_LOG_WARN("slot", "convergence not reached",
                    {"max_slots", max_slots}, {"tags", tags_.size()});
  return std::nullopt;
}

bool SlotNetwork::all_settled_collision_free() const {
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (!tags_[i].active) continue;
    if (tags_[i].machine.state() != TagState::kSettle) return false;
    for (std::size_t j = i + 1; j < tags_.size(); ++j) {
      if (!tags_[j].active) continue;
      const int pi = tags_[i].machine.config().period;
      const int pj = tags_[j].machine.config().period;
      const int m = pi < pj ? pi : pj;
      // Compare in ground-truth slot terms: offsets are relative to each
      // tag's local index, which may be shifted by missed beacons; the
      // effective residue is (offset - slot_index + global_slot) mod p.
      const auto residue = [&](const TagRuntime& t) {
        const std::int64_t shift =
            slot_ - 1 - t.machine.slot_index();  // missed-beacon shift
        return static_cast<int>(((t.machine.offset() + shift) % m + m) % m);
      };
      if (residue(tags_[i]) == residue(tags_[j])) return false;
    }
  }
  return true;
}

}  // namespace arachnet::core
