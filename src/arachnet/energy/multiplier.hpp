#pragma once

#include "arachnet/energy/diode.hpp"

namespace arachnet::energy {

/// Multi-stage voltage multiplier (Dickson charge pump) fed by the tag PZT.
///
/// Ideal output is Vdd = 2N(Vp - Von) (paper Sec. 3.2). Two real effects are
/// modelled on top:
///  * diode drop Von depends on the per-stage charging current, and
///  * each additional stage loads the PZT source harder (the pump's input
///    impedance falls as ~1/(N f C)), drooping the effective peak voltage —
///    which is why the measured curve in Fig. 11(a) rises sub-linearly.
class VoltageMultiplier {
 public:
  struct Params {
    int stages = 8;                       ///< N (8 by default, 16x ratio)
    double stage_capacitance_f = 100e-12; ///< pump capacitor per stage
    double source_impedance_ohm = 8e3;    ///< PZT + matching source impedance
    double carrier_hz = 90e3;
    SchottkyDiode diode{};
  };

  VoltageMultiplier() = default;
  explicit VoltageMultiplier(Params p);

  /// Open-circuit (light-load) output voltage for a PZT open-circuit peak
  /// voltage `vp_open`. This is what Fig. 11(a) reports: the multiplied
  /// voltage with only the measurement load attached.
  /// `load_current_a` models the light DC load (defaults to ~2 uA).
  double output_voltage(double vp_open, double load_current_a = 2e-6) const;

  /// Effective peak voltage seen by the pump after source droop.
  double effective_input_peak(double vp_open) const;

  /// Power conversion efficiency at the given operating point: output DC
  /// power over power drawn from the PZT. Falls with stage count because of
  /// cumulative diode losses.
  double efficiency(double vp_open, double load_current_a) const;

  /// Voltage amplification ratio relative to the PZT peak (2N ideally).
  double nominal_ratio() const noexcept { return 2.0 * params_.stages; }

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
};

}  // namespace arachnet::energy
