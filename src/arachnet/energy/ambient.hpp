#pragma once

#include <string_view>

namespace arachnet::energy {

/// Vehicle operating state, determining the ambient vibration environment
/// (road and powertrain excitation sits below 0.1 kHz — paper Sec. 2.2).
enum class DriveState {
  kParked,   ///< no excitation
  kIdle,     ///< engine/compressor idle: weak narrowband hum
  kCity,     ///< stop-and-go: broadband, moderate
  kHighway,  ///< sustained speed: strongest broadband excitation
};

std::string_view to_string(DriveState state) noexcept;

/// Ambient-vibration energy source (the paper's future-work enhancement:
/// "harvesting ambient vibrations remains a promising enhancement").
///
/// The communication PZT is resonant at 90 kHz and rejects sub-100 Hz
/// excitation (which is why driving does not disturb the link), so
/// ambient harvesting needs its own low-frequency harvester — modelled
/// here as a small cantilever PZT tuned near the dominant road-input
/// frequency, delivering a state-dependent DC charging current.
class AmbientVibrationSource {
 public:
  struct Params {
    /// Harvested DC current per state (A), after rectification. Orders of
    /// magnitude follow published low-frequency automotive PZT harvesters
    /// (tens of uW at highway speeds).
    double idle_current_a = 1.5e-6;
    double city_current_a = 6.0e-6;
    double highway_current_a = 15.0e-6;
  };

  AmbientVibrationSource() : AmbientVibrationSource(Params{}) {}
  explicit AmbientVibrationSource(Params p) : params_(p) {}

  /// Dominant excitation frequency of the state (for documentation and
  /// the out-of-band check against the 90 kHz link).
  static double dominant_frequency_hz(DriveState state) noexcept;

  /// Harvested DC current in the given state.
  double current(DriveState state) const noexcept;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
};

}  // namespace arachnet::energy
