#include "arachnet/energy/ambient.hpp"

namespace arachnet::energy {

std::string_view to_string(DriveState state) noexcept {
  switch (state) {
    case DriveState::kParked:
      return "parked";
    case DriveState::kIdle:
      return "idle";
    case DriveState::kCity:
      return "city";
    case DriveState::kHighway:
      return "highway";
  }
  return "?";
}

double AmbientVibrationSource::dominant_frequency_hz(
    DriveState state) noexcept {
  switch (state) {
    case DriveState::kParked:
      return 0.0;
    case DriveState::kIdle:
      return 25.0;  // idle hum
    case DriveState::kCity:
      return 12.0;  // suspension / road input
    case DriveState::kHighway:
      return 18.0;
  }
  return 0.0;
}

double AmbientVibrationSource::current(DriveState state) const noexcept {
  switch (state) {
    case DriveState::kParked:
      return 0.0;
    case DriveState::kIdle:
      return params_.idle_current_a;
    case DriveState::kCity:
      return params_.city_current_a;
    case DriveState::kHighway:
      return params_.highway_current_a;
  }
  return 0.0;
}

}  // namespace arachnet::energy
