#include "arachnet/energy/tag_power.hpp"

#include <stdexcept>
#include <string>

namespace arachnet::energy {

std::string_view to_string(TagMode mode) noexcept {
  switch (mode) {
    case TagMode::kIdle:
      return "IDLE";
    case TagMode::kRx:
      return "RX";
    case TagMode::kTx:
      return "TX";
  }
  return "?";
}

double TagPowerModel::mcu_current_ua(TagMode mode) const noexcept {
  switch (mode) {
    case TagMode::kIdle:
      return mcu_idle_ua;
    case TagMode::kRx:
      return mcu_rx_ua;
    case TagMode::kTx:
      return mcu_tx_ua;
  }
  return 0.0;
}

double TagPowerModel::analog_current_ua(TagMode mode) const noexcept {
  switch (mode) {
    case TagMode::kIdle:
      return analog_idle_ua;
    case TagMode::kRx:
      return analog_rx_ua;
    case TagMode::kTx:
      return analog_tx_ua;
  }
  return 0.0;
}

double TagPowerModel::total_current_ua(TagMode mode) const noexcept {
  return mcu_current_ua(mode) + analog_current_ua(mode);
}

double TagPowerModel::power_w(TagMode mode) const noexcept {
  return total_current_ua(mode) * 1e-6 * rail_voltage;
}

double TagPowerModel::power_uw(TagMode mode) const noexcept {
  return power_w(mode) * 1e6;
}

double TagPowerModel::mcu_saving_vs_active(TagMode mode) const noexcept {
  return 1.0 - mcu_current_ua(mode) / mcu_active_ua;
}

void PowerMeter::accumulate(TagMode mode, double duration) {
  if (duration < 0.0) {
    throw std::invalid_argument("PowerMeter: negative duration");
  }
  seconds_[static_cast<std::size_t>(mode)] += duration;
  if (g_avg_power_uw_ != nullptr) publish_metrics();
}

double PowerMeter::time_in(TagMode mode) const noexcept {
  return seconds_[static_cast<std::size_t>(mode)];
}

double PowerMeter::energy_in(TagMode mode) const noexcept {
  return time_in(mode) * model_.power_w(mode);
}

double PowerMeter::total_time() const noexcept {
  double total = 0.0;
  for (double s : seconds_) total += s;
  return total;
}

double PowerMeter::total_energy() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < kTagModeCount; ++i) {
    total += seconds_[i] * model_.power_w(static_cast<TagMode>(i));
  }
  return total;
}

double PowerMeter::average_power() const noexcept {
  const double t = total_time();
  return t > 0.0 ? total_energy() / t : 0.0;
}

void PowerMeter::reset() noexcept {
  seconds_.fill(0.0);
  if (g_avg_power_uw_ != nullptr) publish_metrics();
}

void PowerMeter::bind_metrics(telemetry::MetricsRegistry& registry,
                              std::string_view prefix) {
  const std::string base{prefix};
  g_avg_power_uw_ = &registry.gauge(base + ".avg_power_uw");
  g_energy_uj_ = &registry.gauge(base + ".energy_uj");
  for (std::size_t i = 0; i < kTagModeCount; ++i) {
    std::string name = base + ".time_";
    for (char c : to_string(static_cast<TagMode>(i))) {
      name += static_cast<char>(c + ('a' - 'A'));  // lowercase ASCII mode
    }
    name += "_s";
    g_time_s_[i] = &registry.gauge(name);
  }
  publish_metrics();
}

void PowerMeter::publish_metrics() noexcept {
  g_avg_power_uw_->set(average_power() * 1e6);
  g_energy_uj_->set(total_energy() * 1e6);
  for (std::size_t i = 0; i < kTagModeCount; ++i) {
    g_time_s_[i]->set(seconds_[i]);
  }
}

}  // namespace arachnet::energy
