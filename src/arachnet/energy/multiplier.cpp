#include "arachnet/energy/multiplier.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arachnet::energy {

VoltageMultiplier::VoltageMultiplier(Params p) : params_(p) {
  if (p.stages < 1) {
    throw std::invalid_argument("VoltageMultiplier: stages must be >= 1");
  }
}

double VoltageMultiplier::effective_input_peak(double vp_open) const {
  // The pump's input impedance scales as 1/(N f C): every stage transfers
  // one capacitor charge per cycle. The PZT source impedance forms a
  // divider with it.
  const double zin = 1.0 / (static_cast<double>(params_.stages) *
                            params_.carrier_hz * params_.stage_capacitance_f);
  return vp_open * zin / (zin + params_.source_impedance_ohm);
}

double VoltageMultiplier::output_voltage(double vp_open,
                                         double load_current_a) const {
  const double vp = effective_input_peak(vp_open);
  // Each diode conducts the load current (steady state): per-stage current
  // equals the DC load current in a Dickson pump.
  const double von = params_.diode.forward_drop(std::max(load_current_a, 0.0));
  const double per_stage = vp - von;
  if (per_stage <= 0.0) return 0.0;
  return 2.0 * static_cast<double>(params_.stages) * per_stage;
}

double VoltageMultiplier::efficiency(double vp_open,
                                     double load_current_a) const {
  const double vp = effective_input_peak(vp_open);
  if (vp <= 0.0 || load_current_a <= 0.0) return 0.0;
  const double von = params_.diode.forward_drop(load_current_a);
  const double per_stage = vp - von;
  if (per_stage <= 0.0) return 0.0;
  // Output power: Vout * Iload. Input power: output plus the 2N diode-drop
  // losses carrying the same current.
  const double vout = 2.0 * params_.stages * per_stage;
  const double p_out = vout * load_current_a;
  const double p_loss = 2.0 * params_.stages * von * load_current_a;
  return p_out / (p_out + p_loss);
}

}  // namespace arachnet::energy
