#pragma once

#include <string_view>

#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::energy {

/// Low-voltage cutoff circuit with hysteresis (paper Appendix A).
///
/// A comparator watches the supercapacitor through a three-resistor divider;
/// its open-drain output switches R2 in or out of the lower divider leg,
/// yielding two thresholds:
///   HTH = VREF * (R1 + R2 + R3) / R3          (connect at 2.3 V)
///   LTH = VREF * (R1 + R2 + R3) / (R2 + R3)   (disconnect at 1.95 V)
/// Power flows to the MCU only between those thresholds (hysteresis band).
class CutoffCircuit {
 public:
  struct Params {
    double vref = 1.24;
    double r1_ohm = 680e3;
    double r2_ohm = 180e3;
    double r3_ohm = 1e6;
    /// Quiescent draw of the comparator + divider; the paper keeps this
    /// below 1 uA.
    double quiescent_current_a = 0.8e-6;
  };

  CutoffCircuit() = default;
  explicit CutoffCircuit(Params p) : params_(p) {}

  /// High (connect) threshold derived from the divider equations.
  double high_threshold() const noexcept;

  /// Low (disconnect) threshold derived from the divider equations.
  double low_threshold() const noexcept;

  /// Advances the hysteresis state machine with the current cap voltage;
  /// returns true when the MCU rail is energized.
  bool update(double cap_voltage) noexcept;

  /// Current output state without advancing.
  bool engaged() const noexcept { return engaged_; }

  /// Quiescent power draw at the given cap voltage (always present — this
  /// is the "always watching" cost the charging-time experiment includes).
  double quiescent_power(double cap_voltage) const noexcept;

  const Params& params() const noexcept { return params_; }

  /// Publishes connect/disconnect event counters and a live cap-voltage
  /// gauge into `registry` under `prefix` (e.g. "energy.cutoff" yields
  /// `energy.cutoff.connect_events`, `.disconnect_events`, `.cap_v`,
  /// `.engaged`), updated on every update(). The registry must outlive
  /// the circuit.
  void bind_metrics(telemetry::MetricsRegistry& registry,
                    std::string_view prefix);

 private:
  Params params_{};
  bool engaged_ = false;
  telemetry::Counter* c_connect_ = nullptr;
  telemetry::Counter* c_disconnect_ = nullptr;
  telemetry::Gauge* g_cap_v_ = nullptr;
  telemetry::Gauge* g_engaged_ = nullptr;
};

}  // namespace arachnet::energy
