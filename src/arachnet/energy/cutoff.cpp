#include "arachnet/energy/cutoff.hpp"

#include <string>

#include "arachnet/telemetry/log.hpp"

namespace arachnet::energy {

double CutoffCircuit::high_threshold() const noexcept {
  return params_.vref * (params_.r1_ohm + params_.r2_ohm + params_.r3_ohm) /
         params_.r3_ohm;
}

double CutoffCircuit::low_threshold() const noexcept {
  return params_.vref * (params_.r1_ohm + params_.r2_ohm + params_.r3_ohm) /
         (params_.r2_ohm + params_.r3_ohm);
}

bool CutoffCircuit::update(double cap_voltage) noexcept {
  if (!engaged_ && cap_voltage >= high_threshold()) {
    engaged_ = true;
    if (c_connect_ != nullptr) c_connect_->add();
    ARACHNET_LOG_DEBUG("energy", "cutoff connect", {"cap_v", cap_voltage});
  } else if (engaged_ && cap_voltage <= low_threshold()) {
    engaged_ = false;
    if (c_disconnect_ != nullptr) c_disconnect_->add();
    ARACHNET_LOG_DEBUG("energy", "cutoff disconnect", {"cap_v", cap_voltage});
  }
  if (g_cap_v_ != nullptr) {
    g_cap_v_->set(cap_voltage);
    g_engaged_->set(engaged_ ? 1.0 : 0.0);
  }
  return engaged_;
}

void CutoffCircuit::bind_metrics(telemetry::MetricsRegistry& registry,
                                 std::string_view prefix) {
  const std::string base{prefix};
  c_connect_ = &registry.counter(base + ".connect_events");
  c_disconnect_ = &registry.counter(base + ".disconnect_events");
  g_cap_v_ = &registry.gauge(base + ".cap_v");
  g_engaged_ = &registry.gauge(base + ".engaged");
  g_engaged_->set(engaged_ ? 1.0 : 0.0);
}

double CutoffCircuit::quiescent_power(double cap_voltage) const noexcept {
  return params_.quiescent_current_a * cap_voltage;
}

}  // namespace arachnet::energy
