#include "arachnet/energy/cutoff.hpp"

namespace arachnet::energy {

double CutoffCircuit::high_threshold() const noexcept {
  return params_.vref * (params_.r1_ohm + params_.r2_ohm + params_.r3_ohm) /
         params_.r3_ohm;
}

double CutoffCircuit::low_threshold() const noexcept {
  return params_.vref * (params_.r1_ohm + params_.r2_ohm + params_.r3_ohm) /
         (params_.r2_ohm + params_.r3_ohm);
}

bool CutoffCircuit::update(double cap_voltage) noexcept {
  if (!engaged_ && cap_voltage >= high_threshold()) {
    engaged_ = true;
  } else if (engaged_ && cap_voltage <= low_threshold()) {
    engaged_ = false;
  }
  return engaged_;
}

double CutoffCircuit::quiescent_power(double cap_voltage) const noexcept {
  return params_.quiescent_current_a * cap_voltage;
}

}  // namespace arachnet::energy
