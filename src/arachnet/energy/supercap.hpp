#pragma once

namespace arachnet::energy {

/// Energy-storage capacitor (the paper uses a 1 mF KEMET T491 tantalum).
/// Tracks voltage as energy flows in/out and models the datasheet-style
/// leakage current proportional to C*V.
class Supercapacitor {
 public:
  struct Params {
    double capacitance_f = 1e-3;
    /// Leakage coefficient k in I_leak = k * C(uF) * V, in microamps.
    /// The T491 datasheet bounds leakage at 0.01 CV uA at rated voltage
    /// after 5 minutes; sustained leakage at ~2 V is far lower, so the
    /// default is one decade below the datasheet bound.
    double leakage_coeff_ua = 0.001;
  };

  Supercapacitor() = default;
  explicit Supercapacitor(Params p);

  double voltage() const noexcept { return voltage_; }
  void set_voltage(double v);

  /// Stored energy in joules: C V^2 / 2.
  double energy() const noexcept;

  /// Energy needed to go from the current voltage to `target_v` (>= 0).
  double energy_to(double target_v) const;

  /// Leakage current (A) at the current voltage.
  double leakage_current() const noexcept;

  /// Applies a net power flow for `dt` seconds: positive charges, negative
  /// discharges. Leakage is accounted internally. Voltage floors at zero.
  void apply_power(double watts, double dt);

  /// Applies a net current for `dt` seconds (dV/dt = I/C). Positive charges.
  /// Self-leakage is accounted internally. Voltage floors at zero.
  void apply_current(double amps, double dt);

  /// Removes `joules` instantly (e.g. a packet transmission burst).
  /// Returns false (and drains to zero) if insufficient energy is stored.
  bool draw_energy(double joules);

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
  double voltage_ = 0.0;
};

}  // namespace arachnet::energy
