#pragma once

#include "arachnet/energy/cutoff.hpp"
#include "arachnet/energy/multiplier.hpp"
#include "arachnet/energy/supercap.hpp"

namespace arachnet::energy {

/// The tag's complete harvesting chain: PZT open-circuit voltage ->
/// multi-stage multiplier -> supercapacitor behind the low-voltage cutoff.
///
/// Electrically the pump behaves as a DC source of `Voc` (the multiplied
/// open-circuit voltage) behind an output impedance `Rout` (the classic
/// Dickson N/(f C) plus reflected source impedance), charging the cap as an
/// RC circuit. Leakage from the cap itself, the cutoff divider, and the
/// always-on DL envelope-detector frontend is subtracted — the paper's
/// charging-time experiment explicitly includes the latter two.
class Harvester {
 public:
  struct Params {
    VoltageMultiplier::Params multiplier{};
    Supercapacitor::Params cap{};
    CutoffCircuit::Params cutoff{};
    /// Pump output impedance seen by the storage cap.
    double output_impedance_ohm = 33e3;
    /// Always-on DL demodulation frontend draw (envelope detector bias +
    /// comparator).
    double frontend_current_a = 1.0e-6;
    /// Overvoltage clamp (shunt zener): strong links would otherwise pump
    /// the cap far beyond the MCU's rating and detune the VLO; the paper's
    /// tags operate in the 1.95-2.3 V band.
    double clamp_voltage = 2.5;
  };

  Harvester() = default;
  explicit Harvester(Params p);

  /// Sets the PZT open-circuit peak voltage (from the acoustic link budget).
  void set_pzt_peak_voltage(double vp_open);
  double pzt_peak_voltage() const noexcept { return vp_open_; }

  /// The multiplied open-circuit voltage currently available (Fig. 11a's
  /// quantity).
  double amplified_voltage() const;

  /// Instantaneous charging current into the cap at its present voltage.
  double charge_current() const;

  /// Advances the chain by `dt` seconds (charging minus leakage), updating
  /// the cutoff state machine.
  void step(double dt);

  /// Additional load on the cap while the MCU rail is engaged, in amps
  /// (set by the firmware according to its operating mode).
  void set_mcu_load(double amps) noexcept { mcu_load_a_ = amps; }

  /// Additional charging current from an ambient-vibration harvester
  /// (paper Sec. 2.2 future work; see energy/ambient.hpp).
  void set_ambient_current(double amps) noexcept { ambient_a_ = amps; }
  double ambient_current() const noexcept { return ambient_a_; }

  double cap_voltage() const noexcept { return cap_.voltage(); }
  bool mcu_powered() const noexcept { return cutoff_.engaged(); }

  Supercapacitor& cap() noexcept { return cap_; }
  const CutoffCircuit& cutoff() const noexcept { return cutoff_; }
  const VoltageMultiplier& multiplier() const noexcept { return multiplier_; }

  /// Simulated time to charge the cap from `v_start` to `v_target` with the
  /// MCU rail unloaded (the Fig. 11b experiment: 0 V -> HTH). Returns a
  /// negative value if the target is unreachable (insufficient Voc).
  double charge_time(double v_start, double v_target, double dt = 1e-3) const;

  /// Net charging power implied by charging from 0 to `v_target`:
  /// cap energy at target divided by charge time (the paper's metric).
  double net_charging_power(double v_target) const;

  const Params& params() const noexcept { return params_; }

 private:
  double net_current_at(double cap_voltage, double extra_load_a) const;

  Params params_{};
  VoltageMultiplier multiplier_{};
  Supercapacitor cap_{};
  CutoffCircuit cutoff_{};
  double vp_open_ = 0.0;
  double mcu_load_a_ = 0.0;
  double ambient_a_ = 0.0;
};

}  // namespace arachnet::energy
