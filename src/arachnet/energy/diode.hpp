#pragma once

namespace arachnet::energy {

/// Shockley-style diode model tuned to a small-signal Schottky
/// (CDBU0130L-class): forward drop ~0.15 V at 1 mA, well under 0.1 V in the
/// microamp regime that the multiplier stages see.
class SchottkyDiode {
 public:
  struct Params {
    double saturation_current_a = 4e-6;  ///< Is
    double ideality_thermal_v = 0.0271;  ///< n * Vt at room temperature
  };

  SchottkyDiode() = default;
  explicit SchottkyDiode(Params p) : params_(p) {}

  /// Forward voltage drop at the given forward current (A). Clamped to 0
  /// for non-positive currents.
  double forward_drop(double current_a) const;

  /// Forward current at the given applied voltage (V).
  double forward_current(double voltage_v) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
};

}  // namespace arachnet::energy
