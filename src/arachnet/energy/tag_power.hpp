#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::energy {

/// Tag operating modes as defined by the protocol (paper Table 2).
enum class TagMode {
  kIdle = 0,  ///< deep sleep between beacons (MSP430 LPM3)
  kRx = 1,    ///< receiving/decoding a beacon (edge-interrupt driven)
  kTx = 2,    ///< backscattering a packet (timer-interrupt driven)
};

constexpr std::size_t kTagModeCount = 3;

std::string_view to_string(TagMode mode) noexcept;

/// Current/power budget of the tag in each mode. Defaults reproduce the
/// paper's Table 2 split: MCU current plus the analog contribution
/// (envelope detector + comparator in RX, MOSFET gate drive in TX, cutoff
/// and bias leakage in IDLE), all on a 2.0 V rail:
///   RX:   6.4 uA MCU, 12.4 uA total -> 24.8 uW
///   TX:   4.7 uA MCU, 25.5 uA total -> 51.0 uW
///   IDLE: 0.6 uA MCU,  3.8 uA total ->  7.6 uW
struct TagPowerModel {
  double rail_voltage = 2.0;

  double mcu_idle_ua = 0.6;
  double mcu_rx_ua = 6.4;
  double mcu_tx_ua = 4.7;

  double analog_idle_ua = 3.2;  ///< cutoff divider + comparator bias
  double analog_rx_ua = 6.0;    ///< envelope detector + DL comparator active
  double analog_tx_ua = 20.8;   ///< MOSFET gate toggling through the MCU pin

  /// MCU active-mode draw for comparison (datasheet: 40-50 uA at 2 V).
  double mcu_active_ua = 45.0;

  double mcu_current_ua(TagMode mode) const noexcept;
  double analog_current_ua(TagMode mode) const noexcept;
  double total_current_ua(TagMode mode) const noexcept;

  /// Total power in watts for the mode.
  double power_w(TagMode mode) const noexcept;

  /// Power in microwatts (the unit Table 2 reports).
  double power_uw(TagMode mode) const noexcept;

  /// Fractional saving of the interrupt-driven design vs keeping the MCU
  /// in active mode continuously (paper claims >80%).
  double mcu_saving_vs_active(TagMode mode) const noexcept;
};

/// Accumulates per-mode residency and energy for a running tag. The MCU
/// simulator reports mode changes; benches read average power.
class PowerMeter {
 public:
  explicit PowerMeter(TagPowerModel model = {}) : model_(model) {}

  /// Accounts `duration` seconds spent in `mode`.
  void accumulate(TagMode mode, double duration);

  double time_in(TagMode mode) const noexcept;
  double energy_in(TagMode mode) const noexcept;
  double total_time() const noexcept;
  double total_energy() const noexcept;

  /// Mean power over all recorded time (W); 0 when nothing recorded.
  double average_power() const noexcept;

  const TagPowerModel& model() const noexcept { return model_; }
  void reset() noexcept;

  /// Publishes live gauges into `registry` under `prefix` (e.g. prefix
  /// "energy.tag0" yields `energy.tag0.avg_power_uw`, `.energy_uj`, and
  /// per-mode `.time_<mode>_s`), refreshed on every accumulate(). The
  /// registry must outlive the meter.
  void bind_metrics(telemetry::MetricsRegistry& registry,
                    std::string_view prefix);

 private:
  void publish_metrics() noexcept;

  TagPowerModel model_;
  std::array<double, kTagModeCount> seconds_{};
  telemetry::Gauge* g_avg_power_uw_ = nullptr;
  telemetry::Gauge* g_energy_uj_ = nullptr;
  std::array<telemetry::Gauge*, kTagModeCount> g_time_s_{};
};

}  // namespace arachnet::energy
