#include "arachnet/energy/diode.hpp"

#include <cmath>

namespace arachnet::energy {

double SchottkyDiode::forward_drop(double current_a) const {
  if (current_a <= 0.0) return 0.0;
  return params_.ideality_thermal_v *
         std::log1p(current_a / params_.saturation_current_a);
}

double SchottkyDiode::forward_current(double voltage_v) const {
  if (voltage_v <= 0.0) return 0.0;
  return params_.saturation_current_a *
         std::expm1(voltage_v / params_.ideality_thermal_v);
}

}  // namespace arachnet::energy
