#include "arachnet/energy/harvester.hpp"

#include <algorithm>
#include <cmath>

namespace arachnet::energy {

Harvester::Harvester(Params p)
    : params_(p),
      multiplier_(p.multiplier),
      cap_(p.cap),
      cutoff_(p.cutoff) {}

void Harvester::set_pzt_peak_voltage(double vp_open) { vp_open_ = vp_open; }

double Harvester::amplified_voltage() const {
  return multiplier_.output_voltage(vp_open_);
}

double Harvester::charge_current() const {
  const double voc = amplified_voltage();
  return std::max(0.0, (voc - cap_.voltage()) / params_.output_impedance_ohm);
}

double Harvester::net_current_at(double cap_voltage,
                                 double extra_load_a) const {
  const double voc = amplified_voltage();
  const double i_charge =
      std::max(0.0, (voc - cap_voltage) / params_.output_impedance_ohm);
  const double drain_a = params_.frontend_current_a +
                         cutoff_.params().quiescent_current_a + extra_load_a;
  // Cap self-leakage is handled inside Supercapacitor::apply_current.
  return i_charge + ambient_a_ - drain_a;
}

void Harvester::step(double dt) {
  const double extra = cutoff_.engaged() ? mcu_load_a_ : 0.0;
  cap_.apply_current(net_current_at(cap_.voltage(), extra), dt);
  if (cap_.voltage() > params_.clamp_voltage) {
    cap_.set_voltage(params_.clamp_voltage);  // shunt clamp burns the excess
  }
  cutoff_.update(cap_.voltage());
}

double Harvester::charge_time(double v_start, double v_target,
                              double dt) const {
  Supercapacitor cap{params_.cap};
  cap.set_voltage(v_start);
  double t = 0.0;
  const double t_max = 3600.0;  // give up after an hour of simulated time
  while (cap.voltage() < v_target) {
    const double i = net_current_at(cap.voltage(), 0.0);
    const double before = cap.voltage();
    cap.apply_current(i, dt);
    t += dt;
    if (t > t_max) return -1.0;
    if (i <= 0.0 && cap.voltage() <= before && before < v_target) {
      return -1.0;  // stalled below target
    }
  }
  return t;
}

double Harvester::net_charging_power(double v_target) const {
  const double t = charge_time(0.0, v_target);
  if (t <= 0.0) return 0.0;
  Supercapacitor cap{params_.cap};
  cap.set_voltage(v_target);
  return cap.energy() / t;
}

}  // namespace arachnet::energy
