#include "arachnet/energy/supercap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arachnet::energy {

Supercapacitor::Supercapacitor(Params p) : params_(p) {
  if (p.capacitance_f <= 0.0) {
    throw std::invalid_argument("Supercapacitor: capacitance must be > 0");
  }
}

void Supercapacitor::set_voltage(double v) {
  if (v < 0.0) throw std::invalid_argument("Supercapacitor: negative voltage");
  voltage_ = v;
}

double Supercapacitor::energy() const noexcept {
  return 0.5 * params_.capacitance_f * voltage_ * voltage_;
}

double Supercapacitor::energy_to(double target_v) const {
  return 0.5 * params_.capacitance_f *
         (target_v * target_v - voltage_ * voltage_);
}

double Supercapacitor::leakage_current() const noexcept {
  const double c_uf = params_.capacitance_f * 1e6;
  return params_.leakage_coeff_ua * c_uf * voltage_ * 1e-6;
}

void Supercapacitor::apply_power(double watts, double dt) {
  // dE/dt = P_net - V * I_leak; integrate with sub-steps small relative to
  // the charging dynamics for accuracy at large dt.
  const int substeps = std::max(1, static_cast<int>(dt / 0.01));
  const double h = dt / substeps;
  double energy_j = energy();
  for (int i = 0; i < substeps; ++i) {
    const double v = std::sqrt(2.0 * energy_j / params_.capacitance_f);
    const double leak_w = v * (params_.leakage_coeff_ua *
                               params_.capacitance_f * 1e6 * v * 1e-6);
    energy_j = std::max(0.0, energy_j + (watts - leak_w) * h);
  }
  voltage_ = std::sqrt(2.0 * energy_j / params_.capacitance_f);
}

void Supercapacitor::apply_current(double amps, double dt) {
  const int substeps = std::max(1, static_cast<int>(dt / 0.01));
  const double h = dt / substeps;
  double v = voltage_;
  for (int i = 0; i < substeps; ++i) {
    const double leak_a =
        params_.leakage_coeff_ua * params_.capacitance_f * 1e6 * v * 1e-6;
    v = std::max(0.0, v + (amps - leak_a) * h / params_.capacitance_f);
  }
  voltage_ = v;
}

bool Supercapacitor::draw_energy(double joules) {
  const double available = energy();
  if (joules > available) {
    voltage_ = 0.0;
    return false;
  }
  voltage_ = std::sqrt(2.0 * (available - joules) / params_.capacitance_f);
  return true;
}

}  // namespace arachnet::energy
