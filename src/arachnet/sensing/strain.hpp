#pragma once

#include <cstdint>

#include "arachnet/sim/rng.hpp"

namespace arachnet::sensing {

/// Metal strain gauge: resistance change proportional to strain,
/// dR/R = GF * epsilon (GF ~ 2 for metallic foil gauges).
class StrainGauge {
 public:
  struct Params {
    double nominal_ohm = 350.0;
    double gauge_factor = 2.0;
  };

  StrainGauge() = default;
  explicit StrainGauge(Params p) : params_(p) {}

  /// Resistance at the given strain (dimensionless, e.g. 1e-3 = 1000 ue).
  double resistance(double strain) const noexcept {
    return params_.nominal_ohm * (1.0 + params_.gauge_factor * strain);
  }

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
};

/// Full Wheatstone bridge with two active gauges in opposite arms (the
/// usual bending configuration): differential output
/// Vout = Vex * GF * epsilon / 2 for small strain, linear to first order.
class WheatstoneBridge {
 public:
  struct Params {
    double excitation_v = 1.8;  ///< adapted to the tag's 1.8 V rail
    StrainGauge::Params gauge{};
  };

  WheatstoneBridge() = default;
  explicit WheatstoneBridge(Params p) : params_(p), gauge_(p.gauge) {}

  /// Differential output voltage at the given strain (full bridge, two
  /// active arms loaded in opposition).
  double output_voltage(double strain) const noexcept;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
  StrainGauge gauge_{};
};

/// Instrumentation amplifier in front of the ADC (the TI SBOA247-style
/// single-supply bridge amplifier the paper adapts to 1.8 V).
class BridgeAmplifier {
 public:
  struct Params {
    double gain = 200.0;
    double offset_v = 0.9;        ///< mid-rail output bias
    double rail_v = 1.8;          ///< output clamps to [0, rail]
    double noise_rms_v = 0.8e-3;  ///< input-referred-noise * gain at output
  };

  BridgeAmplifier() = default;
  explicit BridgeAmplifier(Params p) : params_(p) {}

  /// Amplified, biased, clamped output for a bridge differential input.
  double amplify(double differential_v, sim::Rng& rng) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
};

/// Successive-approximation ADC like the MSP430's 10-bit converter.
class Adc {
 public:
  struct Params {
    int bits = 10;
    double reference_v = 1.8;
  };

  Adc() = default;
  explicit Adc(Params p) : params_(p) {}

  /// Converts a voltage to a code (clamped to the full-scale range).
  std::uint16_t sample(double volts) const noexcept;

  /// Code back to voltage (bin centre).
  double to_voltage(std::uint16_t code) const noexcept;

  std::uint16_t full_scale() const noexcept {
    return static_cast<std::uint16_t>((1u << params_.bits) - 1);
  }

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
};

/// The Sec. 6.5 case-study plant: a cantilevered metal sheet whose free
/// end is displaced by hand (-10 cm .. +10 cm); gauges at the clamped end
/// see surface strain proportional to tip displacement.
class CantileverBeam {
 public:
  struct Params {
    double length_m = 0.5;
    double thickness_m = 1.5e-3;
    /// Gauge position from the clamp (strain falls linearly toward the
    /// tip).
    double gauge_position_m = 0.05;
  };

  CantileverBeam() = default;
  explicit CantileverBeam(Params p) : params_(p) {}

  /// Surface strain at the gauge for a tip displacement (m). For an
  /// end-loaded cantilever: eps(x) = 3 t d (L - x) / (2 L^3).
  double strain(double tip_displacement_m) const noexcept;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
};

/// Complete strain-sensing channel as carried in a tag's UL payload:
/// displacement -> beam strain -> bridge -> amplifier -> ADC code.
class StrainSensorModule {
 public:
  struct Params {
    CantileverBeam::Params beam{};
    WheatstoneBridge::Params bridge{};
    BridgeAmplifier::Params amp{};
    Adc::Params adc{};
  };

  StrainSensorModule() = default;
  explicit StrainSensorModule(Params p);

  /// One sensor reading (the 12-bit UL payload uses the low bits).
  std::uint16_t sample(double tip_displacement_m, sim::Rng& rng) const;

  /// The amplified analog voltage before conversion (for reporting).
  double analog_voltage(double tip_displacement_m, sim::Rng& rng) const;

  /// The module draws ~1 mW while sampling (ADC + amplifier), so the tag
  /// takes at most one sample per slot (Sec. 6.5).
  static constexpr double kSamplePowerW = 1e-3;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
  CantileverBeam beam_{};
  WheatstoneBridge bridge_{};
  BridgeAmplifier amp_{};
  Adc adc_{};
};

}  // namespace arachnet::sensing
