#include "arachnet/sensing/strain.hpp"

#include <algorithm>
#include <cmath>

namespace arachnet::sensing {

double WheatstoneBridge::output_voltage(double strain) const noexcept {
  // Full bridge, two active arms in opposition: to first order
  // Vout = Vex * (dR/R) / 2 = Vex * GF * eps / 2.
  const double dr_over_r = params_.gauge.gauge_factor * strain;
  return params_.excitation_v * dr_over_r / 2.0;
}

double BridgeAmplifier::amplify(double differential_v, sim::Rng& rng) const {
  const double out = params_.offset_v + params_.gain * differential_v +
                     rng.normal(0.0, params_.noise_rms_v);
  return std::clamp(out, 0.0, params_.rail_v);
}

std::uint16_t Adc::sample(double volts) const noexcept {
  const double clamped = std::clamp(volts, 0.0, params_.reference_v);
  const auto code = static_cast<std::uint32_t>(
      clamped / params_.reference_v * full_scale() + 0.5);
  return static_cast<std::uint16_t>(std::min<std::uint32_t>(code, full_scale()));
}

double Adc::to_voltage(std::uint16_t code) const noexcept {
  return static_cast<double>(std::min(code, full_scale())) /
         full_scale() * params_.reference_v;
}

double CantileverBeam::strain(double tip_displacement_m) const noexcept {
  const double l = params_.length_m;
  const double x = params_.gauge_position_m;
  return 3.0 * params_.thickness_m * tip_displacement_m * (l - x) /
         (2.0 * l * l * l);
}

StrainSensorModule::StrainSensorModule(Params p)
    : params_(p),
      beam_(p.beam),
      bridge_(p.bridge),
      amp_(p.amp),
      adc_(p.adc) {}

double StrainSensorModule::analog_voltage(double tip_displacement_m,
                                          sim::Rng& rng) const {
  const double strain = beam_.strain(tip_displacement_m);
  const double differential = bridge_.output_voltage(strain);
  return amp_.amplify(differential, rng);
}

std::uint16_t StrainSensorModule::sample(double tip_displacement_m,
                                         sim::Rng& rng) const {
  return adc_.sample(analog_voltage(tip_displacement_m, rng));
}

}  // namespace arachnet::sensing
