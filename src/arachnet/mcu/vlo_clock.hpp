#pragma once

#include "arachnet/sim/rng.hpp"

namespace arachnet::mcu {

/// The MSP430's very-low-power oscillator (VLO), the tag's only timebase.
///
/// The paper runs it at a nominal 12 kHz and powers the MCU from a varying
/// supercapacitor voltage instead of an LDO, so the timer "lacks precision"
/// (Sec. 6.3). Modelled effects:
///  * supply sensitivity — frequency shifts with supply voltage away from
///    the 2.0 V reference;
///  * cycle jitter — white phase noise on each tick;
///  * quantization — durations are measured in whole ticks.
class VloClock {
 public:
  struct Params {
    double nominal_hz = 12e3;
    /// Fractional frequency change per volt of supply deviation.
    double supply_coeff_per_v = 0.035;
    double reference_supply_v = 2.0;
    /// Standard deviation of per-measurement fractional frequency error
    /// (cycle jitter aggregated over a measurement).
    double jitter_frac = 0.004;
  };

  VloClock() = default;
  explicit VloClock(Params p) : params_(p) {}

  /// Actual oscillator frequency at the given supply voltage.
  double frequency(double supply_v) const noexcept;

  /// Nominal tick period (what the firmware believes).
  double nominal_tick() const noexcept { return 1.0 / params_.nominal_hz; }

  /// Measures a duration with the timer: whole ticks of the *actual*
  /// (supply-shifted, jittered) clock.
  int measure_ticks(double duration_s, double supply_v,
                    sim::Rng& rng) const;

  /// Generates an interval of `ticks` timer ticks as real seconds (the
  /// dual of measure_ticks: used when the firmware *produces* timing,
  /// e.g. the UL modulation timer).
  double ticks_to_duration(int ticks, double supply_v, sim::Rng& rng) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
};

}  // namespace arachnet::mcu
