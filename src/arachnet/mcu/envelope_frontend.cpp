#include "arachnet/mcu/envelope_frontend.hpp"

#include <cmath>

#include "arachnet/mcu/vlo_clock.hpp"
#include "arachnet/phy/pie.hpp"

namespace arachnet::mcu {

std::vector<double> EnvelopeFrontend::pulse_durations(
    const std::vector<reader::DlSegment>& segments) const {
  // Simulate the resonant-mode envelope: each drive segment pulls the
  // envelope toward its steady-state excitation level with a tau that
  // depends on how the energy is displaced (drive change vs free ring).
  const double dt = params_.time_step_s;
  double envelope = 0.0;
  bool level = false;
  double last_rise = 0.0;
  double t = 0.0;
  std::vector<double> pulses;

  for (const auto& seg : segments) {
    const double target =
        seg.frequency_hz > 0.0 ? pzt_.frequency_response(seg.frequency_hz)
                               : 0.0;
    // Pure stop -> slow structural ring-down; any active drive (on- or
    // off-resonance) displaces the resonant energy faster.
    const double tau = seg.frequency_hz > 0.0
                           ? params_.fsk_displacement_tau_s
                           : params_.structure_ring_tau_s;
    const double alpha = 1.0 - std::exp(-dt / tau);
    const auto steps = static_cast<long>(seg.duration_s / dt);
    for (long i = 0; i < steps; ++i) {
      envelope += alpha * (target - envelope);
      t += dt;
      if (!level && envelope >= params_.comparator_high) {
        level = true;
        last_rise = t;
      } else if (level && envelope <= params_.comparator_low) {
        level = false;
        pulses.push_back(t - last_rise);
      }
    }
  }
  // Let the envelope settle after the last segment so the final falling
  // edge is observed.
  for (int i = 0; i < 2000 && level; ++i) {
    envelope += (1.0 - std::exp(-dt / params_.structure_ring_tau_s)) *
                (0.0 - envelope);
    t += dt;
    if (envelope <= params_.comparator_low) {
      level = false;
      pulses.push_back(t - last_rise);
    }
  }
  return pulses;
}

std::optional<phy::DlBeacon> EnvelopeFrontend::demodulate(
    const std::vector<reader::DlSegment>& segments, double chip_rate,
    double supply_v, const VloClock& clock, sim::Rng& rng) const {
  const auto pulses = pulse_durations(segments);
  if (pulses.size() != static_cast<std::size_t>(phy::kDlPacketBits)) {
    return std::nullopt;  // merged or lost pulses: framing is gone
  }
  const double chip_s = 1.0 / chip_rate;
  const int threshold =
      static_cast<int>(std::lround(1.5 * chip_s * clock.params().nominal_hz));
  phy::BitVector bits;
  for (double p : pulses) {
    const int ticks = clock.measure_ticks(p, supply_v, rng);
    bits.push_back(ticks > threshold);
  }
  return phy::DlBeacon::parse(bits);
}

}  // namespace arachnet::mcu
