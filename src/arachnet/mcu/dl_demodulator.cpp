#include "arachnet/mcu/dl_demodulator.hpp"

#include <cmath>

namespace arachnet::mcu {

int DlDemodulator::threshold_ticks() const {
  const double chip_s = 1.0 / params_.chip_rate;
  return static_cast<int>(std::round(1.5 * chip_s * clock_.params().nominal_hz));
}

double DlDemodulator::pulse_duration(bool bit, sim::Rng& rng) const {
  const double chip_s = 1.0 / params_.chip_rate;
  const double nominal = bit ? 2.0 * chip_s : chip_s;
  // The reader's software pause/resume places BOTH pulse edges over USB,
  // each with its own 0.1-0.3 ms scheduling offset of random sign; the
  // two can add up, which is what breaks PIE at 1000/2000 bps (Fig. 13a).
  double duration = nominal;
  for (int edge = 0; edge < 2; ++edge) {
    const double jitter = rng.uniform(params_.reader_jitter_min_s,
                                      params_.reader_jitter_max_s);
    duration += rng.bernoulli(0.5) ? jitter : -jitter;
  }
  return duration;
}

std::optional<phy::DlBeacon> DlDemodulator::demodulate(
    const phy::DlBeacon& sent, double supply_v, sim::Rng& rng) const {
  const auto bits = sent.serialize();
  const int threshold = threshold_ticks();
  phy::BitVector decoded;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double duration = pulse_duration(bits[i], rng);
    const int ticks = clock_.measure_ticks(duration, supply_v, rng);
    decoded.push_back(ticks > threshold);
  }
  return phy::DlBeacon::parse(decoded);
}

double DlDemodulator::loss_rate(const phy::DlBeacon& sent, double supply_v,
                                sim::Rng& rng, int trials) const {
  int lost = 0;
  for (int i = 0; i < trials; ++i) {
    const auto rx = demodulate(sent, supply_v, rng);
    if (!rx || !(*rx == sent)) ++lost;
  }
  return static_cast<double>(lost) / trials;
}

}  // namespace arachnet::mcu
