#include "arachnet/mcu/vlo_clock.hpp"

#include <algorithm>
#include <cmath>

namespace arachnet::mcu {

double VloClock::frequency(double supply_v) const noexcept {
  const double dv = supply_v - params_.reference_supply_v;
  return params_.nominal_hz * (1.0 + params_.supply_coeff_per_v * dv);
}

int VloClock::measure_ticks(double duration_s, double supply_v,
                            sim::Rng& rng) const {
  const double f = frequency(supply_v) * (1.0 + rng.normal(0.0, params_.jitter_frac));
  // The counter captures whole elapsed ticks; the phase of the first tick
  // relative to the pulse start is uniform.
  const double ticks = duration_s * f;
  const double phase = rng.uniform();
  return std::max(0, static_cast<int>(std::floor(ticks + phase)));
}

double VloClock::ticks_to_duration(int ticks, double supply_v,
                                   sim::Rng& rng) const {
  const double f =
      frequency(supply_v) * (1.0 + rng.normal(0.0, params_.jitter_frac));
  return static_cast<double>(ticks) / f;
}

}  // namespace arachnet::mcu
