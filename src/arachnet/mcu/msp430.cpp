#include "arachnet/mcu/msp430.hpp"

#include <stdexcept>
#include <utility>

namespace arachnet::mcu {

Msp430::Msp430(sim::EventQueue* queue, Params params, sim::Rng rng)
    : queue_(queue),
      clock_(params.clock),
      meter_(params.power),
      rng_(rng) {
  if (queue_ == nullptr) {
    throw std::invalid_argument("Msp430: null event queue");
  }
  last_flush_ = queue_->now();
}

void Msp430::flush_residency() {
  const double now = queue_->now();
  if (powered_ && now > last_flush_) {
    meter_.accumulate(mode_, now - last_flush_);
  }
  last_flush_ = now;
}

void Msp430::set_mode(energy::TagMode mode) {
  flush_residency();
  mode_ = mode;
}

const energy::PowerMeter& Msp430::meter() {
  flush_residency();
  return meter_;
}

energy::PowerMeter& Msp430::mutable_meter() {
  flush_residency();
  return meter_;
}

void Msp430::power_up() {
  flush_residency();
  powered_ = true;
  mode_ = energy::TagMode::kIdle;
}

void Msp430::power_down() {
  flush_residency();
  powered_ = false;
  stop_periodic();
}

void Msp430::inject_edge(bool rising) {
  if (!powered_ || !edge_handler_) return;
  edge_handler_(rising);
}

void Msp430::fire_periodic() {
  if (!powered_ || periodic_ticks_ <= 0) return;
  const std::uint64_t generation = periodic_generation_;
  const double interval =
      clock_.ticks_to_duration(periodic_ticks_, supply_v_, rng_);
  periodic_event_ = queue_->schedule_in(interval, [this, generation] {
    if (generation != periodic_generation_) return;  // stale timer
    if (periodic_cb_) periodic_cb_();
    fire_periodic();
  });
}

void Msp430::start_periodic(int ticks, Callback cb) {
  if (ticks <= 0) {
    throw std::invalid_argument("Msp430::start_periodic: ticks must be > 0");
  }
  stop_periodic();
  periodic_ticks_ = ticks;
  periodic_cb_ = std::move(cb);
  fire_periodic();
}

void Msp430::stop_periodic() {
  ++periodic_generation_;
  queue_->cancel(periodic_event_);
  periodic_ticks_ = 0;
  periodic_cb_ = nullptr;
}

sim::EventId Msp430::schedule_timeout(double seconds, Callback cb) {
  // Software timeouts count VLO ticks, so they stretch with the clock.
  const double nominal_ticks = seconds / clock_.nominal_tick();
  const double actual =
      clock_.ticks_to_duration(static_cast<int>(nominal_ticks), supply_v_,
                               rng_);
  return queue_->schedule_in(actual, std::move(cb));
}

}  // namespace arachnet::mcu
