#pragma once

#include <functional>

#include "arachnet/energy/tag_power.hpp"
#include "arachnet/mcu/vlo_clock.hpp"
#include "arachnet/sim/event_queue.hpp"
#include "arachnet/sim/rng.hpp"

namespace arachnet::mcu {

/// Interrupt-driven MSP430-like MCU shell running on the discrete-event
/// kernel. Implements the three mechanisms the tag firmware is built on
/// (paper Sec. 4.3):
///  * GPIO edge interrupts (DL demodulation wake-ups),
///  * periodic timer interrupts (UL modulation),
///  * one-shot software timeouts (beacon-loss detection),
/// plus operating-mode residency accounting against the Table-2 power
/// model. The CPU is presumed in LPM3 between interrupts; each interrupt
/// costs a brief active burst already folded into the per-mode currents.
class Msp430 {
 public:
  struct Params {
    VloClock::Params clock{};
    energy::TagPowerModel power{};
  };

  using Callback = std::function<void()>;
  using EdgeHandler = std::function<void(bool rising)>;

  Msp430(sim::EventQueue* queue, Params params, sim::Rng rng);

  // ---- Power / mode management -------------------------------------
  /// Switches the operating mode, accounting residency of the previous
  /// mode up to the current simulation time.
  void set_mode(energy::TagMode mode);
  energy::TagMode mode() const noexcept { return mode_; }

  /// Flushes residency accounting up to now and returns the meter.
  const energy::PowerMeter& meter();

  /// Mutable access to the meter (e.g. to bind telemetry gauges);
  /// flushes residency accounting first like meter().
  energy::PowerMeter& mutable_meter();

  /// Supply voltage (from the harvester); shifts the VLO.
  void set_supply(double volts) noexcept { supply_v_ = volts; }
  double supply() const noexcept { return supply_v_; }

  /// True while the cutoff has the rail energized. When powered off, all
  /// interrupts are disabled and pending timers are cancelled.
  void power_up();
  void power_down();
  bool powered() const noexcept { return powered_; }

  // ---- GPIO edge interrupts ------------------------------------------
  /// Installs the edge ISR for the DL comparator pin.
  void on_edge(EdgeHandler handler) { edge_handler_ = std::move(handler); }

  /// Injects a pin transition from the analog frontend.
  void inject_edge(bool rising);

  // ---- Timers ---------------------------------------------------------
  /// Starts a repeating timer firing every `ticks` VLO ticks (the UL
  /// modulation clock). Replaces any running periodic timer.
  void start_periodic(int ticks, Callback cb);
  void stop_periodic();

  /// One-shot software timeout after `seconds` (scheduled through the VLO,
  /// so it inherits clock error). Returns an id usable with cancel().
  sim::EventId schedule_timeout(double seconds, Callback cb);
  bool cancel(sim::EventId id) { return queue_->cancel(id); }

  /// Timer capture: measure a duration in VLO ticks (PIE demodulation).
  int measure_ticks(double duration_s) {
    return clock_.measure_ticks(duration_s, supply_v_, rng_);
  }

  const VloClock& clock() const noexcept { return clock_; }
  sim::EventQueue& queue() noexcept { return *queue_; }
  double now() const noexcept { return queue_->now(); }

 private:
  void flush_residency();
  void fire_periodic();

  sim::EventQueue* queue_;
  VloClock clock_;
  energy::PowerMeter meter_;
  sim::Rng rng_;
  EdgeHandler edge_handler_;
  energy::TagMode mode_ = energy::TagMode::kIdle;
  double supply_v_ = 2.0;
  bool powered_ = false;
  double last_flush_ = 0.0;
  int periodic_ticks_ = 0;
  Callback periodic_cb_;
  sim::EventId periodic_event_{};
  std::uint64_t periodic_generation_ = 0;
};

}  // namespace arachnet::mcu
