#pragma once

#include <vector>

#include "arachnet/phy/packet.hpp"
#include "arachnet/pzt/transducer.hpp"
#include "arachnet/reader/dl_tx.hpp"
#include "arachnet/sim/rng.hpp"

namespace arachnet::mcu {

/// The tag's analog downlink frontend (paper Fig. 3 / Fig. 6a): the
/// resonant PZT turns the structural vibration into an electrical
/// envelope, the envelope detector + comparator produce a binary signal,
/// and the MCU timestamps its edges to measure PIE pulse intervals.
///
/// The structural "ring effect" is first order here: the BiW is a high-Q
/// resonator, so when the reader simply stops driving (pure OOK), the
/// envelope decays with the structure's ring time constant and the
/// comparator's falling edge lands late. The paper's FSK-in/OOK-out drive
/// keeps exciting the structure off-resonance, actively displacing the
/// resonant energy, which shortens the effective tail (Sec. 4.1).
class EnvelopeFrontend {
 public:
  struct Params {
    pzt::Transducer::Params pzt{};
    /// Ring-down time constant of the whole structure+PZT path when the
    /// drive stops entirely (pure OOK low).
    double structure_ring_tau_s = 1.6e-3;
    /// Effective tail when the drive moves off-resonance instead: the
    /// off-resonant excitation damps the resonant mode.
    double fsk_displacement_tau_s = 0.25e-3;
    /// Comparator hysteresis as fractions of the on-resonance envelope.
    double comparator_high = 0.55;
    double comparator_low = 0.40;
    /// Envelope integration step.
    double time_step_s = 10e-6;
  };

  EnvelopeFrontend() : EnvelopeFrontend(Params{}) {}
  explicit EnvelopeFrontend(Params p) : params_(p), pzt_(p.pzt) {}

  /// Converts a reader drive (sequence of frequency segments) into the
  /// high-pulse durations the MCU would measure between comparator edges.
  std::vector<double> pulse_durations(
      const std::vector<reader::DlSegment>& segments) const;

  /// Full tag-side decode of one broadcast: frontend -> VLO tick
  /// measurement -> PIE classification -> beacon parse. Returns nullopt
  /// on preamble mismatch (lost beacon).
  std::optional<phy::DlBeacon> demodulate(
      const std::vector<reader::DlSegment>& segments, double chip_rate,
      double supply_v, const class VloClock& clock, sim::Rng& rng) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  pzt::Transducer pzt_;
};

}  // namespace arachnet::mcu
