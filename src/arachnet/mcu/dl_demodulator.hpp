#pragma once

#include <optional>
#include <vector>

#include "arachnet/mcu/vlo_clock.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/sim/rng.hpp"

namespace arachnet::mcu {

/// Tag-side downlink demodulation as the firmware performs it (paper
/// Fig. 6a): a rising edge resets the timer, a falling edge captures it,
/// and the captured tick count against a threshold decides PIE 0 vs 1.
///
/// Because the counter runs on the supply-sensitive 12 kHz VLO and the
/// reader's software PIE adds 0.1-0.3 ms of jitter per symbol, high DL bit
/// rates misclassify pulses — this is the mechanism behind the loss surge
/// at 1000/2000 bps in Fig. 13(a).
class DlDemodulator {
 public:
  struct Params {
    VloClock::Params clock{};
    double chip_rate = phy::kDefaultDlRawBitRate;
    /// Reader software modulates PIE by pausing/resuming the carrier over
    /// USB; each pulse EDGE carries this much uniform timing offset (s),
    /// the paper's "about 0.1-0.3 ms time offset to each PIE symbol".
    double reader_jitter_min_s = 0.1e-3;
    double reader_jitter_max_s = 0.3e-3;
  };

  explicit DlDemodulator(Params params) : params_(params), clock_(params.clock) {}

  /// The firmware's decision threshold in ticks for the current rate:
  /// pulses longer than 1.5 nominal chips decode as 1.
  int threshold_ticks() const;

  /// Demodulates one beacon broadcast. `supply_v` is the tag's rail
  /// voltage at reception time. Returns the beacon if the preamble
  /// matched, nullopt otherwise (a lost beacon).
  std::optional<phy::DlBeacon> demodulate(const phy::DlBeacon& sent,
                                          double supply_v, sim::Rng& rng) const;

  /// Probability estimate of beacon loss at the configured rate/supply,
  /// by Monte-Carlo over `trials` beacons.
  double loss_rate(const phy::DlBeacon& sent, double supply_v, sim::Rng& rng,
                   int trials = 1000) const;

  /// On-air duration of a beacon at this chip rate (for timing).
  double beacon_duration(const phy::DlBeacon& beacon) const {
    return phy::dl_beacon_duration(beacon, params_.chip_rate);
  }

  const Params& params() const noexcept { return params_; }

 private:
  /// True high-pulse duration of one PIE bit including reader jitter.
  double pulse_duration(bool bit, sim::Rng& rng) const;

  Params params_;
  VloClock clock_;
};

}  // namespace arachnet::mcu
