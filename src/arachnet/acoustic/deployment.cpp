#include "arachnet/acoustic/deployment.hpp"

#include <numbers>
#include <stdexcept>

#include "arachnet/sim/units.hpp"

namespace arachnet::acoustic {

Deployment Deployment::onvo_l60() {
  Deployment d;
  auto& g = d.graph_;

  // ---- Structural spine (floor assembly, front -> rear). Coordinates in
  // metres: x forward from the front bumper line, y from the left rocker,
  // z from the floor plane. Vehicle ~4.8 m x 1.9 m.
  const auto front_cross = g.add_node("front_crossmember", {0.9, 0.95, 0.1},
                                      BiwArea::kBeam);
  const auto dash = g.add_node("dashboard_panel", {1.3, 0.95, 0.6},
                               BiwArea::kFrontRow);
  const auto front_floor = g.add_node("front_floor", {1.7, 0.95, 0.0},
                                      BiwArea::kFloor);
  const auto mid_floor_front = g.add_node("middle_floor_front",
                                          {2.2, 0.95, 0.0}, BiwArea::kFloor);
  const auto mid_floor = g.add_node("middle_floor", {2.6, 0.95, 0.0},
                                    BiwArea::kFloor);
  const auto mid_floor_rear = g.add_node("middle_floor_rear",
                                         {3.1, 0.95, 0.0}, BiwArea::kFloor);
  const auto rear_floor_front = g.add_node("rear_floor_front",
                                           {3.6, 0.95, 0.1}, BiwArea::kFloor);
  const auto rear_floor = g.add_node("rear_floor", {4.1, 0.95, 0.2},
                                     BiwArea::kCargoArea);
  const auto rear_cross = g.add_node("rear_crossmember", {4.6, 0.95, 0.3},
                                     BiwArea::kBeam);

  // Rocker panels and pillars (left side used by odd structures).
  const auto rocker_l = g.add_node("rocker_panel_left", {2.4, 0.05, 0.15},
                                   BiwArea::kRocker);
  const auto rocker_r = g.add_node("rocker_panel_right", {2.4, 1.85, 0.15},
                                   BiwArea::kRocker);
  const auto b_pillar_l = g.add_node("b_pillar_left", {2.3, 0.05, 0.9},
                                     BiwArea::kPillar);
  const auto b_pillar_r = g.add_node("b_pillar_right", {2.3, 1.85, 0.9},
                                     BiwArea::kPillar);
  const auto c_pillar_l = g.add_node("c_pillar_left", {3.7, 0.1, 0.9},
                                     BiwArea::kPillar);
  const auto c_pillar_r = g.add_node("c_pillar_right", {3.7, 1.8, 0.9},
                                     BiwArea::kPillar);
  const auto long_beam = g.add_node("longitudinal_beam", {1.4, 0.5, 0.05},
                                    BiwArea::kBeam);
  const auto threshold = g.add_node("threshold", {4.55, 0.95, 0.35},
                                    BiwArea::kCargoArea);
  const auto seat_cross = g.add_node("seat_crossmember", {2.35, 0.6, 0.25},
                                     BiwArea::kBeam);

  // Spine connectivity (the floor is increasingly a single mega-casting,
  // hence continuous-panel links along it).
  g.add_edge(front_cross, front_floor, EdgeKind::kSeamWeld);
  g.add_edge(front_floor, mid_floor_front, EdgeKind::kContinuousPanel);
  g.add_edge(mid_floor_front, mid_floor, EdgeKind::kContinuousPanel);
  g.add_edge(mid_floor, mid_floor_rear, EdgeKind::kContinuousPanel);
  g.add_edge(mid_floor_rear, rear_floor_front, EdgeKind::kSeamWeld);
  g.add_edge(rear_floor_front, rear_floor, EdgeKind::kContinuousPanel);
  g.add_edge(rear_floor, rear_cross, EdgeKind::kSeamWeld);
  g.add_edge(rear_cross, threshold, EdgeKind::kSeamWeld);

  // Dash / front structure.
  g.add_edge(dash, front_floor, EdgeKind::kPerpendicularJunction);
  g.add_edge(front_cross, long_beam, EdgeKind::kSeamWeld);
  g.add_edge(long_beam, front_floor, EdgeKind::kContinuousPanel);

  // Lateral structure.
  g.add_edge(mid_floor, rocker_l, EdgeKind::kSeamWeld);
  g.add_edge(mid_floor, rocker_r, EdgeKind::kSeamWeld);
  g.add_edge(rocker_l, b_pillar_l, EdgeKind::kPerpendicularJunction);
  g.add_edge(rocker_r, b_pillar_r, EdgeKind::kPerpendicularJunction);
  g.add_edge(rear_floor, c_pillar_l, EdgeKind::kPerpendicularJunction);
  g.add_edge(rear_floor, c_pillar_r, EdgeKind::kPerpendicularJunction);
  g.add_edge(mid_floor_front, seat_cross, EdgeKind::kSeamWeld);

  // ---- Devices. Reader centrally placed in the second row, above the
  // battery pack (paper Fig. 10c).
  d.reader_node_ = g.add_node("reader_mount", {2.55, 0.95, 0.05},
                              BiwArea::kSecondRow);
  g.add_edge(d.reader_node_, mid_floor, EdgeKind::kContinuousPanel);

  const auto add_tag = [&](int tid, const char* name, Vec3 pos, BiwArea area,
                           NodeId attach, EdgeKind kind,
                           std::optional<double> length_m = std::nullopt,
                           double coupling_loss_db = 0.0) {
    const auto node = g.add_node(name, pos, area);
    g.add_edge(node, attach, kind, length_m);
    d.tags_.push_back(TagSite{tid, node, area, coupling_loss_db});
  };

  // Front row: tags 1-3 (Fig. 10b) — reach the reader through the front
  // half of the floor; tag 1 is up on the dashboard.
  add_tag(1, "tag01_dashboard", {1.25, 0.55, 0.55}, BiwArea::kFrontRow, dash,
          EdgeKind::kSeamWeld);
  add_tag(2, "tag02_front_floor", {1.65, 0.35, 0.0}, BiwArea::kFrontRow,
          front_floor, EdgeKind::kContinuousPanel, std::nullopt, 11.3);
  add_tag(3, "tag03_long_beam", {1.45, 0.5, 0.05}, BiwArea::kFrontRow,
          long_beam, EdgeKind::kSeamWeld, std::nullopt, 8.5);

  // Second row: tags 4-8 (Fig. 10c). Tag 4 sits on the vertical face of the
  // seat crossmember — the "turning face" anchor. Tag 8 is closest to the
  // reader on the same floor panel.
  add_tag(4, "tag04_turning_face", {2.35, 0.6, 0.45}, BiwArea::kSecondRow,
          seat_cross, EdgeKind::kPerpendicularJunction, 0.9);
  add_tag(5, "tag05_rocker_left", {2.45, 0.08, 0.15}, BiwArea::kSecondRow,
          rocker_l, EdgeKind::kContinuousPanel, std::nullopt, 10.9);
  add_tag(6, "tag06_mid_floor", {2.5, 1.3, 0.0}, BiwArea::kSecondRow,
          mid_floor, EdgeKind::kContinuousPanel, 0.75, 11.2);
  add_tag(7, "tag07_rocker_right", {2.45, 1.82, 0.15}, BiwArea::kSecondRow,
          rocker_r, EdgeKind::kContinuousPanel, std::nullopt, 11.1);
  add_tag(8, "tag08_near_reader", {2.7, 0.95, 0.0}, BiwArea::kSecondRow,
          mid_floor, EdgeKind::kContinuousPanel, 0.55);

  // Cargo area: tags 9-12 (Fig. 10d). Tag 11 is deepest, behind the rear
  // crossmember on the threshold.
  add_tag(9, "tag09_rear_floor", {4.0, 0.5, 0.2}, BiwArea::kCargoArea,
          rear_floor, EdgeKind::kContinuousPanel, std::nullopt, 8.1);
  add_tag(10, "tag10_c_pillar", {3.72, 0.12, 0.8}, BiwArea::kCargoArea,
          c_pillar_l, EdgeKind::kContinuousPanel);
  add_tag(11, "tag11_threshold", {4.58, 1.3, 0.35}, BiwArea::kCargoArea,
          threshold, EdgeKind::kSeamWeld, 1.18);
  add_tag(12, "tag12_rear_cross", {4.55, 0.6, 0.3}, BiwArea::kCargoArea,
          rear_cross, EdgeKind::kContinuousPanel, std::nullopt, 5.1);

  return d;
}

const TagSite& Deployment::tag(int tid) const {
  for (const auto& t : tags_) {
    if (t.tid == tid) return t;
  }
  throw std::out_of_range("Deployment::tag: unknown tid");
}

double Deployment::injected_amplitude() const noexcept {
  return drive_.amplifier_peak_v * drive_.tx_gain;
}

Link Deployment::reader_link(int tid) const {
  Link link = channel().link(reader_node_, tag(tid).node);
  const double extra = tag(tid).coupling_loss_db;
  link.loss_db += extra;
  link.gain *= sim::db_to_amplitude(-extra);
  return link;
}

double Deployment::tag_pzt_peak_voltage(int tid) const {
  const Link l = reader_link(tid);
  return tag_pzt_.open_circuit_voltage(injected_amplitude() * l.gain,
                                       channel_params_.carrier_hz);
}

double Deployment::backscatter_rx_amplitude(int tid) const {
  const Link l = reader_link(tid);
  return injected_amplitude() * l.gain * l.gain;
}

double Deployment::backscatter_phase(int tid) const {
  const Link l = reader_link(tid);
  return 2.0 * std::numbers::pi * channel_params_.carrier_hz * 2.0 *
         l.delay_s;
}

}  // namespace arachnet::acoustic
