#include "arachnet/acoustic/link_model.hpp"

#include <cmath>
#include <stdexcept>

#include "arachnet/sim/units.hpp"

namespace arachnet::acoustic {

ChannelModel::ChannelModel(const BiwGraph* graph, Params params)
    : graph_(graph), params_(params) {
  if (graph_ == nullptr) {
    throw std::invalid_argument("ChannelModel: null graph");
  }
}

Link ChannelModel::link(NodeId from, NodeId to) const {
  const PathBudget budget = graph_->path(from, to);
  Link link;
  if (!budget.reachable()) return link;  // gain 0
  link.loss_db = budget.loss_db + 2.0 * params_.mount_loss_db;
  link.gain = sim::db_to_amplitude(-link.loss_db);
  link.delay_s = budget.delay_s;
  link.distance_m = budget.distance_m;
  return link;
}

double ChannelModel::roundtrip_gain(NodeId reader, NodeId tag) const {
  const Link one_way = link(reader, tag);
  return one_way.gain * one_way.gain;
}

double ChannelModel::noise_rms(double bw) const {
  return params_.noise_amplitude_density * std::sqrt(bw);
}

}  // namespace arachnet::acoustic
