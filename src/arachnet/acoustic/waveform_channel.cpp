#include "arachnet/acoustic/waveform_channel.hpp"

#include <cmath>
#include <numbers>

#include "arachnet/dsp/kernels/nco.hpp"

namespace arachnet::acoustic {
namespace {

/// Chip-target level of `src` at sample index `i` — the exact expression
/// the scalar path evaluates per sample.
double target_at(const BackscatterSource& src, std::size_t i, double dt) {
  double target = src.absorb_coeff;
  const double rel = static_cast<double>(i) * dt - src.start_s;
  if (rel >= 0.0 && src.chip_rate > 0.0) {
    const auto chip_idx = static_cast<std::size_t>(rel * src.chip_rate);
    if (!src.levels.empty()) {
      if (chip_idx < src.levels.size()) target = src.levels[chip_idx];
    } else if (chip_idx < src.chips.size()) {
      target = src.chips[chip_idx] ? src.reflect_coeff : src.absorb_coeff;
    }
  }
  return target;
}

/// First sample index in (i, n] where target_at() can change: the next
/// chip boundary (or burst start) of `src`. The candidate index comes from
/// the closed-form boundary time; it is then nudged against the exact
/// per-sample predicate so the segmentation agrees with the scalar path
/// even when the division rounds across a sample.
std::size_t segment_end(const BackscatterSource& src, std::size_t i,
                        std::size_t n, double dt) {
  if (src.chip_rate <= 0.0) return n;
  const double rel = static_cast<double>(i) * dt - src.start_s;
  double boundary_s;
  if (rel < 0.0) {
    boundary_s = src.start_s;  // burst not started: next change at start_s
  } else {
    const auto chip_idx = static_cast<std::size_t>(rel * src.chip_rate);
    const std::size_t chips =
        src.levels.empty() ? src.chips.size() : src.levels.size();
    if (chip_idx >= chips) return n;  // past the burst: absorptive forever
    boundary_s =
        static_cast<double>(chip_idx + 1) / src.chip_rate + src.start_s;
  }
  const double cand = std::ceil(boundary_s / dt);
  std::size_t b =
      cand <= static_cast<double>(i + 1)
          ? i + 1
          : (cand >= static_cast<double>(n) ? n
                                            : static_cast<std::size_t>(cand));
  // Exact predicate: does sample j still see the same chip state as i?
  const auto same_state = [&](std::size_t j) {
    const double rj = static_cast<double>(j) * dt - src.start_s;
    if (rel < 0.0) return rj < 0.0;
    return rj >= 0.0 && static_cast<std::size_t>(rj * src.chip_rate) ==
                            static_cast<std::size_t>(rel * src.chip_rate);
  };
  while (b > i + 1 && !same_state(b - 1)) --b;
  while (b < n && same_state(b)) ++b;
  return b;
}

}  // namespace

std::vector<double> UplinkWaveformSynth::synthesize(
    const std::vector<BackscatterSource>& sources, double duration_s,
    sim::Rng& rng) {
  const auto n = static_cast<std::size_t>(duration_s * params_.sample_rate_hz);
  std::vector<double> out(n, 0.0);
  const double dt = 1.0 / params_.sample_rate_hz;
  const double w_carrier = 2.0 * std::numbers::pi * params_.carrier_hz;
  const double w_ambient = 2.0 * std::numbers::pi * params_.ambient_hz;
  // One-pole smoothing coefficient for the mechanical ring.
  const double alpha =
      params_.ring_tau_s > 0.0 ? std::exp(-dt / params_.ring_tau_s) : 0.0;

  // Per-source smoothed reflection state, seeded at the absorptive level.
  std::vector<double> smoothed(sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    smoothed[s] = sources[s].absorb_coeff;
  }

  if (params_.kernels == dsp::KernelPolicy::kScalar) {
    for (std::size_t i = 0; i < n; ++i) {
      const double t_local = static_cast<double>(i) * dt;
      const double t = t0_ + t_local;  // absolute: phases continue over calls
      double sample =
          params_.carrier_leak_amplitude * std::cos(w_carrier * t);
      for (std::size_t s = 0; s < sources.size(); ++s) {
        const auto& src = sources[s];
        // Chip value at time t: absorptive outside the burst.
        double target = src.absorb_coeff;
        const double rel = t_local - src.start_s;
        if (rel >= 0.0 && src.chip_rate > 0.0) {
          const auto chip_idx = static_cast<std::size_t>(rel * src.chip_rate);
          if (!src.levels.empty()) {
            if (chip_idx < src.levels.size()) target = src.levels[chip_idx];
          } else if (chip_idx < src.chips.size()) {
            target =
                src.chips[chip_idx] ? src.reflect_coeff : src.absorb_coeff;
          }
        }
        smoothed[s] = alpha * smoothed[s] + (1.0 - alpha) * target;
        sample += src.amplitude * smoothed[s] *
                  std::cos(w_carrier * t + src.phase_rad);
      }
      if (params_.ambient_amplitude != 0.0) {
        sample += params_.ambient_amplitude * std::sin(w_ambient * t);
      }
      sample += rng.normal(0.0, params_.noise_sigma);
      out[i] = sample;
    }
    t0_ += static_cast<double>(n) * dt;
    return out;
  }

  // Block path. The carrier phasor e^{jw(t0+i*dt)} is rendered once with a
  // recurrence NCO; the leak term is its real part and every source term is
  // the same block rotated by the source's constant phase offset:
  // cos(wt + phi) = Re(e^{jwt}) cos(phi) - Im(e^{jwt}) sin(phi). The
  // per-sample chip lookup is hoisted into run-length segments, so the
  // inner loop is a branch-free EMA + multiply-add. The summation order
  // per sample (leak, sources in order, ambient, noise) matches the scalar
  // path; the noise draw sequence is identical.
  osc_buf_.resize(n);
  dsp::PhasorNco carrier{w_carrier * t0_, w_carrier * dt};
  carrier.fill(osc_buf_.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = params_.carrier_leak_amplitude * osc_buf_[i].real();
  }
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const auto& src = sources[s];
    const double rot_re = std::cos(src.phase_rad);
    const double rot_im = std::sin(src.phase_rad);
    double sm = smoothed[s];
    std::size_t i = 0;
    while (i < n) {
      const double target = target_at(src, i, dt);
      const std::size_t end = segment_end(src, i, n, dt);
      const double step = (1.0 - alpha) * target;
      for (std::size_t k = i; k < end; ++k) {
        sm = alpha * sm + step;
        out[k] += src.amplitude * sm *
                  (osc_buf_[k].real() * rot_re - osc_buf_[k].imag() * rot_im);
      }
      i = end;
    }
    smoothed[s] = sm;
  }
  if (params_.ambient_amplitude != 0.0) {
    dsp::PhasorNco ambient{w_ambient * t0_, w_ambient * dt};
    ambient.fill(osc_buf_.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += params_.ambient_amplitude * osc_buf_[i].imag();
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += rng.normal(0.0, params_.noise_sigma);
  }
  t0_ += static_cast<double>(n) * dt;
  return out;
}

}  // namespace arachnet::acoustic
