#include "arachnet/acoustic/waveform_channel.hpp"

#include <cmath>
#include <numbers>

namespace arachnet::acoustic {

std::vector<double> UplinkWaveformSynth::synthesize(
    const std::vector<BackscatterSource>& sources, double duration_s,
    sim::Rng& rng) {
  const auto n = static_cast<std::size_t>(duration_s * params_.sample_rate_hz);
  std::vector<double> out(n, 0.0);
  const double dt = 1.0 / params_.sample_rate_hz;
  const double w_carrier = 2.0 * std::numbers::pi * params_.carrier_hz;
  const double w_ambient = 2.0 * std::numbers::pi * params_.ambient_hz;
  // One-pole smoothing coefficient for the mechanical ring.
  const double alpha =
      params_.ring_tau_s > 0.0 ? std::exp(-dt / params_.ring_tau_s) : 0.0;

  // Per-source smoothed reflection state, seeded at the absorptive level.
  std::vector<double> smoothed(sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    smoothed[s] = sources[s].absorb_coeff;
  }

  for (std::size_t i = 0; i < n; ++i) {
    const double t_local = static_cast<double>(i) * dt;
    const double t = t0_ + t_local;  // absolute: phases continue over calls
    double sample = params_.carrier_leak_amplitude * std::cos(w_carrier * t);
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const auto& src = sources[s];
      // Chip value at time t: absorptive outside the burst.
      double target = src.absorb_coeff;
      const double rel = t_local - src.start_s;
      if (rel >= 0.0 && src.chip_rate > 0.0) {
        const auto chip_idx = static_cast<std::size_t>(rel * src.chip_rate);
        if (!src.levels.empty()) {
          if (chip_idx < src.levels.size()) target = src.levels[chip_idx];
        } else if (chip_idx < src.chips.size()) {
          target = src.chips[chip_idx] ? src.reflect_coeff : src.absorb_coeff;
        }
      }
      smoothed[s] = alpha * smoothed[s] + (1.0 - alpha) * target;
      sample += src.amplitude * smoothed[s] *
                std::cos(w_carrier * t + src.phase_rad);
    }
    if (params_.ambient_amplitude != 0.0) {
      sample += params_.ambient_amplitude * std::sin(w_ambient * t);
    }
    sample += rng.normal(0.0, params_.noise_sigma);
    out[i] = sample;
  }
  t0_ += static_cast<double>(n) * dt;
  return out;
}

}  // namespace arachnet::acoustic
