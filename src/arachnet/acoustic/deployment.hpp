#pragma once

#include <vector>

#include "arachnet/acoustic/biw_graph.hpp"
#include "arachnet/acoustic/link_model.hpp"
#include "arachnet/pzt/transducer.hpp"

namespace arachnet::acoustic {

/// One deployed tag: paper TIDs run 1..12 across three areas (Fig. 10).
struct TagSite {
  int tid = 0;
  NodeId node = 0;
  BiwArea area = BiwArea::kOther;
  /// Site-specific epoxy-bond / local-geometry quality (extra amplitude
  /// loss in dB). Mounting quality varies strongly tag to tag in the real
  /// deployment, which is what spreads the charging times over 4.5-56 s.
  double coupling_loss_db = 0.0;
};

/// A complete deployed ARACHNET installation: the BiW structural graph of
/// an electric SUV comparable to the paper's ONVO L60 (about 4.8 m x 1.9 m),
/// one reader above the battery pack in the second row, and twelve tags:
/// 1-3 front row, 4-8 second row, 9-12 cargo area. Tag 4 sits on a
/// perpendicular "turning face" and Tag 11 deepest in the cargo area, so
/// the two weak-link anchors of the paper emerge from the geometry.
class Deployment {
 public:
  struct DriveParams {
    /// Amplifier peak output driving the TX PZT (36 V, 72 Vpp; 18 W class).
    double amplifier_peak_v = 36.0;
    /// Reader TX transducer efficiency: vibration amplitude per drive volt.
    double tx_gain = 0.2;
  };

  /// Builds the reference SUV deployment.
  static Deployment onvo_l60();

  const BiwGraph& graph() const noexcept { return graph_; }
  NodeId reader_node() const noexcept { return reader_node_; }
  const std::vector<TagSite>& tags() const noexcept { return tags_; }
  const TagSite& tag(int tid) const;
  /// Channel model bound to this deployment's graph. The returned object
  /// borrows the graph; it must not outlive the Deployment.
  ChannelModel channel() const { return ChannelModel{&graph_, channel_params_}; }
  const DriveParams& drive() const noexcept { return drive_; }
  const pzt::Transducer& tag_pzt() const noexcept { return tag_pzt_; }

  /// Vibration amplitude injected into the structure at the reader mount.
  double injected_amplitude() const noexcept;

  /// One-way link reader -> tag.
  Link reader_link(int tid) const;

  /// PZT open-circuit peak voltage available for harvesting at the tag.
  double tag_pzt_peak_voltage(int tid) const;

  /// Amplitude of the tag's backscattered carrier at the reader RX when the
  /// tag is fully reflective (round trip, before modulation depth).
  double backscatter_rx_amplitude(int tid) const;

  /// Carrier phase of the tag's reflection at the reader (from its
  /// round-trip route delay).
  double backscatter_phase(int tid) const;

 private:
  Deployment() = default;

  BiwGraph graph_;
  NodeId reader_node_ = 0;
  std::vector<TagSite> tags_;
  ChannelModel::Params channel_params_{};
  DriveParams drive_{};
  pzt::Transducer tag_pzt_{};
};

}  // namespace arachnet::acoustic
