#pragma once

#include <complex>
#include <vector>

#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/phy/bits.hpp"
#include "arachnet/sim/rng.hpp"

namespace arachnet::acoustic {

/// A tag's contribution to the reader RX waveform during an uplink slot.
struct BackscatterSource {
  /// FM0 chip stream the tag modulates (true = reflective).
  phy::BitVector chips;
  /// Multi-level alternative to `chips` for higher-order modulation:
  /// reflection coefficients per chip interval. When non-empty it takes
  /// precedence over `chips`.
  std::vector<double> levels;
  /// Raw chip rate (chips per second).
  double chip_rate = 375.0;
  /// Start time of the first chip relative to the synthesis window (s).
  double start_s = 0.0;
  /// Round-trip amplitude of the backscattered carrier at the RX PZT.
  double amplitude = 0.0;
  /// Carrier phase of this tag's reflection (set by its route delay).
  double phase_rad = 0.0;
  /// Reflection coefficients mapped by chip value.
  double reflect_coeff = 0.92;
  double absorb_coeff = 0.35;
};

/// Synthesizes the real-valued 500 kS/s waveform the reader's RX PZT
/// produces during uplink reception: the (strong) direct carrier leakage,
/// each tag's reflection with its modulation and ring-limited transitions,
/// vehicle self-vibration below 0.1 kHz, and AWGN.
class UplinkWaveformSynth {
 public:
  struct Params {
    double sample_rate_hz = 500e3;
    double carrier_hz = 90e3;
    /// Direct TX->RX carrier leakage amplitude (dominates the spectrum; the
    /// DSP chain's job is to pull modulation out from under it).
    double carrier_leak_amplitude = 1.0;
    /// AWGN standard deviation per sample. Calibrated so the weakest
    /// deployed tag decodes at paper-level SNR (Tag 11: ~18 dB at 750 bps).
    double noise_sigma = 0.004;
    /// Mechanical ring: one-pole time constant limiting how fast a tag's
    /// reflection amplitude can change (s).
    double ring_tau_s = 64e-6;
    /// Vehicle self-vibration (engine/road): frequency and amplitude.
    double ambient_hz = 35.0;
    double ambient_amplitude = 0.0;
    /// DSP implementation (see dsp::KernelPolicy): the block path renders
    /// carriers with phasor-recurrence NCOs and walks each source's chip
    /// stream in run-length segments; the scalar path is the per-sample
    /// reference. Waveforms agree to rounding tolerance; the RNG draw
    /// order (and hence the noise realization) is identical.
    dsp::KernelPolicy kernels = dsp::default_kernel_policy();
  };

  explicit UplinkWaveformSynth(Params params) : params_(params) {}

  /// Renders `duration_s` seconds of RX waveform containing the given
  /// backscatter sources (whose start_s are relative to this window).
  ///
  /// Successive calls are continuous: the reader transmits its carrier
  /// without interruption, so the synthesizer keeps an absolute time
  /// cursor and the carrier/ambient phases and ring state carry over.
  std::vector<double> synthesize(const std::vector<BackscatterSource>& sources,
                                 double duration_s, sim::Rng& rng);

  /// Absolute time rendered so far.
  double now() const noexcept { return t0_; }

  /// Restarts the timeline (a fresh reader power-up).
  void reset() noexcept { t0_ = 0.0; }

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  double t0_ = 0.0;
  /// Block-path oscillator scratch, reused across synthesize() calls.
  std::vector<std::complex<double>> osc_buf_;
};

}  // namespace arachnet::acoustic
