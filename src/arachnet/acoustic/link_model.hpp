#pragma once

#include <vector>

#include "arachnet/acoustic/biw_graph.hpp"
#include "arachnet/pzt/transducer.hpp"

namespace arachnet::acoustic {

/// One-way acoustic link between two mounts on the BiW.
struct Link {
  double gain = 0.0;        ///< amplitude gain (linear, <= 1)
  double loss_db = 0.0;     ///< amplitude loss in dB (positive number)
  double delay_s = 0.0;     ///< propagation delay along the metal route
  double distance_m = 0.0;  ///< metal route length
};

/// Link-budget calculator for a deployed network: wraps the structural
/// graph and adds the device-level terms (PZT coupling/mounting loss).
class ChannelModel {
 public:
  struct Params {
    /// Epoxy-mount + bonding interface loss applied once per device
    /// (amplitude dB).
    double mount_loss_db = 5.0;
    /// Carrier frequency the links are evaluated at.
    double carrier_hz = 90e3;
    /// Background acoustic noise amplitude density at the RX PZT output,
    /// per sqrt(Hz) — sets the SNR scale of the waveform experiments.
    double noise_amplitude_density = 3.2e-5;
    /// Vehicle self-vibration: below 0.1 kHz per the paper, modelled as a
    /// strong low-frequency tone.
    double ambient_vibration_hz = 35.0;
    double ambient_vibration_amplitude = 0.5;
  };

  ChannelModel(const BiwGraph* graph, Params params);

  /// One-way link between two device mount nodes; includes both devices'
  /// mount losses.
  Link link(NodeId from, NodeId to) const;

  /// Round-trip amplitude gain for backscatter reader->tag->reader.
  double roundtrip_gain(NodeId reader, NodeId tag) const;

  /// RMS noise amplitude in a bandwidth of `bw` Hz.
  double noise_rms(double bw) const;

  const Params& params() const noexcept { return params_; }
  const BiwGraph& graph() const noexcept { return *graph_; }

 private:
  const BiwGraph* graph_;
  Params params_;
};

}  // namespace arachnet::acoustic
