#include "arachnet/acoustic/biw_graph.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

#include "arachnet/sim/units.hpp"

namespace arachnet::acoustic {

double distance(const Vec3& a, const Vec3& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

EdgeAcoustics default_acoustics(EdgeKind kind) noexcept {
  switch (kind) {
    case EdgeKind::kContinuousPanel:
      return {.propagation_loss_db_per_m = 2.6, .junction_loss_db = 0.0};
    case EdgeKind::kSeamWeld:
      return {.propagation_loss_db_per_m = 2.6, .junction_loss_db = 2.2};
    case EdgeKind::kPerpendicularJunction:
      return {.propagation_loss_db_per_m = 2.6, .junction_loss_db = 6.0};
    case EdgeKind::kBoltedJoint:
      return {.propagation_loss_db_per_m = 2.6, .junction_loss_db = 9.0};
  }
  return {};
}

NodeId BiwGraph::add_node(std::string name, Vec3 position, BiwArea area) {
  nodes_.push_back(BiwNode{std::move(name), position, area});
  adj_.emplace_back();
  return nodes_.size() - 1;
}

double BiwGraph::edge_length(const BiwEdge& e) const {
  if (e.length_m) return *e.length_m;
  return distance(nodes_[e.a].position, nodes_[e.b].position);
}

void BiwGraph::add_edge(NodeId a, NodeId b, EdgeKind kind,
                        std::optional<double> length_m) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("BiwGraph::add_edge: unknown node");
  }
  if (a == b) {
    throw std::invalid_argument("BiwGraph::add_edge: self-loop");
  }
  const BiwEdge edge{a, b, kind, length_m};
  const double len = edge_length(edge);
  if (length_m && *length_m < distance(nodes_[a].position,
                                       nodes_[b].position) - 1e-9) {
    throw std::invalid_argument(
        "BiwGraph::add_edge: metal path shorter than straight line");
  }
  edges_.push_back(edge);
  const auto acoustics = default_acoustics(kind);
  const double loss =
      acoustics.propagation_loss_db_per_m * len + acoustics.junction_loss_db;
  adj_[a].push_back({b, loss, len});
  adj_[b].push_back({a, loss, len});
}

std::optional<NodeId> BiwGraph::find(const std::string& name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return std::nullopt;
}

PathBudget BiwGraph::path(NodeId from, NodeId to) const {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("BiwGraph::path: unknown node");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> loss(nodes_.size(), kInf);
  std::vector<double> dist(nodes_.size(), 0.0);
  std::vector<NodeId> prev(nodes_.size(), from);
  using QItem = std::pair<double, NodeId>;  // (loss, node)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> q;
  loss[from] = 0.0;
  q.push({0.0, from});
  while (!q.empty()) {
    const auto [l, u] = q.top();
    q.pop();
    if (l > loss[u]) continue;
    if (u == to) break;
    for (const auto& edge : adj_[u]) {
      const double candidate = l + edge.loss_db;
      if (candidate < loss[edge.to]) {
        loss[edge.to] = candidate;
        dist[edge.to] = dist[u] + edge.length_m;
        prev[edge.to] = u;
        q.push({candidate, edge.to});
      }
    }
  }

  PathBudget budget;
  if (loss[to] == kInf) return budget;  // unreachable
  budget.loss_db = loss[to];
  budget.distance_m = dist[to];
  budget.delay_s = dist[to] / sim::kSteelGroupVelocityMps;
  // Reconstruct route.
  std::vector<NodeId> route;
  for (NodeId v = to;; v = prev[v]) {
    route.push_back(v);
    if (v == from) break;
  }
  budget.nodes.assign(route.rbegin(), route.rend());
  return budget;
}

double BiwGraph::path_loss_db(NodeId from, NodeId to) const {
  return path(from, to).loss_db;
}

}  // namespace arachnet::acoustic
