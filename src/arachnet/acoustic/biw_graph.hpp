#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace arachnet::acoustic {

/// 3D position of a structural point on the BiW, metres. The vehicle frame
/// axes: x forward (0 = front bumper line), y lateral (0 = left rocker),
/// z up (0 = floor plane).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend bool operator==(const Vec3&, const Vec3&) = default;
};

double distance(const Vec3& a, const Vec3& b) noexcept;

/// Structural region a node belongs to (used for reporting and deployment
/// bookkeeping; mirrors the paper's Fig. 10 areas).
enum class BiwArea {
  kFrontRow,
  kSecondRow,
  kCargoArea,
  kFloor,
  kPillar,
  kRocker,
  kBeam,
  kOther,
};

/// How two structural members meet; junction geometry dominates acoustic
/// loss (the paper calls out Tag 4's "geometric transition at the
/// perpendicular junction").
enum class EdgeKind {
  kContinuousPanel,       ///< same sheet; distance loss only
  kSeamWeld,              ///< spot-welded seam: mild extra loss
  kPerpendicularJunction, ///< 90-degree geometric transition: strong loss
  kBoltedJoint,           ///< bolted member: strongest loss
};

/// Per-kind acoustic properties at the 90 kHz carrier.
struct EdgeAcoustics {
  double propagation_loss_db_per_m = 2.6;  ///< dissipation + spreading
  double junction_loss_db = 0.0;           ///< fixed loss crossing the joint
};

EdgeAcoustics default_acoustics(EdgeKind kind) noexcept;

using NodeId = std::size_t;

/// A node of the BiW structural graph: either a pure structural point or a
/// device mount (reader / tag attachment).
struct BiwNode {
  std::string name;
  Vec3 position;
  BiwArea area = BiwArea::kOther;
};

/// An undirected structural connection.
struct BiwEdge {
  NodeId a = 0;
  NodeId b = 0;
  EdgeKind kind = EdgeKind::kContinuousPanel;
  /// Path length along the metal; defaults to straight-line distance when
  /// not provided (real panels curve, so it can exceed it).
  std::optional<double> length_m;
};

/// Result of a path query: total loss and propagation delay along the
/// best (minimum-loss) structural route.
struct PathBudget {
  double loss_db = std::numeric_limits<double>::infinity();
  double distance_m = 0.0;
  double delay_s = 0.0;
  std::vector<NodeId> nodes;  ///< route, source first

  bool reachable() const noexcept {
    return loss_db != std::numeric_limits<double>::infinity();
  }
};

/// The vehicle body-in-white as a weighted graph over which vibrations
/// propagate. Minimum-loss routing (Dijkstra) yields the link budget
/// between any two mount points; delays use the A0 Lamb-mode group
/// velocity.
class BiwGraph {
 public:
  /// Adds a node; returns its id.
  NodeId add_node(std::string name, Vec3 position,
                  BiwArea area = BiwArea::kOther);

  /// Adds an undirected edge between existing nodes.
  void add_edge(NodeId a, NodeId b, EdgeKind kind,
                std::optional<double> length_m = std::nullopt);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }
  const BiwNode& node(NodeId id) const { return nodes_.at(id); }

  /// Finds a node by name; nullopt when absent.
  std::optional<NodeId> find(const std::string& name) const;

  /// Minimum-loss route between two nodes.
  PathBudget path(NodeId from, NodeId to) const;

  /// Loss-only convenience (dB); +inf when unreachable.
  double path_loss_db(NodeId from, NodeId to) const;

 private:
  struct Adjacency {
    NodeId to;
    double loss_db;
    double length_m;
  };

  double edge_length(const BiwEdge& e) const;

  std::vector<BiwNode> nodes_;
  std::vector<BiwEdge> edges_;
  std::vector<std::vector<Adjacency>> adj_;
};

}  // namespace arachnet::acoustic
