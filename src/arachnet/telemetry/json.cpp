#include "arachnet/telemetry/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace arachnet::telemetry {

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.scope == Scope::kObject) {
    // key() already emitted the separator for this value.
    top.expecting_value = false;
    return;
  }
  if (top.has_items) out_.push_back(',');
  top.has_items = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_.push_back('{');
  stack_.push_back({Scope::kObject});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  stack_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_.push_back('[');
  stack_.push_back({Scope::kArray});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  stack_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  Frame& top = stack_.back();
  if (top.has_items) out_.push_back(',');
  top.has_items = true;
  top.expecting_value = true;
  out_.push_back('"');
  escape(k, out_);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_.push_back('"');
  escape(v, out_);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  before_value();
  out_ += fragment;
  return *this;
}

void JsonWriter::escape(std::string_view v, std::string& out) {
  for (char c : v) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

}  // namespace arachnet::telemetry
