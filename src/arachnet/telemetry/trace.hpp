#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace arachnet::telemetry {

/// One completed span. `name` must point at a string with static storage
/// duration (a literal): events are recorded by pointer, never copied.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< since the recorder epoch
  std::uint64_t dur_ns = 0;
};

/// Process-wide scoped-span recorder. Disabled (the default) a span costs
/// one relaxed atomic load; enabled it costs two steady_clock reads plus a
/// bounded-ring write into a per-thread buffer — no locks, no allocation
/// on the record path (each thread's ring is allocated once on its first
/// span). When a ring wraps, the oldest events are overwritten and counted
/// in dropped().
///
/// Export with write_chrome_trace(): the Chrome `trace_event` JSON array
/// format, loadable in chrome://tracing or https://ui.perfetto.dev.
/// Exporting while spans are still being recorded is racy — quiesce (join
/// workers or disable()) first; benches and tests export after shutdown.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Starts recording; sizes rings created after this call. Also resets
  /// the epoch so exported timestamps start near zero, and captures the
  /// wall-clock anchor paired with it (see wall_anchor_ns()).
  void enable(std::size_t events_per_thread = 1 << 14);
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count()) -
           epoch_ns_;
  }

  void record(const char* name, std::uint64_t start_ns,
              std::uint64_t dur_ns) noexcept;

  /// Drops all recorded events (rings stay allocated for their threads).
  void clear();

  /// Total events currently held across all thread rings.
  std::size_t event_count() const;

  /// Events overwritten by ring wrap-around since the last clear().
  std::uint64_t dropped() const;

  /// system_clock (UTC ns) captured at the same instant as the steady
  /// epoch in enable(): `wall time of span = wall_anchor_ns() + ts`.
  /// Exported traces carry one anchor record (`otherData.clock_sync` plus
  /// a `clock_anchor` instant event), so traces from different runs or
  /// processes can be aligned on a shared wall-clock axis — raw ts values
  /// are per-process steady offsets and compare only within one file.
  std::int64_t wall_anchor_ns() const;
  /// The steady_clock value (ns since its arbitrary origin) used as ts 0.
  std::uint64_t epoch_ns() const;

  void write_chrome_trace(std::ostream& out) const;
  /// Returns false (after logging a warning) if the file could not be
  /// opened or the write failed.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  struct ThreadRing {
    explicit ThreadRing(std::size_t capacity, int tid_)
        : events(capacity), tid(tid_) {}
    std::vector<TraceEvent> events;  ///< ring storage, fixed capacity
    std::atomic<std::uint64_t> written{0};  ///< monotonic write cursor
    int tid;
  };

  TraceRecorder() = default;
  ThreadRing* local_ring();

  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_ = 0;
  std::int64_t wall_anchor_ns_ = 0;  ///< system_clock at the epoch instant
  std::size_t ring_capacity_ = 1 << 14;
  mutable std::mutex mutex_;  ///< guards rings_ (registration & export)
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

/// RAII span: records [construction, destruction) into the recorder when
/// tracing is enabled at construction time. `name` must be a string
/// literal (or otherwise outlive the recorder's contents).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    auto& rec = TraceRecorder::instance();
    if (rec.enabled()) {
      name_ = name;
      start_ns_ = rec.now_ns();
    }
  }
  ~TraceSpan() {
    if (name_) {
      auto& rec = TraceRecorder::instance();
      rec.record(name_, start_ns_, rec.now_ns() - start_ns_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace arachnet::telemetry

#define ARACHNET_TELEMETRY_CONCAT_(a, b) a##b
#define ARACHNET_TELEMETRY_CONCAT(a, b) ARACHNET_TELEMETRY_CONCAT_(a, b)

/// Scoped trace span; compiles to nothing with ARACHNET_TELEMETRY_DISABLED.
#ifdef ARACHNET_TELEMETRY_DISABLED
#define ARACHNET_TRACE_SPAN(name) ((void)0)
#else
#define ARACHNET_TRACE_SPAN(name)                          \
  ::arachnet::telemetry::TraceSpan ARACHNET_TELEMETRY_CONCAT( \
      arachnet_trace_span_, __LINE__) {                    \
    name                                                   \
  }
#endif
