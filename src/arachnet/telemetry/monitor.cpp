#include "arachnet/telemetry/monitor.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "arachnet/telemetry/json.hpp"
#include "arachnet/telemetry/log.hpp"
#include "arachnet/telemetry/prometheus.hpp"

namespace arachnet::telemetry {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::int64_t wall_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string_view flag_kind_name(HealthMonitor::FlagKind kind) noexcept {
  switch (kind) {
    case HealthMonitor::FlagKind::kStalled:
      return "stalled";
    case HealthMonitor::FlagKind::kSaturated:
      return "saturated";
    case HealthMonitor::FlagKind::kStorm:
      return "storm";
  }
  return "unknown";
}

}  // namespace

const CounterDelta* SnapshotDelta::counter(std::string_view name) const
    noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSample* SnapshotDelta::gauge(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramDelta* SnapshotDelta::histogram(std::string_view name) const
    noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

SnapshotDelta compute_snapshot_delta(const MetricsSnapshot& prev,
                                     const MetricsSnapshot& cur,
                                     double dt_s) {
  SnapshotDelta out;
  out.dt_s = dt_s;
  const double inv_dt = dt_s > 0.0 ? 1.0 / dt_s : 0.0;

  out.counters.reserve(cur.counters.size());
  for (const auto& c : cur.counters) {
    CounterDelta d;
    d.name = c.name;
    d.value = c.value;
    const MetricsSnapshot::CounterValue* p = nullptr;
    for (const auto& pc : prev.counters) {
      if (pc.name == c.name) {
        p = &pc;
        break;
      }
    }
    if (p != nullptr && p->value > c.value) {
      // Counter went backwards: the name was re-occupied by a fresh
      // instrument (registry swap, process restart). The true interval
      // delta is unknowable; count what the new occupant has seen.
      d.reset = true;
      d.delta = c.value;
    } else {
      d.delta = c.value - (p != nullptr ? p->value : 0);
    }
    d.rate_per_s = static_cast<double>(d.delta) * inv_dt;
    out.counters.push_back(std::move(d));
  }

  out.gauges.reserve(cur.gauges.size());
  for (const auto& g : cur.gauges) {
    out.gauges.push_back({g.name, g.value});
  }

  out.histograms.reserve(cur.histograms.size());
  for (const auto& h : cur.histograms) {
    HistogramDelta d;
    d.name = h.name;
    d.cumulative_p50 = h.percentile(0.50);
    d.cumulative_p99 = h.percentile(0.99);

    const MetricsSnapshot::HistogramValue* p = nullptr;
    for (const auto& ph : prev.histograms) {
      if (ph.name == h.name) {
        p = &ph;
        break;
      }
    }
    // Build an interval-only histogram by differencing the cumulative bin
    // counts. On reset (cumulative count went backwards) or bin-layout
    // change, the whole current histogram is "the interval".
    MetricsSnapshot::HistogramValue interval = h;
    if (p != nullptr && p->count > h.count) {
      d.reset = true;
    } else if (p != nullptr && p->counts.size() == h.counts.size() &&
               p->lo == h.lo && p->hi == h.hi) {
      interval.count = h.count - p->count;
      interval.underflow =
          h.underflow >= p->underflow ? h.underflow - p->underflow : 0;
      interval.overflow =
          h.overflow >= p->overflow ? h.overflow - p->overflow : 0;
      interval.sum = h.sum - p->sum;
      for (std::size_t i = 0; i < interval.counts.size(); ++i) {
        interval.counts[i] =
            h.counts[i] >= p->counts[i] ? h.counts[i] - p->counts[i] : 0;
      }
    }
    d.count = interval.count;
    d.rate_per_s = static_cast<double>(d.count) * inv_dt;
    d.interval_mean = interval.mean();
    d.interval_p50 = interval.percentile(0.50);
    d.interval_p99 = interval.percentile(0.99);
    out.histograms.push_back(std::move(d));
  }

  return out;
}

HealthMonitor::HealthMonitor(Params params) : params_(std::move(params)) {
  period_s_ = std::max(params_.period_s, 1e-3);
  if (params_.history == 0) params_.history = 1;
  if (params_.stall_periods < 1) params_.stall_periods = 1;
}

HealthMonitor::~HealthMonitor() { stop(); }

void HealthMonitor::add_probe(ProgressProbe probe) {
  std::lock_guard lock{mutex_};
  ProbeState st;
  st.flag = params_.registry != nullptr
                ? &params_.registry->gauge("health." + probe.name + ".stalled")
                : nullptr;
  st.probe = std::move(probe);
  if (st.flag != nullptr) st.flag->set(0.0);
  probes_.push_back(std::move(st));
}

void HealthMonitor::remove_probe(std::string_view name) {
  std::lock_guard lock{mutex_};
  for (auto it = probes_.begin(); it != probes_.end(); ++it) {
    if (it->probe.name == name) {
      if (it->raised && it->flag != nullptr) it->flag->set(0.0);
      probes_.erase(it);
      return;
    }
  }
}

void HealthMonitor::add_saturation_watch(SaturationWatch watch) {
  std::lock_guard lock{mutex_};
  SaturationState st;
  st.flag = params_.registry != nullptr
                ? &params_.registry->gauge("health." + watch.name + ".saturated")
                : nullptr;
  st.watch = std::move(watch);
  if (st.watch.periods < 1) st.watch.periods = 1;
  if (st.flag != nullptr) st.flag->set(0.0);
  saturation_.push_back(std::move(st));
}

void HealthMonitor::add_rate_watch(RateWatch watch) {
  std::lock_guard lock{mutex_};
  RateState st;
  st.flag = params_.registry != nullptr
                ? &params_.registry->gauge("health." + watch.name + ".storm")
                : nullptr;
  st.watch = std::move(watch);
  if (st.watch.periods < 1) st.watch.periods = 1;
  if (st.flag != nullptr) st.flag->set(0.0);
  rates_.push_back(std::move(st));
}

void HealthMonitor::start() {
  std::lock_guard lock{run_mutex_};
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void HealthMonitor::stop() {
  {
    std::lock_guard lock{run_mutex_};
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock{run_mutex_};
  running_ = false;
}

bool HealthMonitor::running() const noexcept {
  // Safe unsynchronized read for status display; start/stop serialize on
  // run_mutex_.
  return running_;
}

void HealthMonitor::run_loop() {
  for (;;) {
    {
      std::unique_lock lock{run_mutex_};
      wake_.wait_for(lock,
                     std::chrono::duration<double>(period_s_),
                     [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    sample_once();
  }
}

HealthMonitor::Sample HealthMonitor::sample_once() {
  std::lock_guard lock{mutex_};

  Sample sample;
  sample.index = next_index_++;
  sample.steady_ns = steady_now_ns();
  sample.wall_ns = wall_now_ns();

  MetricsSnapshot cur;
  if (params_.registry != nullptr) cur = params_.registry->snapshot();

  const bool first = sample.index == 0;
  sample.dt_s = first ? 0.0
                      : static_cast<double>(sample.steady_ns - prev_steady_ns_) *
                            1e-9;
  sample.delta = compute_snapshot_delta(first ? MetricsSnapshot{} : prev_snapshot_,
                                        cur, sample.dt_s);

  evaluate_watchdogs(sample.delta, sample.index, &sample.raised);

  prev_snapshot_ = std::move(cur);
  prev_steady_ns_ = sample.steady_ns;

  history_.push_back(sample);
  while (history_.size() > params_.history) history_.pop_front();

  write_jsonl(sample);
  return sample;
}

void HealthMonitor::evaluate_watchdogs(const SnapshotDelta& delta,
                                       std::uint64_t sample_index,
                                       std::vector<std::string>* raised) {
  for (auto& st : probes_) {
    const bool active = !st.probe.active || st.probe.active();
    if (!active || !st.probe.progress) {
      // Inactive (or unobservable) units cannot stall; clear any flag.
      st.primed = false;
      st.stalled_for = 0;
      if (st.raised) {
        st.raised = false;
        publish_flag(FlagKind::kStalled, "health." + st.probe.name + ".stalled",
                     st.flag, false, sample_index, 0.0);
      }
      continue;
    }
    const std::uint64_t progress = st.probe.progress();
    const std::uint64_t demand = st.probe.demand ? st.probe.demand() : 0;
    if (st.primed) {
      const bool no_progress = progress == st.last_progress;
      const bool demanded = !st.probe.demand || demand != st.last_demand;
      if (no_progress && demanded) {
        ++st.stalled_for;
      } else if (!no_progress) {
        st.stalled_for = 0;
      }
      // no_progress && !demanded: idle, hold the window (neither grow nor
      // reset) so a stall interleaved with idle samples still accumulates.
    }
    st.primed = true;
    st.last_progress = progress;
    st.last_demand = demand;

    const bool want_raised = st.stalled_for >= params_.stall_periods;
    if (want_raised != st.raised) {
      st.raised = want_raised;
      publish_flag(FlagKind::kStalled, "health." + st.probe.name + ".stalled",
                   st.flag, want_raised, sample_index,
                   static_cast<double>(st.stalled_for));
    }
    if (st.raised && raised != nullptr) {
      raised->push_back("health." + st.probe.name + ".stalled");
    }
  }

  for (auto& st : saturation_) {
    const GaugeSample* g = delta.gauge(st.watch.depth_gauge);
    const double depth = g != nullptr ? g->value : 0.0;
    const bool over = st.watch.capacity > 0.0 &&
                      depth >= st.watch.threshold * st.watch.capacity;
    st.over_for = over ? st.over_for + 1 : 0;
    const bool want_raised = st.over_for >= st.watch.periods;
    if (want_raised != st.raised) {
      st.raised = want_raised;
      publish_flag(FlagKind::kSaturated,
                   "health." + st.watch.name + ".saturated", st.flag,
                   want_raised, sample_index, depth);
    }
    if (st.raised && raised != nullptr) {
      raised->push_back("health." + st.watch.name + ".saturated");
    }
  }

  for (auto& st : rates_) {
    const CounterDelta* c = delta.counter(st.watch.counter);
    const double rate = c != nullptr ? c->rate_per_s : 0.0;
    // Sample 0 has no interval, so rates are 0 there by construction.
    const bool over = delta.dt_s > 0.0 && rate > st.watch.max_rate_per_s;
    st.over_for = over ? st.over_for + 1 : 0;
    const bool want_raised = st.over_for >= st.watch.periods;
    if (want_raised != st.raised) {
      st.raised = want_raised;
      publish_flag(FlagKind::kStorm, "health." + st.watch.name + ".storm",
                   st.flag, want_raised, sample_index, rate);
    }
    if (st.raised && raised != nullptr) {
      raised->push_back("health." + st.watch.name + ".storm");
    }
  }
}

void HealthMonitor::publish_flag(FlagKind kind, const std::string& flag,
                                 Gauge* gauge, bool raised,
                                 std::uint64_t sample_index, double value) {
  if (gauge != nullptr) gauge->set(raised ? 1.0 : 0.0);
  if (raised) {
    ARACHNET_LOG_WARN("monitor", "health flag raised", {"flag", flag},
                      {"kind", flag_kind_name(kind)},
                      {"sample", sample_index}, {"value", value});
  } else {
    ARACHNET_LOG_INFO("monitor", "health flag cleared", {"flag", flag},
                      {"kind", flag_kind_name(kind)},
                      {"sample", sample_index});
  }
  if (params_.on_event) {
    HealthEvent ev;
    ev.kind = kind;
    ev.flag = flag;
    ev.raised = raised;
    ev.sample_index = sample_index;
    ev.value = value;
    params_.on_event(ev);
  }
}

void HealthMonitor::write_jsonl(const Sample& sample) {
  const bool want_file = !params_.jsonl_path.empty() && !jsonl_failed_;
  if (want_file && !jsonl_opened_) {
    jsonl_file_.open(params_.jsonl_path, std::ios::out | std::ios::trunc);
    jsonl_opened_ = true;
    if (!jsonl_file_) {
      jsonl_failed_ = true;
      ARACHNET_LOG_WARN("monitor", "failed to open monitor jsonl",
                        {"path", params_.jsonl_path});
    }
  }
  const bool file_ok = want_file && !jsonl_failed_ && jsonl_file_.good();
  if (!file_ok && params_.jsonl_out == nullptr) return;

  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kSchema);
  w.key("source").value(params_.source);
  w.key("seq").value(sample.index);
  w.key("wall_ns").value(sample.wall_ns);
  w.key("steady_ns").value(sample.steady_ns);
  w.key("dt_s").value(sample.dt_s);
  w.key("counters").begin_object();
  for (const auto& c : sample.delta.counters) {
    w.key(c.name).begin_object();
    w.key("value").value(c.value);
    w.key("rate_per_s").value(c.rate_per_s);
    if (c.reset) w.key("reset").value(true);
    w.end_object();
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : sample.delta.gauges) {
    w.key(g.name).value(g.value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : sample.delta.histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(h.count);
    w.key("rate_per_s").value(h.rate_per_s);
    w.key("mean").value(h.interval_mean);
    w.key("p50").value(h.interval_p50);
    w.key("p99").value(h.interval_p99);
    w.end_object();
  }
  w.end_object();
  w.key("health").begin_array();
  for (const auto& flag : sample.raised) w.value(flag);
  w.end_array();
  w.end_object();

  const std::string& line = w.str();
  if (file_ok) {
    jsonl_file_ << line << '\n';
    jsonl_file_.flush();
    if (!jsonl_file_.good()) {
      jsonl_failed_ = true;
      ARACHNET_LOG_WARN("monitor", "monitor jsonl write failed",
                        {"path", params_.jsonl_path});
    }
  }
  if (params_.jsonl_out != nullptr) {
    (*params_.jsonl_out) << line << '\n';
  }
}

std::optional<HealthMonitor::Sample> HealthMonitor::latest() const {
  std::lock_guard lock{mutex_};
  if (history_.empty()) return std::nullopt;
  return history_.back();
}

std::vector<HealthMonitor::Sample> HealthMonitor::history() const {
  std::lock_guard lock{mutex_};
  return {history_.begin(), history_.end()};
}

std::uint64_t HealthMonitor::samples_taken() const noexcept {
  std::lock_guard lock{mutex_};
  return next_index_;
}

void HealthMonitor::write_prometheus(std::ostream& out) const {
  if (params_.registry == nullptr) return;
  write_prometheus_text(params_.registry->snapshot(), out);
}

}  // namespace arachnet::telemetry
