#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace arachnet::telemetry {

/// Minimal streaming JSON writer: builds one JSON value into an internal
/// string with correct comma placement, string escaping, and shortest
/// round-trip number formatting. No external dependencies — just enough
/// for the metrics/trace exporters and the bench reports.
///
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("fdma.dispatch_ms");
///   w.key("counts"); w.begin_array(); w.value(1); w.value(2); w.end_array();
///   w.end_object();
///   w.str();  // {"name":"fdma.dispatch_ms","counts":[1,2]}
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key (must be inside an object, before its value).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splices a pre-rendered JSON fragment in value position (caller
  /// guarantees it is valid JSON).
  JsonWriter& raw(std::string_view fragment);

  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

  /// Appends `v` to `out` with JSON string escaping (no quotes added).
  static void escape(std::string_view v, std::string& out);

 private:
  void before_value();

  enum class Scope : unsigned char { kObject, kArray };
  struct Frame {
    Scope scope;
    bool has_items = false;
    bool expecting_value = false;  ///< object: key() written, value pending
  };

  std::string out_;
  std::vector<Frame> stack_;
};

}  // namespace arachnet::telemetry
