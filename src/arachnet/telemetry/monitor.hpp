#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::telemetry {

/// One counter's change between two registry snapshots.
struct CounterDelta {
  std::string name;
  std::uint64_t value = 0;    ///< current cumulative value
  std::uint64_t delta = 0;    ///< increase over the interval
  double rate_per_s = 0.0;    ///< delta / dt (0 when dt <= 0)
  /// Current < previous: the instrument restarted (new registry occupant,
  /// process restart behind a scrape). The interval's delta is unknowable,
  /// so delta/rate report the post-reset value instead of going negative.
  bool reset = false;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

/// One histogram's interval view between two snapshots: the samples that
/// arrived during the interval, with percentiles computed over just those
/// (cumulative percentiles flatten transients — a 2 s stall in hour ten of
/// a soak is invisible in the cumulative p99 but dominates the interval's).
struct HistogramDelta {
  std::string name;
  std::uint64_t count = 0;        ///< samples recorded this interval
  double rate_per_s = 0.0;        ///< count / dt
  double interval_mean = 0.0;     ///< mean of the interval's samples
  double interval_p50 = 0.0;
  double interval_p99 = 0.0;
  double cumulative_p50 = 0.0;    ///< over every sample since registration
  double cumulative_p99 = 0.0;
  bool reset = false;             ///< cumulative count went backwards
};

/// Difference of two MetricsSnapshots over `dt_s` seconds. Instruments
/// present only in `cur` (registered mid-interval) are treated as having
/// started from zero; instruments present only in `prev` are dropped.
struct SnapshotDelta {
  double dt_s = 0.0;
  std::vector<CounterDelta> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramDelta> histograms;

  const CounterDelta* counter(std::string_view name) const noexcept;
  const GaugeSample* gauge(std::string_view name) const noexcept;
  const HistogramDelta* histogram(std::string_view name) const noexcept;
};

/// Pure delta/rate computation the monitor samples are built from —
/// separated out so the math is unit-testable without a thread or clock.
SnapshotDelta compute_snapshot_delta(const MetricsSnapshot& prev,
                                     const MetricsSnapshot& cur,
                                     double dt_s);

/// Live health monitor: a background thread samples a MetricsRegistry on a
/// fixed period, turns consecutive snapshots into deltas and rates
/// (packets/s, drop rate, queue depth, interval latency percentiles),
/// keeps a bounded ring of history, streams each sample as one JSONL line
/// (schema `arachnet.monitor.v1`), and runs a watchdog over the stream:
///
///  - **stall**: a ProgressProbe's `progress` value failed to advance for
///    `Params::stall_periods` consecutive samples while the probe was
///    active (and, when a `demand` function is given, while demand kept
///    advancing — an idle session is not a stalled one);
///  - **saturation**: a watched depth gauge sat at or above
///    `threshold × capacity` for `periods` consecutive samples;
///  - **storm**: a watched counter's rate exceeded `max_rate_per_s` for
///    `periods` consecutive samples (e.g. TTL-expiry storms).
///
/// Every verdict is published three ways: a `health.<name>.<kind>` gauge
/// (0/1) registered in the *same* registry (so scrapes and later samples
/// see it), a structured log event on each raise/clear, and the optional
/// `Params::on_event` callback (invoked on the sampling thread — keep it
/// cheap and do not call back into the monitor from it).
///
/// Overhead model: the monitored hot paths pay nothing new — sampling
/// reads the same relaxed atomics the instruments already maintain. One
/// sample costs one registry snapshot (mutex + copy) plus the delta math,
/// tens of microseconds at a few hundred instruments, amortized over the
/// period (default 1 s). `bench_micro_telemetry` tracks the per-sample
/// cost; `ci/check_monitor_overhead.py` gates the end-to-end soak impact.
///
/// Threading: start()/stop() from one control thread; add_probe/add_*_watch
/// are mutex-guarded and safe any time (sessions open mid-run). sample_once()
/// may be called manually — deterministic tests and tick-from-outside
/// embeddings use it instead of start(). Probes must outlive the monitor or
/// be removed first; anything a probe captures (e.g. a ReaderService) must
/// outlive the monitor's run.
class HealthMonitor {
 public:
  static constexpr std::string_view kSchema = "arachnet.monitor.v1";

  /// Watches one unit of work for forward progress (e.g. one session).
  struct ProgressProbe {
    std::string name;  ///< flag gauge: `health.<name>.stalled`
    /// Monotonic completed-work counter (blocks processed + resolved).
    std::function<std::uint64_t()> progress;
    /// Optional monotonic requested-work counter. When set, a sample only
    /// counts toward the stall window if demand advanced while progress
    /// did not — work is arriving and nothing comes out.
    std::function<std::uint64_t()> demand;
    /// Optional liveness gate; a probe that reports inactive is skipped
    /// (and its raised flag cleared). Default: always active.
    std::function<bool()> active;
  };

  /// Watches a queue-depth gauge against its capacity.
  struct SaturationWatch {
    std::string name;         ///< flag gauge: `health.<name>.saturated`
    std::string depth_gauge;  ///< registry gauge holding the current depth
    double capacity = 0.0;
    double threshold = 0.9;   ///< raise at depth >= threshold * capacity
    int periods = 3;          ///< consecutive saturated samples to raise
  };

  /// Watches a counter's rate against a ceiling.
  struct RateWatch {
    std::string name;     ///< flag gauge: `health.<name>.storm`
    std::string counter;  ///< registry counter whose rate is watched
    double max_rate_per_s = 0.0;
    int periods = 2;      ///< consecutive over-rate samples to raise
  };

  enum class FlagKind { kStalled, kSaturated, kStorm };

  struct HealthEvent {
    FlagKind kind = FlagKind::kStalled;
    std::string flag;   ///< full gauge name, e.g. `health.session.3.stalled`
    bool raised = false;  ///< true on raise, false on clear
    std::uint64_t sample_index = 0;
    /// Kind-specific: stall periods elapsed / observed depth / observed rate.
    double value = 0.0;
  };
  using HealthCallback = std::function<void(const HealthEvent&)>;

  /// One monitor sample: the time-series record and the JSONL line's source.
  struct Sample {
    std::uint64_t index = 0;     ///< 0-based sample sequence number
    std::uint64_t steady_ns = 0; ///< steady_clock at the sample
    std::int64_t wall_ns = 0;    ///< system_clock at the sample (UTC ns)
    double dt_s = 0.0;           ///< interval covered by the deltas
    SnapshotDelta delta;
    std::vector<std::string> raised;  ///< health flags currently raised
  };

  struct Params {
    /// Required; must outlive the monitor. The monitor also registers its
    /// `health.*` flag gauges here.
    MetricsRegistry* registry = nullptr;
    double period_s = 1.0;     ///< sampling period (floored at 1 ms)
    std::size_t history = 120; ///< samples retained in the ring
    std::string source = "monitor";  ///< JSONL envelope source field
    /// When non-empty, every sample appends one JSONL line here (the file
    /// is opened on the first sample; open/write failures are logged once
    /// and the stream is disabled).
    std::string jsonl_path;
    /// Alternative sink for tests/embedders; used in addition to
    /// jsonl_path when both are set. Not owned; must outlive the monitor.
    std::ostream* jsonl_out = nullptr;
    int stall_periods = 2;  ///< K consecutive no-progress samples to raise
    HealthCallback on_event;
  };

  explicit HealthMonitor(Params params);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void add_probe(ProgressProbe probe);
  /// Drops the probe and clears its raised flag (if any). No-op when the
  /// name is unknown.
  void remove_probe(std::string_view name);
  void add_saturation_watch(SaturationWatch watch);
  void add_rate_watch(RateWatch watch);

  /// Spawns the sampling thread. No-op while running.
  void start();
  /// Joins the sampling thread (idempotent). The history and the JSONL
  /// stream written so far remain readable.
  void stop();
  bool running() const noexcept;

  /// One synchronous sampling pass: snapshot, delta, watchdogs, history,
  /// JSONL. The same routine the thread runs — call it directly for
  /// deterministic tests or externally-paced embeddings (not concurrently
  /// with itself; a mutex serializes against the thread).
  Sample sample_once();

  std::optional<Sample> latest() const;
  std::vector<Sample> history() const;
  std::uint64_t samples_taken() const noexcept;

  /// Prometheus text exposition of the registry's current cumulative
  /// state (see prometheus.hpp for the format contract).
  void write_prometheus(std::ostream& out) const;

  double period_s() const noexcept { return period_s_; }

 private:
  struct ProbeState {
    ProgressProbe probe;
    Gauge* flag = nullptr;
    std::uint64_t last_progress = 0;
    std::uint64_t last_demand = 0;
    bool primed = false;   ///< first observation taken
    int stalled_for = 0;   ///< consecutive qualifying no-progress samples
    bool raised = false;
  };
  struct SaturationState {
    SaturationWatch watch;
    Gauge* flag = nullptr;
    int over_for = 0;
    bool raised = false;
  };
  struct RateState {
    RateWatch watch;
    Gauge* flag = nullptr;
    int over_for = 0;
    bool raised = false;
  };

  void run_loop();
  void evaluate_watchdogs(const SnapshotDelta& delta,
                          std::uint64_t sample_index,
                          std::vector<std::string>* raised);
  void publish_flag(FlagKind kind, const std::string& flag, Gauge* gauge,
                    bool raised, std::uint64_t sample_index, double value);
  void write_jsonl(const Sample& sample);

  Params params_;
  double period_s_ = 1.0;

  mutable std::mutex mutex_;  ///< guards everything below
  std::deque<Sample> history_;
  MetricsSnapshot prev_snapshot_;
  std::uint64_t prev_steady_ns_ = 0;
  std::uint64_t next_index_ = 0;
  std::vector<ProbeState> probes_;
  std::vector<SaturationState> saturation_;
  std::vector<RateState> rates_;
  std::ofstream jsonl_file_;
  bool jsonl_failed_ = false;
  bool jsonl_opened_ = false;

  std::mutex run_mutex_;  ///< start/stop + wakeup signalling
  std::condition_variable wake_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace arachnet::telemetry
