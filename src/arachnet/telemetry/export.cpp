#include "arachnet/telemetry/export.hpp"

#include <cstdio>
#include <fstream>

#include "arachnet/telemetry/json.hpp"
#include "arachnet/telemetry/log.hpp"

namespace arachnet::telemetry {

/// Builds one line with the shared envelope already written; finish() with
/// the writer still inside the envelope object.
class JsonlExporter::LineBuilder {
 public:
  LineBuilder(const JsonlExporter& exporter, std::string_view kind,
              std::string_view name, std::string_view unit) {
    w.begin_object();
    w.key("schema");
    w.value(exporter.schema_);
    w.key("bench");
    w.value(exporter.source_);
    w.key("kind");
    w.value(kind);
    w.key("name");
    w.value(name);
    if (!unit.empty()) {
      w.key("unit");
      w.value(unit);
    }
  }

  std::string finish() {
    w.end_object();
    return w.take();
  }

  JsonWriter w;
};

JsonlExporter::JsonlExporter(std::string schema, std::string source)
    : schema_(std::move(schema)), source_(std::move(source)) {}

void JsonlExporter::add_metric(std::string_view name, double value,
                               std::string_view unit) {
  LineBuilder line{*this, "metric", name, unit};
  line.w.key("value");
  line.w.value(value);
  lines_.push_back(line.finish());
}

void JsonlExporter::add_counter(std::string_view name, std::uint64_t value,
                                std::string_view unit) {
  LineBuilder line{*this, "counter", name, unit};
  line.w.key("value");
  line.w.value(value);
  lines_.push_back(line.finish());
}

void JsonlExporter::add_gauge(std::string_view name, double value,
                              std::string_view unit) {
  LineBuilder line{*this, "gauge", name, unit};
  line.w.key("value");
  line.w.value(value);
  lines_.push_back(line.finish());
}

void JsonlExporter::add_info(std::string_view name, std::string_view value) {
  LineBuilder line{*this, "info", name, ""};
  line.w.key("value");
  line.w.value(value);
  lines_.push_back(line.finish());
}

void JsonlExporter::add_percentiles(
    std::string_view name,
    const std::vector<std::pair<double, double>>& points,
    std::string_view unit) {
  LineBuilder line{*this, "percentiles", name, unit};
  line.w.key("points");
  line.w.begin_object();
  for (const auto& [q, v] : points) {
    char key[16];
    std::snprintf(key, sizeof(key), "p%g", q * 100.0);
    line.w.key(key);
    line.w.value(v);
  }
  line.w.end_object();
  lines_.push_back(line.finish());
}

void JsonlExporter::add_histogram(std::string_view name, double lo, double hi,
                                  const std::vector<std::uint64_t>& counts,
                                  std::uint64_t underflow,
                                  std::uint64_t overflow,
                                  std::string_view unit) {
  LineBuilder line{*this, "histogram", name, unit};
  line.w.key("lo");
  line.w.value(lo);
  line.w.key("hi");
  line.w.value(hi);
  line.w.key("counts");
  line.w.begin_array();
  for (std::uint64_t c : counts) line.w.value(c);
  line.w.end_array();
  line.w.key("underflow");
  line.w.value(underflow);
  line.w.key("overflow");
  line.w.value(overflow);
  lines_.push_back(line.finish());
}

void JsonlExporter::add_histogram(const MetricsSnapshot::HistogramValue& h,
                                  std::string_view unit) {
  LineBuilder line{*this, "histogram", h.name, unit};
  line.w.key("lo");
  line.w.value(h.lo);
  line.w.key("hi");
  line.w.value(h.hi);
  line.w.key("counts");
  line.w.begin_array();
  for (std::uint64_t c : h.counts) line.w.value(c);
  line.w.end_array();
  line.w.key("underflow");
  line.w.value(h.underflow);
  line.w.key("overflow");
  line.w.value(h.overflow);
  line.w.key("count");
  line.w.value(h.count);
  line.w.key("mean");
  line.w.value(h.mean());
  line.w.key("min");
  line.w.value(h.count ? h.min : 0.0);
  line.w.key("max");
  line.w.value(h.count ? h.max : 0.0);
  line.w.key("p50");
  line.w.value(h.percentile(0.5));
  line.w.key("p95");
  line.w.value(h.percentile(0.95));
  line.w.key("p99");
  line.w.value(h.percentile(0.99));
  lines_.push_back(line.finish());
}

void JsonlExporter::add_snapshot(const MetricsSnapshot& snapshot) {
  for (const auto& c : snapshot.counters) add_counter(c.name, c.value);
  for (const auto& g : snapshot.gauges) add_gauge(g.name, g.value);
  for (const auto& h : snapshot.histograms) add_histogram(h);
}

void JsonlExporter::write(std::ostream& out) const {
  for (const auto& line : lines_) out << line << '\n';
}

bool JsonlExporter::write_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) {
    ARACHNET_LOG_WARN("export", "failed to open jsonl sidecar",
                      {"path", path}, {"source", source_});
    return false;
  }
  write(out);
  if (!out.good()) {
    ARACHNET_LOG_WARN("export", "jsonl sidecar write failed",
                      {"path", path}, {"source", source_},
                      {"lines", static_cast<std::uint64_t>(lines_.size())});
    return false;
  }
  return true;
}

}  // namespace arachnet::telemetry
