#include "arachnet/telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace arachnet::telemetry {

LatencyHistogram::LatencyHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins) {
  if (!(hi > lo)) {
    throw std::invalid_argument("LatencyHistogram: invalid range");
  }
}

void LatencyHistogram::record(double x) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  // min/max: relaxed CAS loops; contention is rare (block-granularity
  // events) and the loop converges in one or two rounds.
  double cur = min_.load(std::memory_order_relaxed);
  while (x < cur &&
         !min_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (x > cur &&
         !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
  if (x < lo_) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= hi_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
}

double MetricsSnapshot::HistogramValue::percentile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  // Underflow samples sit below lo: clamp them to lo.
  double cum = static_cast<double>(underflow);
  if (target <= cum) return lo;
  const double width = (hi - lo) / static_cast<double>(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cum + static_cast<double>(counts[i]);
    if (target <= next && counts[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts[i]);
      return lo + width * (static_cast<double>(i) + frac);
    }
    cum = next;
  }
  return hi;  // lands among the overflow samples: clamp to hi
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock{mutex_};
  for (auto& [n, c] : counters_) {
    if (n == name) return c;
  }
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name), std::forward_as_tuple());
  return counters_.back().second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock{mutex_};
  for (auto& [n, g] : gauges_) {
    if (n == name) return g;
  }
  gauges_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                       std::forward_as_tuple());
  return gauges_.back().second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                             double hi, std::size_t bins) {
  std::lock_guard lock{mutex_};
  for (auto& [n, h] : histograms_) {
    if (n == name) return h;
  }
  histograms_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple(lo, hi, bins));
  return histograms_.back().second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock{mutex_};
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.name = name;
    v.lo = h.lo();
    v.hi = h.hi();
    v.counts.resize(h.bins());
    for (std::size_t i = 0; i < h.bins(); ++i) v.counts[i] = h.bin_count(i);
    v.count = h.count();
    v.underflow = h.underflow();
    v.overflow = h.overflow();
    v.sum = h.sum();
    v.min = h.min();
    v.max = h.max();
    snap.histograms.push_back(std::move(v));
  }
  return snap;
}

MetricsRegistry& global_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace arachnet::telemetry
