#pragma once

#include <ostream>
#include <string_view>

#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::telemetry {

/// Renders a MetricsSnapshot in the Prometheus text exposition format
/// (version 0.0.4), suitable for a file-based or HTTP-fronted scrape.
///
/// Mapping:
///  - metric names are prefixed with `<prefix>_` and sanitized: every
///    character outside [a-zA-Z0-9_] (the registry uses '.') becomes '_';
///  - counters  -> `# TYPE <name> counter`, one sample line;
///  - gauges    -> `# TYPE <name> gauge`,   one sample line;
///  - histograms -> `# TYPE <name> histogram` with cumulative
///    `<name>_bucket{le="<bin upper edge>"}` lines (underflow samples fold
///    into the first bucket — they are below `lo`, hence below every
///    edge), a `le="+Inf"` bucket equal to the total count (covering
///    overflow), plus `<name>_sum` and `<name>_count`.
///
/// Non-finite gauge/sum values are emitted as Prometheus' `NaN`/`+Inf`/
/// `-Inf` literals.
void write_prometheus_text(const MetricsSnapshot& snapshot, std::ostream& out,
                           std::string_view prefix = "arachnet");

}  // namespace arachnet::telemetry
