#include "arachnet/telemetry/log.hpp"

#include <cstdio>
#include <cstring>

namespace arachnet::telemetry {

namespace {

// Sink + user pointer swap atomically enough for our use: both are set
// together from configuration code before logging threads start, and
// individually-atomic loads never produce a torn pointer.
std::atomic<LogSink> g_sink{&stderr_log_sink};
std::atomic<void*> g_sink_user{nullptr};
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void set_log_sink(LogSink sink, void* user) noexcept {
  g_sink_user.store(user, std::memory_order_relaxed);
  g_sink.store(sink ? sink : &stderr_log_sink, std::memory_order_release);
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool should_log(LogLevel level) noexcept {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void log_emit(LogLevel level, std::string_view component,
              std::string_view message,
              std::initializer_list<LogField> fields) noexcept {
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = message;
  record.fields = fields.begin();
  record.field_count = fields.size();
  const LogSink sink = g_sink.load(std::memory_order_acquire);
  sink(record, g_sink_user.load(std::memory_order_relaxed));
}

void stderr_log_sink(const LogRecord& record, void* /*user*/) {
  // One buffered line per record so concurrent loggers don't interleave
  // mid-line. Fixed buffer: log lines are short by construction.
  char line[512];
  int n = std::snprintf(line, sizeof(line), "[%.*s] %.*s: %.*s",
                        static_cast<int>(to_string(record.level).size()),
                        to_string(record.level).data(),
                        static_cast<int>(record.component.size()),
                        record.component.data(),
                        static_cast<int>(record.message.size()),
                        record.message.data());
  for (std::size_t i = 0; i < record.field_count && n > 0 &&
                          n < static_cast<int>(sizeof(line));
       ++i) {
    const LogField& f = record.fields[i];
    const int room = static_cast<int>(sizeof(line)) - n;
    int wrote = 0;
    switch (f.kind) {
      case LogField::Kind::kInt:
        wrote = std::snprintf(line + n, room, " %.*s=%lld",
                              static_cast<int>(f.key.size()), f.key.data(),
                              static_cast<long long>(f.i));
        break;
      case LogField::Kind::kUint:
        wrote = std::snprintf(line + n, room, " %.*s=%llu",
                              static_cast<int>(f.key.size()), f.key.data(),
                              static_cast<unsigned long long>(f.u));
        break;
      case LogField::Kind::kDouble:
        wrote = std::snprintf(line + n, room, " %.*s=%g",
                              static_cast<int>(f.key.size()), f.key.data(),
                              f.d);
        break;
      case LogField::Kind::kBool:
        wrote = std::snprintf(line + n, room, " %.*s=%s",
                              static_cast<int>(f.key.size()), f.key.data(),
                              f.b ? "true" : "false");
        break;
      case LogField::Kind::kString:
        wrote = std::snprintf(line + n, room, " %.*s=%.*s",
                              static_cast<int>(f.key.size()), f.key.data(),
                              static_cast<int>(f.s.size()), f.s.data());
        break;
    }
    if (wrote < 0) break;
    n += wrote;
  }
  if (n >= static_cast<int>(sizeof(line))) n = sizeof(line) - 1;
  std::fprintf(stderr, "%.*s\n", n, line);
}

}  // namespace arachnet::telemetry
