#include "arachnet/telemetry/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <string>

namespace arachnet::telemetry {

namespace {

std::string sanitize(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  if (!out.empty()) out.push_back('_');
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_double(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << "NaN";
  } else if (std::isinf(v)) {
    out << (v > 0 ? "+Inf" : "-Inf");
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
  }
}

}  // namespace

void write_prometheus_text(const MetricsSnapshot& snapshot, std::ostream& out,
                           std::string_view prefix) {
  for (const auto& c : snapshot.counters) {
    const std::string name = sanitize(prefix, c.name);
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = sanitize(prefix, g.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ';
    write_double(out, g.value);
    out << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = sanitize(prefix, h.name);
    out << "# TYPE " << name << " histogram\n";
    const double width =
        h.counts.empty() ? 0.0
                         : (h.hi - h.lo) / static_cast<double>(h.counts.size());
    // Buckets are cumulative; underflow sits below every finite edge.
    std::uint64_t cum = h.underflow;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cum += h.counts[i];
      out << name << "_bucket{le=\"";
      write_double(out, h.lo + width * static_cast<double>(i + 1));
      out << "\"} " << cum << '\n';
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    out << name << "_sum ";
    write_double(out, h.sum);
    out << '\n';
    out << name << "_count " << h.count << '\n';
  }
}

}  // namespace arachnet::telemetry
