#pragma once

#include <cstdint>

namespace arachnet::telemetry {

/// Process-wide heap-operation totals (see CountingAllocatorGuard).
struct AllocCounts {
  std::uint64_t allocations = 0;    ///< operator new / new[] calls
  std::uint64_t deallocations = 0;  ///< operator delete / delete[] calls
};

/// Totals since process start. Zero (both fields) when the counting
/// operators are not linked into this binary — see the linkage note on
/// CountingAllocatorGuard.
AllocCounts alloc_counts() noexcept;

/// Scoped heap-allocation counter for steady-state allocation audits.
///
/// Construction snapshots the process-wide new/delete counters; the
/// accessors report how many global heap operations happened since. The
/// intended shape is the warm-up-then-measure audit the benches and the
/// allocation-gate tests run:
///
///   run_pipeline(warmup_blocks);               // let scratch grow
///   telemetry::CountingAllocatorGuard guard;
///   run_pipeline(measured_blocks);
///   EXPECT_EQ(guard.allocations(), 0u);        // steady state is clean
///
/// How the counting works — and why this stays out of production
/// binaries: counting_alloc.cpp defines replacement global operator
/// new/new[]/delete/delete[] (all sized/nothrow/aligned variants) that
/// forward to malloc/free around one relaxed atomic increment each.
/// arachnet is a static library, so that translation unit is only pulled
/// into binaries that reference something in it — i.e. binaries that use
/// this guard (tests and benches). Every other binary links the normal
/// library operators and pays nothing. The forwarding operators compose
/// with sanitizers: ASan/TSan intercept at the malloc/free layer, which
/// the counting operators sit on top of.
///
/// The counters are process-global, so a guard measuring one thread's
/// loop will also see allocations made concurrently by other threads;
/// audits either quiesce unrelated threads or own all of them (the
/// service soak audit counts its worker pool deliberately).
class CountingAllocatorGuard {
 public:
  /// Snapshots the baselines. Allocation-free itself.
  CountingAllocatorGuard() noexcept;

  /// Heap allocations since construction.
  std::uint64_t allocations() const noexcept;
  /// Heap deallocations since construction.
  std::uint64_t deallocations() const noexcept;

 private:
  std::uint64_t base_allocs_ = 0;
  std::uint64_t base_deallocs_ = 0;
};

}  // namespace arachnet::telemetry
