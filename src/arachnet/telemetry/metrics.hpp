#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace arachnet::telemetry {

/// Monotonic event counter. add() is a single relaxed atomic increment —
/// safe to call from any thread on a hot path.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (queue depths, rates, voltages). set() is one relaxed
/// atomic store.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bin latency/duration histogram with a lock-free record() path:
/// one bin increment plus sum/min/max updates, all relaxed atomics.
/// Samples outside [lo, hi) land in underflow/overflow counters (same
/// semantics as sim::Histogram) so outliers stay visible.
class LatencyHistogram {
 public:
  LatencyHistogram(double lo, double hi, std::size_t bins);

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(double x) noexcept;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t underflow() const noexcept {
    return underflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf when empty.
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }

 private:
  double lo_, hi_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of every metric in a registry, safe to format or
/// export without touching the live atomics again.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    double lo = 0.0, hi = 0.0;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0, underflow = 0, overflow = 0;
    double sum = 0.0, min = 0.0, max = 0.0;

    double mean() const noexcept {
      return count ? sum / static_cast<double>(count) : 0.0;
    }
    /// Percentile estimate from the bins (linear within a bin; out-of-range
    /// samples clamp to lo/hi). `q` in [0,1]; 0 with no samples.
    double percentile(double q) const noexcept;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named metrics registry. Registration (counter/gauge/histogram lookup by
/// name) takes a mutex and is meant for setup paths; the returned
/// references are stable for the registry's lifetime, so hot paths hold
/// them and never touch the registry again. Re-registering a name returns
/// the existing instrument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `lo`/`hi`/`bins` apply on first registration; later lookups of the
  /// same name ignore them and return the existing histogram.
  LatencyHistogram& histogram(std::string_view name, double lo, double hi,
                              std::size_t bins);

  /// Copies every metric under the registration lock: the set of metrics
  /// and their name->value pairing are consistent; values are relaxed
  /// reads of live atomics.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, LatencyHistogram>> histograms_;
};

/// Process-wide default registry, for call sites without an obvious owner
/// (benches and examples mostly pass their own registry explicitly).
MetricsRegistry& global_registry();

/// Applies an instance scope prefix to a metric name: scoped_name("r3.",
/// "reader.blocks") == "r3.reader.blocks"; an empty scope returns the name
/// unchanged, so unscoped (single-instance) metric names stay exactly as
/// they always were. Components that may be instantiated several times
/// against one shared registry (RealtimeReader, ReaderService, FdmaRxChain,
/// the fleet engine's per-reader shards) take a `metrics_scope` parameter
/// and register every instrument through this helper — without it, two
/// instances silently resolve the same name to one counter and their
/// totals sum indistinguishably.
inline std::string scoped_name(std::string_view scope,
                               std::string_view name) {
  std::string s;
  s.reserve(scope.size() + name.size());
  s.append(scope);
  s.append(name);
  return s;
}

}  // namespace arachnet::telemetry
