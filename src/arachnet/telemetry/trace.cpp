#include "arachnet/telemetry/trace.hpp"

#include <algorithm>
#include <fstream>

#include "arachnet/telemetry/json.hpp"

namespace arachnet::telemetry {

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::enable(std::size_t events_per_thread) {
  {
    std::lock_guard lock{mutex_};
    ring_capacity_ = std::max<std::size_t>(1, events_per_thread);
    epoch_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  enabled_.store(true, std::memory_order_relaxed);
}

TraceRecorder::ThreadRing* TraceRecorder::local_ring() {
  thread_local ThreadRing* ring = nullptr;
  thread_local const TraceRecorder* owner = nullptr;
  if (ring == nullptr || owner != this) {
    std::lock_guard lock{mutex_};
    rings_.push_back(std::make_unique<ThreadRing>(
        ring_capacity_, static_cast<int>(rings_.size())));
    ring = rings_.back().get();
    owner = this;
  }
  return ring;
}

void TraceRecorder::record(const char* name, std::uint64_t start_ns,
                           std::uint64_t dur_ns) noexcept {
  ThreadRing* ring = local_ring();
  const std::uint64_t w = ring->written.load(std::memory_order_relaxed);
  ring->events[w % ring->events.size()] = TraceEvent{name, start_ns, dur_ns};
  ring->written.store(w + 1, std::memory_order_release);
}

void TraceRecorder::clear() {
  std::lock_guard lock{mutex_};
  for (auto& ring : rings_) {
    ring->written.store(0, std::memory_order_relaxed);
  }
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock{mutex_};
  std::size_t total = 0;
  for (const auto& ring : rings_) {
    total += std::min<std::uint64_t>(
        ring->written.load(std::memory_order_acquire), ring->events.size());
  }
  return total;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock{mutex_};
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t w = ring->written.load(std::memory_order_acquire);
    if (w > ring->events.size()) total += w - ring->events.size();
  }
  return total;
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  {
    std::lock_guard lock{mutex_};
    for (const auto& ring : rings_) {
      const std::uint64_t written =
          ring->written.load(std::memory_order_acquire);
      const std::uint64_t held =
          std::min<std::uint64_t>(written, ring->events.size());
      // Oldest surviving event first.
      for (std::uint64_t i = written - held; i < written; ++i) {
        const TraceEvent& ev = ring->events[i % ring->events.size()];
        w.begin_object();
        w.key("name");
        w.value(ev.name);
        w.key("cat");
        w.value("arachnet");
        w.key("ph");
        w.value("X");  // complete event: timestamp + duration
        w.key("ts");
        w.value(static_cast<double>(ev.start_ns) / 1e3);  // microseconds
        w.key("dur");
        w.value(static_cast<double>(ev.dur_ns) / 1e3);
        w.key("pid");
        w.value(std::int64_t{1});
        w.key("tid");
        w.value(static_cast<std::int64_t>(ring->tid));
        w.end_object();
      }
    }
  }
  w.end_array();
  w.end_object();
  out << w.str() << '\n';
}

bool TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  write_chrome_trace(out);
  return out.good();
}

}  // namespace arachnet::telemetry
