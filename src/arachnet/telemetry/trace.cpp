#include "arachnet/telemetry/trace.hpp"

#include <algorithm>
#include <fstream>

#include "arachnet/telemetry/json.hpp"
#include "arachnet/telemetry/log.hpp"

namespace arachnet::telemetry {

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::enable(std::size_t events_per_thread) {
  {
    std::lock_guard lock{mutex_};
    ring_capacity_ = std::max<std::size_t>(1, events_per_thread);
    // Capture both clocks back to back: the pair is the anchor that lets
    // a trace's steady-relative timestamps be placed on the wall clock.
    epoch_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    wall_anchor_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

TraceRecorder::ThreadRing* TraceRecorder::local_ring() {
  thread_local ThreadRing* ring = nullptr;
  thread_local const TraceRecorder* owner = nullptr;
  if (ring == nullptr || owner != this) {
    std::lock_guard lock{mutex_};
    rings_.push_back(std::make_unique<ThreadRing>(
        ring_capacity_, static_cast<int>(rings_.size())));
    ring = rings_.back().get();
    owner = this;
  }
  return ring;
}

void TraceRecorder::record(const char* name, std::uint64_t start_ns,
                           std::uint64_t dur_ns) noexcept {
  ThreadRing* ring = local_ring();
  const std::uint64_t w = ring->written.load(std::memory_order_relaxed);
  ring->events[w % ring->events.size()] = TraceEvent{name, start_ns, dur_ns};
  ring->written.store(w + 1, std::memory_order_release);
}

void TraceRecorder::clear() {
  std::lock_guard lock{mutex_};
  for (auto& ring : rings_) {
    ring->written.store(0, std::memory_order_relaxed);
  }
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock{mutex_};
  std::size_t total = 0;
  for (const auto& ring : rings_) {
    total += std::min<std::uint64_t>(
        ring->written.load(std::memory_order_acquire), ring->events.size());
  }
  return total;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock{mutex_};
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t w = ring->written.load(std::memory_order_acquire);
    if (w > ring->events.size()) total += w - ring->events.size();
  }
  return total;
}

std::int64_t TraceRecorder::wall_anchor_ns() const {
  std::lock_guard lock{mutex_};
  return wall_anchor_ns_;
}

std::uint64_t TraceRecorder::epoch_ns() const {
  std::lock_guard lock{mutex_};
  return epoch_ns_;
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  {
    std::lock_guard lock{mutex_};
    // Wall-clock <-> steady anchor (one record per file): ts values are
    // microseconds since the steady epoch, so
    //   wall_ns(event) = wall_anchor_ns + ts * 1000.
    // chrome://tracing ignores otherData; offline tooling aligning traces
    // from separate runs/processes reads it from here.
    w.key("otherData");
    w.begin_object();
    w.key("clock_sync");
    w.begin_object();
    w.key("wall_ns");
    w.value(wall_anchor_ns_);
    w.key("steady_epoch_ns");
    w.value(epoch_ns_);
    w.end_object();
    w.end_object();
  }
  w.key("traceEvents");
  w.begin_array();
  {
    std::lock_guard lock{mutex_};
    // The same anchor as an instant event at ts 0, visible inside trace
    // viewers (otherData is metadata-only there).
    w.begin_object();
    w.key("name");
    w.value("clock_anchor");
    w.key("cat");
    w.value("arachnet");
    w.key("ph");
    w.value("I");
    w.key("s");
    w.value("g");  // global-scope instant
    w.key("ts");
    w.value(0.0);
    w.key("pid");
    w.value(std::int64_t{1});
    w.key("tid");
    w.value(std::int64_t{0});
    w.key("args");
    w.begin_object();
    w.key("wall_ns");
    w.value(wall_anchor_ns_);
    w.key("steady_epoch_ns");
    w.value(epoch_ns_);
    w.end_object();
    w.end_object();
    for (const auto& ring : rings_) {
      const std::uint64_t written =
          ring->written.load(std::memory_order_acquire);
      const std::uint64_t held =
          std::min<std::uint64_t>(written, ring->events.size());
      // Oldest surviving event first.
      for (std::uint64_t i = written - held; i < written; ++i) {
        const TraceEvent& ev = ring->events[i % ring->events.size()];
        w.begin_object();
        w.key("name");
        w.value(ev.name);
        w.key("cat");
        w.value("arachnet");
        w.key("ph");
        w.value("X");  // complete event: timestamp + duration
        w.key("ts");
        w.value(static_cast<double>(ev.start_ns) / 1e3);  // microseconds
        w.key("dur");
        w.value(static_cast<double>(ev.dur_ns) / 1e3);
        w.key("pid");
        w.value(std::int64_t{1});
        w.key("tid");
        w.value(static_cast<std::int64_t>(ring->tid));
        w.end_object();
      }
    }
  }
  w.end_array();
  w.end_object();
  out << w.str() << '\n';
}

bool TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) {
    ARACHNET_LOG_WARN("trace", "failed to open chrome trace file",
                      {"path", path});
    return false;
  }
  write_chrome_trace(out);
  if (!out.good()) {
    ARACHNET_LOG_WARN("trace", "chrome trace write failed", {"path", path});
    return false;
  }
  return true;
}

}  // namespace arachnet::telemetry
