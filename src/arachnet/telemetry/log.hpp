#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string_view>

namespace arachnet::telemetry {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

std::string_view to_string(LogLevel level) noexcept;

/// One structured key/value pair. Holds views and PODs only — building a
/// field list never allocates; sinks that need the data beyond the log
/// call must copy it.
struct LogField {
  enum class Kind : unsigned char { kInt, kUint, kDouble, kBool, kString };

  std::string_view key;
  Kind kind;
  union {
    std::int64_t i;
    std::uint64_t u;
    double d;
    bool b;
  };
  std::string_view s;  ///< valid when kind == kString

  constexpr LogField(std::string_view k, std::int64_t v)
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr LogField(std::string_view k, int v)
      : LogField(k, static_cast<std::int64_t>(v)) {}
  constexpr LogField(std::string_view k, std::uint64_t v)
      : key(k), kind(Kind::kUint), u(v) {}
  constexpr LogField(std::string_view k, unsigned v)
      : LogField(k, static_cast<std::uint64_t>(v)) {}
  constexpr LogField(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}
  constexpr LogField(std::string_view k, bool v)
      : key(k), kind(Kind::kBool), b(v) {}
  constexpr LogField(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), i(0), s(v) {}
  constexpr LogField(std::string_view k, const char* v)
      : LogField(k, std::string_view{v}) {}
};

/// A log call, handed to the sink by reference. Field storage lives on the
/// caller's stack for the duration of the sink call only.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string_view component;
  std::string_view message;
  const LogField* fields = nullptr;
  std::size_t field_count = 0;
};

/// Pluggable sink. The default writes a `level component: message k=v ...`
/// line to stderr. Sinks must be callable from any thread.
using LogSink = void (*)(const LogRecord& record, void* user);

void set_log_sink(LogSink sink, void* user = nullptr) noexcept;
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Runtime level check — one relaxed atomic load, done before any field
/// evaluation so a disabled log call costs nothing else.
bool should_log(LogLevel level) noexcept;

/// Dispatches to the installed sink. Call through the macros, which apply
/// the compile-time and runtime level gates first.
void log_emit(LogLevel level, std::string_view component,
              std::string_view message,
              std::initializer_list<LogField> fields) noexcept;

/// The built-in stderr sink, exposed so callers can restore it.
void stderr_log_sink(const LogRecord& record, void* user);

}  // namespace arachnet::telemetry

/// Logs below this level are compiled out entirely (the statement
/// disappears: no field evaluation, no branch). Levels: 0 trace, 1 debug,
/// 2 info, 3 warn, 4 error.
#ifndef ARACHNET_LOG_MIN_LEVEL
#define ARACHNET_LOG_MIN_LEVEL 0
#endif

#ifdef ARACHNET_TELEMETRY_DISABLED
#define ARACHNET_LOG(level_, component_, message_, ...) ((void)0)
#else
#define ARACHNET_LOG(level_, component_, message_, ...)                    \
  do {                                                                     \
    if constexpr (static_cast<int>(level_) >= ARACHNET_LOG_MIN_LEVEL) {    \
      if (::arachnet::telemetry::should_log(level_)) {                     \
        ::arachnet::telemetry::log_emit(level_, component_, message_,      \
                                        {__VA_ARGS__});                    \
      }                                                                    \
    }                                                                      \
  } while (0)
#endif

#define ARACHNET_LOG_TRACE(component_, message_, ...)                     \
  ARACHNET_LOG(::arachnet::telemetry::LogLevel::kTrace, component_,       \
               message_ __VA_OPT__(, ) __VA_ARGS__)
#define ARACHNET_LOG_DEBUG(component_, message_, ...)                     \
  ARACHNET_LOG(::arachnet::telemetry::LogLevel::kDebug, component_,       \
               message_ __VA_OPT__(, ) __VA_ARGS__)
#define ARACHNET_LOG_INFO(component_, message_, ...)                      \
  ARACHNET_LOG(::arachnet::telemetry::LogLevel::kInfo, component_,        \
               message_ __VA_OPT__(, ) __VA_ARGS__)
#define ARACHNET_LOG_WARN(component_, message_, ...)                      \
  ARACHNET_LOG(::arachnet::telemetry::LogLevel::kWarn, component_,        \
               message_ __VA_OPT__(, ) __VA_ARGS__)
#define ARACHNET_LOG_ERROR(component_, message_, ...)                     \
  ARACHNET_LOG(::arachnet::telemetry::LogLevel::kError, component_,       \
               message_ __VA_OPT__(, ) __VA_ARGS__)
