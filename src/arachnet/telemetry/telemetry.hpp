#pragma once

/// Umbrella header for the observability layer: metrics registry
/// (counters / gauges / latency histograms), scoped tracing with Chrome
/// trace export, leveled structured logging, the JSON-lines exporter, and
/// the live health monitor (periodic registry sampling, delta/rate
/// time-series, watchdog flags, Prometheus text exposition).
///
/// Conventions (see DESIGN.md "Observability"):
///  - metric names are dot-separated, lowercase, unit-suffixed where the
///    unit is not obvious: `reader.block_ms`, `fdma.ch0.bits`,
///    `slot.collision`, `energy.cutoff.connect_events`;
///  - span names mirror the owning layer: `reader.block`, `fdma.process`,
///    `fdma.channel`;
///  - defining ARACHNET_TELEMETRY_DISABLED compiles out every
///    ARACHNET_TRACE_SPAN / ARACHNET_LOG_* statement; metrics hooks are
///    runtime-gated on the (nullable) registry pointer each component
///    takes.

#include "arachnet/telemetry/export.hpp"
#include "arachnet/telemetry/json.hpp"
#include "arachnet/telemetry/log.hpp"
#include "arachnet/telemetry/metrics.hpp"
#include "arachnet/telemetry/monitor.hpp"
#include "arachnet/telemetry/prometheus.hpp"
#include "arachnet/telemetry/trace.hpp"
