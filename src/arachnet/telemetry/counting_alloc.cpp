#include "arachnet/telemetry/counting_alloc.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

// Replacement global allocation operators: malloc/free plus one relaxed
// atomic increment per call. Defined in the same translation unit as the
// guard, so static-archive pull-in makes them binary-local to the tests
// and benches that audit allocations (see the header). Counting is
// unconditional — a branch per operator would cost as much as the
// increment — and the operators never allocate themselves, so they are
// reentrancy-safe.

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_deallocs{0};

void* counted_alloc(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must not (unless nothrow).
  return std::malloc(size != 0 ? size : 1);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // posix_memalign (unlike std::aligned_alloc) does not require the size
  // to be a multiple of the alignment; its result is free()-compatible.
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;  // delete nullptr must not count or touch free
  g_deallocs.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  counted_free(p);
}

namespace arachnet::telemetry {

AllocCounts alloc_counts() noexcept {
  return {g_allocs.load(std::memory_order_relaxed),
          g_deallocs.load(std::memory_order_relaxed)};
}

CountingAllocatorGuard::CountingAllocatorGuard() noexcept {
  const AllocCounts c = alloc_counts();
  base_allocs_ = c.allocations;
  base_deallocs_ = c.deallocations;
}

std::uint64_t CountingAllocatorGuard::allocations() const noexcept {
  return g_allocs.load(std::memory_order_relaxed) - base_allocs_;
}

std::uint64_t CountingAllocatorGuard::deallocations() const noexcept {
  return g_deallocs.load(std::memory_order_relaxed) - base_deallocs_;
}

}  // namespace arachnet::telemetry
