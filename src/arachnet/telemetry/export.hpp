#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::telemetry {

/// JSON-lines exporter: accumulates one self-describing JSON object per
/// record, every line carrying the same envelope
///   {"schema": <schema>, "bench": <source>, "kind": ..., "name": ...}
/// so downstream tooling can concatenate files from different benches and
/// still group/filter on stable keys. Used by the bench reports
/// (BENCH_<name>.json) and for dumping MetricsRegistry snapshots.
class JsonlExporter {
 public:
  /// `schema` names the line format (use kBenchSchema for bench output);
  /// `source` identifies the producer (the bench or component name).
  JsonlExporter(std::string schema, std::string source);

  static constexpr std::string_view kBenchSchema = "arachnet.bench.v1";

  /// A scalar measurement (kind "metric").
  void add_metric(std::string_view name, double value,
                  std::string_view unit = "");
  /// A monotonic count (kind "counter").
  void add_counter(std::string_view name, std::uint64_t value,
                   std::string_view unit = "");
  /// A last-value reading (kind "gauge").
  void add_gauge(std::string_view name, double value,
                 std::string_view unit = "");
  /// A string-valued annotation (kind "info") — environment facts like
  /// the resolved kernel policy or the dispatched SIMD ISA, so perf rows
  /// are attributable to the configuration that produced them.
  void add_info(std::string_view name, std::string_view value);
  /// Quantile summary (kind "percentiles"): `points` = {q, value} pairs.
  void add_percentiles(std::string_view name,
                       const std::vector<std::pair<double, double>>& points,
                       std::string_view unit = "");
  /// Full histogram (kind "histogram"): bin edges derived from lo/hi/counts.
  void add_histogram(std::string_view name, double lo, double hi,
                     const std::vector<std::uint64_t>& counts,
                     std::uint64_t underflow, std::uint64_t overflow,
                     std::string_view unit = "");
  void add_histogram(const MetricsSnapshot::HistogramValue& h,
                     std::string_view unit = "");

  /// Every metric in the snapshot, one line each.
  void add_snapshot(const MetricsSnapshot& snapshot);

  std::size_t line_count() const noexcept { return lines_.size(); }

  void write(std::ostream& out) const;
  /// Returns false — after emitting a structured-log warning with the
  /// path — if the file could not be opened/written, so a dropped sidecar
  /// is never silent even when the caller ignores the return value.
  bool write_file(const std::string& path) const;

 private:
  class LineBuilder;

  std::string schema_;
  std::string source_;
  std::vector<std::string> lines_;
};

}  // namespace arachnet::telemetry
