#include "arachnet/net/aloha.hpp"

#include <algorithm>

namespace arachnet::net {

std::int64_t AlohaSimulator::Stats::total_transmissions() const {
  std::int64_t total = 0;
  for (const auto& t : per_tag) total += t.transmissions;
  return total;
}

std::int64_t AlohaSimulator::Stats::total_collided() const {
  std::int64_t total = 0;
  for (const auto& t : per_tag) total += t.collided;
  return total;
}

double AlohaSimulator::Stats::overall_success_rate() const {
  const auto total = total_transmissions();
  return total ? 1.0 - static_cast<double>(total_collided()) / total : 0.0;
}

AlohaSimulator::AlohaSimulator(Params params, std::vector<TagSpec> tags)
    : params_(params), tags_(std::move(tags)), rng_(params.seed) {}

AlohaSimulator::Stats AlohaSimulator::run(double horizon_s) {
  struct Tx {
    double start;
    double end;
    std::size_t tag_index;
  };
  std::vector<Tx> transmissions;

  // Generate each tag's charge/transmit timeline independently.
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    double t = tags_[i].full_charge_s *
               (1.0 + rng_.normal(0.0, params_.charge_noise_frac));
    while (t < horizon_s) {
      transmissions.push_back({t, t + params_.packet_duration_s, i});
      // Charging pauses during the packet, then the warm recharge runs.
      t += params_.packet_duration_s;
      t += params_.recharge_fraction * tags_[i].full_charge_s *
           (1.0 + rng_.normal(0.0, params_.charge_noise_frac));
    }
  }

  // Sweep for overlaps.
  std::sort(transmissions.begin(), transmissions.end(),
            [](const Tx& a, const Tx& b) { return a.start < b.start; });
  std::vector<bool> collided(transmissions.size(), false);
  for (std::size_t i = 0; i < transmissions.size(); ++i) {
    for (std::size_t j = i + 1; j < transmissions.size(); ++j) {
      if (transmissions[j].start >= transmissions[i].end) break;
      collided[i] = collided[j] = true;
    }
  }

  Stats stats;
  stats.per_tag.resize(tags_.size());
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    stats.per_tag[i].tid = tags_[i].tid;
  }
  for (std::size_t k = 0; k < transmissions.size(); ++k) {
    auto& tag = stats.per_tag[transmissions[k].tag_index];
    ++tag.transmissions;
    if (collided[k]) ++tag.collided;
  }
  return stats;
}

}  // namespace arachnet::net
