#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arachnet/core/protocol.hpp"
#include "arachnet/sim/rng.hpp"

namespace arachnet::net {

/// A tag's static schedule entry in the vanilla (centralized) allocation
/// of Sec. 5.2.
struct VanillaAssignment {
  int tid = 0;
  int period = 0;
  int offset = 0;  ///< a_i
};

/// Computes a non-overlapping static allocation for the given periods
/// (powers of two, total utilization <= 1), assigning offsets greedily
/// shortest-period-first — the construction behind Table 1. Returns
/// nullopt when no conflict-free assignment exists.
std::optional<std::vector<VanillaAssignment>> vanilla_allocate(
    const std::vector<std::pair<int, int>>& tid_periods);

/// Renders the allocation as a Table-1 style occupancy grid over one
/// hyperperiod: result[slot] lists the tids transmitting in that slot.
std::vector<std::vector<int>> schedule_grid(
    const std::vector<VanillaAssignment>& assignments);

/// Simulates the vanilla scheme's fragility under beacon loss (Sec. 5.2
/// "Comment" / Fig. 8): tags follow their static offsets but a missed
/// beacon silently shifts a tag's local index; there is no feedback, so
/// collisions persist until chance realigns them.
class VanillaSimulator {
 public:
  struct Params {
    double dl_loss = 0.01;  ///< per-tag, per-slot beacon loss probability
    std::uint64_t seed = 1;
  };

  struct Stats {
    std::int64_t slots = 0;
    std::int64_t collision_slots = 0;
    std::int64_t non_empty_slots = 0;
    double collision_ratio() const {
      return slots ? static_cast<double>(collision_slots) / slots : 0.0;
    }
  };

  VanillaSimulator(Params params,
                   std::vector<VanillaAssignment> assignments);

  /// Runs `slots` slots and returns cumulative statistics.
  Stats run(std::int64_t slots);

 private:
  Params params_;
  sim::Rng rng_;
  std::vector<VanillaAssignment> assignments_;
  std::vector<std::int64_t> local_index_;
  Stats stats_;
};

}  // namespace arachnet::net
