#include "arachnet/net/vanilla.hpp"

#include <algorithm>
#include <set>

namespace arachnet::net {

std::optional<std::vector<VanillaAssignment>> vanilla_allocate(
    const std::vector<std::pair<int, int>>& tid_periods) {
  std::vector<VanillaAssignment> result;
  result.reserve(tid_periods.size());
  for (const auto& [tid, period] : tid_periods) {
    core::require_permissible(period);
    result.push_back({tid, period, -1});
  }
  // Shortest period first: their residue classes are the most constrained
  // (a period-p tag blocks 1/p of all slots).
  std::sort(result.begin(), result.end(),
            [](const VanillaAssignment& a, const VanillaAssignment& b) {
              if (a.period != b.period) return a.period < b.period;
              return a.tid < b.tid;
            });
  for (std::size_t i = 0; i < result.size(); ++i) {
    auto& cur = result[i];
    bool placed = false;
    for (int b = 0; b < cur.period && !placed; ++b) {
      bool ok = true;
      for (std::size_t j = 0; j < i; ++j) {
        const int m = std::min(cur.period, result[j].period);
        if ((b % m) == (result[j].offset % m)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        cur.offset = b;
        placed = true;
      }
    }
    if (!placed) return std::nullopt;
  }
  std::sort(result.begin(), result.end(),
            [](const VanillaAssignment& a, const VanillaAssignment& b) {
              return a.tid < b.tid;
            });
  return result;
}

std::vector<std::vector<int>> schedule_grid(
    const std::vector<VanillaAssignment>& assignments) {
  int hyper = 1;
  for (const auto& a : assignments) hyper = std::max(hyper, a.period);
  std::vector<std::vector<int>> grid(static_cast<std::size_t>(hyper));
  for (int s = 0; s < hyper; ++s) {
    for (const auto& a : assignments) {
      if (s % a.period == a.offset) {
        grid[static_cast<std::size_t>(s)].push_back(a.tid);
      }
    }
  }
  return grid;
}

VanillaSimulator::VanillaSimulator(Params params,
                                   std::vector<VanillaAssignment> assignments)
    : params_(params),
      rng_(params.seed),
      assignments_(std::move(assignments)),
      local_index_(assignments_.size(), -1) {}

VanillaSimulator::Stats VanillaSimulator::run(std::int64_t slots) {
  for (std::int64_t s = 0; s < slots; ++s) {
    int transmitters = 0;
    for (std::size_t i = 0; i < assignments_.size(); ++i) {
      // Beacon loss: this tag's local index silently fails to advance.
      if (rng_.bernoulli(params_.dl_loss)) continue;
      ++local_index_[i];
      if (local_index_[i] % assignments_[i].period ==
          assignments_[i].offset) {
        ++transmitters;
      }
    }
    ++stats_.slots;
    if (transmitters >= 1) ++stats_.non_empty_slots;
    if (transmitters >= 2) ++stats_.collision_slots;
  }
  return stats_;
}

}  // namespace arachnet::net
