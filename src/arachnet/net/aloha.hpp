#pragma once

#include <cstdint>
#include <vector>

#include "arachnet/sim/rng.hpp"

namespace arachnet::net {

/// Pure-ALOHA baseline under ARACHNET's hardware constraints (Appendix B):
/// each battery-free tag transmits the moment its supercapacitor reaches
/// HTH, then recharges from LTH (15.2% of the cold-start duration) and
/// repeats. Transmissions that overlap any other tag's collide.
class AlohaSimulator {
 public:
  struct TagSpec {
    int tid = 0;
    /// Cold-start charging time 0 V -> HTH (measured per deployment site;
    /// 4.5 s - 56.2 s across the paper's 12 tags).
    double full_charge_s = 10.0;
  };

  struct Params {
    /// Warm recharge (LTH -> HTH) as a fraction of the cold charge.
    double recharge_fraction = 0.152;
    /// Per-cycle multiplicative charging-time noise (Gaussian sigma).
    double charge_noise_frac = 0.02;
    /// UL packet duration; charging pauses while transmitting.
    double packet_duration_s = 0.2;
    std::uint64_t seed = 1;
  };

  struct TagStats {
    int tid = 0;
    std::int64_t transmissions = 0;
    std::int64_t collided = 0;
    double success_rate() const {
      return transmissions
                 ? 1.0 - static_cast<double>(collided) / transmissions
                 : 0.0;
    }
  };

  struct Stats {
    std::vector<TagStats> per_tag;
    std::int64_t total_transmissions() const;
    std::int64_t total_collided() const;
    double overall_success_rate() const;
  };

  AlohaSimulator(Params params, std::vector<TagSpec> tags);

  /// Simulates `horizon_s` seconds (the paper runs 10,000 s) and returns
  /// per-tag transmission/collision statistics.
  Stats run(double horizon_s);

 private:
  Params params_;
  std::vector<TagSpec> tags_;
  sim::Rng rng_;
};

}  // namespace arachnet::net
