#pragma once

#include <cstdint>
#include <span>

#include "arachnet/phy/bits.hpp"

namespace arachnet::phy {

/// CRC-8 (polynomial x^8 + x^2 + x + 1, i.e. 0x07, init 0x00, MSB-first,
/// no reflection, no final XOR) — the 8-bit integrity check carried in
/// every ARACHNET uplink packet.
std::uint8_t crc8(std::span<const std::uint8_t> bytes) noexcept;

/// CRC-8 over an arbitrary bit string (MSB-first bit feed). Uplink packets
/// protect the 16-bit TID+payload field, which is what this is used for.
std::uint8_t crc8_bits(const BitVector& bits) noexcept;

/// Same CRC over the sub-range [pos, pos+len) of `bits`, so validators on
/// the streaming decode path can check a protected field in place instead
/// of slicing it into a temporary (slice() allocates; packet validation
/// runs inside the reader's zero-allocation steady-state loop).
std::uint8_t crc8_bits(const BitVector& bits, std::size_t pos,
                       std::size_t len) noexcept;

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — provided for extended
/// payload experiments and reader-side logging integrity.
std::uint16_t crc16(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace arachnet::phy
