#pragma once

#include <optional>
#include <vector>

#include "arachnet/phy/bits.hpp"

namespace arachnet::phy {

/// FM0 (bi-phase space) line code used on the ARACHNET uplink.
///
/// Each data bit occupies two half-bit chips. The level always transitions
/// at a bit boundary; a data 0 carries an additional mid-bit transition, a
/// data 1 does not. Equivalently (the paper's phrasing): chip pairs 10/01
/// encode FM0 bit 0, chip pairs 00/11 encode FM0 bit 1.
class Fm0Encoder {
 public:
  /// Encodes data bits into half-bit chips (each chip is one OOK level the
  /// tag holds for half a bit period). `initial_level` is the level of the
  /// chip *preceding* the stream; the first chip is its inverse.
  static BitVector encode(const BitVector& data, bool initial_level = false);

  /// Number of pilot bits prepended to every transmitted frame.
  static constexpr int kPilotBits = 8;

  /// Encodes a frame for transmission: a pilot of kPilotBits zero bits,
  /// the data bits, then a dummy terminator bit (as in EPC Gen2 FM0, which
  /// uses leading zeros and a trailing dummy-1). The pilot's mid-bit
  /// transitions let the receiver's run-length decoder lock its half-bit
  /// phase before the preamble arrives; the terminator's boundary
  /// transition closes the last data bit before the channel goes quiet.
  static BitVector encode_frame(const BitVector& data,
                                bool initial_level = false);
};

/// Chip-level FM0 decoder with boundary-transition checking.
class Fm0Decoder {
 public:
  struct Result {
    BitVector bits;
    /// Number of bit positions whose boundary transition was missing —
    /// a coding violation indicating chip slip or noise.
    std::size_t violations = 0;
  };

  /// Decodes a chip stream produced by Fm0Encoder (or sliced by the reader).
  /// `initial_level` must match the level preceding the stream.
  static Result decode(const BitVector& chips, bool initial_level = false);

  /// Decodes from level run-lengths (e.g. timestamps out of a Schmitt
  /// trigger). `runs` holds the duration of each constant-level segment in
  /// seconds; `half_bit` is the nominal half-bit period. Runs are quantized
  /// to 1 or 2 half-bit units with `tolerance` (fraction of half_bit).
  /// Returns std::nullopt when a run cannot be quantized (desync).
  static std::optional<BitVector> decode_runs(const std::vector<double>& runs,
                                              double half_bit,
                                              double tolerance = 0.35);
};

}  // namespace arachnet::phy
