#include "arachnet/phy/pie.hpp"

#include <cmath>

namespace arachnet::phy {

BitVector PieEncoder::encode(const BitVector& data) {
  BitVector chips;
  for (std::size_t i = 0; i < data.size(); ++i) {
    chips.push_back(true);
    if (data[i]) chips.push_back(true);
    chips.push_back(false);
  }
  return chips;
}

std::size_t PieEncoder::chip_count(const BitVector& data) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < data.size(); ++i) n += data[i] ? 3 : 2;
  return n;
}

std::optional<bool> PieDecoder::classify_pulse(double high_duration,
                                               double chip, double tolerance) {
  if (std::abs(high_duration - chip) <= tolerance * chip) return false;
  if (std::abs(high_duration - 2.0 * chip) <= tolerance * chip) return true;
  return std::nullopt;
}

std::optional<BitVector> PieDecoder::decode(const std::vector<double>& pulses,
                                            double chip, double tolerance) {
  BitVector bits;
  for (double p : pulses) {
    const auto bit = classify_pulse(p, chip, tolerance);
    if (!bit) return std::nullopt;
    bits.push_back(*bit);
  }
  return bits;
}

}  // namespace arachnet::phy
