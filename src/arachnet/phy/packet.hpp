#pragma once

#include <cstdint>
#include <optional>

#include "arachnet/phy/bits.hpp"

namespace arachnet::phy {

/// Fixed frame geometry from the paper (Fig. 5).
inline constexpr int kUlPreambleBits = 8;
inline constexpr int kUlTidBits = 4;
inline constexpr int kUlPayloadBits = 12;
inline constexpr int kUlCrcBits = 8;
inline constexpr int kUlPacketBits =
    kUlPreambleBits + kUlTidBits + kUlPayloadBits + kUlCrcBits;  // 32

inline constexpr int kDlPreambleBits = 6;
inline constexpr int kDlCmdBits = 4;
inline constexpr int kDlPacketBits = kDlPreambleBits + kDlCmdBits;  // 10

/// Default raw bit rates (chips per second on the line).
inline constexpr double kDefaultUlRawBitRate = 375.0;
inline constexpr double kDefaultDlRawBitRate = 250.0;

/// UL preamble: chosen for low autocorrelation sidelobes so the reader's
/// correlator can frame packets amid noise.
const BitVector& ul_preamble();

/// DL preamble the tags' shift-register matcher looks for.
const BitVector& dl_preamble();

/// Uplink data packet: sensor reading from tag to reader.
struct UlPacket {
  std::uint8_t tid = 0;        ///< tag id, 4 bits (up to 16 tags)
  std::uint16_t payload = 0;   ///< sensor data, 12 bits

  /// Full on-air frame: preamble | TID | payload | CRC-8(TID|payload).
  BitVector serialize() const;

  /// Parses a 32-bit frame; returns nullopt on preamble or CRC mismatch.
  static std::optional<UlPacket> parse(const BitVector& frame);

  /// Parses the 24 bits following an already-matched preamble.
  static std::optional<UlPacket> parse_body(const BitVector& body);

  friend bool operator==(const UlPacket&, const UlPacket&) = default;
};

/// Downlink beacon command flags — the 4-bit CMD field. The reader
/// broadcasts one beacon per slot boundary; it carries no tag ID by design
/// (Sec. 4.2): relevance is decided tag-side.
struct DlCommand {
  bool ack = false;    ///< true: last slot's transmission acknowledged
  bool empty = false;  ///< true: current slot predicted unoccupied (Eq. 4)
  bool reset = false;  ///< true: all tags must reset protocol state

  std::uint8_t to_nibble() const noexcept;
  static DlCommand from_nibble(std::uint8_t nibble) noexcept;

  friend bool operator==(const DlCommand&, const DlCommand&) = default;
};

/// Downlink beacon frame: preamble | CMD. Deliberately CRC-free (Sec. 4.2);
/// the protocol tolerates occasional mis-decodes.
struct DlBeacon {
  DlCommand cmd;

  BitVector serialize() const;
  static std::optional<DlBeacon> parse(const BitVector& frame);

  friend bool operator==(const DlBeacon&, const DlBeacon&) = default;
};

/// On-air duration of a full UL packet at the given raw (chip) bit rate.
/// FM0 spends two chips per data bit.
double ul_packet_duration(double raw_bit_rate = kDefaultUlRawBitRate);

/// On-air duration of a DL beacon at the given raw (chip) bit rate. PIE
/// spends 2 chips per 0-bit and 3 per 1-bit, so duration depends on content.
double dl_beacon_duration(const DlBeacon& beacon,
                          double raw_bit_rate = kDefaultDlRawBitRate);

/// Worst-case DL beacon duration (all bits 1) — used for slot budgeting.
double dl_beacon_max_duration(double raw_bit_rate = kDefaultDlRawBitRate);

}  // namespace arachnet::phy
