#pragma once

#include <array>
#include <optional>
#include <vector>

#include "arachnet/phy/bits.hpp"

namespace arachnet::phy {

/// Higher-order backscatter modulation: 4-PAM over four PZT impedance
/// states (the paper's Sec. 6.3 extension path, following higher-order
/// modulation for acoustic backscatter in metals). Each symbol carries
/// two bits, Gray-coded onto four reflection levels, doubling throughput
/// at the same symbol rate — at the cost of a ~3x smaller decision
/// distance than OOK.
class Pam4 {
 public:
  struct Params {
    /// Reflection coefficients of the four impedance states, ascending.
    std::array<double, 4> levels{0.35, 0.54, 0.73, 0.92};
  };

  Pam4() : Pam4(Params{}) {}
  explicit Pam4(Params p);

  /// Gray code: bit pair -> level index (00->0, 01->1, 11->2, 10->3).
  static int gray_index(bool msb, bool lsb) noexcept;
  /// Inverse Gray map: level index -> bit pair.
  static std::pair<bool, bool> gray_bits(int index) noexcept;

  /// Number of training symbols prepended by encode_frame: a fixed ramp
  /// 0,3,1,2 repeated, from which the receiver learns the four levels.
  static constexpr int kTrainingSymbols = 16;

  /// Encodes a bit string (even length; padded with a trailing 0 if odd)
  /// into reflection levels: training ramp, then data symbols, then one
  /// terminator symbol at level 0.
  std::vector<double> encode_frame(const BitVector& data) const;

  /// Data-symbol count for a bit string.
  static std::size_t symbol_count(const BitVector& data) noexcept {
    return (data.size() + 1) / 2;
  }

  /// Data-symbol count for a bit count.
  static std::size_t symbol_count_for(std::size_t bits) noexcept {
    return (bits + 1) / 2;
  }

  /// Decodes measured per-symbol amplitudes back to bits. The first
  /// kTrainingSymbols entries must be the training ramp: they calibrate
  /// the four decision levels (per-level averages), then the remaining
  /// symbols quantize to the nearest level. Returns nullopt if the
  /// training span is missing or degenerate.
  std::optional<BitVector> decode_frame(
      const std::vector<double>& symbol_amplitudes,
      std::size_t data_bits) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
};

}  // namespace arachnet::phy
