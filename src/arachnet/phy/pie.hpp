#pragma once

#include <optional>
#include <vector>

#include "arachnet/phy/bits.hpp"

namespace arachnet::phy {

/// Pulse-Interval Encoding (PIE) used on the ARACHNET downlink.
///
/// A PIE bit 0 is the chip pair "10" (one chip high, one low); a PIE bit 1
/// is the chip triple "110" (two chips high, one low). The tag demodulates
/// by timing the high pulse between a rising and a falling edge: a long
/// pulse (~2 chips) is a 1, a short pulse (~1 chip) is a 0. The raw chip
/// rate equals the configured DL bit rate (250 bps by default).
class PieEncoder {
 public:
  /// Encodes data bits to chips at the raw chip rate.
  static BitVector encode(const BitVector& data);

  /// Number of chips a bit pattern occupies (2 per 0, 3 per 1).
  static std::size_t chip_count(const BitVector& data);
};

/// Timing-domain PIE demodulator mirroring the tag's interrupt logic:
/// each entry is the measured high-pulse duration in seconds.
class PieDecoder {
 public:
  /// Classifies one pulse. `chip` is the raw chip duration in seconds.
  /// Pulses within `tolerance` (fraction of chip) of 1 or 2 chips decode to
  /// 0 / 1; anything else is rejected (std::nullopt).
  static std::optional<bool> classify_pulse(double high_duration, double chip,
                                            double tolerance = 0.45);

  /// Decodes a sequence of high-pulse durations. Any unclassifiable pulse
  /// aborts the packet (matching the tag firmware, which then rearms on the
  /// next preamble). Returns std::nullopt in that case.
  static std::optional<BitVector> decode(const std::vector<double>& pulses,
                                         double chip,
                                         double tolerance = 0.45);

  /// The decision threshold used by the MCU firmware: pulses longer than
  /// 1.5 chips are 1s. Exposed for the firmware implementation.
  static bool threshold_decision(double high_duration, double chip) {
    return high_duration > 1.5 * chip;
  }
};

}  // namespace arachnet::phy
