#include "arachnet/phy/crc.hpp"

namespace arachnet::phy {

std::uint8_t crc8(std::span<const std::uint8_t> bytes) noexcept {
  std::uint8_t crc = 0x00;
  for (std::uint8_t byte : bytes) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x80u) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07u)
                          : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

std::uint8_t crc8_bits(const BitVector& bits) noexcept {
  return crc8_bits(bits, 0, bits.size());
}

std::uint8_t crc8_bits(const BitVector& bits, std::size_t pos,
                       std::size_t len) noexcept {
  std::uint8_t crc = 0x00;
  for (std::size_t i = pos; i < pos + len; ++i) {
    const std::uint8_t in = bits[i] ? 0x80u : 0x00u;
    crc ^= in;
    crc = (crc & 0x80u) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07u)
                        : static_cast<std::uint8_t>(crc << 1);
  }
  return crc;
}

std::uint16_t crc16(std::span<const std::uint8_t> bytes) noexcept {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : bytes) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000u) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                            : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

}  // namespace arachnet::phy
