#include "arachnet/phy/bits.hpp"

#include <stdexcept>

namespace arachnet::phy {

BitVector::BitVector(std::initializer_list<int> bits) {
  bits_.reserve(bits.size());
  for (int b : bits) bits_.push_back(b ? 1 : 0);
}

BitVector BitVector::from_string(const std::string& s) {
  BitVector v;
  v.bits_.reserve(s.size());
  for (char c : s) {
    if (c == ' ') continue;
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitVector::from_string: bad character");
    }
    v.bits_.push_back(c == '1' ? 1 : 0);
  }
  return v;
}

void BitVector::append_uint(std::uint32_t value, int nbits) {
  if (nbits < 0 || nbits > 32) {
    throw std::invalid_argument("BitVector::append_uint: nbits out of range");
  }
  for (int i = nbits - 1; i >= 0; --i) {
    bits_.push_back((value >> i) & 1u);
  }
}

std::uint32_t BitVector::read_uint(std::size_t pos, int nbits) const {
  if (nbits < 0 || nbits > 32 || pos + static_cast<std::size_t>(nbits) > size()) {
    throw std::out_of_range("BitVector::read_uint: range out of bounds");
  }
  std::uint32_t value = 0;
  for (int i = 0; i < nbits; ++i) {
    value = (value << 1) | bits_[pos + static_cast<std::size_t>(i)];
  }
  return value;
}

void BitVector::append(const BitVector& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (auto b : bits_) s.push_back(b ? '1' : '0');
  return s;
}

BitVector BitVector::slice(std::size_t pos, std::size_t len) const {
  if (pos + len > size()) {
    throw std::out_of_range("BitVector::slice: range out of bounds");
  }
  BitVector v;
  v.bits_.assign(bits_.begin() + static_cast<std::ptrdiff_t>(pos),
                 bits_.begin() + static_cast<std::ptrdiff_t>(pos + len));
  return v;
}

}  // namespace arachnet::phy
