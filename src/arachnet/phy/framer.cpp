#include "arachnet/phy/framer.hpp"

#include <utility>

namespace arachnet::phy {

BitStreamFramer::BitStreamFramer(BitVector preamble, std::size_t body_bits,
                                 FrameHandler on_frame)
    : preamble_(std::move(preamble)),
      body_bits_(body_bits),
      on_frame_(std::move(on_frame)),
      shift_(preamble_.size(), 0) {
  // Both halves of the emit swap hold at most one fixed-size body;
  // reserving here makes frame collection allocation-free from the very
  // first frame (not just once both buffers have been through a swap).
  body_.reserve(body_bits_);
  emit_.reserve(body_bits_);
}

bool BitStreamFramer::shift_matches() const noexcept {
  if (shift_fill_ < shift_.size()) return false;
  for (std::size_t i = 0; i < shift_.size(); ++i) {
    if ((shift_[i] != 0) != preamble_[i]) return false;
  }
  return true;
}

void BitStreamFramer::push(bool bit) {
  if (collecting_) {
    body_.push_back(bit);
    if (body_.size() == body_bits_) {
      collecting_ = false;
      ++frames_;
      // Swap the body into the emit scratch (instead of moving it out to
      // a local): the handler still sees a buffer that survives a
      // reentrant reset(), and both vectors keep their warm capacity, so
      // a long-running framer emits frames without ever reallocating.
      std::swap(emit_, body_);
      body_.clear();
      // Restart hunting with a clean window: the firmware's shift register
      // is reused for body collection, so history does not carry over.
      shift_fill_ = 0;
      if (on_frame_) on_frame_(emit_);
    }
    return;
  }
  // Shift-register hunt.
  for (std::size_t i = 0; i + 1 < shift_.size(); ++i) shift_[i] = shift_[i + 1];
  shift_.back() = bit ? 1 : 0;
  if (shift_fill_ < shift_.size()) ++shift_fill_;
  if (shift_matches()) {
    collecting_ = true;
    body_.clear();
  }
}

void BitStreamFramer::reset() {
  collecting_ = false;
  body_.clear();
  shift_fill_ = 0;
}

UlFramer::UlFramer(PacketHandler on_packet)
    : on_packet_(std::move(on_packet)),
      framer_(ul_preamble(),
              static_cast<std::size_t>(kUlTidBits + kUlPayloadBits +
                                       kUlCrcBits),
              [this](const BitVector& body) {
                if (const auto pkt = UlPacket::parse_body(body)) {
                  ++packets_;
                  if (on_packet_) on_packet_(*pkt);
                } else {
                  ++crc_failures_;
                }
              }) {}

void UlFramer::push(bool bit) { framer_.push(bit); }
void UlFramer::reset() { framer_.reset(); }

DlFramer::DlFramer(BeaconHandler on_beacon)
    : on_beacon_(std::move(on_beacon)),
      framer_(dl_preamble(), static_cast<std::size_t>(kDlCmdBits),
              [this](const BitVector& body) {
                DlBeacon beacon;
                beacon.cmd = DlCommand::from_nibble(
                    static_cast<std::uint8_t>(body.read_uint(0, kDlCmdBits)));
                ++beacons_;
                if (on_beacon_) on_beacon_(beacon);
              }) {}

void DlFramer::push(bool bit) { framer_.push(bit); }
void DlFramer::reset() { framer_.reset(); }

}  // namespace arachnet::phy
