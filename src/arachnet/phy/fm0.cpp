#include "arachnet/phy/fm0.hpp"

#include <cmath>

namespace arachnet::phy {

BitVector Fm0Encoder::encode(const BitVector& data, bool initial_level) {
  BitVector chips;
  bool level = initial_level;
  for (std::size_t i = 0; i < data.size(); ++i) {
    level = !level;  // transition at every bit boundary
    chips.push_back(level);
    if (!data[i]) level = !level;  // mid-bit transition encodes a 0
    chips.push_back(level);
  }
  return chips;
}

BitVector Fm0Encoder::encode_frame(const BitVector& data, bool initial_level) {
  BitVector framed;
  for (int i = 0; i < kPilotBits; ++i) framed.push_back(false);
  framed.append(data);
  framed.push_back(true);  // dummy bit closing the frame
  return encode(framed, initial_level);
}

Fm0Decoder::Result Fm0Decoder::decode(const BitVector& chips,
                                      bool initial_level) {
  Result result;
  bool prev = initial_level;
  for (std::size_t i = 0; i + 1 < chips.size(); i += 2) {
    const bool first = chips[i];
    const bool second = chips[i + 1];
    if (first == prev) ++result.violations;  // missing boundary transition
    result.bits.push_back(first == second);  // equal chips -> FM0 bit 1
    prev = second;
  }
  return result;
}

std::optional<BitVector> Fm0Decoder::decode_runs(
    const std::vector<double>& runs, double half_bit, double tolerance) {
  // Quantize each run to 1 or 2 half-bit units.
  std::vector<int> units;
  units.reserve(runs.size());
  for (double r : runs) {
    const double halves = r / half_bit;
    if (std::abs(halves - 1.0) <= tolerance) {
      units.push_back(1);
    } else if (std::abs(halves - 2.0) <= 2.0 * tolerance) {
      units.push_back(2);
    } else {
      return std::nullopt;  // run length not representable -> desync
    }
  }

  // Walk the unit stream one bit (two half units) at a time. A 2-unit run
  // spans a whole bit (FM0 bit 1); two 1-unit runs form a bit with a mid
  // transition (FM0 bit 0). A 2-unit run may not straddle a bit boundary in
  // valid FM0, so any leftover half indicates desync.
  BitVector bits;
  std::size_t i = 0;
  while (i < units.size()) {
    if (units[i] == 2) {
      bits.push_back(true);
      ++i;
    } else {
      if (i + 1 >= units.size()) break;  // trailing half-bit: drop it
      if (units[i + 1] == 1) {
        bits.push_back(false);
        i += 2;
      } else {
        // "1,2" means the 2-run crosses a boundary: invalid FM0 framing.
        return std::nullopt;
      }
    }
  }
  return bits;
}

}  // namespace arachnet::phy
