#include "arachnet/phy/pam4.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arachnet::phy {

Pam4::Pam4(Params p) : params_(p) {
  for (int i = 1; i < 4; ++i) {
    if (!(params_.levels[i] > params_.levels[i - 1])) {
      throw std::invalid_argument("Pam4: levels must be strictly ascending");
    }
  }
}

int Pam4::gray_index(bool msb, bool lsb) noexcept {
  if (!msb && !lsb) return 0;  // 00
  if (!msb && lsb) return 1;   // 01
  if (msb && lsb) return 2;    // 11
  return 3;                    // 10
}

std::pair<bool, bool> Pam4::gray_bits(int index) noexcept {
  switch (index) {
    case 0: return {false, false};
    case 1: return {false, true};
    case 2: return {true, true};
    default: return {true, false};
  }
}

std::vector<double> Pam4::encode_frame(const BitVector& data) const {
  std::vector<double> out;
  // Training ramp: a fixed sequence visiting every level four times.
  static constexpr int kRamp[4] = {0, 3, 1, 2};
  for (int i = 0; i < kTrainingSymbols; ++i) {
    out.push_back(params_.levels[static_cast<std::size_t>(kRamp[i % 4])]);
  }
  for (std::size_t i = 0; i < data.size(); i += 2) {
    const bool msb = data[i];
    const bool lsb = i + 1 < data.size() ? data[i + 1] : false;
    out.push_back(
        params_.levels[static_cast<std::size_t>(gray_index(msb, lsb))]);
  }
  out.push_back(params_.levels[0]);  // terminator
  return out;
}

std::optional<BitVector> Pam4::decode_frame(
    const std::vector<double>& symbol_amplitudes,
    std::size_t data_bits) const {
  const std::size_t data_symbols = (data_bits + 1) / 2;
  if (symbol_amplitudes.size() <
      static_cast<std::size_t>(kTrainingSymbols) + data_symbols) {
    return std::nullopt;
  }
  // Learn the four levels from the training ramp.
  static constexpr int kRamp[4] = {0, 3, 1, 2};
  double sums[4] = {0, 0, 0, 0};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < kTrainingSymbols; ++i) {
    const int level = kRamp[i % 4];
    sums[level] += symbol_amplitudes[static_cast<std::size_t>(i)];
    ++counts[level];
  }
  double learned[4];
  for (int l = 0; l < 4; ++l) {
    if (counts[l] == 0) return std::nullopt;
    learned[l] = sums[l] / counts[l];
  }
  if (!(learned[0] < learned[1] && learned[1] < learned[2] &&
        learned[2] < learned[3])) {
    return std::nullopt;  // degenerate training: channel too noisy
  }

  BitVector bits;
  for (std::size_t s = 0; s < data_symbols; ++s) {
    const double x =
        symbol_amplitudes[static_cast<std::size_t>(kTrainingSymbols) + s];
    int best = 0;
    double best_d = std::abs(x - learned[0]);
    for (int l = 1; l < 4; ++l) {
      const double d = std::abs(x - learned[l]);
      if (d < best_d) {
        best_d = d;
        best = l;
      }
    }
    const auto [msb, lsb] = gray_bits(best);
    bits.push_back(msb);
    if (bits.size() < data_bits) bits.push_back(lsb);
  }
  return bits;
}

}  // namespace arachnet::phy
