#include "arachnet/phy/subcarrier.hpp"

#include <cmath>
#include <stdexcept>

namespace arachnet::phy {

SubcarrierModulator::SubcarrierModulator(Params params) : params_(params) {
  const double ratio = 2.0 * params_.subcarrier_hz / params_.chip_rate;
  half_periods_ = static_cast<int>(std::lround(ratio));
  if (half_periods_ < 2 ||
      std::abs(ratio - half_periods_) > 1e-9) {
    throw std::invalid_argument(
        "SubcarrierModulator: subcarrier must fit an integer number (>= 2) "
        "of half-periods per chip");
  }
}

BitVector SubcarrierModulator::modulate(const BitVector& chips) const {
  BitVector out;
  bool sub_phase = false;
  for (std::size_t i = 0; i < chips.size(); ++i) {
    for (int h = 0; h < half_periods_; ++h) {
      out.push_back(chips[i] ^ sub_phase);
      sub_phase = !sub_phase;
    }
  }
  return out;
}

BitVector SubcarrierModulator::demodulate(const BitVector& subchips) const {
  BitVector chips;
  bool sub_phase = false;
  for (std::size_t pos = 0; pos + half_periods_ <=
                            subchips.size() + static_cast<std::size_t>(0);
       pos += static_cast<std::size_t>(half_periods_)) {
    int votes = 0;
    for (int h = 0; h < half_periods_; ++h) {
      votes += (subchips[pos + static_cast<std::size_t>(h)] ^ sub_phase) ? 1 : -1;
      sub_phase = !sub_phase;
    }
    chips.push_back(votes > 0);
  }
  return chips;
}

}  // namespace arachnet::phy
