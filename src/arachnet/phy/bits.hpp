#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace arachnet::phy {

/// A sequence of bits stored one-per-byte (0 or 1). The PHY layers of
/// ARACHNET deal in tens of bits per packet, so clarity beats packing.
class BitVector {
 public:
  BitVector() = default;
  BitVector(std::initializer_list<int> bits);

  /// Parses a string of '0'/'1' characters (spaces ignored).
  static BitVector from_string(const std::string& s);

  /// Appends the low `nbits` of `value`, most-significant bit first.
  void append_uint(std::uint32_t value, int nbits);

  /// Reads `nbits` starting at `pos`, MSB-first, as an unsigned value.
  /// Requires pos + nbits <= size().
  std::uint32_t read_uint(std::size_t pos, int nbits) const;

  void push_back(bool bit) { bits_.push_back(bit ? 1 : 0); }
  /// Pre-sizes the backing store (framers reserve their fixed body
  /// length up front so collecting a frame never reallocates).
  void reserve(std::size_t n) { bits_.reserve(n); }
  void append(const BitVector& other);

  bool at(std::size_t i) const { return bits_.at(i) != 0; }
  bool operator[](std::size_t i) const { return bits_[i] != 0; }
  std::size_t size() const noexcept { return bits_.size(); }
  bool empty() const noexcept { return bits_.empty(); }
  void clear() noexcept { bits_.clear(); }

  /// Bits as a '0'/'1' string, for logs and test diagnostics.
  std::string to_string() const;

  /// Sub-range [pos, pos+len).
  BitVector slice(std::size_t pos, std::size_t len) const;

  const std::vector<std::uint8_t>& raw() const noexcept { return bits_; }

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  std::vector<std::uint8_t> bits_;
};

}  // namespace arachnet::phy
