#pragma once

#include "arachnet/phy/bits.hpp"

namespace arachnet::phy {

/// FDMA subcarrier modulation for parallel backscatter (the paper's
/// Sec. 6.3 extension path, following underwater-backscatter FDMA).
///
/// Instead of reflecting baseband FM0 chips directly, a tag XORs its chip
/// stream with a square subcarrier at `subcarrier_hz`. At the reader the
/// tag's energy appears at carrier +/- subcarrier_hz, so tags on distinct
/// subcarriers occupy disjoint spectrum and can transmit simultaneously.
///
/// The subcarrier stream is produced at an oversampled "sub-chip" rate:
/// each FM0 chip spans an integer number of subcarrier half-periods.
class SubcarrierModulator {
 public:
  struct Params {
    /// Data chip rate (FM0 chips per second).
    double chip_rate = 375.0;
    /// Square subcarrier frequency; must be an integer multiple of half
    /// the chip rate so chip boundaries align with subcarrier edges.
    double subcarrier_hz = 3000.0;
  };

  explicit SubcarrierModulator(Params params);

  /// Half-periods of the subcarrier per data chip.
  int half_periods_per_chip() const noexcept { return half_periods_; }

  /// Sub-chip rate of the emitted stream (2 * subcarrier_hz).
  double subchip_rate() const noexcept { return 2.0 * params_.subcarrier_hz; }

  /// Expands FM0 chips into the subcarrier-mixed reflection stream:
  /// each chip becomes `half_periods_per_chip()` sub-chips, XORed with the
  /// alternating subcarrier phase.
  BitVector modulate(const BitVector& chips) const;

  /// Demodulates a sub-chip stream back to chips (majority vote over each
  /// chip after XOR with the subcarrier). Inverse of modulate() when
  /// aligned.
  BitVector demodulate(const BitVector& subchips) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  int half_periods_ = 0;
};

}  // namespace arachnet::phy
