#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "arachnet/phy/bits.hpp"
#include "arachnet/phy/packet.hpp"

namespace arachnet::phy {

/// Streaming frame synchronizer: consumes decoded bits one at a time,
/// hunts for a preamble with a shift register, then collects a fixed-size
/// body and emits it. This mirrors both the tag's DL beacon matcher and the
/// reader's UL framer.
class BitStreamFramer {
 public:
  using FrameHandler = std::function<void(const BitVector& body)>;

  /// `preamble` is matched exactly; `body_bits` bits following it are
  /// collected and handed to `on_frame`. While collecting a body the framer
  /// does not hunt, matching the firmware's behaviour.
  BitStreamFramer(BitVector preamble, std::size_t body_bits,
                  FrameHandler on_frame);

  /// Feed one decoded bit.
  void push(bool bit);

  /// Abandon any partial frame and restart hunting (e.g. after signal loss).
  void reset();

  /// True while a body is being collected.
  bool collecting() const noexcept { return collecting_; }

  /// Frames emitted so far.
  std::size_t frames_emitted() const noexcept { return frames_; }

 private:
  bool shift_matches() const noexcept;

  BitVector preamble_;
  std::size_t body_bits_;
  FrameHandler on_frame_;
  std::vector<std::uint8_t> shift_;  // circularly managed match window
  std::size_t shift_fill_ = 0;
  BitVector body_;
  /// Completed body handed to on_frame_ (swapped from body_, so both
  /// buffers stay warm and a frame emission never allocates).
  BitVector emit_;
  bool collecting_ = false;
  std::size_t frames_ = 0;
};

/// Convenience: framer preconfigured for UL packets; parses and validates
/// the body (CRC) and invokes the handler only for valid packets. Invalid
/// bodies are counted.
class UlFramer {
 public:
  using PacketHandler = std::function<void(const UlPacket&)>;

  explicit UlFramer(PacketHandler on_packet);
  void push(bool bit);
  void reset();
  std::size_t crc_failures() const noexcept { return crc_failures_; }
  std::size_t packets() const noexcept { return packets_; }

 private:
  PacketHandler on_packet_;
  std::size_t crc_failures_ = 0;
  std::size_t packets_ = 0;
  BitStreamFramer framer_;
};

/// Convenience: framer preconfigured for DL beacons.
class DlFramer {
 public:
  using BeaconHandler = std::function<void(const DlBeacon&)>;

  explicit DlFramer(BeaconHandler on_beacon);
  void push(bool bit);
  void reset();
  std::size_t beacons() const noexcept { return beacons_; }

 private:
  BeaconHandler on_beacon_;
  std::size_t beacons_ = 0;
  BitStreamFramer framer_;
};

}  // namespace arachnet::phy
