#include "arachnet/phy/packet.hpp"

#include "arachnet/phy/crc.hpp"
#include "arachnet/phy/pie.hpp"

namespace arachnet::phy {

const BitVector& ul_preamble() {
  static const BitVector preamble{1, 0, 1, 1, 0, 1, 0, 0};
  return preamble;
}

const BitVector& dl_preamble() {
  static const BitVector preamble{1, 1, 0, 1, 0, 0};
  return preamble;
}

BitVector UlPacket::serialize() const {
  BitVector frame = ul_preamble();
  BitVector protected_field;
  protected_field.append_uint(tid & 0x0Fu, kUlTidBits);
  protected_field.append_uint(payload & 0x0FFFu, kUlPayloadBits);
  frame.append(protected_field);
  frame.append_uint(crc8_bits(protected_field), kUlCrcBits);
  return frame;
}

std::optional<UlPacket> UlPacket::parse(const BitVector& frame) {
  if (frame.size() != static_cast<std::size_t>(kUlPacketBits)) {
    return std::nullopt;
  }
  if (frame.slice(0, kUlPreambleBits) != ul_preamble()) return std::nullopt;
  return parse_body(frame.slice(kUlPreambleBits,
                                static_cast<std::size_t>(kUlPacketBits) -
                                    kUlPreambleBits));
}

std::optional<UlPacket> UlPacket::parse_body(const BitVector& body) {
  constexpr std::size_t kBodyBits = kUlTidBits + kUlPayloadBits + kUlCrcBits;
  if (body.size() != kBodyBits) return std::nullopt;
  const auto crc =
      static_cast<std::uint8_t>(body.read_uint(kUlTidBits + kUlPayloadBits,
                                               kUlCrcBits));
  // CRC over the protected field in place — parse_body runs per decoded
  // frame inside the reader's zero-allocation steady state, so the field
  // is ranged, not sliced into a temporary.
  if (crc8_bits(body, 0, kUlTidBits + kUlPayloadBits) != crc) {
    return std::nullopt;
  }
  UlPacket pkt;
  pkt.tid = static_cast<std::uint8_t>(body.read_uint(0, kUlTidBits));
  pkt.payload =
      static_cast<std::uint16_t>(body.read_uint(kUlTidBits, kUlPayloadBits));
  return pkt;
}

std::uint8_t DlCommand::to_nibble() const noexcept {
  std::uint8_t n = 0;
  if (ack) n |= 0x8u;
  if (empty) n |= 0x4u;
  if (reset) n |= 0x2u;
  return n;  // low bit reserved
}

DlCommand DlCommand::from_nibble(std::uint8_t nibble) noexcept {
  DlCommand cmd;
  cmd.ack = (nibble & 0x8u) != 0;
  cmd.empty = (nibble & 0x4u) != 0;
  cmd.reset = (nibble & 0x2u) != 0;
  return cmd;
}

BitVector DlBeacon::serialize() const {
  BitVector frame = dl_preamble();
  frame.append_uint(cmd.to_nibble(), kDlCmdBits);
  return frame;
}

std::optional<DlBeacon> DlBeacon::parse(const BitVector& frame) {
  if (frame.size() != static_cast<std::size_t>(kDlPacketBits)) {
    return std::nullopt;
  }
  if (frame.slice(0, kDlPreambleBits) != dl_preamble()) return std::nullopt;
  DlBeacon beacon;
  beacon.cmd = DlCommand::from_nibble(
      static_cast<std::uint8_t>(frame.read_uint(kDlPreambleBits, kDlCmdBits)));
  return beacon;
}

double ul_packet_duration(double raw_bit_rate) {
  return 2.0 * kUlPacketBits / raw_bit_rate;
}

double dl_beacon_duration(const DlBeacon& beacon, double raw_bit_rate) {
  const auto chips = PieEncoder::chip_count(beacon.serialize());
  return static_cast<double>(chips) / raw_bit_rate;
}

double dl_beacon_max_duration(double raw_bit_rate) {
  return 3.0 * kDlPacketBits / raw_bit_rate;
}

}  // namespace arachnet::phy
