#include "arachnet/fleet/bus.hpp"

#include <algorithm>
#include <stdexcept>

namespace arachnet::fleet {

MessageBus::MessageBus(Params params, std::size_t publishers)
    : params_(params),
      outboxes_(publishers),
      pub_next_seq_(publishers, 0) {
  if (params_.capacity == 0) {
    throw std::invalid_argument("MessageBus: capacity must be nonzero");
  }
  if (auto* m = params_.metrics) {
    const auto n = [&](std::string_view name) {
      return telemetry::scoped_name(params_.metrics_scope, name);
    };
    c_published_ = &m->counter(n("bus.published"));
    c_delivered_ = &m->counter(n("bus.delivered"));
    c_displaced_ = &m->counter(n("bus.displaced"));
    c_expired_ = &m->counter(n("bus.expired"));
    g_depth_ = &m->gauge(n("bus.depth"));
  }
}

void MessageBus::publish(int from, BusMessage msg) {
  auto& box = outboxes_.at(static_cast<std::size_t>(from));
  msg.from = from;
  if (msg.ttl_epochs <= 0) msg.ttl_epochs = params_.default_ttl_epochs;
  box.push_back(msg);
  if (c_published_ != nullptr) c_published_->add();  // atomic: parallel-safe
}

void MessageBus::commit() {
  delivered_.clear();

  // ---- Age the backlog: a message that has waited its TTL out expires.
  std::size_t kept = 0;
  for (auto& p : pending_) {
    if (--p.ttl_left <= 0) {
      ++stats_.expired;
      if (c_expired_ != nullptr) c_expired_->add();
      continue;
    }
    pending_[kept++] = p;
  }
  pending_.resize(kept);

  // ---- Merge outboxes in deterministic order: priority descending, then
  // publisher id ascending, then publication order. The merge result is a
  // pure function of what was published, never of worker scheduling.
  std::vector<Pending> fresh;
  for (std::size_t pub = 0; pub < outboxes_.size(); ++pub) {
    for (auto& msg : outboxes_[pub]) {
      msg.pub_seq = pub_next_seq_[pub]++;
      ++stats_.published;
      fresh.push_back(Pending{msg, msg.ttl_epochs, 0});
    }
    outboxes_[pub].clear();
  }
  std::stable_sort(fresh.begin(), fresh.end(),
                   [](const Pending& x, const Pending& y) {
                     if (x.msg.priority != y.msg.priority) {
                       return x.msg.priority > y.msg.priority;
                     }
                     if (x.msg.from != y.msg.from) {
                       return x.msg.from < y.msg.from;
                     }
                     return x.msg.pub_seq < y.msg.pub_seq;
                   });
  for (auto& p : fresh) {
    p.admit_seq = admit_counter_++;
    pending_.push_back(p);
  }

  // ---- Bounded buffer: displace the lowest-priority newest entry until
  // the backlog fits (goby dynamic_buffer overflow policy).
  while (pending_.size() > params_.capacity) {
    auto victim = pending_.begin();
    for (auto it = pending_.begin() + 1; it != pending_.end(); ++it) {
      const bool lower = it->msg.priority < victim->msg.priority;
      const bool equal_newer = it->msg.priority == victim->msg.priority &&
                               it->admit_seq > victim->admit_seq;
      if (lower || equal_newer) victim = it;
    }
    ++stats_.displaced;
    if (c_displaced_ != nullptr) c_displaced_->add();
    pending_.erase(victim);
  }

  // ---- Deliver: highest priority first, admission order within a
  // priority, up to the per-commit bandwidth bound.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Pending& x, const Pending& y) {
                     if (x.msg.priority != y.msg.priority) {
                       return x.msg.priority > y.msg.priority;
                     }
                     return x.admit_seq < y.admit_seq;
                   });
  const std::size_t bandwidth = params_.max_deliveries_per_commit == 0
                                    ? pending_.size()
                                    : params_.max_deliveries_per_commit;
  const std::size_t n = std::min(bandwidth, pending_.size());
  delivered_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BusMessage msg = pending_[i].msg;
    const auto t = static_cast<std::size_t>(msg.topic);
    msg.topic_seq = topic_next_seq_[t]++;
    delivered_.push_back(msg);
  }
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<long>(n));
  stats_.delivered += n;
  stats_.depth = pending_.size();
  for (std::size_t t = 0; t < kTopicCount; ++t) {
    stats_.topic_seq[t] = topic_next_seq_[t];
  }

  if (c_delivered_ != nullptr) c_delivered_->add(n);
  if (g_depth_ != nullptr) g_depth_->set(static_cast<double>(stats_.depth));
}

}  // namespace arachnet::fleet
