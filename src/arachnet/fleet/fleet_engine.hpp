#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/core/slot_network.hpp"
#include "arachnet/dsp/pipeline.hpp"
#include "arachnet/fleet/bus.hpp"
#include "arachnet/fleet/dedup.hpp"
#include "arachnet/fleet/planner.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::fleet {

/// One packet the fleet delivered (post dedup / censoring), in the
/// deterministic merged order the coordinator produced it.
struct FleetPacket {
  std::uint64_t epoch = 0;   ///< coordinator epoch that delivered it
  std::int64_t slot = 0;     ///< transmission slot (slot mode) / tx seq
  int reader = 0;            ///< reader that reported it
  std::uint32_t tag = 0;     ///< global tag id
  std::uint32_t seq = 0;     ///< per-tag delivery sequence (monotonic)
  std::uint16_t channel = 0; ///< FDMA channel the uplink used
  bool overheard = false;    ///< reported by a non-owner (coverage overlap)

  friend bool operator==(const FleetPacket&, const FleetPacket&) = default;
};

/// Fleet-scale sharded multi-reader engine.
///
/// Each of N readers owns a shard — a core::SlotNetwork (slot mode: the
/// calibrated protocol abstraction, hundreds of tags) or a
/// reader::FdmaRxChain + waveform synthesizer (waveform mode: the real
/// per-sample DSP) — and the shards are connected by an in-process
/// MessageBus. Execution is bulk-synchronous per epoch:
///
///   1. serial pre-phase: bus.commit() delivers last epoch's traffic; the
///      coordinator applies handoffs / membership / planner updates to the
///      shards in message order;
///   2. parallel phase: every active shard advances one epoch
///      (slots_per_epoch slots, or epoch_duration_s of waveform DSP) on a
///      dsp::WorkerPool sized by `shards`, publishing decoded packets to
///      its own bus outbox (one writer per outbox: lock-free);
///   3. serial collect phase: co-channel censoring, duplicate suppression
///      (DedupWindow keyed on tag/seq/epoch), sequence assignment, packet
///      log append, overhearing synthesis, handoff decisions.
///
/// Determinism contract: shard tasks touch only their own state and draw
/// from sim::Rng streams namespaced by GLOBAL reader id (never by worker
/// or shard index), and both serial phases iterate in fixed (priority,
/// reader id, sequence) order — so the packet log, digest() and stats are
/// bit-exact for any `shards` value (1, 2, 4, 8, ...) and any worker
/// interleaving. A fleet whose readers do not overlap equals the
/// deterministic merge of per-reader single-shard engines (see
/// Params::first_reader_id), which is what ci/check_fleet_bench.py gates.
class FleetEngine {
 public:
  enum class Mode {
    kSlot,     ///< SlotNetwork shards: protocol coordination at scale
    kWaveform  ///< FdmaRxChain shards: real DSP, honest parallel scaling
  };

  struct Params {
    Mode mode = Mode::kSlot;
    /// Readers managed by this engine instance.
    std::size_t readers = 4;
    /// Global id of reader 0 (single-reader parity references carve one
    /// global reader out of a larger fleet; see the determinism note).
    int first_reader_id = 0;
    /// Global fleet size for topology/stream namespacing. 0 = derive as
    /// first_reader_id + readers.
    std::size_t total_readers = 0;
    /// Concurrent shard executors (WorkerPool width). 0 = one per reader.
    /// Any value yields the identical packet log.
    std::size_t shards = 0;
    std::uint64_t seed = 1;

    // ---- slot mode ----
    std::size_t tags_per_reader = 8;
    std::size_t slots_per_epoch = 32;
    core::SlotNetwork::Params slot{};  ///< template; seed set per shard
    /// Base link gain a ring-neighbour reader has to another reader's
    /// tags. 0 disables overlap entirely (no duplicates, no handoffs, no
    /// interference) — the parity topology.
    double neighbor_gain = 0.6;
    /// Sinusoidal drift amplitude/period (epochs) of neighbour gains; the
    /// drift is a pure function of (reader, tag, epoch), never random.
    double gain_drift_amplitude = 0.5;
    std::uint64_t gain_drift_period = 16;
    /// A neighbour with drifted gain at or above this overhears the tag's
    /// uplink (duplicate reports on the bus).
    double overhear_threshold = 0.85;
    /// Handoff hysteresis: ownership moves only when the best neighbour
    /// exceeds the owner's gain by this margin.
    double handoff_margin = 0.05;

    // ---- planner ----
    bool planner_enabled = true;
    std::size_t planner_channels = 16;

    // ---- dedup ----
    std::size_t dedup_window = 4096;

    // ---- bus ----
    MessageBus::Params bus{};

    // ---- waveform mode ----
    std::size_t channels_per_reader = 4;
    /// Must cover a full uplink packet: 32 FM0 bits at 375 bps is ~0.17 s
    /// on air, plus the synth start offset.
    double epoch_duration_s = 0.25;
    acoustic::UplinkWaveformSynth::Params synth{};
    /// Subcarrier grid for each reader's bank: origin + spacing * k.
    double subcarrier_origin_hz = 3000.0;
    double subcarrier_spacing_hz = 1500.0;

    // ---- telemetry ----
    /// Optional registry: `fleet.*` counters/histograms and the bus's
    /// `fleet.bus.*` instruments, all under `metrics_scope`.
    telemetry::MetricsRegistry* metrics = nullptr;
    std::string metrics_scope;
  };

  struct Stats {
    std::uint64_t epochs = 0;
    std::uint64_t packets = 0;         ///< delivered into the packet log
    std::uint64_t dup_suppressed = 0;  ///< duplicates the window caught
    std::uint64_t dup_passed = 0;      ///< duplicates past an evicted key
    std::uint64_t handoffs = 0;        ///< ownership moves applied
    std::uint64_t conflicts = 0;       ///< co-channel censored reports
    std::uint64_t tdma_muted = 0;      ///< uplinks muted by TDMA gating
    std::size_t active_readers = 0;
    MessageBus::Stats bus{};
    DedupWindow::Stats dedup{};
    std::vector<std::uint64_t> packets_per_reader;  ///< by local index
  };

  explicit FleetEngine(Params params);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Advances the fleet by `n` BSP epochs.
  void run_epochs(std::size_t n);

  /// Runs barrier-only epochs (no shard stepping) so traffic still in
  /// flight on the bus lands in the packet log. Call after the last
  /// run_epochs() before comparing logs/digests.
  void flush(std::size_t epochs = 2);

  /// Requests that global reader `reader_id` leave (join) the fleet; the
  /// request travels the bus as a kMembership message and is applied at
  /// the next epoch's pre-phase, where the departing reader's tags hand
  /// off to the best-covering active reader. Call between run_epochs()
  /// calls only (the request is published from the coordinator thread).
  void request_leave(int reader_id);
  void request_join(int reader_id);

  /// Everything delivered so far, in deterministic coordinator order.
  const std::vector<FleetPacket>& packet_log() const noexcept {
    return log_;
  }

  /// FNV-1a over the packet log — one number that must match across any
  /// shard count (and, merged, across single-reader references).
  std::uint64_t digest() const noexcept;

  Stats stats() const;

  /// Wall-clock milliseconds of each epoch run so far (timing only; never
  /// feeds back into simulation state).
  const std::vector<double>& epoch_wall_ms() const noexcept {
    return epoch_wall_ms_;
  }

  std::uint64_t epoch() const noexcept { return epoch_; }
  std::size_t reader_count() const noexcept { return shards_.size(); }
  std::size_t shard_width() const noexcept { return shard_width_; }
  bool reader_active(int reader_id) const;
  /// Current planner assignment of a global reader id.
  GridPlanner::Assignment assignment(int reader_id) const;
  /// Current owner (global reader id) of a global tag id.
  int tag_owner(std::uint32_t tag) const;

 private:
  struct Shard {
    int reader_id = 0;  ///< global id
    bool active = true;
    GridPlanner::Assignment assign{};
    std::uint64_t tdma_muted = 0;  ///< shard-task-owned; read at barrier
    // Slot mode.
    std::unique_ptr<core::SlotNetwork> net;
    // Waveform mode.
    std::unique_ptr<reader::FdmaRxChain> bank;
    std::unique_ptr<acoustic::UplinkWaveformSynth> synth;
    sim::Rng noise_rng{0};
    /// Reused drain buffer: the per-epoch packet drain fills this in
    /// place instead of allocating a fresh vector every epoch.
    std::vector<reader::RxPacket> drained;
  };

  /// Coordinator-side per-tag state; moves with ownership.
  struct TagState {
    int home = 0;   ///< initial (strongest-coverage) reader
    int owner = 0;  ///< current owner
    std::uint32_t next_seq = 1;
    std::int64_t last_slot = -1;  ///< newest transmission slot delivered
    core::SlotNetwork::TagSpec spec{};
  };

  void pre_phase();
  void parallel_phase();
  void collect_phase();
  void step_shard_slot(Shard& shard);
  void step_shard_waveform(Shard& shard);
  void apply_handoff(std::uint32_t tag, int to_reader);
  void recompute_plan();
  double gain(int reader_id, std::uint32_t tag, std::uint64_t epoch) const;
  bool ring_adjacent(int a, int b) const noexcept;
  bool interferes(int a, int b) const noexcept;
  Shard* find_shard(int reader_id);
  const Shard* find_shard(int reader_id) const;
  std::vector<int> active_reader_ids() const;

  Params params_;
  std::size_t total_readers_ = 0;
  std::size_t shard_width_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<dsp::WorkerPool> pool_;
  MessageBus bus_;
  GridPlanner planner_;
  DedupWindow dedup_;
  std::map<std::uint32_t, TagState> tags_;
  std::uint64_t epoch_ = 0;
  bool plan_dirty_ = true;
  /// kPacket messages delivered by this epoch's commit, in bus order.
  std::vector<BusMessage> inbox_packets_;
  std::uint64_t tdma_muted_total_ = 0;
  std::vector<FleetPacket> log_;
  std::vector<double> epoch_wall_ms_;
  // Aggregate counters (coordinator-thread only).
  std::uint64_t packets_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t dup_passed_ = 0;
  std::uint64_t handoffs_ = 0;
  std::uint64_t conflicts_ = 0;
  std::vector<std::uint64_t> packets_per_reader_;
  // Registry instruments (nullable; bound once in the constructor).
  telemetry::Counter* c_packets_ = nullptr;
  telemetry::Counter* c_dup_suppressed_ = nullptr;
  telemetry::Counter* c_dup_passed_ = nullptr;
  telemetry::Counter* c_handoffs_ = nullptr;
  telemetry::Counter* c_conflicts_ = nullptr;
  telemetry::Counter* c_tdma_muted_ = nullptr;
  telemetry::Gauge* g_active_readers_ = nullptr;
  telemetry::LatencyHistogram* h_epoch_ms_ = nullptr;
};

}  // namespace arachnet::fleet
