#include "arachnet/fleet/planner.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace arachnet::fleet {

std::vector<GridPlanner::Assignment> GridPlanner::plan(
    std::size_t readers,
    const std::vector<std::vector<int>>& interferers) const {
  // Symmetrized adjacency (callers may list an edge on one side only).
  std::vector<std::set<std::size_t>> adj(readers);
  for (std::size_t r = 0; r < readers && r < interferers.size(); ++r) {
    for (int other : interferers[r]) {
      if (other < 0 || static_cast<std::size_t>(other) >= readers) continue;
      const auto o = static_cast<std::size_t>(other);
      if (o == r) continue;
      adj[r].insert(o);
      adj[o].insert(r);
    }
  }

  // Greedy coloring in reader-id order: each reader takes the smallest
  // color no already-colored neighbour holds. Deterministic by
  // construction (no tie depends on anything but the ids).
  std::vector<std::size_t> color(readers, 0);
  std::size_t ncolors = readers == 0 ? 0 : 1;
  for (std::size_t r = 0; r < readers; ++r) {
    std::vector<bool> used(ncolors + 1, false);
    for (std::size_t o : adj[r]) {
      if (o < r && color[o] < used.size()) used[color[o]] = true;
    }
    std::size_t c = 0;
    while (c < used.size() && used[c]) ++c;
    color[r] = c;
    ncolors = std::max(ncolors, c + 1);
  }

  // Map colors onto the grid. Enough channel blocks: disjoint frequency
  // blocks, everyone transmits every epoch. Too many colors: one channel
  // per color slot and TDMA strides absorb the surplus.
  std::vector<Assignment> out(readers);
  if (readers == 0) return out;
  if (ncolors <= params_.channels_total) {
    const std::size_t block =
        std::max<std::size_t>(1, params_.channels_total / ncolors);
    for (std::size_t r = 0; r < readers; ++r) {
      out[r].chan_begin = color[r] * block;
      out[r].chan_count = block;
      out[r].tdma_phase = 0;
      out[r].tdma_stride = 1;
    }
  } else {
    const std::size_t stride =
        (ncolors + params_.channels_total - 1) / params_.channels_total;
    for (std::size_t r = 0; r < readers; ++r) {
      out[r].chan_begin = color[r] % params_.channels_total;
      out[r].chan_count = 1;
      out[r].tdma_phase = color[r] / params_.channels_total;
      out[r].tdma_stride = stride;
    }
  }
  return out;
}

std::size_t GridPlanner::color_count(const std::vector<Assignment>& plan) {
  std::set<std::pair<std::size_t, std::uint64_t>> distinct;
  for (const auto& a : plan) distinct.insert({a.chan_begin, a.tdma_phase});
  return distinct.size();
}

}  // namespace arachnet::fleet
