#include "arachnet/fleet/fleet_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/telemetry/log.hpp"

namespace arachnet::fleet {

namespace {

constexpr std::uint64_t kStreamsPerReader = 4;  ///< split-id namespacing
constexpr std::uint64_t kStreamSlotNet = 0;
constexpr std::uint64_t kStreamNoise = 1;

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

FleetEngine::FleetEngine(Params params)
    : params_(std::move(params)),
      total_readers_(params_.total_readers != 0
                         ? params_.total_readers
                         : static_cast<std::size_t>(params_.first_reader_id) +
                               params_.readers),
      shard_width_(std::min(
          params_.shards == 0 ? params_.readers : params_.shards,
          params_.readers == 0 ? std::size_t{1} : params_.readers)),
      bus_([&] {
        MessageBus::Params bp = params_.bus;
        if (bp.metrics == nullptr) bp.metrics = params_.metrics;
        if (bp.metrics_scope.empty()) {
          bp.metrics_scope = params_.metrics_scope + "fleet.";
        }
        return bp;
      }(), total_readers_),
      planner_(GridPlanner::Params{params_.planner_channels}),
      dedup_(params_.dedup_window) {
  if (params_.readers == 0) {
    throw std::invalid_argument("FleetEngine: readers must be nonzero");
  }
  if (static_cast<std::size_t>(params_.first_reader_id) + params_.readers >
      total_readers_) {
    throw std::invalid_argument(
        "FleetEngine: first_reader_id + readers exceeds total_readers");
  }

  const sim::Rng master{params_.seed};
  shards_.reserve(params_.readers);
  packets_per_reader_.assign(params_.readers, 0);
  for (std::size_t i = 0; i < params_.readers; ++i) {
    const int gid = params_.first_reader_id + static_cast<int>(i);
    auto shard = std::make_unique<Shard>();
    shard->reader_id = gid;
    // Stream namespacing by GLOBAL reader id: a reader draws the same
    // random sequence whether it runs in a 1-reader reference engine or
    // an N-reader fleet, at any shard width.
    const auto stream = [&](std::uint64_t which) {
      return master.split(static_cast<std::uint64_t>(gid) *
                              kStreamsPerReader +
                          which);
    };
    if (params_.mode == Mode::kSlot) {
      core::SlotNetwork::Params sp = params_.slot;
      sp.seed = stream(kStreamSlotNet).next_u64();
      const int period = static_cast<int>(
          next_pow2(std::max<std::size_t>(4, 2 * params_.tags_per_reader)));
      std::vector<core::SlotNetwork::TagSpec> specs;
      specs.reserve(params_.tags_per_reader);
      for (std::size_t j = 0; j < params_.tags_per_reader; ++j) {
        const auto tag = static_cast<std::uint32_t>(
            static_cast<std::size_t>(gid) * params_.tags_per_reader + j);
        core::SlotNetwork::TagSpec spec;
        spec.tid = static_cast<int>(tag);
        spec.period = period;
        specs.push_back(spec);
        tags_.emplace(tag, TagState{gid, gid, 1, -1, spec});
      }
      shard->net =
          std::make_unique<core::SlotNetwork>(sp, std::move(specs));
    } else {
      reader::FdmaRxChain::Params fp;
      fp.ddc.decimation = 8;
      fp.workers = 1;  // fleet parallelism is across shards, not within
      for (std::size_t k = 0; k < params_.channels_per_reader; ++k) {
        fp.channels.push_back({params_.subcarrier_origin_hz +
                               params_.subcarrier_spacing_hz *
                                   static_cast<double>(k)});
      }
      shard->bank = std::make_unique<reader::FdmaRxChain>(fp);
      shard->synth =
          std::make_unique<acoustic::UplinkWaveformSynth>(params_.synth);
      shard->noise_rng = stream(kStreamNoise);
      for (std::size_t k = 0; k < params_.channels_per_reader; ++k) {
        const auto tag = static_cast<std::uint32_t>(
            static_cast<std::size_t>(gid) * params_.channels_per_reader + k);
        tags_.emplace(tag, TagState{gid, gid, 1, -1, {}});
      }
    }
    shards_.push_back(std::move(shard));
  }
  pool_ = std::make_unique<dsp::WorkerPool>(shard_width_ - 1);

  if (auto* m = params_.metrics) {
    const auto n = [&](std::string_view name) {
      return telemetry::scoped_name(params_.metrics_scope, name);
    };
    c_packets_ = &m->counter(n("fleet.packets"));
    c_dup_suppressed_ = &m->counter(n("fleet.dup_suppressed"));
    c_dup_passed_ = &m->counter(n("fleet.dup_passed"));
    c_handoffs_ = &m->counter(n("fleet.handoffs"));
    c_conflicts_ = &m->counter(n("fleet.conflicts"));
    c_tdma_muted_ = &m->counter(n("fleet.tdma_muted"));
    g_active_readers_ = &m->gauge(n("fleet.active_readers"));
    h_epoch_ms_ = &m->histogram(n("fleet.epoch_ms"), 0.0, 1000.0, 128);
    g_active_readers_->set(static_cast<double>(params_.readers));
  }
  ARACHNET_LOG_INFO("fleet", "fleet engine up",
                    {"mode", params_.mode == Mode::kSlot ? "slot"
                                                         : "waveform"},
                    {"readers", params_.readers},
                    {"shards", shard_width_},
                    {"total_readers", total_readers_});
}

FleetEngine::~FleetEngine() = default;

bool FleetEngine::ring_adjacent(int a, int b) const noexcept {
  if (a == b || total_readers_ < 2) return false;
  const auto n = static_cast<int>(total_readers_);
  const int d = std::abs(a - b);
  return d == 1 || d == n - 1;
}

bool FleetEngine::interferes(int a, int b) const noexcept {
  return params_.neighbor_gain > 0.0 && ring_adjacent(a, b);
}

double FleetEngine::gain(int reader_id, std::uint32_t tag,
                         std::uint64_t epoch) const {
  const auto it = tags_.find(tag);
  if (it == tags_.end()) return 0.0;
  const int home = it->second.home;
  if (reader_id == home) return 1.0;
  if (params_.neighbor_gain <= 0.0 || !ring_adjacent(reader_id, home)) {
    return 0.0;
  }
  // Deterministic structural drift: a pure function of (reader, tag,
  // epoch). No rng — every coordinator computes the identical value.
  const std::uint64_t period =
      std::max<std::uint64_t>(1, params_.gain_drift_period);
  const double phase =
      2.0 * 3.14159265358979323846 *
          (static_cast<double>(epoch % period) /
           static_cast<double>(period)) +
      0.9 * static_cast<double>(tag) + 1.7 * static_cast<double>(reader_id);
  return params_.neighbor_gain +
         params_.gain_drift_amplitude * std::sin(phase);
}

FleetEngine::Shard* FleetEngine::find_shard(int reader_id) {
  const int i = reader_id - params_.first_reader_id;
  if (i < 0 || static_cast<std::size_t>(i) >= shards_.size()) return nullptr;
  return shards_[static_cast<std::size_t>(i)].get();
}

const FleetEngine::Shard* FleetEngine::find_shard(int reader_id) const {
  const int i = reader_id - params_.first_reader_id;
  if (i < 0 || static_cast<std::size_t>(i) >= shards_.size()) return nullptr;
  return shards_[static_cast<std::size_t>(i)].get();
}

std::vector<int> FleetEngine::active_reader_ids() const {
  std::vector<int> out;
  for (const auto& s : shards_) {
    if (s->active) out.push_back(s->reader_id);
  }
  return out;
}

bool FleetEngine::reader_active(int reader_id) const {
  const auto* s = find_shard(reader_id);
  return s != nullptr && s->active;
}

GridPlanner::Assignment FleetEngine::assignment(int reader_id) const {
  const auto* s = find_shard(reader_id);
  return s != nullptr ? s->assign : GridPlanner::Assignment{};
}

int FleetEngine::tag_owner(std::uint32_t tag) const {
  const auto it = tags_.find(tag);
  return it != tags_.end() ? it->second.owner : -1;
}

void FleetEngine::request_leave(int reader_id) {
  BusMessage m;
  m.topic = Topic::kMembership;
  m.priority = 10;
  m.a = static_cast<std::uint64_t>(reader_id);
  m.b = 0;  // leave
  bus_.publish(reader_id, m);
}

void FleetEngine::request_join(int reader_id) {
  BusMessage m;
  m.topic = Topic::kMembership;
  m.priority = 10;
  m.a = static_cast<std::uint64_t>(reader_id);
  m.b = 1;  // join
  bus_.publish(reader_id, m);
}

void FleetEngine::apply_handoff(std::uint32_t tag, int to_reader) {
  auto it = tags_.find(tag);
  if (it == tags_.end()) return;
  TagState& st = it->second;
  if (st.owner == to_reader) return;
  Shard* dst = find_shard(to_reader);
  if (dst == nullptr || !dst->active) return;
  if (params_.mode == Mode::kSlot) {
    if (Shard* src = find_shard(st.owner);
        src != nullptr && src->net != nullptr) {
      src->net->remove_tag(static_cast<int>(tag));
    }
    if (dst->net != nullptr && !dst->net->has_tag(static_cast<int>(tag))) {
      dst->net->add_tag(st.spec);
    }
  }
  st.owner = to_reader;
  ++handoffs_;
  if (c_handoffs_ != nullptr) c_handoffs_->add();
}

void FleetEngine::recompute_plan() {
  std::vector<std::vector<int>> graph(total_readers_);
  const auto active = active_reader_ids();
  for (int a : active) {
    for (int b : active) {
      if (a < b && interferes(a, b)) {
        graph[static_cast<std::size_t>(a)].push_back(b);
      }
    }
  }
  const auto plan = params_.planner_enabled
                        ? planner_.plan(total_readers_, graph)
                        : std::vector<GridPlanner::Assignment>(
                              total_readers_, GridPlanner::Assignment{
                                                  0, params_.planner_channels,
                                                  0, 1});
  for (auto& s : shards_) {
    s->assign = plan[static_cast<std::size_t>(s->reader_id)];
  }
  // Announce the new plan on the bus (coordination record; the
  // assignments above are already applied).
  BusMessage m;
  m.topic = Topic::kPlan;
  m.priority = 8;
  m.a = epoch_;
  m.b = GridPlanner::color_count(plan);
  m.c = active.size();
  bus_.publish(active.empty() ? params_.first_reader_id : active.front(), m);
}

void FleetEngine::pre_phase() {
  bus_.commit();
  inbox_packets_.clear();
  bool membership_changed = false;
  for (const BusMessage& msg : bus_.drain()) {
    switch (msg.topic) {
      case Topic::kMembership: {
        Shard* s = find_shard(static_cast<int>(msg.a));
        if (s == nullptr) break;
        const bool join = msg.b != 0;
        if (join && !s->active) {
          s->active = true;
          membership_changed = true;
        } else if (!join && s->active) {
          s->active = false;
          membership_changed = true;
          // Hand the departing reader's tags to the best-covering active
          // reader (ties: lowest id; no coverage at all: lowest active id).
          for (auto& [tag, st] : tags_) {
            if (st.owner != s->reader_id) continue;
            int best = -1;
            double best_gain = -1.0;
            for (int x : active_reader_ids()) {
              const double g = gain(x, tag, epoch_);
              if (g > best_gain + 1e-12) {
                best_gain = g;
                best = x;
              }
            }
            if (best < 0) {
              const auto act = active_reader_ids();
              if (act.empty()) break;  // whole fleet gone; tags orphan
              best = act.front();
            }
            apply_handoff(tag, best);
          }
          // Drop whatever is still in the leaver's network (tags that
          // could not be handed anywhere).
          if (params_.mode == Mode::kSlot && s->net != nullptr) {
            for (auto& [tag, st] : tags_) {
              if (st.owner == s->reader_id &&
                  s->net->has_tag(static_cast<int>(tag))) {
                s->net->remove_tag(static_cast<int>(tag));
              }
            }
          }
        }
        break;
      }
      case Topic::kHandoff: {
        auto it = tags_.find(static_cast<std::uint32_t>(msg.a));
        // Stale guard: only the current owner may transfer, and the
        // target must still be active (apply_handoff re-checks).
        if (it != tags_.end() && it->second.owner == msg.from) {
          apply_handoff(static_cast<std::uint32_t>(msg.a),
                        static_cast<int>(msg.b));
        }
        break;
      }
      case Topic::kPacket:
        inbox_packets_.push_back(msg);
        break;
      case Topic::kPlan:
        break;  // informational record; assignments applied at publish
    }
  }
  if (membership_changed || plan_dirty_) {
    recompute_plan();
    plan_dirty_ = false;
  }
  if (g_active_readers_ != nullptr) {
    g_active_readers_->set(static_cast<double>(active_reader_ids().size()));
  }
}

void FleetEngine::step_shard_slot(Shard& shard) {
  // Inactive shards still step their (emptied) networks so every
  // network's slot counter stays in lockstep — the co-channel censor
  // compares transmissions by global slot number.
  const bool tx = shard.active && shard.assign.active_in_epoch(epoch_);
  const auto channel = static_cast<std::uint64_t>(shard.assign.chan_begin);
  for (std::size_t i = 0; i < params_.slots_per_epoch; ++i) {
    const auto rec = shard.net->step();
    if (!rec.decoded_tid || !shard.active) continue;
    if (!tx) {
      ++shard.tdma_muted;
      continue;
    }
    BusMessage m;
    m.topic = Topic::kPacket;
    m.priority = 1;
    m.a = static_cast<std::uint64_t>(*rec.decoded_tid);
    m.b = static_cast<std::uint64_t>(rec.slot);
    m.c = channel;
    bus_.publish(shard.reader_id, m);
  }
}

void FleetEngine::step_shard_waveform(Shard& shard) {
  if (!shard.active) return;
  const std::size_t channels = params_.channels_per_reader;
  std::vector<acoustic::BackscatterSource> srcs;
  srcs.reserve(channels);
  for (std::size_t k = 0; k < channels; ++k) {
    // 12-bit payload doubles as the tag-side transmission sequence:
    // 8 bits of epoch, 4 of channel.
    const auto txseq = static_cast<std::uint16_t>(((epoch_ & 0xFF) << 4) |
                                                  (k & 0xF));
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                            .payload = txseq};
    const double fsc = params_.subcarrier_origin_hz +
                       params_.subcarrier_spacing_hz * static_cast<double>(k);
    phy::SubcarrierModulator mod{{phy::kDefaultUlRawBitRate, fsc}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.02;
    s.amplitude = 0.12 + 0.01 * static_cast<double>(k % 5);
    s.phase_rad = 0.5 + 0.4 * static_cast<double>(k) +
                  0.3 * static_cast<double>(shard.reader_id);
    srcs.push_back(std::move(s));
  }
  const auto wave = shard.synth->synthesize(srcs, params_.epoch_duration_s,
                                            shard.noise_rng);
  shard.bank->process(wave);
  const auto base = static_cast<std::uint64_t>(shard.reader_id) * channels;
  shard.bank->drain_packets(shard.drained);
  for (const auto& p : shard.drained) {
    if (p.packet.tid == 0 || p.packet.tid > channels) continue;
    BusMessage m;
    m.topic = Topic::kPacket;
    m.priority = 1;
    m.a = base + (p.packet.tid - 1);
    m.b = p.packet.payload;
    m.c = static_cast<std::uint64_t>(shard.assign.chan_begin + p.channel);
    bus_.publish(shard.reader_id, m);
  }
}

void FleetEngine::parallel_phase() {
  // One task per shard; the pool bounds concurrency at shard_width_.
  // Shard tasks touch only their own shard (and their own bus outbox), so
  // any interleaving produces the same published multiset — and commit()
  // orders it deterministically.
  auto& shards = shards_;
  pool_->run(shards.size(), [&](std::size_t i) {
    Shard& s = *shards[i];
    if (params_.mode == Mode::kSlot) {
      step_shard_slot(s);
    } else {
      step_shard_waveform(s);
    }
  });
}

void FleetEngine::collect_phase() {
  // ---- 1. Co-channel censor: two interfering readers reporting on the
  // same (transmission, channel) collided on the air — both reports are
  // lost. The planner's whole job is to make this set empty.
  std::vector<bool> dropped(inbox_packets_.size(), false);
  for (std::size_t i = 0; i < inbox_packets_.size(); ++i) {
    for (std::size_t j = i + 1; j < inbox_packets_.size(); ++j) {
      const auto& x = inbox_packets_[i];
      const auto& y = inbox_packets_[j];
      if (x.b == y.b && x.c == y.c && x.from != y.from &&
          interferes(x.from, y.from)) {
        dropped[i] = dropped[j] = true;
      }
    }
  }
  std::vector<const BusMessage*> admitted_fresh;
  for (std::size_t i = 0; i < inbox_packets_.size(); ++i) {
    const BusMessage& msg = inbox_packets_[i];
    if (dropped[i]) {
      ++conflicts_;
      if (c_conflicts_ != nullptr) c_conflicts_->add();
      continue;
    }
    auto it = tags_.find(static_cast<std::uint32_t>(msg.a));
    if (it == tags_.end()) continue;
    TagState& st = it->second;

    // ---- 2. Duplicate suppression keyed on (tag, tx seq, slot epoch).
    const auto tag = static_cast<std::uint32_t>(msg.a);
    const auto txseq = static_cast<std::uint32_t>(msg.b);
    const std::uint64_t tx_epoch =
        params_.mode == Mode::kSlot
            ? msg.b / std::max<std::size_t>(1, params_.slots_per_epoch)
            : epoch_;
    if (!dedup_.admit(tag, txseq, tx_epoch)) {
      ++dup_suppressed_;
      if (c_dup_suppressed_ != nullptr) c_dup_suppressed_->add();
      continue;
    }
    const auto slot = static_cast<std::int64_t>(msg.b);
    if (params_.mode == Mode::kSlot && slot <= st.last_slot) {
      // The window evicted this transmission's key before the echo
      // arrived: a duplicate leaked through. Deliver it flagged, with
      // seq 0 — downstream consumers treat seq 0 as "replay, unordered".
      ++dup_passed_;
      if (c_dup_passed_ != nullptr) c_dup_passed_->add();
      log_.push_back(FleetPacket{epoch_, slot, msg.from, tag, 0,
                                 static_cast<std::uint16_t>(msg.c), true});
      continue;
    }
    const std::uint32_t seq = st.next_seq++;
    st.last_slot = slot;
    const bool overheard = msg.from != st.owner;
    log_.push_back(FleetPacket{epoch_, slot, msg.from, tag, seq,
                               static_cast<std::uint16_t>(msg.c), overheard});
    ++packets_;
    if (c_packets_ != nullptr) c_packets_->add();
    const int local = msg.from - params_.first_reader_id;
    if (local >= 0 &&
        static_cast<std::size_t>(local) < packets_per_reader_.size()) {
      ++packets_per_reader_[static_cast<std::size_t>(local)];
    }
    admitted_fresh.push_back(&msg);
  }

  // ---- 3. Overhearing synthesis (slot mode): every active neighbour
  // whose drifted gain clears the threshold also heard the uplink and
  // reports it — duplicate traffic the window must suppress next epoch.
  if (params_.mode == Mode::kSlot && params_.neighbor_gain > 0.0) {
    for (const BusMessage* primary : admitted_fresh) {
      for (int x : active_reader_ids()) {
        if (x == primary->from) continue;
        if (gain(x, static_cast<std::uint32_t>(primary->a), epoch_) <
            params_.overhear_threshold) {
          continue;
        }
        BusMessage dup = *primary;
        dup.priority = 0;  // echoes yield to fresh reports
        bus_.publish(x, dup);
      }
    }
  }

  // ---- 4. Handoff decisions: ownership follows the structural link
  // gains, with hysteresis. The transfer itself travels the bus and is
  // applied at the next epoch's pre-phase (so one epoch is always decoded
  // under the old ownership — the in-flight window the tests cover).
  if (params_.mode == Mode::kSlot && params_.neighbor_gain > 0.0) {
    const auto active = active_reader_ids();
    for (auto& [tag, st] : tags_) {
      Shard* owner_shard = find_shard(st.owner);
      if (owner_shard == nullptr || !owner_shard->active) continue;
      int best = st.owner;
      double best_gain = gain(st.owner, tag, epoch_);
      const double owner_gain = best_gain;
      for (int x : active) {
        const double g = gain(x, tag, epoch_);
        if (g > best_gain + 1e-12) {
          best_gain = g;
          best = x;
        }
      }
      if (best != st.owner &&
          best_gain > owner_gain + params_.handoff_margin) {
        BusMessage m;
        m.topic = Topic::kHandoff;
        m.priority = 5;
        m.a = tag;
        m.b = static_cast<std::uint64_t>(best);
        m.c = epoch_;
        bus_.publish(st.owner, m);
      }
    }
  }

  // ---- 5. Fold shard-local counters and close the epoch.
  std::uint64_t muted = 0;
  for (auto& s : shards_) {
    muted += s->tdma_muted;
  }
  if (c_tdma_muted_ != nullptr && muted > tdma_muted_total_) {
    c_tdma_muted_->add(muted - tdma_muted_total_);
  }
  tdma_muted_total_ = muted;
  ++epoch_;
}

void FleetEngine::run_epochs(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    pre_phase();
    parallel_phase();
    collect_phase();
    const double ms = wall_ms_since(t0);
    epoch_wall_ms_.push_back(ms);
    if (h_epoch_ms_ != nullptr) h_epoch_ms_->record(ms);
  }
}

void FleetEngine::flush(std::size_t epochs) {
  for (std::size_t i = 0; i < epochs; ++i) {
    pre_phase();
    collect_phase();
  }
}

std::uint64_t FleetEngine::digest() const noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& p : log_) {
    mix(p.epoch);
    mix(static_cast<std::uint64_t>(p.slot));
    mix(static_cast<std::uint64_t>(p.reader));
    mix(p.tag);
    mix(p.seq);
    mix(p.channel);
    mix(p.overheard ? 1 : 0);
  }
  return h;
}

FleetEngine::Stats FleetEngine::stats() const {
  Stats s;
  s.epochs = epoch_;
  s.packets = packets_;
  s.dup_suppressed = dup_suppressed_;
  s.dup_passed = dup_passed_;
  s.handoffs = handoffs_;
  s.conflicts = conflicts_;
  s.tdma_muted = tdma_muted_total_;
  s.active_readers = active_reader_ids().size();
  s.bus = bus_.stats();
  s.dedup = dedup_.stats();
  s.packets_per_reader = packets_per_reader_;
  return s;
}

}  // namespace arachnet::fleet
