#pragma once

#include <cstdint>
#include <vector>

namespace arachnet::fleet {

/// Global slot/frequency planner: partitions the FDMA subcarrier grid and
/// TDMA epochs across readers so co-channel readers never interfere.
///
/// Input is the reader interference graph (an edge means two readers'
/// coverage overlaps enough that simultaneous same-channel uplinks
/// collide). The planner greedily colors the graph in reader-id order —
/// deterministic, and within one color of optimal on the ring/strip
/// topologies a vehicle line actually has — then maps colors onto the
/// available channel blocks. When there are more colors than blocks the
/// surplus is time-sliced: every reader gets a TDMA (phase, stride) and
/// transmits only in epochs where `epoch % stride == phase`.
class GridPlanner {
 public:
  struct Params {
    /// Total FDMA channels in the grid available to the fleet.
    std::size_t channels_total = 16;
  };

  /// One reader's share of the grid.
  struct Assignment {
    std::size_t chan_begin = 0;  ///< first channel of the reader's block
    std::size_t chan_count = 0;  ///< channels in the block
    std::uint64_t tdma_phase = 0;
    std::uint64_t tdma_stride = 1;  ///< 1 = every epoch

    bool active_in_epoch(std::uint64_t epoch) const noexcept {
      return epoch % tdma_stride == tdma_phase;
    }
    friend bool operator==(const Assignment&, const Assignment&) = default;
  };

  explicit GridPlanner(Params params) : params_(params) {}

  /// Computes assignments for `readers` readers given the interference
  /// adjacency (interferers[r] lists reader ids whose coverage overlaps
  /// r's; the relation is treated as symmetric). Pure function of its
  /// inputs — every caller computes the identical plan.
  std::vector<Assignment> plan(
      std::size_t readers,
      const std::vector<std::vector<int>>& interferers) const;

  /// Colors used by the last plan() (diagnostic; recomputed per call).
  static std::size_t color_count(const std::vector<Assignment>& plan);

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace arachnet::fleet
