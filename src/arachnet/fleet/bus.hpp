#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::fleet {

/// Bus topics. Kept small and fixed: the fleet's coordination traffic is
/// packets, tag handoffs, planner updates and membership changes.
enum class Topic : std::uint8_t {
  kPacket = 0,     ///< decoded-packet announcements (dedup input)
  kHandoff = 1,    ///< tag ownership transfers
  kPlan = 2,       ///< slot/frequency planner assignments
  kMembership = 3  ///< reader join/leave
};
inline constexpr std::size_t kTopicCount = 4;

/// One inter-reader message. Payload is three opaque words interpreted per
/// topic (tag id / sequence / epoch / channel ...) — the bus itself only
/// routes, orders and bounds.
struct BusMessage {
  Topic topic = Topic::kPacket;
  int from = 0;      ///< publishing reader id
  int to = -1;       ///< destination reader id, -1 = broadcast
  int priority = 0;  ///< higher wins under contention (goby buffer idiom)
  /// Remaining lifetime in commit epochs; a message still undelivered
  /// after this many commits is dropped (stale coordination is worse
  /// than none). 0 = use the bus default.
  int ttl_epochs = 0;
  std::uint64_t a = 0, b = 0, c = 0;  ///< topic-specific payload words
  // ---- assigned by the bus at commit ----
  std::uint64_t pub_seq = 0;    ///< per-publisher publication sequence
  std::uint64_t topic_seq = 0;  ///< per-topic delivery sequence
};

/// In-process inter-reader message bus with bounded, priority+TTL queueing
/// (the goby3 dynamic_buffer idiom: a full buffer displaces the
/// lowest-priority newest entry; stale entries expire by TTL) and
/// per-topic delivery sequence numbers.
///
/// Concurrency model mirrors the fleet's BSP epochs:
///  - publish(from, ...) may run concurrently across DIFFERENT publishers
///    (each publisher owns a pre-sized outbox and is the only writer), so
///    shard tasks post from the parallel phase without locks;
///  - commit(epoch) and drain() run on the serial coordinator only.
///
/// commit() merges every outbox in a deterministic order — priority
/// descending, then publisher id ascending, then per-publisher publication
/// sequence — independent of which worker ran which shard when. Delivery
/// bandwidth is bounded by `max_deliveries_per_commit` (an acoustic
/// side-channel does not have infinite capacity); the backlog is bounded
/// by `capacity` with lowest-priority-newest displacement.
class MessageBus {
 public:
  struct Params {
    std::size_t capacity = 256;  ///< max undelivered messages buffered
    /// Messages handed out per commit (bus bandwidth). 0 = unlimited.
    std::size_t max_deliveries_per_commit = 0;
    int default_ttl_epochs = 4;  ///< applied when BusMessage::ttl_epochs==0
    /// Optional registry for `bus.*` counters/gauges; prefix with
    /// `metrics_scope` (see telemetry::scoped_name).
    telemetry::MetricsRegistry* metrics = nullptr;
    std::string metrics_scope;
  };

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t delivered = 0;
    std::uint64_t displaced = 0;  ///< dropped by capacity displacement
    std::uint64_t expired = 0;    ///< dropped by TTL
    std::size_t depth = 0;        ///< undelivered backlog after last commit
    std::uint64_t topic_seq[kTopicCount] = {0, 0, 0, 0};
  };

  MessageBus(Params params, std::size_t publishers);

  /// Posts a message from publisher `from`. Parallel-phase safe under the
  /// one-writer-per-outbox contract; ordering within a publisher is its
  /// call order (stamped as pub_seq at commit).
  void publish(int from, BusMessage msg);

  /// Serial barrier step: merges all outboxes deterministically into the
  /// bounded pending queue, expires TTLs, applies displacement, assigns
  /// per-topic sequence numbers to the messages scheduled for delivery
  /// this epoch, and stages them for drain().
  void commit();

  /// Messages delivered by the last commit(), in delivery order. Valid
  /// until the next commit().
  const std::vector<BusMessage>& drain() const noexcept { return delivered_; }

  Stats stats() const noexcept { return stats_; }
  std::size_t publisher_count() const noexcept { return outboxes_.size(); }
  const Params& params() const noexcept { return params_; }

 private:
  struct Pending {
    BusMessage msg;
    int ttl_left = 0;
    std::uint64_t admit_seq = 0;  ///< admission order (displacement key)
  };

  Params params_;
  std::vector<std::vector<BusMessage>> outboxes_;  ///< one per publisher
  std::vector<std::uint64_t> pub_next_seq_;
  std::vector<Pending> pending_;  ///< undelivered backlog, kept sorted
  std::vector<BusMessage> delivered_;
  std::uint64_t admit_counter_ = 0;
  std::uint64_t topic_next_seq_[kTopicCount] = {0, 0, 0, 0};
  Stats stats_;
  // Registry instruments (nullable; bound once in the constructor).
  telemetry::Counter* c_published_ = nullptr;
  telemetry::Counter* c_delivered_ = nullptr;
  telemetry::Counter* c_displaced_ = nullptr;
  telemetry::Counter* c_expired_ = nullptr;
  telemetry::Gauge* g_depth_ = nullptr;
};

}  // namespace arachnet::fleet
