#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

namespace arachnet::fleet {

/// Bounded duplicate-packet suppressor keyed on (tag id, tag sequence,
/// slot epoch). Overlapping reader coverage means one uplink transmission
/// can be decoded by several readers; the coordinator admits the first
/// report of a key and suppresses the echoes. The window is bounded (FIFO
/// eviction) so a long-running fleet holds memory constant — at the cost
/// that a duplicate arriving after its key was evicted passes through,
/// which callers can observe via Stats::passed_after_eviction.
class DedupWindow {
 public:
  explicit DedupWindow(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Stats {
    std::uint64_t admitted = 0;    ///< fresh keys inserted
    std::uint64_t suppressed = 0;  ///< duplicates caught in the window
    std::uint64_t evicted = 0;     ///< keys aged out by capacity
  };

  /// Returns true (and remembers the key) when (tag, seq, epoch) has not
  /// been seen within the window; false for a duplicate.
  bool admit(std::uint32_t tag, std::uint32_t seq, std::uint64_t epoch) {
    const std::uint64_t key = make_key(tag, seq, epoch);
    if (seen_.count(key) != 0) {
      ++stats_.suppressed;
      return false;
    }
    if (order_.size() >= capacity_) {
      seen_.erase(order_.front());
      order_.pop_front();
      ++stats_.evicted;
    }
    seen_.insert(key);
    order_.push_back(key);
    ++stats_.admitted;
    return true;
  }

  Stats stats() const noexcept { return stats_; }
  std::size_t size() const noexcept { return order_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// 20 bits of tag, 24 of sequence, 20 of epoch — wraparound at those
  /// widths is far beyond any bounded window's lifetime.
  static std::uint64_t make_key(std::uint32_t tag, std::uint32_t seq,
                                std::uint64_t epoch) noexcept {
    return (static_cast<std::uint64_t>(tag & 0xFFFFF) << 44) |
           (static_cast<std::uint64_t>(seq & 0xFFFFFF) << 20) |
           (epoch & 0xFFFFF);
  }

  std::size_t capacity_;
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> order_;  ///< insertion order (FIFO eviction)
  Stats stats_;
};

}  // namespace arachnet::fleet
