#pragma once

#include <cstddef>
#include <vector>

namespace arachnet::sim {

/// Streaming summary statistics (Welford). Numerically stable for long runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set using linear interpolation between closest
/// ranks. `q` in [0,1]. The input is copied and sorted; for repeated queries
/// on one data set prefer Percentiles below.
double percentile(std::vector<double> samples, double q);

/// Sorted-sample percentile helper for CDF-style reporting.
class Percentiles {
 public:
  explicit Percentiles(std::vector<double> samples);
  double at(double q) const;  ///< q in [0,1]
  double median() const { return at(0.5); }
  std::size_t count() const noexcept { return sorted_.size(); }
  /// Empirical CDF value at x: fraction of samples <= x.
  double cdf(double x) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-bin histogram for simple terminal output in the benches.
///
/// Samples outside [lo, hi) are counted as underflow/overflow rather than
/// clamped into the edge bins: clamping silently corrupted the tail bins
/// in long-run benches, hiding exactly the outliers a histogram is meant
/// to expose.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  /// All samples seen, including out-of-range ones.
  std::size_t total() const noexcept { return total_; }
  /// Samples below lo / at-or-above hi, kept out of the edge bins.
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t in_range() const noexcept {
    return total_ - underflow_ - overflow_;
  }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace arachnet::sim
