#pragma once

#include <cstddef>
#include <vector>

namespace arachnet::sim {

/// Dense row-major matrix just large enough for the Appendix-C Markov
/// analysis (hundreds of states).
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting. A must be
/// square and nonsingular; throws std::runtime_error otherwise.
std::vector<double> solve(Matrix a, std::vector<double> b);

}  // namespace arachnet::sim
