#include "arachnet/sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace arachnet::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() noexcept { return Rng{next_u64()}; }

}  // namespace arachnet::sim
