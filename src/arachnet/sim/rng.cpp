#include "arachnet/sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace arachnet::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() noexcept { return Rng{next_u64()}; }

namespace {

/// Shared core of jump()/long_jump(): advances `state` by the polynomial
/// encoded in `poly` (the canonical xoshiro256 jump tables).
template <std::size_t N>
void apply_jump(std::uint64_t (&state)[4], const std::uint64_t (&poly)[N],
                Rng& rng) noexcept {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : poly) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= state[0];
        s1 ^= state[1];
        s2 ^= state[2];
        s3 ^= state[3];
      }
      rng.next_u64();
    }
  }
  state[0] = s0;
  state[1] = s1;
  state[2] = s2;
  state[3] = s3;
}

}  // namespace

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[4] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  apply_jump(state_, kJump, *this);
  has_cached_normal_ = false;
}

void Rng::long_jump() noexcept {
  static constexpr std::uint64_t kLongJump[4] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  apply_jump(state_, kLongJump, *this);
  has_cached_normal_ = false;
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  // Child seed = splitmix64 hash chain over (stream_id, state words). Pure
  // function of the inputs, so the same (master state, id) pair always
  // yields the same child, and the parent state is untouched. splitmix64's
  // avalanche keeps adjacent stream ids statistically independent; the Rng
  // constructor then expands the 64-bit digest into well-mixed state.
  std::uint64_t s = stream_id ^ 0x6a09e667f3bcc909ULL;
  std::uint64_t h = splitmix64(s);
  for (const std::uint64_t word : state_) {
    s ^= word;
    h ^= splitmix64(s);
  }
  return Rng{h};
}

}  // namespace arachnet::sim
