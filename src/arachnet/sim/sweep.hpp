#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "arachnet/dsp/pipeline.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace arachnet::sim {

/// Grid coordinates of one trial in a sweep. Trials are numbered
/// config-major: `index == config * seeds_per_config + seed`, and `index`
/// is both the reduction position (results always come back in grid
/// order) and the default RNG stream id (`rng_stream`), so a trial's
/// random stream is a pure function of the engine's master seed and its
/// grid cell — never of which worker ran it or when.
struct TrialSpec {
  std::size_t index = 0;         ///< flat grid index; reduction order
  std::size_t config = 0;        ///< row (configuration axis)
  std::size_t seed = 0;          ///< column (seed/repetition axis)
  std::uint64_t rng_stream = 0;  ///< stream id fed to Rng::split
};

/// Per-worker scratch that persists across the trials one worker slot
/// executes: a monotonic byte arena (rewound between trials, blocks kept)
/// plus keyed reusable vectors, so a 125-trial sweep reuses its waveform
/// and history buffers instead of reallocating them 125 times.
///
/// Determinism contract: only *capacity* survives between trials. The
/// arena hands back uninitialized bytes and `doubles()` clears before
/// returning, so no trial can observe another trial's data.
class TrialScratch {
 public:
  TrialScratch() = default;
  TrialScratch(const TrialScratch&) = delete;
  TrialScratch& operator=(const TrialScratch&) = delete;

  /// Uninitialized storage valid until the next reset(). Allocations are
  /// chunked, so previously returned spans stay valid within a trial even
  /// when the arena grows.
  std::span<std::byte> bytes(std::size_t n,
                             std::size_t align = alignof(std::max_align_t));

  /// Typed arena view (trivially destructible T only — the arena never
  /// runs destructors). Contents are uninitialized.
  template <typename T>
  std::span<T> make(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena storage is raw bytes; T must be trivial");
    auto b = bytes(n * sizeof(T), alignof(T));
    return {reinterpret_cast<T*>(b.data()), n};
  }

  /// Keyed reusable vector: capacity persists across trials, contents are
  /// cleared on every call. Keys are caller-chosen small integers.
  std::vector<double>& doubles(std::size_t key);

  /// Rewinds the arena (called by the engine between trials).
  void reset() noexcept {
    block_ = 0;
    used_ = 0;
  }

  /// Total bytes owned across all arena blocks (for tests/telemetry).
  std::size_t arena_bytes() const noexcept;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  std::vector<Block> blocks_;
  std::size_t block_ = 0;  ///< current block index
  std::size_t used_ = 0;   ///< bytes used in the current block
  std::vector<std::vector<double>> keyed_;
};

/// Parallel deterministic sweep engine: executes a grid of independent
/// trials (configs x seeds) across a persistent dsp::WorkerPool and
/// returns results in grid order regardless of scheduling. Every trial
/// gets
///   - a deterministic Rng stream, `master.split(trial_index)` — a pure
///     function of the master seed and the grid cell, so reduced results
///     are bit-identical for jobs=1 vs jobs=N;
///   - a per-worker TrialScratch whose buffers are reused across the
///     trials that worker slot executes.
///
/// Telemetry (optional registry): `sweep.trials` counter, `sweep.trial_ms`
/// histogram, `sweep.jobs` gauge. Cumulative timing is also available via
/// stats() for the bench sidecars.
///
/// run_grid() is not reentrant and must be called from one thread at a
/// time; trial callables must not touch shared mutable state (use the
/// TrialSpec/Rng/TrialScratch arguments and per-trial locals).
class SweepEngine {
 public:
  struct Params {
    /// Total jobs including the calling thread; 0 = hardware concurrency,
    /// 1 = serial execution on the caller.
    std::size_t jobs = 0;
    /// Master seed for the per-trial Rng streams.
    std::uint64_t master_seed = 0x5eedc0de5eedc0deULL;
    /// Optional metrics registry (must outlive the engine).
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  /// Cumulative engine accounting across every run_grid() call.
  struct Stats {
    std::size_t jobs = 0;       ///< resolved parallelism
    std::uint64_t trials = 0;   ///< trials executed
    double wall_ms = 0.0;       ///< wall-clock inside run_grid()
    double trial_ms_total = 0;  ///< summed per-trial CPU-side wall time
    double trial_ms_max = 0.0;  ///< slowest single trial
  };

  using TrialRef =
      dsp::FunctionRef<void(const TrialSpec&, Rng&, TrialScratch&)>;

  SweepEngine() : SweepEngine(Params{}) {}
  explicit SweepEngine(Params params);
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  std::size_t jobs() const noexcept { return jobs_; }

  Stats stats() const noexcept;

  /// Type-erased core: runs configs x seeds trials of `fn` across the
  /// pool. `fn` is invoked exactly once per grid cell, from the caller or
  /// a worker thread, in unspecified order.
  void for_each_trial(std::size_t configs, std::size_t seeds, TrialRef fn);

  /// Runs the grid and collects each trial's return value, flat in grid
  /// order (config-major). T must be default-constructible and must not
  /// be bool (results are written concurrently to distinct elements, which
  /// vector<bool> cannot support).
  template <typename T, typename Fn>
  std::vector<T> run_grid(std::size_t configs, std::size_t seeds, Fn&& fn) {
    static_assert(!std::is_same_v<T, bool>, "vector<bool> is not writable "
                                            "concurrently; use char");
    std::vector<T> out(configs * seeds);
    for_each_trial(configs, seeds,
                   [&](const TrialSpec& t, Rng& rng, TrialScratch& scratch) {
                     out[t.index] = fn(t, rng, scratch);
                   });
    return out;
  }

  /// Convenience row view of a flat config-major grid result.
  template <typename T>
  static std::span<const T> row(const std::vector<T>& flat,
                                std::size_t seeds, std::size_t config) {
    return std::span<const T>{flat}.subspan(config * seeds, seeds);
  }

 private:
  std::size_t acquire_slot();
  void release_slot(std::size_t slot);

  Params params_;
  std::size_t jobs_ = 1;
  std::unique_ptr<dsp::WorkerPool> pool_;
  std::vector<std::unique_ptr<TrialScratch>> scratch_;  ///< one per slot
  std::mutex slots_mutex_;
  std::vector<std::size_t> free_slots_;
  // Cumulative accounting (relaxed atomics: trials finish concurrently).
  std::atomic<std::uint64_t> trials_{0};
  std::atomic<std::uint64_t> wall_ns_{0};
  std::atomic<std::uint64_t> trial_ns_total_{0};
  std::atomic<std::uint64_t> trial_ns_max_{0};
  // Registry instruments (nullable; bound once in the constructor).
  telemetry::Counter* c_trials_ = nullptr;
  telemetry::LatencyHistogram* h_trial_ms_ = nullptr;
};

/// Ordered reducers over one grid row (or any sample span), reusing
/// sim::stats machinery. Censored/failed trials are conventionally
/// returned as NaN by the trial function; every reducer skips non-finite
/// samples, and count_censored() reports how many were skipped. All
/// reducers are pure functions of the sample values in grid order, so
/// reduced results inherit the engine's jobs-independence.
double reduce_mean(std::span<const double> samples);
double reduce_median(std::span<const double> samples);
double reduce_percentile(std::span<const double> samples, double q);
double reduce_min(std::span<const double> samples);
double reduce_max(std::span<const double> samples);
std::size_t count_censored(std::span<const double> samples);

}  // namespace arachnet::sim
