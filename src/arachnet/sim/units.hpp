#pragma once

#include <cmath>

/// Small unit/constant helpers shared across the simulator. All simulation
/// quantities are SI doubles; these helpers keep dB <-> linear and common
/// scale conversions in one audited place.
namespace arachnet::sim {

/// Power ratio in dB -> linear.
inline double db_to_linear(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Linear power ratio -> dB.
inline double linear_to_db(double linear) noexcept {
  return 10.0 * std::log10(linear);
}

/// Amplitude ratio in dB -> linear (20 dB per decade).
inline double db_to_amplitude(double db) noexcept {
  return std::pow(10.0, db / 20.0);
}

/// Linear amplitude ratio -> dB.
inline double amplitude_to_db(double linear) noexcept {
  return 20.0 * std::log10(linear);
}

inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;

/// Group velocity of the A0 Lamb mode in automotive sheet steel around
/// 90 kHz; used for propagation-delay modelling across the BiW.
inline constexpr double kSteelGroupVelocityMps = 3100.0;

/// The system's acoustic carrier: resonant frequency of the BiW + PZT
/// assembly reported in the paper.
inline constexpr double kCarrierHz = 90e3;

/// Reader DAQ sampling rate (ART USB3136A analog input in the paper).
inline constexpr double kReaderSampleRateHz = 500e3;

}  // namespace arachnet::sim
