#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace arachnet::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

/// A deterministic discrete-event scheduler.
///
/// Events scheduled for the same simulated time fire in scheduling order
/// (FIFO tie-break via a monotonically increasing sequence number), which
/// keeps co-simulations of many MCUs reproducible.
///
/// Time is in seconds (double). The kernel makes no attempt to be
/// thread-safe: one EventQueue belongs to one simulation thread.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time in seconds.
  double now() const noexcept { return now_; }

  /// Schedules `cb` to run at absolute time `when` (must be >= now()).
  EventId schedule_at(double when, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, Callback cb);

  /// Cancels a pending event. Returns true if the event was still pending.
  /// Cancelling an already-fired or unknown id is a harmless no-op.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `run_until` / event budget
  /// stops it. Returns the number of events executed.
  std::size_t run();

  /// Runs events with time <= t_end, then advances now() to t_end.
  std::size_t run_until(double t_end);

  /// Executes exactly one event if available; returns false when empty.
  bool step();

  /// True when no events are pending.
  bool empty() const;

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const noexcept { return live_.size(); }

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    std::uint64_t id;
    // Heap entries are moved around; the callback lives here.
    mutable Callback cb;

    bool operator>(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void drop_cancelled_top();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> live_;  // pending, not cancelled
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace arachnet::sim
