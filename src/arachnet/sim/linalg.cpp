#include "arachnet/sim/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace arachnet::sim {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

std::vector<double> solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::runtime_error("solve: dimension mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-12) {
      throw std::runtime_error("solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
      }
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a.at(ri, c) * x[c];
    x[ri] = sum / a.at(ri, ri);
  }
  return x;
}

}  // namespace arachnet::sim
