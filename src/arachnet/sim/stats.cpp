#include "arachnet/sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arachnet::sim {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  return Percentiles{std::move(samples)}.at(q);
}

Percentiles::Percentiles(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  if (sorted_.empty()) {
    throw std::invalid_argument("Percentiles: empty sample set");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double Percentiles::at(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return sorted_[lo];
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Percentiles::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: invalid range or bin count");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx =
      static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  // x just below hi_ can still round onto counts_.size() — keep it in the
  // top bin.
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return bin_lo(i + 1);
}

}  // namespace arachnet::sim
