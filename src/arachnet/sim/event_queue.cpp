#include "arachnet/sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace arachnet::sim {

EventId EventQueue::schedule_at(double when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(cb)});
  live_.insert(id);
  return EventId{id};
}

EventId EventQueue::schedule_in(double delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventId id) {
  // Lazy deletion: the heap entry is skipped when it surfaces.
  return live_.erase(id.value) > 0;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

bool EventQueue::step() {
  drop_cancelled_top();
  if (heap_.empty()) return false;
  Callback cb = std::move(heap_.top().cb);
  now_ = heap_.top().when;
  live_.erase(heap_.top().id);
  heap_.pop();
  cb();
  return true;
}

std::size_t EventQueue::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t EventQueue::run_until(double t_end) {
  std::size_t executed = 0;
  for (;;) {
    drop_cancelled_top();
    if (heap_.empty() || heap_.top().when > t_end) break;
    step();
    ++executed;
  }
  now_ = std::max(now_, t_end);
  return executed;
}

bool EventQueue::empty() const { return live_.empty(); }

}  // namespace arachnet::sim
