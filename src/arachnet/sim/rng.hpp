#pragma once

#include <cstdint>
#include <limits>

namespace arachnet::sim {

/// Deterministic pseudo-random generator (xoshiro256++) with convenience
/// distributions. Every stochastic component in the simulator draws from an
/// explicitly seeded Rng so that experiments are reproducible run-to-run.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be handed to
/// <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64, which
  /// guarantees a well-mixed nonzero state for any seed (including 0).
  explicit Rng(std::uint64_t seed = 0xa5a5a5a5deadbeefULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next_u64(); }
  result_type next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// bounded rejection method.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second deviate).
  double normal() noexcept;

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (lambda). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Derives an independent child generator; useful for giving each
  /// simulated entity its own stream while keeping one master seed.
  /// Advances this generator by one draw (the child is seeded from it).
  Rng fork() noexcept;

  /// Advances the state by 2^128 draws (the canonical xoshiro256++ jump
  /// polynomial): 2^64 non-overlapping subsequences of length 2^128 each.
  /// Clears any cached normal deviate.
  void jump() noexcept;

  /// Advances the state by 2^192 draws (the long-jump polynomial); useful
  /// for carving out coarser stream blocks than jump(). Clears any cached
  /// normal deviate.
  void long_jump() noexcept;

  /// Derives an independent stream as a pure function of (current state,
  /// stream_id) WITHOUT advancing this generator: split(k) called twice
  /// returns identical generators, and distinct ids give statistically
  /// independent streams. This is the primitive behind deterministic
  /// parallel sweeps — trial k draws from master.split(k), so its stream
  /// depends only on the master seed and the grid index, never on which
  /// worker ran it or in what order (see sim::SweepEngine).
  Rng split(std::uint64_t stream_id) const noexcept;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace arachnet::sim
