#include "arachnet/sim/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "arachnet/sim/stats.hpp"

namespace arachnet::sim {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Finite samples only, for the NaN-censoring reducer convention.
std::vector<double> finite(std::span<const double> samples) {
  std::vector<double> kept;
  kept.reserve(samples.size());
  for (double s : samples) {
    if (std::isfinite(s)) kept.push_back(s);
  }
  return kept;
}

}  // namespace

// ------------------------------------------------------------ TrialScratch

std::span<std::byte> TrialScratch::bytes(std::size_t n, std::size_t align) {
  if (n == 0) return {};
  for (;;) {
    if (block_ < blocks_.size()) {
      auto& b = blocks_[block_];
      // Align the actual address — operator new[] only guarantees
      // __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the block base.
      const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
      const std::uintptr_t aligned =
          (base + used_ + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
      const std::size_t at = static_cast<std::size_t>(aligned - base);
      if (at + n <= b.size) {
        used_ = at + n;
        return {b.data.get() + at, n};
      }
      // Doesn't fit: move on (the tail of this block is wasted until the
      // next reset, which is fine for a monotonic arena).
      ++block_;
      used_ = 0;
      continue;
    }
    // Grow: at least double the last block, and always fit this request
    // with alignment slack. Blocks are stable, so spans handed out earlier
    // in the trial stay valid.
    const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
    const std::size_t size = std::max<std::size_t>(
        {n + align, prev * 2, std::size_t{4096}});
    blocks_.push_back({std::make_unique<std::byte[]>(size), size});
  }
}

std::vector<double>& TrialScratch::doubles(std::size_t key) {
  if (key >= keyed_.size()) keyed_.resize(key + 1);
  keyed_[key].clear();
  return keyed_[key];
}

std::size_t TrialScratch::arena_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.size;
  return total;
}

// ------------------------------------------------------------- SweepEngine

SweepEngine::SweepEngine(Params params) : params_(params) {
  jobs_ = params_.jobs != 0
              ? params_.jobs
              : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // The calling thread participates in every dispatch, so the pool only
  // needs jobs_ - 1 extra threads (jobs_ == 1 runs trials inline).
  pool_ = std::make_unique<dsp::WorkerPool>(jobs_ - 1);
  scratch_.reserve(jobs_);
  free_slots_.reserve(jobs_);
  for (std::size_t i = 0; i < jobs_; ++i) {
    scratch_.push_back(std::make_unique<TrialScratch>());
    free_slots_.push_back(jobs_ - 1 - i);  // pop_back hands out slot 0 first
  }
  if (auto* m = params_.metrics) {
    c_trials_ = &m->counter("sweep.trials");
    h_trial_ms_ = &m->histogram("sweep.trial_ms", 0.0, 2000.0, 64);
    m->gauge("sweep.jobs").set(static_cast<double>(jobs_));
  }
}

SweepEngine::~SweepEngine() = default;

std::size_t SweepEngine::acquire_slot() {
  std::lock_guard lock{slots_mutex_};
  // One slot per job and at most `jobs_` trials in flight, so the
  // freelist can never be empty here.
  const std::size_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void SweepEngine::release_slot(std::size_t slot) {
  std::lock_guard lock{slots_mutex_};
  free_slots_.push_back(slot);
}

void SweepEngine::for_each_trial(std::size_t configs, std::size_t seeds,
                                 TrialRef fn) {
  const std::size_t n = configs * seeds;
  if (n == 0) return;
  const std::uint64_t run_t0 = steady_now_ns();
  // The master generator is read-only inside trials (split() is const), so
  // sharing it across workers is race-free.
  const Rng master{params_.master_seed};
  pool_->run(n, [&](std::size_t i) {
    struct SlotGuard {
      SweepEngine* eng;
      std::size_t slot;
      ~SlotGuard() { eng->release_slot(slot); }
    };
    const SlotGuard guard{this, acquire_slot()};
    TrialScratch& scratch = *scratch_[guard.slot];
    scratch.reset();
    const TrialSpec spec{i, i / seeds, i % seeds, i};
    Rng rng = master.split(spec.rng_stream);
    const std::uint64_t t0 = steady_now_ns();
    fn(spec, rng, scratch);
    const std::uint64_t dt = steady_now_ns() - t0;
    trials_.fetch_add(1, std::memory_order_relaxed);
    trial_ns_total_.fetch_add(dt, std::memory_order_relaxed);
    std::uint64_t seen = trial_ns_max_.load(std::memory_order_relaxed);
    while (dt > seen && !trial_ns_max_.compare_exchange_weak(
                            seen, dt, std::memory_order_relaxed)) {
    }
    if (c_trials_ != nullptr) c_trials_->add();
    if (h_trial_ms_ != nullptr) {
      h_trial_ms_->record(static_cast<double>(dt) * 1e-6);
    }
  });
  wall_ns_.fetch_add(steady_now_ns() - run_t0, std::memory_order_relaxed);
}

SweepEngine::Stats SweepEngine::stats() const noexcept {
  Stats s;
  s.jobs = jobs_;
  s.trials = trials_.load(std::memory_order_relaxed);
  s.wall_ms =
      static_cast<double>(wall_ns_.load(std::memory_order_relaxed)) * 1e-6;
  s.trial_ms_total =
      static_cast<double>(trial_ns_total_.load(std::memory_order_relaxed)) *
      1e-6;
  s.trial_ms_max =
      static_cast<double>(trial_ns_max_.load(std::memory_order_relaxed)) *
      1e-6;
  return s;
}

// ---------------------------------------------------------------- reducers

double reduce_mean(std::span<const double> samples) {
  RunningStats stats;
  for (double s : samples) {
    if (std::isfinite(s)) stats.add(s);
  }
  return stats.mean();
}

double reduce_median(std::span<const double> samples) {
  return reduce_percentile(samples, 0.5);
}

double reduce_percentile(std::span<const double> samples, double q) {
  auto kept = finite(samples);
  if (kept.empty()) return 0.0;
  return Percentiles{std::move(kept)}.at(q);
}

double reduce_min(std::span<const double> samples) {
  return reduce_percentile(samples, 0.0);
}

double reduce_max(std::span<const double> samples) {
  return reduce_percentile(samples, 1.0);
}

std::size_t count_censored(std::span<const double> samples) {
  return samples.size() -
         static_cast<std::size_t>(
             std::count_if(samples.begin(), samples.end(),
                           [](double s) { return std::isfinite(s); }));
}

}  // namespace arachnet::sim
