// HealthMonitor tests: the snapshot delta/rate math the monitor samples
// are built from, the watchdog semantics (stall / saturation / storm),
// the JSONL time-series stream, Prometheus exposition, and the sampling
// thread lifecycle. The stalled-session case drives a real ReaderService
// whose dispatcher never started — the acceptance scenario: the flag must
// be up within two sampling periods.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arachnet/reader/service/reader_service.hpp"
#include "arachnet/reader/service/service_health.hpp"
#include "arachnet/telemetry/telemetry.hpp"

using namespace arachnet;
using namespace arachnet::telemetry;
using reader::service::ReaderService;
using reader::service::SessionConfig;

// --------------------------------------------------------- delta math

TEST(SnapshotDelta, CounterDeltaAndRate) {
  MetricsSnapshot prev;
  prev.counters.push_back({"a.count", 100});
  MetricsSnapshot cur;
  cur.counters.push_back({"a.count", 150});

  const auto d = compute_snapshot_delta(prev, cur, 2.0);
  ASSERT_NE(d.counter("a.count"), nullptr);
  EXPECT_EQ(d.counter("a.count")->value, 150u);
  EXPECT_EQ(d.counter("a.count")->delta, 50u);
  EXPECT_DOUBLE_EQ(d.counter("a.count")->rate_per_s, 25.0);
  EXPECT_FALSE(d.counter("a.count")->reset);
}

TEST(SnapshotDelta, CounterRegisteredMidIntervalStartsFromZero) {
  MetricsSnapshot prev;  // empty
  MetricsSnapshot cur;
  cur.counters.push_back({"fresh", 30});

  const auto d = compute_snapshot_delta(prev, cur, 3.0);
  ASSERT_NE(d.counter("fresh"), nullptr);
  EXPECT_EQ(d.counter("fresh")->delta, 30u);
  EXPECT_DOUBLE_EQ(d.counter("fresh")->rate_per_s, 10.0);
  EXPECT_FALSE(d.counter("fresh")->reset);
}

TEST(SnapshotDelta, CounterResetIsFlaggedNotNegative) {
  MetricsSnapshot prev;
  prev.counters.push_back({"c", 1000});
  MetricsSnapshot cur;
  cur.counters.push_back({"c", 40});

  const auto d = compute_snapshot_delta(prev, cur, 2.0);
  ASSERT_NE(d.counter("c"), nullptr);
  EXPECT_TRUE(d.counter("c")->reset);
  EXPECT_EQ(d.counter("c")->delta, 40u);  // the post-reset value
  EXPECT_DOUBLE_EQ(d.counter("c")->rate_per_s, 20.0);
}

TEST(SnapshotDelta, CounterOnlyInPrevIsDropped) {
  MetricsSnapshot prev;
  prev.counters.push_back({"gone", 5});
  const auto d = compute_snapshot_delta(prev, MetricsSnapshot{}, 1.0);
  EXPECT_TRUE(d.counters.empty());
  EXPECT_EQ(d.counter("gone"), nullptr);
}

TEST(SnapshotDelta, ZeroDtGivesZeroRates) {
  MetricsSnapshot prev;
  prev.counters.push_back({"c", 0});
  MetricsSnapshot cur;
  cur.counters.push_back({"c", 10});
  const auto d = compute_snapshot_delta(prev, cur, 0.0);
  EXPECT_EQ(d.counter("c")->delta, 10u);
  EXPECT_DOUBLE_EQ(d.counter("c")->rate_per_s, 0.0);
}

namespace {

MetricsSnapshot::HistogramValue make_hist(
    std::string name, double lo, double hi,
    std::vector<std::uint64_t> counts, std::uint64_t underflow,
    std::uint64_t overflow, double sum) {
  MetricsSnapshot::HistogramValue h;
  h.name = std::move(name);
  h.lo = lo;
  h.hi = hi;
  h.counts = std::move(counts);
  h.count = underflow + overflow;
  for (auto c : h.counts) h.count += c;
  h.underflow = underflow;
  h.overflow = overflow;
  h.sum = sum;
  return h;
}

}  // namespace

TEST(SnapshotDelta, HistogramIntervalPercentilesUseOnlyNewSamples) {
  // Cumulative: 6 old samples in the low bin, then 4 new in the high bin.
  // Interval percentiles must reflect the new samples only.
  MetricsSnapshot prev;
  prev.histograms.push_back(make_hist("h", 0.0, 10.0, {6, 0}, 0, 0, 6.0));
  MetricsSnapshot cur;
  cur.histograms.push_back(make_hist("h", 0.0, 10.0, {6, 4}, 0, 0, 34.0));

  const auto d = compute_snapshot_delta(prev, cur, 2.0);
  const auto* h = d.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_DOUBLE_EQ(h->rate_per_s, 2.0);
  EXPECT_DOUBLE_EQ(h->interval_mean, 7.0);  // (34-6)/4
  EXPECT_GE(h->interval_p50, 5.0);  // all interval mass is in [5,10)
  EXPECT_LE(h->interval_p99, 10.0);
  EXPECT_LT(h->cumulative_p50, 5.0);  // cumulative still low-bin-dominated
  EXPECT_FALSE(h->reset);
}

TEST(SnapshotDelta, HistogramResetTreatsCurrentAsWholeInterval) {
  MetricsSnapshot prev;
  prev.histograms.push_back(make_hist("h", 0.0, 10.0, {50, 0}, 0, 0, 50.0));
  MetricsSnapshot cur;  // the instrument restarted with fewer samples
  cur.histograms.push_back(make_hist("h", 0.0, 10.0, {0, 3}, 0, 0, 21.0));

  const auto d = compute_snapshot_delta(prev, cur, 1.0);
  const auto* h = d.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->reset);
  EXPECT_EQ(h->count, 3u);
  EXPECT_DOUBLE_EQ(h->interval_mean, 7.0);
}

// ---------------------------------------------- percentile edge cases

TEST(HistogramPercentile, EmptyReturnsZero) {
  const auto h = make_hist("h", 0.0, 10.0, {0, 0}, 0, 0, 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(HistogramPercentile, SingleBinInterpolatesWithinIt) {
  const auto h = make_hist("h", 0.0, 10.0, {8}, 0, 0, 40.0);
  const double p50 = h.percentile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(HistogramPercentile, OverflowOnlyClampsToHi) {
  const auto h = make_hist("h", 0.0, 10.0, {0, 0}, 0, 5, 500.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);
}

TEST(HistogramPercentile, UnderflowOnlyClampsToLo) {
  const auto h = make_hist("h", 2.0, 10.0, {0, 0}, 5, 0, 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);
}

// ------------------------------------------------------------ sampling

TEST(HealthMonitor, SampleOnceComputesRatesAndBoundsHistory) {
  MetricsRegistry reg;
  Counter& c = reg.counter("work.done");
  HealthMonitor::Params p;
  p.registry = &reg;
  p.history = 3;
  HealthMonitor mon{p};

  for (int i = 0; i < 5; ++i) {
    c.add(10);
    mon.sample_once();
  }
  EXPECT_EQ(mon.samples_taken(), 5u);
  const auto hist = mon.history();
  ASSERT_EQ(hist.size(), 3u);  // bounded ring, oldest evicted
  EXPECT_EQ(hist.back().index, 4u);
  // latest() returns the sample by value — keep it alive past the
  // counter() pointer lookup.
  const auto latest = mon.latest();
  ASSERT_TRUE(latest.has_value());
  const auto* cd = latest->delta.counter("work.done");
  ASSERT_NE(cd, nullptr);
  EXPECT_EQ(cd->value, 50u);
  EXPECT_EQ(cd->delta, 10u);
  EXPECT_GT(cd->rate_per_s, 0.0);  // dt is tiny but positive
}

TEST(HealthMonitor, FirstSampleHasNoIntervalRates) {
  MetricsRegistry reg;
  reg.counter("c").add(100);
  HealthMonitor mon{{.registry = &reg}};
  const auto s = mon.sample_once();
  EXPECT_DOUBLE_EQ(s.dt_s, 0.0);
  ASSERT_NE(s.delta.counter("c"), nullptr);
  EXPECT_DOUBLE_EQ(s.delta.counter("c")->rate_per_s, 0.0);
}

TEST(HealthMonitor, JsonlStreamCarriesSchemaAndOneLinePerSample) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  reg.gauge("g").set(2.5);
  reg.histogram("h.ms", 0.0, 10.0, 4).record(1.0);

  std::ostringstream out;
  HealthMonitor::Params p;
  p.registry = &reg;
  p.jsonl_out = &out;
  p.source = "test";
  HealthMonitor mon{p};
  mon.sample_once();
  mon.sample_once();

  std::istringstream lines{out.str()};
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"schema\":\"arachnet.monitor.v1\""),
              std::string::npos);
    EXPECT_NE(line.find("\"source\":\"test\""), std::string::npos);
    EXPECT_NE(line.find("\"wall_ns\""), std::string::npos);
    EXPECT_NE(line.find("\"steady_ns\""), std::string::npos);
    EXPECT_NE(line.find("\"h.ms\""), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(HealthMonitor, BackgroundThreadSamplesOnPeriod) {
  MetricsRegistry reg;
  HealthMonitor::Params p;
  p.registry = &reg;
  p.period_s = 0.01;
  HealthMonitor mon{p};
  mon.start();
  EXPECT_TRUE(mon.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  mon.stop();
  EXPECT_FALSE(mon.running());
  EXPECT_GE(mon.samples_taken(), 2u);
  // stop() is idempotent and the history survives it.
  mon.stop();
  EXPECT_FALSE(mon.history().empty());
}

// ----------------------------------------------------------- watchdogs

TEST(HealthMonitor, SaturationWatchRaisesAfterConsecutivePeriods) {
  MetricsRegistry reg;
  Gauge& depth = reg.gauge("q.depth");
  std::vector<HealthMonitor::HealthEvent> events;
  HealthMonitor::Params p;
  p.registry = &reg;
  p.on_event = [&](const HealthMonitor::HealthEvent& e) {
    events.push_back(e);
  };
  HealthMonitor mon{p};
  mon.add_saturation_watch({.name = "q",
                            .depth_gauge = "q.depth",
                            .capacity = 10.0,
                            .threshold = 0.9,
                            .periods = 2});

  depth.set(9.0);
  mon.sample_once();  // over_for = 1
  EXPECT_TRUE(events.empty());
  mon.sample_once();  // over_for = 2 -> raise
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HealthMonitor::FlagKind::kSaturated);
  EXPECT_TRUE(events[0].raised);
  EXPECT_EQ(events[0].flag, "health.q.saturated");

  // The flag gauge is visible in the registry itself.
  bool found = false;
  for (const auto& g : reg.snapshot().gauges) {
    if (g.name == "health.q.saturated") {
      found = true;
      EXPECT_DOUBLE_EQ(g.value, 1.0);
    }
  }
  EXPECT_TRUE(found);

  depth.set(2.0);
  mon.sample_once();  // below threshold -> clear immediately
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[1].raised);
}

TEST(HealthMonitor, RateWatchFlagsExpiryStorm) {
  MetricsRegistry reg;
  Counter& expired = reg.counter("session.blocks_expired");
  std::vector<HealthMonitor::HealthEvent> events;
  HealthMonitor::Params p;
  p.registry = &reg;
  p.on_event = [&](const HealthMonitor::HealthEvent& e) {
    events.push_back(e);
  };
  HealthMonitor mon{p};
  mon.add_rate_watch({.name = "ttl",
                      .counter = "session.blocks_expired",
                      .max_rate_per_s = 10.0,
                      .periods = 2});

  mon.sample_once();  // prime (dt 0 -> no rate)
  expired.add(100000);
  mon.sample_once();  // enormous rate, over_for = 1
  EXPECT_TRUE(events.empty());
  expired.add(100000);
  mon.sample_once();  // over_for = 2 -> storm
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HealthMonitor::FlagKind::kStorm);
  EXPECT_EQ(events[0].flag, "health.ttl.storm");

  mon.sample_once();  // no new expiries -> rate 0 -> clear
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[1].raised);
}

TEST(HealthMonitor, ProgressProbeIgnoresIdleUnits) {
  MetricsRegistry reg;
  std::uint64_t progress = 0;
  std::uint64_t demand = 0;
  std::vector<HealthMonitor::HealthEvent> events;
  HealthMonitor::Params p;
  p.registry = &reg;
  p.stall_periods = 2;
  p.on_event = [&](const HealthMonitor::HealthEvent& e) {
    events.push_back(e);
  };
  HealthMonitor mon{p};
  mon.add_probe({.name = "u",
                 .progress = [&] { return progress; },
                 .demand = [&] { return demand; }});

  // Demand never advances: idle, not stalled, no matter how many samples.
  for (int i = 0; i < 6; ++i) mon.sample_once();
  EXPECT_TRUE(events.empty());

  // Demand advances without progress: stall after 2 qualifying periods.
  demand += 1;
  mon.sample_once();
  demand += 1;
  mon.sample_once();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HealthMonitor::FlagKind::kStalled);
  EXPECT_TRUE(events[0].raised);

  // Progress resumes: the flag clears.
  progress += 1;
  mon.sample_once();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[1].raised);
}

TEST(HealthMonitor, RemoveProbeClearsItsFlag) {
  MetricsRegistry reg;
  std::uint64_t demand = 0;
  HealthMonitor::Params p;
  p.registry = &reg;
  p.stall_periods = 1;
  HealthMonitor mon{p};
  mon.add_probe({.name = "u",
                 .progress = [] { return std::uint64_t{0}; },
                 .demand = [&] { return demand; }});
  mon.sample_once();
  demand = 1;
  mon.sample_once();  // raised
  auto flag_value = [&] {
    for (const auto& g : reg.snapshot().gauges) {
      if (g.name == "health.u.stalled") return g.value;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(flag_value(), 1.0);
  mon.remove_probe("u");
  EXPECT_DOUBLE_EQ(flag_value(), 0.0);
}

// The acceptance scenario: a deliberately stalled ReaderService session
// (its dispatcher never started, so accepted blocks sit in the queue
// forever) must raise health.session.<id>.stalled within 2 periods.
TEST(HealthMonitor, StalledReaderServiceSessionFlagsWithinTwoPeriods) {
  MetricsRegistry reg;
  ReaderService::Params sp;
  sp.workers = 1;
  sp.metrics = &reg;
  ReaderService svc{sp};  // start() intentionally never called

  const auto id = svc.open_session(SessionConfig{});
  ASSERT_TRUE(id.has_value());

  std::vector<HealthMonitor::HealthEvent> events;
  HealthMonitor::Params p;
  p.registry = &reg;
  p.stall_periods = 2;
  p.on_event = [&](const HealthMonitor::HealthEvent& e) {
    events.push_back(e);
  };
  HealthMonitor mon{p};
  reader::service::watch_session(mon, svc, *id);
  reader::service::watch_service(mon, svc);

  mon.sample_once();  // prime
  // Feed within the in-flight cap: the blocks are accepted (demand
  // advances) but nothing ever processes or resolves them.
  ASSERT_TRUE(svc.submit(*id, std::vector<double>(64, 0.0)));
  mon.sample_once();  // period 1: no progress under demand
  EXPECT_TRUE(events.empty());
  ASSERT_TRUE(svc.submit(*id, std::vector<double>(64, 0.0)));
  mon.sample_once();  // period 2: flag must be up
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].raised);
  EXPECT_EQ(events[0].flag,
            "health.session." + std::to_string(*id) + ".stalled");

  bool gauge_up = false;
  for (const auto& g : reg.snapshot().gauges) {
    if (g.name == events[0].flag) gauge_up = g.value == 1.0;
  }
  EXPECT_TRUE(gauge_up);
}

// A live service processing its feed must NOT trip the stall watchdog.
TEST(HealthMonitor, HealthySessionStaysClear) {
  MetricsRegistry reg;
  ReaderService::Params sp;
  sp.workers = 2;
  sp.metrics = &reg;
  ReaderService svc{sp};
  svc.start();
  const auto id = svc.open_session(SessionConfig{});
  ASSERT_TRUE(id.has_value());

  std::vector<HealthMonitor::HealthEvent> events;
  HealthMonitor::Params p;
  p.registry = &reg;
  p.stall_periods = 2;
  p.on_event = [&](const HealthMonitor::HealthEvent& e) {
    events.push_back(e);
  };
  HealthMonitor mon{p};
  reader::service::watch_session(mon, svc, *id);

  mon.sample_once();
  for (int round = 0; round < 4; ++round) {
    svc.submit(*id, std::vector<double>(256, 0.0));
    // Wait until the block actually lands so progress advances between
    // samples (deterministic, no timing guess).
    for (int spin = 0; spin < 1000; ++spin) {
      const auto st = svc.session_stats(*id);
      if (st.has_value() &&
          st->blocks_processed + st->blocks_dropped >=
              static_cast<std::uint64_t>(round + 1)) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    mon.sample_once();
  }
  EXPECT_TRUE(events.empty());
  svc.close_session(*id);
  svc.stop();
}

// ---------------------------------------------------------- prometheus

TEST(Prometheus, TextExpositionMapsAllInstrumentKinds) {
  MetricsRegistry reg;
  reg.counter("svc.blocks").add(7);
  reg.gauge("q.depth").set(3.5);
  LatencyHistogram& h = reg.histogram("lat.ms", 0.0, 10.0, 2);
  h.record(1.0);   // bin 0
  h.record(6.0);   // bin 1
  h.record(-1.0);  // underflow -> folded into the first bucket
  h.record(20.0);  // overflow -> only in +Inf

  std::ostringstream out;
  write_prometheus_text(reg.snapshot(), out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE arachnet_svc_blocks counter"),
            std::string::npos);
  EXPECT_NE(text.find("arachnet_svc_blocks 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE arachnet_q_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("arachnet_q_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE arachnet_lat_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("arachnet_lat_ms_bucket{le=\"5\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("arachnet_lat_ms_bucket{le=\"10\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("arachnet_lat_ms_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("arachnet_lat_ms_count 4"), std::string::npos);
  // sum = 1 + 6 - 1 + 20
  EXPECT_NE(text.find("arachnet_lat_ms_sum 26"), std::string::npos);
}

TEST(Prometheus, MonitorExposesItsRegistry) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  HealthMonitor mon{{.registry = &reg}};
  std::ostringstream out;
  mon.write_prometheus(out);
  EXPECT_NE(out.str().find("arachnet_c 1"), std::string::npos);
}
